// Quickstart: define a small schema, load a database, and generate a
// summary — the library's core loop in ~100 lines.
//
//   ./quickstart
//
// The schema is a miniature bookstore; the "database" is an in-memory
// DataTree. Real applications stream instances instead (see the other
// examples) — the API is identical from annotation onward.

#include <cstdio>

#include "core/metrics.h"
#include "core/summarize.h"
#include "instance/data_tree.h"
#include "schema/dot_export.h"
#include "schema/schema_builder.h"
#include "stats/annotate.h"

using namespace ssum;

int main() {
  // 1. Define a schema (Definition 1): structural tree + value links.
  SchemaBuilder b("store");
  ElementId books = b.Rcd(b.Root(), "books");
  ElementId book = b.SetRcd(books, "book");
  b.Attr(book, "isbn", AtomicKind::kId);
  b.Simple(book, "title");
  b.Simple(book, "price", AtomicKind::kFloat);
  ElementId review = b.SetRcd(book, "review");
  b.Simple(review, "rating", AtomicKind::kInt);
  b.Simple(review, "comment");
  ElementId author_ref = b.Rcd(book, "author_ref");
  ElementId author_ref_id = b.Attr(author_ref, "author", AtomicKind::kIdRef);
  ElementId authors = b.Rcd(b.Root(), "authors");
  ElementId author = b.SetRcd(authors, "author");
  ElementId author_id = b.Attr(author, "id", AtomicKind::kId);
  b.Simple(author, "name");
  b.Simple(author, "bio");
  LinkId by = b.Link(author_ref, author, author_ref_id, author_id);
  SchemaGraph schema = std::move(b).Build();
  std::printf("schema: %zu elements, %zu structural links, %zu value links\n",
              schema.size(), schema.structural_links().size(),
              schema.value_links().size());

  // 2. Build a tiny database instance and annotate it (Figure 3).
  DataTree db(&schema);
  auto must = [](auto result) {
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    return std::move(*result);
  };
  NodeId n_authors = must(db.AddNode(db.root(), authors));
  std::vector<NodeId> author_nodes;
  for (int i = 0; i < 3; ++i) {
    NodeId a = must(db.AddNode(n_authors, author));
    must(db.AddNode(a, author_id, "a" + std::to_string(i)));
    must(db.AddNode(a, *schema.FindPath("store/authors/author/name"),
                    "Author " + std::to_string(i)));
    author_nodes.push_back(a);
  }
  NodeId n_books = must(db.AddNode(db.root(), books));
  for (int i = 0; i < 12; ++i) {
    NodeId bk = must(db.AddNode(n_books, book));
    must(db.AddNode(bk, *schema.FindPath("store/books/book/@isbn")));
    must(db.AddNode(bk, *schema.FindPath("store/books/book/title")));
    must(db.AddNode(bk, *schema.FindPath("store/books/book/price")));
    for (int r = 0; r < 2 + i % 3; ++r) {
      NodeId rv = must(db.AddNode(bk, review));
      must(db.AddNode(rv, *schema.FindPath("store/books/book/review/rating")));
    }
    NodeId ar = must(db.AddNode(bk, author_ref));
    must(db.AddNode(ar, author_ref_id));
    Status s = db.AddReference(by, ar, author_nodes[i % 3]);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  Annotations ann = must(AnnotateSchema(db));
  std::printf("database: %zu nodes; card(book)=%llu card(review)=%llu\n",
              db.size(),
              static_cast<unsigned long long>(ann.card(book)),
              static_cast<unsigned long long>(ann.card(review)));

  // 3. Summarize (Section 4) and inspect the result.
  SummarizerContext context(schema, ann);
  SchemaSummary summary = must(Summarize(context, 2));
  std::printf("\nsize-2 BalanceSummary:\n");
  for (ElementId s : summary.abstract_elements) {
    std::printf("  abstract element '%s' represents:", schema.label(s).c_str());
    for (ElementId e : summary.Group(s)) {
      if (e != s) std::printf(" %s", schema.label(e).c_str());
    }
    std::printf("\n");
  }
  for (const AbstractLink& l : summary.links) {
    std::printf("  link %s -> %s (%u original link%s%s)\n",
                schema.label(l.from).c_str(), schema.label(l.to).c_str(),
                l.source_links, l.source_links == 1 ? "" : "s",
                l.has_value ? ", incl. value links" : "");
  }

  // 4. Quality metrics (Definitions 3 and 4).
  double ri = SummaryImportanceRatio(schema, context.importance().importance,
                                     summary);
  double rc = SummaryCoverageRatio(schema, ann, context.coverage(), summary);
  std::printf("\nsummary importance R_SS = %.3f, coverage C_SS = %.3f\n", ri,
              rc);

  // 5. Export the original schema as DOT for visualization.
  DotOptions dot;
  dot.graph_name = "bookstore";
  std::printf("\nGraphviz DOT of the schema:\n%s", ExportDot(schema, dot).c_str());
  return 0;
}
