// XMark schema exploration: generates the XMark auction database, builds
// summaries at several sizes, shows group membership, an expanded view
// (paper Figure 2(C)), a two-level summary, and how a user's query
// discovery cost drops with the summary.
//
//   ./xmark_explorer [scale-factor]     (default 0.1)

#include <cstdio>
#include <cstdlib>

#include "core/multilevel.h"
#include "core/summarize.h"
#include "datasets/xmark.h"
#include "query/discovery.h"
#include "stats/annotate.h"

using namespace ssum;

int main(int argc, char** argv) {
  XMarkParams params;
  params.sf = argc > 1 ? std::atof(argv[1]) : 0.1;
  XMarkDataset ds(params);
  const SchemaGraph& schema = ds.schema();
  std::printf("XMark schema: %zu elements (sf=%.2f)\n", schema.size(),
              params.sf);

  auto stream = ds.MakeStream();
  auto ann = AnnotateSchema(*stream);
  if (!ann.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 ann.status().ToString().c_str());
    return 1;
  }
  CountingVisitor counter;
  (void)stream->Accept(&counter);
  std::printf("database: %llu data nodes, %llu reference instances\n\n",
              static_cast<unsigned long long>(counter.nodes()),
              static_cast<unsigned long long>(counter.references()));

  SummarizerContext context(schema, *ann);

  // Summaries of growing size (paper Figure 2(A) is the size-~5 view).
  for (size_t k : {5, 10}) {
    auto summary = Summarize(context, k);
    if (!summary.ok()) {
      std::fprintf(stderr, "summarize failed: %s\n",
                   summary.status().ToString().c_str());
      return 1;
    }
    std::printf("=== size-%zu summary ===\n", k);
    for (ElementId s : summary->abstract_elements) {
      std::printf("  %-28s (group of %zu, importance %.0f)\n",
                  schema.PathOf(s).c_str(), summary->Group(s).size(),
                  context.importance().importance[s]);
    }
    if (k == 5) {
      // Expanded view of the most important abstract element (Figure 2(C)).
      ElementId top = summary->abstract_elements.front();
      auto view = ExpandAbstractElement(*summary, top);
      if (view.ok()) {
        std::printf("  expanding '%s' exposes %zu original elements:\n",
                    schema.label(top).c_str(),
                    view->expanded_members.size());
        size_t shown = 0;
        for (ElementId e : view->expanded_members) {
          std::printf("    %s\n", schema.PathOf(e).c_str());
          if (++shown == 8) {
            std::printf("    ... (%zu more)\n",
                        view->expanded_members.size() - shown);
            break;
          }
        }
      }
    }
    std::printf("\n");
  }

  // Two-level summary: 12 fine groups, 4 coarse groups.
  auto levels = SummarizeMultiLevel(schema, *ann, {12, 4});
  if (levels.ok()) {
    std::printf("=== multi-level summary (12 -> 4) ===\n");
    const SummaryLevel& coarse = (*levels)[1];
    for (ElementId top : coarse.abstract_elements) {
      std::printf("  top-level '%s' covers fine groups:",
                  schema.label(top).c_str());
      for (ElementId fine : (*levels)[0].abstract_elements) {
        if (coarse.representative[fine] == top) {
          std::printf(" %s", schema.label(fine).c_str());
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  } else {
    std::printf("multi-level failed: %s\n\n",
                levels.status().ToString().c_str());
  }

  // Query discovery with and without the summary.
  Workload workload = *ds.Queries();
  DiscoveryOracle oracle(schema);
  auto summary = Summarize(context, 10);
  std::printf("=== query discovery (20 XMark queries) ===\n");
  std::printf("  depth-first   : %.2f\n",
              AverageDiscoveryCost(oracle, workload,
                                   TraversalStrategy::kDepthFirst));
  std::printf("  breadth-first : %.2f\n",
              AverageDiscoveryCost(oracle, workload,
                                   TraversalStrategy::kBreadthFirst));
  std::printf("  best-first    : %.2f\n",
              AverageDiscoveryCost(oracle, workload,
                                   TraversalStrategy::kBestFirst));
  std::printf("  with summary  : %.2f\n",
              AverageDiscoveryCostWithSummary(oracle, *summary, workload));
  return 0;
}
