// End-to-end XML workflow: generate a database as an XML document, pretend
// we received it from a stranger (schema unknown), infer a schema from the
// document, annotate, summarize — then use the summary to formulate a query
// skeleton, the paper's motivating task.
//
//   ./schema_inference [output.xml]
//
// When an output path is given, the intermediate document is also written
// to disk so you can inspect it.

#include <cstdio>

#include "core/summarize.h"
#include "core/summary_io.h"
#include "datasets/mimi.h"
#include "instance/materialize.h"
#include "query/discovery.h"
#include "query/formulate.h"
#include "stats/annotate.h"
#include "xml/infer_schema.h"
#include "xml/instance_bridge.h"
#include "xml/writer.h"

using namespace ssum;

int main(int argc, char** argv) {
  // 1. A "foreign" database arrives as XML (we synthesize one from the MiMI
  //    substrate at a small scale).
  MimiParams params;
  params.scale = 0.01;
  MimiDataset source(params);
  auto doc = MaterializeToXml(*source.MakeStream());
  if (!doc.ok()) {
    std::fprintf(stderr, "materialize failed: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  std::string xml = WriteXml(*doc);
  std::printf("received document: %zu bytes of XML\n", xml.size());
  if (argc > 1) {
    if (Status s = WriteXmlFile(*doc, argv[1]); !s.ok()) {
      std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("document written to %s\n", argv[1]);
  }

  // 2. No schema file came with it: infer one from the instance.
  auto schema = InferSchema(*doc);
  if (!schema.ok()) {
    std::fprintf(stderr, "inference failed: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }
  std::printf("inferred schema: %zu elements\n", schema->size());

  // 3. Annotate the document against the inferred schema and summarize.
  auto ann = AnnotateXmlDocument(*schema, *doc);
  if (!ann.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 ann.status().ToString().c_str());
    return 1;
  }
  auto summary = Summarize(*schema, *ann, 8);
  if (!summary.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsize-8 summary of the inferred schema:\n");
  for (ElementId a : summary->abstract_elements) {
    std::printf("  %-50s (%zu elements)\n", schema->PathOf(a).c_str(),
                summary->Group(a).size());
  }
  std::printf("\nGraphviz view (paste into `dot -Tpng`):\n%s\n",
              ExportSummaryDot(*summary, "inferred").c_str());

  // 4. A user explores the summary for their query intention and gets a
  //    query skeleton with the discovered paths filled in.
  auto intention = MakeIntention(
      *schema, "example",
      {"mimi/molecules/molecule", "mimi/molecules/molecule/name",
       "mimi/molecules/molecule/symbol"});
  if (!intention.ok()) {
    std::fprintf(stderr, "intention failed: %s\n",
                 intention.status().ToString().c_str());
    return 1;
  }
  DiscoveryOracle oracle(*schema);
  DiscoveryResult without =
      Discover(oracle, *intention, TraversalStrategy::kBestFirst);
  DiscoveryResult with = DiscoverWithSummary(oracle, *summary, *intention);
  std::printf(
      "query discovery for {molecule, name, symbol}: best-first cost %llu, "
      "with summary %llu\n\n",
      static_cast<unsigned long long>(without.cost),
      static_cast<unsigned long long>(with.cost));
  auto skeleton = FormulateXQuerySkeleton(*schema, *intention);
  if (skeleton.ok()) {
    std::printf("generated XQuery skeleton:\n%s\n", skeleton->c_str());
  }
  return 0;
}
