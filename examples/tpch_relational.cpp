// Relational-path demo: materializes a tiny TPC-H database, verifies
// referential integrity, lowers the catalog to the paper's schema-graph
// model, annotates, summarizes, and walks one query-discovery session
// step by step.
//
//   ./tpch_relational [scale-factor]    (default 0.002)

#include <cstdio>
#include <cstdlib>

#include "core/summarize.h"
#include "datasets/tpch.h"
#include "query/discovery.h"
#include "relational/csv.h"
#include "stats/annotate.h"

using namespace ssum;

int main(int argc, char** argv) {
  TpchParams params;
  params.sf = argc > 1 ? std::atof(argv[1]) : 0.002;
  TpchDataset ds(params);
  std::printf("TPC-H catalog: %zu tables, schema graph of %zu elements\n",
              ds.catalog().tables().size(), ds.schema().size());

  auto db = ds.GenerateDatabase();
  if (!db.ok()) {
    std::fprintf(stderr, "dbgen failed: %s\n",
                 db.status().ToString().c_str());
    return 1;
  }
  Status fk = db->CheckForeignKeys();
  std::printf("referential integrity: %s\n", fk.ToString().c_str());
  for (size_t t = 0; t < db->num_tables(); ++t) {
    std::printf("  %-10s %8zu rows\n", db->table(t).def().name.c_str(),
                db->table(t).num_rows());
  }

  // Show the CSV layer round-tripping a table.
  std::string csv = WriteCsv(db->table(0));
  std::printf("\nregion as CSV:\n%s", csv.c_str());

  // Annotate from the materialized database.
  RelationalInstanceStream stream(&ds.mapping(), &*db);
  auto ann = AnnotateSchema(stream);
  if (!ann.ok()) {
    std::fprintf(stderr, "annotation failed: %s\n",
                 ann.status().ToString().c_str());
    return 1;
  }

  SummarizerContext context(ds.schema(), *ann);
  auto summary = Summarize(context, 5);
  if (!summary.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsize-5 summary of TPC-H:\n");
  for (ElementId s : summary->abstract_elements) {
    std::printf("  %-12s represents:", ds.schema().label(s).c_str());
    for (ElementId e : summary->Group(s)) {
      if (e != s && ds.schema().type(e).kind != TypeKind::kSimple) {
        std::printf(" %s", ds.schema().label(e).c_str());
      }
    }
    std::printf(" (+columns)\n");
  }

  // One discovery session in detail: TPC-H Q6 (lineitem revenue forecast).
  Workload workload = *ds.Queries();
  DiscoveryOracle oracle(ds.schema());
  const QueryIntention& q6 = workload.queries[5];
  DiscoveryResult without = Discover(oracle, q6, TraversalStrategy::kBestFirst);
  DiscoveryResult with = DiscoverWithSummary(oracle, *summary, q6);
  std::printf(
      "\nquery %s (intention of %zu elements):\n"
      "  best-first without summary: cost %llu (%llu elements examined)\n"
      "  best-first with summary   : cost %llu (%llu elements examined)\n",
      q6.name.c_str(), q6.size(),
      static_cast<unsigned long long>(without.cost),
      static_cast<unsigned long long>(without.visited),
      static_cast<unsigned long long>(with.cost),
      static_cast<unsigned long long>(with.visited));

  std::printf("\nfull workload averages:\n");
  std::printf("  best-first    : %.2f\n",
              AverageDiscoveryCost(oracle, workload,
                                   TraversalStrategy::kBestFirst));
  std::printf("  with summary  : %.2f\n",
              AverageDiscoveryCostWithSummary(oracle, *summary, workload));
  return 0;
}
