// Data-evolution demo on the MiMI substrate: summaries adapt when the data
// distribution shifts (the October 2005 protein-domain import) yet remain
// stable for the schema's enduring core.
//
//   ./mimi_evolution [scale]      (default 0.05 for a quick run)

#include <cstdio>
#include <cstdlib>

#include "core/summarize.h"
#include "datasets/mimi.h"
#include "eval/agreement.h"
#include "stats/annotate.h"

using namespace ssum;

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const MimiVersion versions[] = {MimiVersion::kApr2004,
                                  MimiVersion::kJan2005,
                                  MimiVersion::kJan2006};
  std::vector<std::vector<ElementId>> selections;
  const SchemaGraph* schema = nullptr;
  std::vector<MimiDataset> datasets;
  datasets.reserve(3);
  for (MimiVersion v : versions) {
    MimiParams params;
    params.version = v;
    params.scale = scale;
    datasets.emplace_back(params);
  }
  for (size_t i = 0; i < datasets.size(); ++i) {
    const MimiDataset& ds = datasets[i];
    schema = &ds.schema();
    auto stream = ds.MakeStream();
    auto ann = AnnotateSchema(*stream);
    if (!ann.ok()) {
      std::fprintf(stderr, "annotation failed: %s\n",
                   ann.status().ToString().c_str());
      return 1;
    }
    CountingVisitor counter;
    (void)stream->Accept(&counter);
    SummarizerContext context(ds.schema(), *ann);
    auto sel = SelectBalanced(context, 10);
    if (!sel.ok()) {
      std::fprintf(stderr, "summarize failed: %s\n",
                   sel.status().ToString().c_str());
      return 1;
    }
    std::printf("%s: %llu data nodes; size-10 summary:\n",
                MimiVersionName(versions[i]),
                static_cast<unsigned long long>(counter.nodes()));
    for (ElementId e : *sel) {
      std::printf("  %s\n", ds.schema().PathOf(e).c_str());
    }
    std::printf("\n");
    selections.push_back(std::move(*sel));
  }
  (void)schema;
  std::printf("summary agreement across versions (size 10):\n");
  std::printf("  Apr 2004 vs Jan 2005: %.0f%%\n",
              100 * SummaryAgreement(selections[0], selections[1], 10));
  std::printf("  Apr 2004 vs Jan 2006: %.0f%%\n",
              100 * SummaryAgreement(selections[0], selections[2], 10));
  std::printf("  Jan 2005 vs Jan 2006: %.0f%%\n",
              100 * SummaryAgreement(selections[1], selections[2], 10));
  std::printf(
      "\nThe Jan-2006 summary may differ where the domain import shifted "
      "the data distribution — the paper argues this adaptivity is a "
      "feature, not a bug (Section 3.3).\n");
  return 0;
}
