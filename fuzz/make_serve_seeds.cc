// Writes the seed corpus for fuzz_serve_frame (fuzz/corpus/serve/): one
// valid request per interesting verb shape, a valid and an error response,
// plus envelope edge cases (foreign format version, truncation, bad verb,
// wrong payload kind). Run from the repo root:
//
//   build/fuzz/make_serve_seeds fuzz/corpus/serve
//
// The seeds are committed; this tool only exists to regenerate them when
// the wire protocol or the container format changes.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/env.h"
#include "serve/wire.h"
#include "store/container.h"

namespace {

int Write(const std::string& path, const std::string& bytes) {
  if (!ssum::AtomicWriteFile(path, bytes).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return 0;
}

std::string U32Bytes(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return std::string(buf, sizeof(buf));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_serve_seeds <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  int rc = 0;

  ssum::ServeRequest health;
  health.verb = ssum::ServeVerb::kHealth;
  rc |= Write(dir + "/request_health.ssb", ssum::EncodeRequest(health));

  ssum::ServeRequest summarize;
  summarize.verb = ssum::ServeVerb::kSummarize;
  summarize.dataset = "xmark";
  summarize.k = 10;
  summarize.mode = ssum::SummaryMode::kApprox;
  summarize.epsilon = 0.25;
  summarize.has_deadline = true;
  summarize.deadline_ms = 1500;
  const std::string summarize_bytes = ssum::EncodeRequest(summarize);
  rc |= Write(dir + "/request_summarize.ssb", summarize_bytes);

  ssum::ServeRequest discover;
  discover.verb = ssum::ServeVerb::kDiscover;
  discover.dataset = "xmark";
  discover.k = 5;
  discover.paths = {"site/people/person", "site/people/person/name"};
  rc |= Write(dir + "/request_discover.ssb", ssum::EncodeRequest(discover));

  ssum::ServeResponse ok;
  ok.status = ssum::StatusCode::kOk;
  ok.payload = "summary 2\nabstract site/people/person *\n";
  rc |= Write(dir + "/response_ok.ssb", ssum::EncodeResponse(ok));

  ssum::ServeResponse error;
  error.status = ssum::StatusCode::kDeadlineExceeded;
  error.message = "deadline expired after 0 ms in queue";
  rc |= Write(dir + "/response_error.ssb", ssum::EncodeResponse(error));

  // A structurally perfect request container whose verb value is garbage:
  // must decode to an error, never be served.
  ssum::ContainerWriter bad_verb(ssum::PayloadKind::kServeRequest);
  bad_verb.AddSection(ssum::kServeTagVerb, U32Bytes(99));
  rc |= Write(dir + "/bad_verb.ssb", std::move(bad_verb).Finish());

  // A valid container of a non-serve payload kind: both decoders reject.
  ssum::ContainerWriter wrong_kind(ssum::PayloadKind::kSummary);
  wrong_kind.AddSection(1, "not a serve frame");
  rc |= Write(dir + "/wrong_kind.ssb", std::move(wrong_kind).Finish());

  ssum::ContainerWriter foreign(
      static_cast<uint32_t>(ssum::PayloadKind::kServeRequest),
      ssum::kContainerFormatVersion + 1);
  foreign.AddSection(ssum::kServeTagVerb, U32Bytes(1));
  rc |= Write(dir + "/foreign_version.ssb", std::move(foreign).Finish());

  rc |= Write(dir + "/truncated.ssb",
              summarize_bytes.substr(0, summarize_bytes.size() / 2));
  return rc;
}
