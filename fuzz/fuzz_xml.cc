// Fuzz harness for the XML parser (src/xml/parser.h).
//
// Oracle: ParseXml must return for arbitrary bytes — malformed markup, deep
// nesting, and oversized tokens all map to a Status, never a crash. When the
// input parses, the DOM must be traversable (exercises the element/attribute
// ownership invariants under ASan).

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "fuzz_util.h"
#include "xml/parser.h"

namespace {

size_t CountNodes(const ssum::XmlElement& e) {
  size_t n = 1 + e.attributes.size();
  for (const auto& child : e.children) n += CountNodes(child);
  return n;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const ssum::ParseLimits limits = ssum::fuzz::TightLimits();
  auto doc = ssum::ParseXml(ssum::fuzz::AsString(data, size), limits);
  if (doc.ok()) {
    // A successful parse must respect the item ceiling (elements +
    // attributes), otherwise the limit check has a hole.
    const size_t nodes = CountNodes(doc->root);
    SSUM_CHECK(nodes <= limits.max_items,
               "ParseXml accepted a document over max_items");
  }
  return 0;
}
