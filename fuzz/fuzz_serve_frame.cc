// Fuzz harness for the serving daemon's wire codec (src/serve/wire.h).
//
// Arbitrary bytes are fed to DecodeRequest and DecodeResponse — the exact
// bytes a hostile client can put on the socket after the length prefix.
// The contract is the same abort-free guarantee the store harness checks:
// corrupt, truncated, hostile, or version-skewed frames must map to a
// Status — never a crash, assert, sanitizer report, or oversized
// allocation. Accepted messages must re-encode and re-decode to the same
// message (the server relies on this to echo request parameters back in
// diagnostics, and the bench relies on byte-stable responses).

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "fuzz_util.h"
#include "serve/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes = ssum::fuzz::AsString(data, size);

  auto request = ssum::DecodeRequest(bytes);
  if (request.ok()) {
    auto again = ssum::DecodeRequest(ssum::EncodeRequest(*request));
    SSUM_CHECK(again.ok(), "request re-encode round trip rejected");
    SSUM_CHECK(again->verb == request->verb &&
                   again->dataset == request->dataset &&
                   again->k == request->k &&
                   again->algorithm == request->algorithm &&
                   again->mode == request->mode &&
                   again->epsilon == request->epsilon &&
                   again->has_deadline == request->has_deadline &&
                   again->deadline_ms == request->deadline_ms &&
                   again->stall_ms == request->stall_ms &&
                   again->paths == request->paths,
               "request re-encode round trip changed fields");
  }

  auto response = ssum::DecodeResponse(bytes);
  if (response.ok()) {
    auto again = ssum::DecodeResponse(ssum::EncodeResponse(*response));
    SSUM_CHECK(again.ok(), "response re-encode round trip rejected");
    SSUM_CHECK(again->status == response->status &&
                   again->message == response->message &&
                   again->payload == response->payload,
               "response re-encode round trip changed fields");
    // The wire Status reconstruction must agree with the raw code.
    SSUM_CHECK(response->ToStatus().code() == response->status,
               "ToStatus changed the wire status code");
  }

  // A single frame cannot be both: request and response use distinct
  // container payload kinds, so at most one decoder may accept.
  SSUM_CHECK(!(request.ok() && response.ok()),
             "one body decoded as both request and response");
  return 0;
}
