// Writes scenario-generated seed documents into the fuzz corpora: three
// materialized instance XMLs into fuzz/corpus/xml/ (structurally richer
// than the hand-written fixtures — recursion, Choice branches, SetOf runs,
// idref webs) and one annotation container into fuzz/corpus/store/. Run
// from the repo root:
//
//   build/fuzz/make_scenario_seeds fuzz/corpus
//
// The seeds are committed; this tool only exists to regenerate them when
// the generator revision (datasets/scenario.cc kScenarioRevision) or the
// XML/container formats change. tests/test_fuzz_regression.cc ScenarioCorpus
// replays the seeds and re-derives scenario_small.xml and
// scenario_annotations.ssb from kSmallSeedSpec, so a generator change that
// forgets to regenerate fails visibly.
//
// Every document must stay within fuzz_util.h TightLimits(): < 1 MiB,
// depth <= 64, < 65536 nodes — hence the tight unit counts and
// max_unit_nodes caps below.

#include <cstdio>
#include <string>

#include "datasets/scenario.h"
#include "instance/materialize.h"
#include "stats/annotate.h"
#include "store/codec.h"
#include "store/container.h"
#include "xml/writer.h"

namespace {

/// Must stay identical to kSmallSeedSpec in tests/test_fuzz_regression.cc.
constexpr char kSmallSeedSpec[] =
    "name: seed_small\n"
    "seed: 5\n"
    "schema.elements: 40\n"
    "schema.entity_classes: 3\n"
    "instance.units: 20\n"
    "workload.queries: 5\n";

constexpr char kDeepSeedSpec[] =
    "name: seed_deep\n"
    "seed: 19\n"
    "schema.elements: 60\n"
    "schema.entity_classes: 2\n"
    "schema.max_depth: 20\n"
    "schema.simple_fraction: 0.35\n"
    "schema.fanout_skew: 0.5\n"
    "instance.units: 10\n"
    "instance.max_unit_nodes: 256\n"
    "workload.queries: 5\n";

constexpr char kChoiceSeedSpec[] =
    "name: seed_choice\n"
    "seed: 29\n"
    "schema.elements: 50\n"
    "schema.entity_classes: 3\n"
    "schema.choice_fraction: 0.35\n"
    "schema.simple_fraction: 0.40\n"
    "schema.value_link_fraction: 0.20\n"
    "instance.reference_prob: 0.9\n"
    "instance.units: 15\n"
    "instance.max_unit_nodes: 256\n"
    "workload.queries: 5\n";

int WriteScenarioXml(const char* spec_text, const std::string& path) {
  auto spec = ssum::ParseScenarioSpecText(spec_text, path);
  if (!spec.ok()) {
    std::fprintf(stderr, "%s: bad spec: %s\n", path.c_str(),
                 spec.status().ToString().c_str());
    return 1;
  }
  auto ds = ssum::ScenarioDataset::Make(*spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 ds.status().ToString().c_str());
    return 1;
  }
  auto doc = ssum::MaterializeToXml(*ds->MakeStream());
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  if (ssum::Status st = ssum::WriteXmlFile(*doc, path); !st.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(), st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_scenario_seeds <corpus-root>\n");
    return 2;
  }
  const std::string root = argv[1];

  int rc = 0;
  rc |= WriteScenarioXml(kSmallSeedSpec, root + "/xml/scenario_small.xml");
  rc |= WriteScenarioXml(kDeepSeedSpec, root + "/xml/scenario_deep.xml");
  rc |= WriteScenarioXml(kChoiceSeedSpec, root + "/xml/scenario_choice.xml");

  // Annotations of the small scenario as a store seed: a realistically
  // shaped container (40+ elements vs the harness schema's 8) for
  // fuzz_store to mutate.
  auto spec = ssum::ParseScenarioSpecText(kSmallSeedSpec, "seed_small");
  if (!spec.ok()) {
    std::fprintf(stderr, "seed_small: bad spec: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  auto ds = ssum::ScenarioDataset::Make(*spec);
  if (!ds.ok()) {
    std::fprintf(stderr, "seed_small: %s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto ann = ssum::AnnotateSchema(*ds->MakeStream());
  if (!ann.ok()) {
    std::fprintf(stderr, "seed_small annotate: %s\n",
                 ann.status().ToString().c_str());
    return 1;
  }
  const std::string path = root + "/store/scenario_annotations.ssb";
  if (!ssum::AtomicWriteFile(path, ssum::EncodeAnnotations(*ann)).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return rc;
}
