#pragma once

// Shared configuration for the ingestion-boundary fuzz harnesses.
//
// Every harness exports the libFuzzer entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
// and is linked either against -fsanitize=fuzzer (clang) or against the
// deterministic fallback driver in driver_main.cc (any compiler). The
// harness contract is the library's abort-free guarantee: for arbitrary
// bytes the parser must return (any Status is fine) without crashing,
// asserting, or tripping ASan/UBSan. Round-trip harnesses additionally
// assert that re-parsing serialized output of an accepted input succeeds.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/parse_limits.h"

namespace ssum::fuzz {

/// Tight limits so the fuzzer explores the limit-rejection paths cheaply
/// instead of timing out on pathological megabyte inputs. Deliberately far
/// below the library defaults.
inline ParseLimits TightLimits() {
  ParseLimits limits;
  limits.max_input_bytes = 1u << 20;  // 1 MiB
  limits.max_depth = 64;
  limits.max_token_bytes = 1u << 16;  // 64 KiB
  limits.max_items = 1u << 16;
  return limits;
}

inline std::string AsString(const uint8_t* data, size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

}  // namespace ssum::fuzz
