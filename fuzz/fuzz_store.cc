// Fuzz harness for the binary snapshot container (src/store/container.h) and
// the three artifact codecs layered on it (src/store/codec.h).
//
// Arbitrary bytes are fed to PeekContainer, ParseContainer, and every
// decoder against a fixed small schema. The contract is the store's
// abort-free guarantee: corrupt, truncated, hostile, or version-skewed
// containers must map to a Status — never a crash, assert, or sanitizer
// report, and never an allocation larger than the input justifies. Accepted
// inputs must re-encode and re-decode to the same artifact.

#include <cstddef>
#include <cstdint>
#include <cstring>

#include "common/logging.h"
#include "fuzz_util.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "store/codec.h"
#include "store/container.h"

namespace {

/// Small auction-flavored schema with a value link, built once.
const ssum::SchemaGraph& FuzzSchema() {
  static const ssum::SchemaGraph graph = [] {
    using ssum::AtomicKind;
    using ssum::ElementType;
    ssum::SchemaGraph g("site");
    ssum::ElementId people = *g.AddElement(g.root(), "people", ElementType::Rcd());
    ssum::ElementId person =
        *g.AddElement(people, "person", ElementType::Rcd(/*set_of=*/true));
    ssum::ElementId pid =
        *g.AddElement(person, "id", ElementType::Simple(AtomicKind::kId));
    *g.AddElement(person, "name", ElementType::Simple());
    ssum::ElementId auctions =
        *g.AddElement(g.root(), "auctions", ElementType::Rcd());
    ssum::ElementId auction =
        *g.AddElement(auctions, "auction", ElementType::Rcd(/*set_of=*/true));
    ssum::ElementId seller =
        *g.AddElement(auction, "seller", ElementType::Simple(AtomicKind::kIdRef));
    *g.AddValueLink(auction, person, seller, pid);
    return g;
  }();
  return graph;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string bytes = ssum::fuzz::AsString(data, size);
  const ssum::SchemaGraph& schema = FuzzSchema();

  // The container envelope itself. A peekable container need not parse
  // (foreign versions), but a fully parsed container must peek.
  auto info = ssum::PeekContainer(bytes);
  auto container = ssum::ParseContainer(bytes);
  if (container.ok()) {
    SSUM_CHECK(info.ok(), "ParseContainer accepted what PeekContainer rejects");
    SSUM_CHECK(info->section_count == container->sections.size(),
               "header section count disagrees with parsed sections");
  }

  // Every codec against the same bytes. Accepted artifacts round-trip.
  auto ann = ssum::DecodeAnnotations(schema, bytes);
  if (ann.ok()) {
    auto again = ssum::DecodeAnnotations(schema, ssum::EncodeAnnotations(*ann));
    SSUM_CHECK(again.ok() && *again == *ann,
               "annotations re-encode round trip failed");
  }

  auto matrix = ssum::DecodeSquareMatrix(bytes, /*expected_n=*/0);
  if (matrix.ok()) {
    auto again =
        ssum::DecodeSquareMatrix(ssum::EncodeSquareMatrix(*matrix),
                                 matrix->size());
    SSUM_CHECK(again.ok(), "matrix re-encode round trip rejected");
    SSUM_CHECK(again->data().size() == matrix->data().size() &&
                   std::memcmp(again->data().data(), matrix->data().data(),
                               matrix->data().size() * sizeof(double)) == 0,
               "matrix re-encode round trip changed bits");
  }

  auto summary = ssum::DecodeSummary(schema, bytes);
  if (summary.ok()) {
    auto again = ssum::DecodeSummary(schema, ssum::EncodeSummary(*summary));
    SSUM_CHECK(again.ok() &&
                   again->abstract_elements == summary->abstract_elements &&
                   again->representative == summary->representative,
               "summary re-encode round trip failed");
  }
  return 0;
}
