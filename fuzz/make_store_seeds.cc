// Writes the seed corpus for fuzz_store (fuzz/corpus/store/): one valid
// container per artifact kind for the harness schema, plus envelope edge
// cases (empty container, foreign format version, truncation). Run from the
// repo root:
//
//   build/fuzz/make_store_seeds fuzz/corpus/store
//
// The seeds are committed; this tool only exists to regenerate them when
// the container format or the harness schema changes.

#include <cstdio>
#include <string>

#include "core/summarize.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "store/codec.h"
#include "store/container.h"

namespace {

/// Must stay identical to FuzzSchema() in fuzz_store.cc so the annotation
/// and summary seeds take the decoders' accept path.
ssum::SchemaGraph BuildFuzzSchema() {
  using ssum::AtomicKind;
  using ssum::ElementType;
  ssum::SchemaGraph g("site");
  ssum::ElementId people = *g.AddElement(g.root(), "people", ElementType::Rcd());
  ssum::ElementId person =
      *g.AddElement(people, "person", ElementType::Rcd(/*set_of=*/true));
  ssum::ElementId pid =
      *g.AddElement(person, "id", ElementType::Simple(AtomicKind::kId));
  *g.AddElement(person, "name", ElementType::Simple());
  ssum::ElementId auctions =
      *g.AddElement(g.root(), "auctions", ElementType::Rcd());
  ssum::ElementId auction =
      *g.AddElement(auctions, "auction", ElementType::Rcd(/*set_of=*/true));
  ssum::ElementId seller =
      *g.AddElement(auction, "seller", ElementType::Simple(AtomicKind::kIdRef));
  *g.AddValueLink(auction, person, seller, pid);
  return g;
}

int Write(const std::string& path, const std::string& bytes) {
  if (!ssum::AtomicWriteFile(path, bytes).ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_store_seeds <output-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  ssum::SchemaGraph schema = BuildFuzzSchema();

  // Plausible statistics: a few hundred people, tens of auctions.
  ssum::Annotations ann(schema);
  for (ssum::ElementId e = 0; e < schema.size(); ++e) {
    ann.set_card(e, 7 * (e + 1));
  }
  for (ssum::LinkId l = 0; l < schema.structural_links().size(); ++l) {
    ann.set_structural_count(l, 11 * (l + 1));
  }
  for (ssum::LinkId l = 0; l < schema.value_links().size(); ++l) {
    ann.set_value_count(l, 13 * (l + 1));
  }

  int rc = 0;
  const std::string ann_bytes = ssum::EncodeAnnotations(ann);
  rc |= Write(dir + "/annotations_valid.ssb", ann_bytes);

  ssum::SquareMatrix m(schema.size(), 0.0);
  for (size_t r = 0; r < m.size(); ++r) {
    for (size_t c = 0; c < m.size(); ++c) {
      m.Set(r, c, r == c ? 1.0 : 1.0 / static_cast<double>(1 + r + c));
    }
  }
  rc |= Write(dir + "/matrix_valid.ssb", ssum::EncodeSquareMatrix(m));

  ssum::SummarizerContext context(schema, ann);
  auto summary = ssum::Summarize(context, 3);
  if (!summary.ok()) {
    std::fprintf(stderr, "summarize failed: %s\n",
                 summary.status().ToString().c_str());
    return 1;
  }
  rc |= Write(dir + "/summary_valid.ssb", ssum::EncodeSummary(*summary));

  rc |= Write(dir + "/empty_sections.ssb",
              ssum::ContainerWriter(ssum::PayloadKind::kAnnotations).Finish());

  ssum::ContainerWriter foreign(
      static_cast<uint32_t>(ssum::PayloadKind::kAnnotations),
      ssum::kContainerFormatVersion + 1);
  foreign.AddSection(1, "bytes from a future format generation");
  rc |= Write(dir + "/foreign_version.ssb", std::move(foreign).Finish());

  rc |= Write(dir + "/truncated.ssb",
              ann_bytes.substr(0, ann_bytes.size() / 2));

  // Crash artifacts: the torn prefixes a power cut mid-write leaves behind
  // (see FaultInjectingEnv's torn-write faults). The reader must classify
  // every one as a miss, never crash on it.
  rc |= Write(dir + "/crash_partial_header.ssb",
              ann_bytes.substr(0, ssum::kContainerHeaderSize / 2));
  rc |= Write(dir + "/crash_torn_mid_section.ssb",
              ann_bytes.substr(0, ssum::kContainerHeaderSize + 11));
  rc |= Write(dir + "/crash_torn_trailer.ssb",
              ann_bytes.substr(0, ann_bytes.size() -
                                      ssum::kContainerTrailerSize / 2));
  return rc;
}
