// Fuzz harness for the ssum text formats: schema files (src/schema/schema_io.h)
// and summary files (src/core/summary_io.h).
//
// The same bytes are fed to both parsers — they share the line-oriented
// format shape, so one corpus exercises both. Summaries are parsed against a
// fixed small schema; on acceptance the summary is serialized and re-parsed,
// and the round trip must reproduce an equivalent summary.

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "core/summary.h"
#include "core/summary_io.h"
#include "fuzz_util.h"
#include "schema/schema_graph.h"
#include "schema/schema_io.h"

namespace {

/// Small auction-flavored schema with a value link, built once.
const ssum::SchemaGraph& FuzzSchema() {
  static const ssum::SchemaGraph graph = [] {
    using ssum::AtomicKind;
    using ssum::ElementType;
    ssum::SchemaGraph g("site");
    ssum::ElementId people = *g.AddElement(g.root(), "people", ElementType::Rcd());
    ssum::ElementId person =
        *g.AddElement(people, "person", ElementType::Rcd(/*set_of=*/true));
    ssum::ElementId pid =
        *g.AddElement(person, "id", ElementType::Simple(AtomicKind::kId));
    *g.AddElement(person, "name", ElementType::Simple());
    ssum::ElementId auctions =
        *g.AddElement(g.root(), "auctions", ElementType::Rcd());
    ssum::ElementId auction =
        *g.AddElement(auctions, "auction", ElementType::Rcd(/*set_of=*/true));
    ssum::ElementId seller =
        *g.AddElement(auction, "seller", ElementType::Simple(AtomicKind::kIdRef));
    *g.AddValueLink(auction, person, seller, pid);
    return g;
  }();
  return graph;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const ssum::ParseLimits limits = ssum::fuzz::TightLimits();
  const std::string text = ssum::fuzz::AsString(data, size);

  // Schema text format: accepted graphs must serialize and re-parse.
  auto schema = ssum::ParseSchema(text, limits);
  if (schema.ok()) {
    const std::string dumped = ssum::SerializeSchema(*schema);
    auto reparsed = ssum::ParseSchema(dumped, limits);
    SSUM_CHECK(reparsed.ok(), "SerializeSchema output rejected: " +
                                  reparsed.status().ToString());
    SSUM_CHECK(reparsed->size() == schema->size() &&
                   reparsed->value_links() == schema->value_links(),
               "schema round trip changed the graph");
  }

  // Summary text format, parsed against the fixed schema.
  auto summary = ssum::ParseSummary(FuzzSchema(), text, limits);
  if (summary.ok()) {
    // ParseSummary revalidates Definition 2; double-check the invariants
    // hold for whatever the fuzzer got past it.
    SSUM_CHECK(ssum::ValidateSummary(*summary).ok(),
               "ParseSummary accepted a summary violating Definition 2");
    const std::string dumped = ssum::SerializeSummary(*summary);
    auto reparsed = ssum::ParseSummary(FuzzSchema(), dumped, limits);
    SSUM_CHECK(reparsed.ok(), "SerializeSummary output rejected: " +
                                  reparsed.status().ToString());
    SSUM_CHECK(reparsed->abstract_elements == summary->abstract_elements &&
                   reparsed->representative == summary->representative,
               "summary round trip changed the correspondence set");
  }
  return 0;
}
