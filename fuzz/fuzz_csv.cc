// Fuzz harness for the CSV loader (src/relational/csv.h).
//
// The input's first byte selects the dialect (quoted+header CSV vs TPC-H
// '|'-separated); the rest is the document. Oracle: LoadCsv must return a
// Status for arbitrary bytes (ragged rows, embedded NULs, unterminated
// quotes, over-limit fields). On acceptance, WriteCsv output must re-load
// into an equal-row-count table.

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "fuzz_util.h"
#include "relational/csv.h"

namespace {

const ssum::TableDef& FuzzTableDef() {
  static const ssum::TableDef def = [] {
    ssum::TableDef d;
    d.name = "fuzz";
    d.columns = {{"a", ssum::ColumnType::kInt, false},
                 {"b", ssum::ColumnType::kString, false},
                 {"c", ssum::ColumnType::kFloat, false}};
    return d;
  }();
  return def;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  ssum::CsvOptions options;
  if (size > 0 && (data[0] & 1) != 0) {
    options.delimiter = '|';
    options.header = false;
    options.allow_quotes = false;
  }
  const std::string text =
      size > 0 ? ssum::fuzz::AsString(data + 1, size - 1) : std::string();

  const ssum::ParseLimits limits = ssum::fuzz::TightLimits();
  ssum::Table table(&FuzzTableDef());
  if (!ssum::LoadCsv(text, &table, options, limits).ok()) return 0;

  SSUM_CHECK(table.num_rows() <= limits.max_items,
             "LoadCsv accepted more rows than max_items");

  const std::string dumped = ssum::WriteCsv(table, options);
  ssum::Table reloaded(&FuzzTableDef());
  ssum::Status st = ssum::LoadCsv(dumped, &reloaded, options, limits);
  SSUM_CHECK(st.ok(), "WriteCsv output rejected by LoadCsv: " + st.ToString());
  SSUM_CHECK(reloaded.num_rows() == table.num_rows(),
             "CSV round trip changed the row count");
  return 0;
}
