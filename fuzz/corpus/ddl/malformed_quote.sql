CREATE TABLE t ("unterminated INTEGER);
