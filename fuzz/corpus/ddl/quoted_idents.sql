CREATE TABLE "order items" (
  "item id" INTEGER PRIMARY KEY,
  `weird "name"` VARCHAR,
  "select" INTEGER
);
CREATE TABLE t2 (
  a INT,
  FOREIGN KEY (a) REFERENCES "order items"("item id")
);
