-- Miniature TPC-H fragment: two tables joined by a foreign key.
CREATE TABLE customer (
  c_custkey  INTEGER PRIMARY KEY,
  c_name     VARCHAR(25) NOT NULL,
  c_acctbal  DECIMAL(12,2)
);

CREATE TABLE orders (
  o_orderkey   INTEGER PRIMARY KEY,
  o_custkey    INTEGER,
  o_orderdate  DATE,
  o_comment    VARCHAR(79) DEFAULT 'none',
  FOREIGN KEY (o_custkey) REFERENCES customer(c_custkey)
);
