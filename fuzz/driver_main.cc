// Deterministic fallback driver for the fuzz harnesses.
//
// The container toolchain is gcc, which has no libFuzzer, so each harness
// links this main() instead of -fsanitize=fuzzer. It is not a coverage-guided
// fuzzer — it is a reproducible smoke fuzzer for CI:
//
//   1. replays every file in the corpus directories given as positional
//      arguments (the regression corpus under fuzz/corpus/), then
//   2. runs --iterations generated inputs from a seeded xorshift64* stream,
//      mixing three strategies: raw random bytes, mutations of random corpus
//      seeds (bit flips, truncations, splices, duplications), and
//      structure-aware assembly from a token dictionary covering the XML,
//      DDL, CSV and ssum text-format grammars.
//
// Same binary + same --seed => byte-identical input sequence, so a CI
// failure is reproducible locally with no corpus snapshot. With clang the
// harnesses build as real libFuzzer binaries and this file is not linked.
//
// Usage: fuzz_<target> [--iterations N] [--seed S] [--max-len N]
//                      [corpus-dir-or-file ...]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

/// xorshift64* — deterministic across platforms, no <random> involvement.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ull) {}

  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545f4914f6cdd1dull;
  }

  /// Uniform in [0, bound); bound must be nonzero.
  size_t Below(size_t bound) { return static_cast<size_t>(Next() % bound); }

 private:
  uint64_t state_;
};

/// Grammar fragments for the structure-aware strategy. One shared dictionary
/// serves all four harnesses; tokens outside a parser's grammar just become
/// malformed input, which is equally useful.
const char* const kDictionary[] = {
    // XML
    "<", ">", "</", "/>", "=", "\"", "'", "<?xml version=\"1.0\"?>", "?>",
    "<!--", "-->", "<![CDATA[", "]]>", "<!DOCTYPE", "[", "]",
    "&lt;", "&gt;", "&amp;", "&quot;", "&apos;", "&#65;", "&#x41;", "&",
    "<site>", "</site>", "<person id=\"p0\">", "</person>", "<a>", "</a>",
    // DDL
    "CREATE TABLE ", "PRIMARY KEY", "FOREIGN KEY ", " REFERENCES ",
    "INTEGER", "VARCHAR", "VARCHAR(79)", "DECIMAL(12,2)", "DATE",
    "NOT NULL", "UNIQUE", "DEFAULT 0", "(", ")", ",", ";", "--", "`", "\"x\"",
    // CSV
    "|", ",,", "\"\"", "\"a,b\"", "a,b,c", "1|x|2.5|",
    // ssum text formats
    "ssum-schema v1\n", "ssum-summary v1\n",
    "e\t0\t-\tRcd\tsite\n", "e\t1\t0\tSetOf Rcd\tperson\n",
    "v\t1\t2\t-\t-\n", "a\t2\n", "m\t3\t2\n", "\t", "-",
    // General
    "0", "1", "2", "7", "42", "4294967295", "-1", "65536", "\n", "\r\n",
    " ", "site", "person", "auction", "id", "name",
};

std::vector<std::string> LoadCorpus(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> corpus;
  auto load_file = [&corpus](const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return;
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    corpus.push_back(std::move(bytes));
  };
  for (const std::string& arg : paths) {
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(arg, ec)) {
        if (entry.is_regular_file(ec)) files.push_back(entry.path());
      }
      // Directory iteration order is filesystem-dependent; sort so the
      // corpus (and therefore every derived mutation) is deterministic.
      std::sort(files.begin(), files.end());
      for (const auto& p : files) load_file(p);
    } else {
      load_file(arg);
    }
  }
  return corpus;
}

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out(rng.Below(max_len + 1), '\0');
  for (char& c : out) c = static_cast<char>(rng.Next() & 0xff);
  return out;
}

std::string Mutate(Rng& rng, const std::vector<std::string>& corpus,
                   size_t max_len) {
  std::string out = corpus[rng.Below(corpus.size())];
  const size_t edits = 1 + rng.Below(8);
  for (size_t e = 0; e < edits; ++e) {
    switch (rng.Below(5)) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[rng.Below(out.size())] =
              static_cast<char>(rng.Next() & 0xff);
        }
        break;
      case 1:  // truncate
        if (!out.empty()) out.resize(rng.Below(out.size() + 1));
        break;
      case 2: {  // insert a dictionary token
        const char* tok =
            kDictionary[rng.Below(std::size(kDictionary))];
        out.insert(rng.Below(out.size() + 1), tok);
        break;
      }
      case 3: {  // splice with another corpus entry
        const std::string& other = corpus[rng.Below(corpus.size())];
        if (!other.empty()) {
          out.insert(rng.Below(out.size() + 1), other, 0,
                     rng.Below(other.size()) + 1);
        }
        break;
      }
      case 4:  // duplicate a slice of itself (nesting amplifier)
        if (!out.empty()) {
          size_t from = rng.Below(out.size());
          size_t len = rng.Below(out.size() - from) + 1;
          out.insert(rng.Below(out.size() + 1), out.substr(from, len));
        }
        break;
    }
    if (out.size() > max_len) out.resize(max_len);
  }
  return out;
}

std::string Assemble(Rng& rng, size_t max_len) {
  std::string out;
  const size_t tokens = 1 + rng.Below(64);
  for (size_t t = 0; t < tokens && out.size() < max_len; ++t) {
    if (rng.Below(8) == 0) {
      out.push_back(static_cast<char>(rng.Next() & 0xff));
    } else {
      out += kDictionary[rng.Below(std::size(kDictionary))];
    }
  }
  if (out.size() > max_len) out.resize(max_len);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t iterations = 1000;
  uint64_t seed = 1;
  size_t max_len = 4096;
  std::vector<std::string> corpus_paths;
  for (int i = 1; i < argc; ++i) {
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz driver: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--iterations") == 0) {
      iterations = std::strtoull(next_value("--iterations"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next_value("--seed"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--max-len") == 0) {
      max_len = std::strtoull(next_value("--max-len"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::printf(
          "usage: %s [--iterations N] [--seed S] [--max-len N] "
          "[corpus-dir-or-file ...]\n"
          "Replays the corpus, then runs N deterministic generated inputs\n"
          "(raw bytes, corpus mutations, dictionary assembly) through\n"
          "LLVMFuzzerTestOneInput. Same seed => same inputs.\n",
          argv[0]);
      return 0;
    } else {
      corpus_paths.push_back(argv[i]);
    }
  }

  const std::vector<std::string> corpus = LoadCorpus(corpus_paths);
  for (const std::string& input : corpus) {
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }

  Rng rng(seed);
  for (uint64_t i = 0; i < iterations; ++i) {
    std::string input;
    switch (rng.Below(corpus.empty() ? 2 : 4)) {
      case 0:
        input = RandomBytes(rng, max_len);
        break;
      case 1:
        input = Assemble(rng, max_len);
        break;
      default:
        input = Mutate(rng, corpus, max_len);
        break;
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(input.data()),
                           input.size());
  }
  std::printf("fuzz driver: %zu corpus inputs + %llu generated inputs, ok\n",
              corpus.size(), static_cast<unsigned long long>(iterations));
  return 0;
}
