// Fuzz harness for the SQL DDL parser (src/relational/ddl.h).
//
// Oracle: ParseDdl must return a Status for arbitrary bytes. On acceptance
// the catalog is serialized with WriteDdl and re-parsed; the round trip must
// succeed and preserve the table count — a divergence means the writer emits
// text the parser rejects, or the parser silently drops definitions.

#include <cstddef>
#include <cstdint>

#include "common/logging.h"
#include "fuzz_util.h"
#include "relational/ddl.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const ssum::ParseLimits limits = ssum::fuzz::TightLimits();
  auto catalog = ssum::ParseDdl(ssum::fuzz::AsString(data, size), limits);
  if (!catalog.ok()) return 0;

  const std::string dumped = ssum::WriteDdl(*catalog);
  auto reparsed = ssum::ParseDdl(dumped, limits);
  SSUM_CHECK(reparsed.ok(),
             "WriteDdl output rejected by ParseDdl: " +
                 reparsed.status().ToString());
  SSUM_CHECK(reparsed->tables().size() == catalog->tables().size(),
             "DDL round trip changed the table count");
  // Serialization must be a fixpoint: dumping the reparsed catalog has to
  // reproduce the first dump byte for byte.
  SSUM_CHECK(ssum::WriteDdl(*reparsed) == dumped,
             "WriteDdl is not a fixpoint over its own output");
  return 0;
}
