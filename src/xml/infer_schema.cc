#include "xml/infer_schema.h"

#include <map>
#include <set>

namespace ssum {

namespace {

/// Inference node mirroring the eventual schema tree.
struct InferNode {
  std::string label;
  bool set_of = false;
  bool has_text = false;
  bool has_structure = false;  // children or attributes observed
  std::vector<InferNode*> ordered_children;
  std::map<std::string, InferNode*> children;
};

class InferArena {
 public:
  InferNode* New(std::string label) {
    nodes_.push_back(std::make_unique<InferNode>());
    nodes_.back()->label = std::move(label);
    return nodes_.back().get();
  }

 private:
  std::vector<std::unique_ptr<InferNode>> nodes_;
};

InferNode* ChildOf(InferArena* arena, InferNode* parent,
                   const std::string& label) {
  auto it = parent->children.find(label);
  if (it != parent->children.end()) return it->second;
  InferNode* child = arena->New(label);
  parent->children.emplace(label, child);
  parent->ordered_children.push_back(child);
  return child;
}

void Observe(InferArena* arena, InferNode* node, const XmlElement& elem) {
  if (!elem.text.empty()) node->has_text = true;
  if (!elem.attributes.empty() || !elem.children.empty()) {
    node->has_structure = true;
  }
  for (const auto& [name, value] : elem.attributes) {
    InferNode* attr = ChildOf(arena, node, "@" + name);
    attr->has_text = true;
    (void)value;
  }
  std::map<std::string, int> sibling_count;
  for (const XmlElement& child : elem.children) {
    InferNode* cnode = ChildOf(arena, node, child.name);
    if (++sibling_count[child.name] > 1) cnode->set_of = true;
    Observe(arena, cnode, child);
  }
}

Status Emit(SchemaGraph* graph, ElementId parent, const InferNode& node) {
  for (const InferNode* child : node.ordered_children) {
    ElementType type;
    if (!child->has_structure) {
      type = ElementType::Simple(AtomicKind::kString, child->set_of);
    } else {
      type = ElementType::Rcd(child->set_of);
    }
    auto added = graph->AddElement(parent, child->label, type);
    SSUM_RETURN_NOT_OK(added.status());
    SSUM_RETURN_NOT_OK(Emit(graph, *added, *child));
  }
  return Status::OK();
}

}  // namespace

Result<SchemaGraph> InferSchema(const std::vector<const XmlDocument*>& docs) {
  if (docs.empty()) {
    return Status::InvalidArgument("InferSchema: no documents");
  }
  InferArena arena;
  InferNode* root = arena.New(docs[0]->root.name);
  for (const XmlDocument* doc : docs) {
    if (doc->root.name != root->label) {
      return Status::InvalidArgument(
          "InferSchema: documents disagree on the root element ('" +
          root->label + "' vs '" + doc->root.name + "')");
    }
    Observe(&arena, root, doc->root);
  }
  SchemaGraph graph(root->label);
  SSUM_RETURN_NOT_OK(Emit(&graph, graph.root(), *root));
  return graph;
}

Result<SchemaGraph> InferSchema(const XmlDocument& doc) {
  return InferSchema(std::vector<const XmlDocument*>{&doc});
}

}  // namespace ssum
