#include "xml/writer.h"

#include <fstream>
#include <sstream>

namespace ssum {

namespace {

void EscapeInto(std::ostringstream& os, const std::string& s, bool attribute) {
  for (char c : s) {
    switch (c) {
      case '<':
        os << "&lt;";
        break;
      case '>':
        os << "&gt;";
        break;
      case '&':
        os << "&amp;";
        break;
      case '"':
        if (attribute) {
          os << "&quot;";
        } else {
          os << c;
        }
        break;
      default:
        os << c;
    }
  }
}

void WriteElement(std::ostringstream& os, const XmlElement& e, int depth,
                  int indent) {
  std::string pad(static_cast<size_t>(depth * indent), ' ');
  os << pad << '<' << e.name;
  for (const auto& [n, v] : e.attributes) {
    os << ' ' << n << "=\"";
    EscapeInto(os, v, /*attribute=*/true);
    os << '"';
  }
  if (e.children.empty() && e.text.empty()) {
    os << "/>";
    if (indent) os << '\n';
    return;
  }
  os << '>';
  if (!e.text.empty()) EscapeInto(os, e.text, /*attribute=*/false);
  if (!e.children.empty()) {
    if (indent) os << '\n';
    for (const XmlElement& c : e.children) {
      WriteElement(os, c, depth + 1, indent);
    }
    os << pad;
  }
  os << "</" << e.name << '>';
  if (indent) os << '\n';
}

}  // namespace

std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options) {
  std::ostringstream os;
  if (options.declaration) {
    os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.indent) os << '\n';
  }
  WriteElement(os, doc.root, 0, options.indent);
  return os.str();
}

Status WriteXmlFile(const XmlDocument& doc, const std::string& path,
                    const XmlWriteOptions& options) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteXml(doc, options);
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace ssum
