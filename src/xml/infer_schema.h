#pragma once

#include <vector>

#include "common/result.h"
#include "schema/schema_graph.h"
#include "xml/parser.h"

namespace ssum {

/// Derives a schema graph from example documents (the paper's setting of
/// "generating summaries from existing databases" when no schema file is
/// available). Rules:
///  - schema elements are identified by their label *path* (hierarchical
///    model, one schema node per context);
///  - an element observed more than once under a single parent node in any
///    document becomes SetOf;
///  - attributes become Simple children labeled "@name";
///  - childless, attributeless elements with text become Simple; everything
///    else becomes Rcd (Choice cannot be inferred from instances alone).
///
/// All documents must share the same root element name.
Result<SchemaGraph> InferSchema(const std::vector<const XmlDocument*>& docs);

/// Single-document convenience.
Result<SchemaGraph> InferSchema(const XmlDocument& doc);

}  // namespace ssum
