#include "xml/instance_bridge.h"

#include "stats/annotate.h"

namespace ssum {

XmlInstanceStream::XmlInstanceStream(const SchemaGraph* schema,
                                     const XmlDocument* doc)
    : schema_(schema), doc_(doc), carriers_(schema->size()) {
  for (LinkId l = 0; l < schema_->value_links().size(); ++l) {
    const ValueLink& v = schema_->value_links()[l];
    if (v.referrer_field == kInvalidElement) continue;
    carriers_[v.referrer].emplace_back(l, schema_->label(v.referrer_field));
  }
}

Status XmlInstanceStream::Walk(InstanceVisitor* visitor,
                               const XmlElement& elem,
                               ElementId element) const {
  visitor->OnEnter(element);
  // References first: the annotator requires them while this node is open
  // and before any child node is entered — both orders are legal, this one
  // is simplest.
  for (const auto& [link, carrier_label] : carriers_[element]) {
    if (!carrier_label.empty() && carrier_label[0] == '@') {
      std::string_view attr_name =
          std::string_view(carrier_label).substr(1);
      for (const auto& [name, value] : elem.attributes) {
        if (name == attr_name && !value.empty()) visitor->OnReference(link);
      }
    } else {
      for (const XmlElement& child : elem.children) {
        if (child.name == carrier_label && !child.text.empty()) {
          visitor->OnReference(link);
        }
      }
    }
  }
  // Attributes become Simple data nodes.
  for (const auto& [name, value] : elem.attributes) {
    std::string label = "@" + name;
    ElementId attr_elem = kInvalidElement;
    for (ElementId c : schema_->children(element)) {
      if (schema_->label(c) == label) {
        attr_elem = c;
        break;
      }
    }
    if (attr_elem == kInvalidElement) {
      return Status::FailedPrecondition("attribute '" + label +
                                        "' not declared under '" +
                                        schema_->PathOf(element) + "'");
    }
    visitor->OnEnter(attr_elem);
    visitor->OnLeave(attr_elem);
    (void)value;
  }
  for (const XmlElement& child : elem.children) {
    ElementId child_elem = kInvalidElement;
    for (ElementId c : schema_->children(element)) {
      if (schema_->label(c) == child.name) {
        child_elem = c;
        break;
      }
    }
    if (child_elem == kInvalidElement) {
      return Status::FailedPrecondition("element '" + child.name +
                                        "' not declared under '" +
                                        schema_->PathOf(element) + "'");
    }
    SSUM_RETURN_NOT_OK(Walk(visitor, child, child_elem));
  }
  visitor->OnLeave(element);
  return Status::OK();
}

Status XmlInstanceStream::Accept(InstanceVisitor* visitor) const {
  if (doc_->root.name != schema_->label(schema_->root())) {
    return Status::FailedPrecondition(
        "document root '" + doc_->root.name + "' does not match schema root '" +
        schema_->label(schema_->root()) + "'");
  }
  return Walk(visitor, doc_->root, schema_->root());
}

Result<Annotations> AnnotateXmlDocument(const SchemaGraph& schema,
                                        const XmlDocument& doc) {
  XmlInstanceStream stream(&schema, &doc);
  return AnnotateSchema(stream);
}

}  // namespace ssum
