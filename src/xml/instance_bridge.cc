#include "xml/instance_bridge.h"

#include "stats/annotate.h"

namespace ssum {

XmlInstanceStream::XmlInstanceStream(const SchemaGraph* schema,
                                     const XmlDocument* doc)
    : schema_(schema), doc_(doc), carriers_(schema->size()) {
  for (LinkId l = 0; l < schema_->value_links().size(); ++l) {
    const ValueLink& v = schema_->value_links()[l];
    if (v.referrer_field == kInvalidElement) continue;
    carriers_[v.referrer].emplace_back(l, schema_->label(v.referrer_field));
  }
}

Status XmlInstanceStream::EmitNodeEvents(InstanceVisitor* visitor,
                                         const XmlElement& elem,
                                         ElementId element) const {
  // References first: the annotator requires them while this node is open
  // and before any child node is entered — both orders are legal, this one
  // is simplest.
  for (const auto& [link, carrier_label] : carriers_[element]) {
    if (!carrier_label.empty() && carrier_label[0] == '@') {
      std::string_view attr_name =
          std::string_view(carrier_label).substr(1);
      for (const auto& [name, value] : elem.attributes) {
        if (name == attr_name && !value.empty()) visitor->OnReference(link);
      }
    } else {
      for (const XmlElement& child : elem.children) {
        if (child.name == carrier_label && !child.text.empty()) {
          visitor->OnReference(link);
        }
      }
    }
  }
  // Attributes become Simple data nodes.
  for (const auto& [name, value] : elem.attributes) {
    std::string label = "@" + name;
    ElementId attr_elem = kInvalidElement;
    for (ElementId c : schema_->children(element)) {
      if (schema_->label(c) == label) {
        attr_elem = c;
        break;
      }
    }
    if (attr_elem == kInvalidElement) {
      return Status::FailedPrecondition("attribute '" + label +
                                        "' not declared under '" +
                                        schema_->PathOf(element) + "'");
    }
    visitor->OnEnter(attr_elem);
    visitor->OnLeave(attr_elem);
    (void)value;
  }
  return Status::OK();
}

Result<ElementId> XmlInstanceStream::ResolveChild(
    ElementId element, const XmlElement& child) const {
  for (ElementId c : schema_->children(element)) {
    if (schema_->label(c) == child.name) return c;
  }
  return Status::FailedPrecondition("element '" + child.name +
                                    "' not declared under '" +
                                    schema_->PathOf(element) + "'");
}

Status XmlInstanceStream::Walk(InstanceVisitor* visitor,
                               const XmlElement& elem,
                               ElementId element) const {
  visitor->OnEnter(element);
  SSUM_RETURN_NOT_OK(EmitNodeEvents(visitor, elem, element));
  for (const XmlElement& child : elem.children) {
    ElementId child_elem;
    SSUM_ASSIGN_OR_RETURN(child_elem, ResolveChild(element, child));
    SSUM_RETURN_NOT_OK(Walk(visitor, child, child_elem));
  }
  visitor->OnLeave(element);
  return Status::OK();
}

Status XmlInstanceStream::CheckRoot() const {
  if (doc_->root.name != schema_->label(schema_->root())) {
    return Status::FailedPrecondition(
        "document root '" + doc_->root.name + "' does not match schema root '" +
        schema_->label(schema_->root()) + "'");
  }
  return Status::OK();
}

Status XmlInstanceStream::Accept(InstanceVisitor* visitor) const {
  SSUM_RETURN_NOT_OK(CheckRoot());
  return Walk(visitor, doc_->root, schema_->root());
}

Status XmlInstanceStream::AcceptSkeleton(InstanceVisitor* visitor) const {
  SSUM_RETURN_NOT_OK(CheckRoot());
  visitor->OnEnter(schema_->root());
  SSUM_RETURN_NOT_OK(EmitNodeEvents(visitor, doc_->root, schema_->root()));
  visitor->OnLeave(schema_->root());
  return Status::OK();
}

Status XmlInstanceStream::AcceptUnits(uint64_t begin, uint64_t end,
                                      InstanceVisitor* visitor) const {
  SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
  SSUM_RETURN_NOT_OK(CheckRoot());
  for (uint64_t u = begin; u < end; ++u) {
    const XmlElement& child = doc_->root.children[u];
    ElementId child_elem;
    SSUM_ASSIGN_OR_RETURN(child_elem, ResolveChild(schema_->root(), child));
    SSUM_RETURN_NOT_OK(Walk(visitor, child, child_elem));
  }
  return Status::OK();
}

Result<Annotations> AnnotateXmlDocument(const SchemaGraph& schema,
                                        const XmlDocument& doc,
                                        const ShardedAnnotateOptions& options) {
  // Sharded over the root's top-level children — bit-identical to the
  // serial walk for any shard/thread count, parallel for large documents.
  XmlInstanceStream stream(&schema, &doc);
  return AnnotateSchemaSharded(stream, options);
}

}  // namespace ssum
