#include "xml/parser.h"

#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "xml/lexer.h"

namespace ssum {

const std::string* XmlElement::FindAttribute(std::string_view attr_name) const {
  for (const auto& [n, v] : attributes) {
    if (n == attr_name) return &v;
  }
  return nullptr;
}

const XmlElement* XmlElement::FindChild(std::string_view child_name) const {
  for (const XmlElement& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::FindChildren(
    std::string_view child_name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement& c : children) {
    if (c.name == child_name) out.push_back(&c);
  }
  return out;
}

namespace {

/// Recursive-descent body parser; the start tag's name has been consumed.
Status ParseElementBody(XmlLexer* lexer, XmlElement* element, int depth) {
  if (depth > 512) {
    return Status::ParseError("document nesting exceeds 512 levels");
  }
  // Attributes.
  std::string name, value;
  for (;;) {
    auto more = lexer->PullAttribute(&name, &value);
    SSUM_RETURN_NOT_OK(more.status());
    if (!*more) break;
    element->attributes.emplace_back(std::move(name), std::move(value));
  }
  XmlToken tok;
  SSUM_ASSIGN_OR_RETURN(tok, lexer->Next());
  if (tok.kind == XmlTokenKind::kTagSelfClose) return Status::OK();
  if (tok.kind != XmlTokenKind::kTagClose) {
    return Status::ParseError("expected '>' at line " +
                              std::to_string(tok.line));
  }
  // Content until the matching end tag.
  for (;;) {
    SSUM_ASSIGN_OR_RETURN(tok, lexer->Next());
    switch (tok.kind) {
      case XmlTokenKind::kText: {
        std::string_view trimmed = TrimWhitespace(tok.text);
        if (!trimmed.empty()) {
          if (!element->text.empty()) element->text += ' ';
          element->text += trimmed;
        }
        break;
      }
      case XmlTokenKind::kStartTagOpen: {
        XmlElement child;
        child.name = std::move(tok.text);
        SSUM_RETURN_NOT_OK(ParseElementBody(lexer, &child, depth + 1));
        element->children.push_back(std::move(child));
        break;
      }
      case XmlTokenKind::kEndTag:
        if (tok.text != element->name) {
          return Status::ParseError("mismatched end tag </" + tok.text +
                                    "> for <" + element->name + "> at line " +
                                    std::to_string(tok.line));
        }
        return Status::OK();
      case XmlTokenKind::kEndOfInput:
        return Status::ParseError("unexpected end of input inside <" +
                                  element->name + ">");
      default:
        return Status::ParseError("unexpected token at line " +
                                  std::to_string(tok.line));
    }
  }
}

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input) {
  XmlLexer lexer(input);
  XmlToken tok;
  SSUM_ASSIGN_OR_RETURN(tok, lexer.Next());
  // Leading whitespace text is tolerated.
  while (tok.kind == XmlTokenKind::kText &&
         TrimWhitespace(tok.text).empty()) {
    SSUM_ASSIGN_OR_RETURN(tok, lexer.Next());
  }
  if (tok.kind != XmlTokenKind::kStartTagOpen) {
    return Status::ParseError("document has no root element");
  }
  XmlDocument doc;
  doc.root.name = std::move(tok.text);
  SSUM_RETURN_NOT_OK(ParseElementBody(&lexer, &doc.root, 0));
  // Only whitespace may follow.
  for (;;) {
    SSUM_ASSIGN_OR_RETURN(tok, lexer.Next());
    if (tok.kind == XmlTokenKind::kEndOfInput) break;
    if (tok.kind == XmlTokenKind::kText && TrimWhitespace(tok.text).empty()) {
      continue;
    }
    return Status::ParseError("trailing content after root element");
  }
  return doc;
}

Result<XmlDocument> ReadXmlFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  return ParseXml(text);
}

}  // namespace ssum
