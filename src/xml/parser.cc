#include "xml/parser.h"

#include <fstream>
#include <sstream>

#include "common/status_builder.h"
#include "common/string_util.h"
#include "xml/lexer.h"

namespace ssum {

const std::string* XmlElement::FindAttribute(std::string_view attr_name) const {
  for (const auto& [n, v] : attributes) {
    if (n == attr_name) return &v;
  }
  return nullptr;
}

const XmlElement* XmlElement::FindChild(std::string_view child_name) const {
  for (const XmlElement& c : children) {
    if (c.name == child_name) return &c;
  }
  return nullptr;
}

std::vector<const XmlElement*> XmlElement::FindChildren(
    std::string_view child_name) const {
  std::vector<const XmlElement*> out;
  for (const XmlElement& c : children) {
    if (c.name == child_name) out.push_back(&c);
  }
  return out;
}

namespace {

/// Parses the element whose start-tag name was just consumed, plus its
/// entire subtree, using an explicit stack of open elements: stack safety
/// does not depend on document nesting, so hostile depth is rejected by the
/// limit check, never by stack exhaustion.
Result<XmlElement> ParseElementTree(XmlLexer* lexer, std::string root_name,
                                    const ParseLimits& limits) {
  std::vector<XmlElement> open;  // open.back() is the innermost element
  size_t items = 0;
  auto count_item = [&]() -> Status {
    if (++items > limits.max_items) {
      return ParseErrorAt(lexer->line(), lexer->offset())
             << "document exceeds the " << limits.max_items
             << "-item limit (elements + attributes)";
    }
    return Status::OK();
  };
  // Moves the finished innermost element into its parent; true when it was
  // the subtree root (parse complete).
  auto close_top = [&open]() {
    if (open.size() == 1) return true;
    XmlElement done = std::move(open.back());
    open.pop_back();
    open.back().children.push_back(std::move(done));
    return false;
  };

  open.emplace_back();
  open.back().name = std::move(root_name);
  SSUM_RETURN_NOT_OK(count_item());
  bool in_start_tag = true;  // open.back()'s attributes not yet read

  for (;;) {
    if (in_start_tag) {
      in_start_tag = false;
      std::string name, value;
      for (;;) {
        auto more = lexer->PullAttribute(&name, &value);
        SSUM_RETURN_NOT_OK(more.status());
        if (!*more) break;
        SSUM_RETURN_NOT_OK(count_item());
        open.back().attributes.emplace_back(std::move(name),
                                            std::move(value));
      }
      XmlToken tag_end;
      SSUM_ASSIGN_OR_RETURN(tag_end, lexer->Next());
      if (tag_end.kind == XmlTokenKind::kTagSelfClose) {
        if (close_top()) return std::move(open.back());
        continue;
      }
      if (tag_end.kind != XmlTokenKind::kTagClose) {
        return ParseErrorAt(tag_end.line, lexer->offset()) << "expected '>'";
      }
    }
    // One content token of the innermost open element.
    XmlToken tok;
    SSUM_ASSIGN_OR_RETURN(tok, lexer->Next());
    switch (tok.kind) {
      case XmlTokenKind::kText: {
        std::string_view trimmed = TrimWhitespace(tok.text);
        if (!trimmed.empty()) {
          XmlElement& cur = open.back();
          if (!cur.text.empty()) cur.text += ' ';
          cur.text += trimmed;
        }
        break;
      }
      case XmlTokenKind::kStartTagOpen:
        if (open.size() >= limits.max_depth) {
          return ParseErrorAt(tok.line, lexer->offset())
                 << "document nesting exceeds the " << limits.max_depth
                 << "-level depth limit";
        }
        SSUM_RETURN_NOT_OK(count_item());
        open.emplace_back();
        open.back().name = std::move(tok.text);
        in_start_tag = true;
        break;
      case XmlTokenKind::kEndTag:
        if (tok.text != open.back().name) {
          return ParseErrorAt(tok.line, lexer->offset())
                 << "mismatched end tag </" << tok.text << "> for <"
                 << open.back().name << ">";
        }
        if (close_top()) return std::move(open.back());
        break;
      case XmlTokenKind::kEndOfInput:
        return ParseErrorAt(tok.line, lexer->offset())
               << "unexpected end of input inside <" << open.back().name
               << ">";
      default:
        return ParseErrorAt(tok.line, lexer->offset()) << "unexpected token";
    }
  }
}

}  // namespace

Result<XmlDocument> ParseXml(std::string_view input,
                             const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(input.size(), limits, "XML document"));
  XmlLexer lexer(input, limits);
  XmlToken tok;
  SSUM_ASSIGN_OR_RETURN(tok, lexer.Next());
  // Leading whitespace text is tolerated.
  while (tok.kind == XmlTokenKind::kText &&
         TrimWhitespace(tok.text).empty()) {
    SSUM_ASSIGN_OR_RETURN(tok, lexer.Next());
  }
  if (tok.kind != XmlTokenKind::kStartTagOpen) {
    return Status::ParseError("document has no root element");
  }
  XmlDocument doc;
  SSUM_ASSIGN_OR_RETURN(
      doc.root, ParseElementTree(&lexer, std::move(tok.text), limits));
  // Only whitespace may follow.
  for (;;) {
    SSUM_ASSIGN_OR_RETURN(tok, lexer.Next());
    if (tok.kind == XmlTokenKind::kEndOfInput) break;
    if (tok.kind == XmlTokenKind::kText && TrimWhitespace(tok.text).empty()) {
      continue;
    }
    return ParseErrorAt(tok.line, lexer.offset())
           << "trailing content after root element";
  }
  return doc;
}

Result<XmlDocument> ReadXmlFile(const std::string& path,
                                const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  auto doc = ParseXml(text, limits);
  if (!doc.ok()) return doc.status().WithContext(path);
  return doc;
}

}  // namespace ssum
