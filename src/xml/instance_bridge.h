#pragma once

#include <vector>

#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "xml/parser.h"

namespace ssum {

/// Adapts a parsed XML document into an InstanceStream over a given schema,
/// so that annotateSchema runs directly on documents.
///
/// Element resolution is by label under the current schema context
/// (attributes resolve as "@name"). Value-link reference instances are
/// emitted from the link's declared referrer carrier field: one OnReference
/// per instance of the carrier (attribute occurrence or child element) on a
/// referrer node. Reference *targets* are not resolved — annotation needs
/// only instance counts (paper Figure 3).
/// Also a ShardedInstanceSource: one unit per top-level child of the
/// document root, so large documents annotate in parallel sub-ranges.
class XmlInstanceStream : public InstanceStream,
                          public ShardedInstanceSource {
 public:
  /// `schema` and `doc` must outlive the stream. Fails later, in Accept(),
  /// when the document does not match the schema.
  XmlInstanceStream(const SchemaGraph* schema, const XmlDocument* doc);

  const SchemaGraph& schema() const override { return *schema_; }
  Status Accept(InstanceVisitor* visitor) const override;

  // ShardedInstanceSource: units are the root element's child elements; the
  // skeleton is the root node itself with its references and attributes.
  uint64_t NumUnits() const override { return doc_->root.children.size(); }
  Status AcceptSkeleton(InstanceVisitor* visitor) const override;
  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* visitor) const override;

 private:
  Status Walk(InstanceVisitor* visitor, const XmlElement& elem,
              ElementId element) const;
  /// Emits the open-node events of `elem` (references, then attribute
  /// leaves) — everything Walk does before recursing into child elements.
  Status EmitNodeEvents(InstanceVisitor* visitor, const XmlElement& elem,
                        ElementId element) const;
  Result<ElementId> ResolveChild(ElementId element,
                                 const XmlElement& child) const;
  Status CheckRoot() const;

  const SchemaGraph* schema_;
  const XmlDocument* doc_;
  /// Per element: value links for which this element is the referrer,
  /// paired with the carrier label (from the link's referrer_field).
  std::vector<std::vector<std::pair<LinkId, std::string>>> carriers_;
};

/// Convenience: annotates `doc` against an explicit schema. `options`
/// carries the shard/thread split and the cooperative deadline (checked at
/// shard boundaries; an expired budget returns kDeadlineExceeded).
Result<Annotations> AnnotateXmlDocument(const SchemaGraph& schema,
                                        const XmlDocument& doc,
                                        const ShardedAnnotateOptions& options = {});

}  // namespace ssum
