#include "xml/lexer.h"

#include <cctype>

#include "common/status_builder.h"

namespace ssum {

namespace {

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.' || c == '@';
}

}  // namespace

XmlLexer::XmlLexer(std::string_view input, const ParseLimits& limits)
    : input_(input), limits_(limits) {}

char XmlLexer::Peek(size_t ahead) const {
  size_t i = pos_ + ahead;
  return i < input_.size() ? input_[i] : '\0';
}

bool XmlLexer::Consume(std::string_view expected) {
  if (input_.substr(pos_, expected.size()) != expected) return false;
  for (char c : expected) {
    if (c == '\n') ++line_;
  }
  pos_ += expected.size();
  return true;
}

Status XmlLexer::CheckTokenSize(size_t size, const char* what) const {
  if (size <= limits_.max_token_bytes) return Status::OK();
  return ParseErrorAt(line_, pos_)
         << what << " exceeds the " << limits_.max_token_bytes
         << "-byte token limit";
}

void XmlLexer::SkipWhitespace() {
  while (pos_ < input_.size()) {
    char c = input_[pos_];
    if (c == '\n') ++line_;
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      ++pos_;
    } else {
      break;
    }
  }
}

bool XmlLexer::SkipMisc(Status* error) {
  if (Consume("<!--")) {
    size_t end = input_.find("-->", pos_);
    if (end == std::string_view::npos) {
      *error = ParseErrorAt(line_, pos_) << "unterminated comment";
      pos_ = input_.size();
    } else {
      for (size_t i = pos_; i < end; ++i) {
        if (input_[i] == '\n') ++line_;
      }
      pos_ = end + 3;
    }
    return true;
  }
  if (Consume("<?")) {
    size_t end = input_.find("?>", pos_);
    if (end == std::string_view::npos) {
      *error = ParseErrorAt(line_, pos_)
               << "unterminated processing instruction";
      pos_ = input_.size();
    } else {
      pos_ = end + 2;
    }
    return true;
  }
  if (Consume("<!DOCTYPE") || Consume("<!doctype")) {
    // Skip to the matching '>' (internal subsets in brackets supported).
    size_t depth = 1, max_depth = 1;
    while (pos_ < input_.size() && depth > 0) {
      char c = input_[pos_++];
      if (c == '<') {
        if (++depth > max_depth) max_depth = depth;
        if (max_depth > limits_.max_depth) {
          *error = ParseErrorAt(line_, pos_)
                   << "DOCTYPE nesting exceeds the " << limits_.max_depth
                   << "-level depth limit";
          return true;
        }
      }
      if (c == '>') --depth;
      if (c == '\n') ++line_;
    }
    if (depth > 0) {
      *error = ParseErrorAt(line_, pos_) << "unterminated DOCTYPE";
    }
    return true;
  }
  return false;
}

Result<std::string> XmlLexer::LexName() {
  if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
    return ParseErrorAt(line_, pos_) << "expected name";
  }
  size_t start = pos_;
  while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
  SSUM_RETURN_NOT_OK(CheckTokenSize(pos_ - start, "name"));
  return std::string(input_.substr(start, pos_ - start));
}

Result<std::string> XmlLexer::DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out.push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return ParseErrorAt(line_, pos_) << "unterminated entity";
    }
    std::string_view ent = raw.substr(i + 1, semi - i - 1);
    if (ent.size() > 32) {
      return ParseErrorAt(line_, pos_) << "oversized entity reference";
    }
    if (ent == "lt") out.push_back('<');
    else if (ent == "gt") out.push_back('>');
    else if (ent == "amp") out.push_back('&');
    else if (ent == "apos") out.push_back('\'');
    else if (ent == "quot") out.push_back('"');
    else if (!ent.empty() && ent[0] == '#') {
      long code = 0;
      bool ok = ent.size() > 1;
      if (ent.size() > 2 && (ent[1] == 'x' || ent[1] == 'X')) {
        for (size_t j = 2; j < ent.size() && ok; ++j) {
          char c = ent[j];
          int d;
          if (c >= '0' && c <= '9') d = c - '0';
          else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
          else { ok = false; break; }
          code = code * 16 + d;
          if (code > 0x10ffff) { ok = false; break; }
        }
      } else {
        for (size_t j = 1; j < ent.size() && ok; ++j) {
          if (ent[j] < '0' || ent[j] > '9') { ok = false; break; }
          code = code * 10 + (ent[j] - '0');
          if (code > 0x10ffff) { ok = false; break; }
        }
      }
      if (!ok || code <= 0 || code > 0x10ffff) {
        return ParseErrorAt(line_, pos_) << "bad character reference";
      }
      // UTF-8 encode.
      if (code < 0x80) {
        out.push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (code >> 6)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else if (code < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (code >> 12)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (code >> 18)));
        out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      return ParseErrorAt(line_, pos_)
             << "unknown entity '&" << std::string(ent) << ";'";
    }
    i = semi;
  }
  return out;
}

Result<XmlToken> XmlLexer::Next() {
  if (in_tag_) {
    SkipWhitespace();
    if (Consume("/>")) {
      in_tag_ = false;
      return XmlToken{XmlTokenKind::kTagSelfClose, "", line_};
    }
    if (Consume(">")) {
      in_tag_ = false;
      return XmlToken{XmlTokenKind::kTagClose, "", line_};
    }
    return ParseErrorAt(line_, pos_) << "unexpected character in tag";
  }
  for (;;) {
    if (pos_ >= input_.size()) {
      return XmlToken{XmlTokenKind::kEndOfInput, "", line_};
    }
    if (Peek() == '<') {
      Status misc_error = Status::OK();
      if (SkipMisc(&misc_error)) {
        SSUM_RETURN_NOT_OK(misc_error);
        continue;
      }
      if (Consume("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_);
        if (end == std::string_view::npos) {
          return ParseErrorAt(line_, pos_) << "unterminated CDATA";
        }
        SSUM_RETURN_NOT_OK(CheckTokenSize(end - pos_, "CDATA section"));
        std::string text(input_.substr(pos_, end - pos_));
        for (char c : text) {
          if (c == '\n') ++line_;
        }
        pos_ = end + 3;
        return XmlToken{XmlTokenKind::kText, std::move(text), line_};
      }
      if (Consume("</")) {
        std::string name;
        SSUM_ASSIGN_OR_RETURN(name, LexName());
        SkipWhitespace();
        if (!Consume(">")) {
          return ParseErrorAt(line_, pos_) << "malformed end tag";
        }
        return XmlToken{XmlTokenKind::kEndTag, std::move(name), line_};
      }
      if (Peek(1) == '\0') {
        return ParseErrorAt(line_, pos_) << "truncated tag at end of input";
      }
      ++pos_;  // consume '<'
      std::string name;
      SSUM_ASSIGN_OR_RETURN(name, LexName());
      in_tag_ = true;
      return XmlToken{XmlTokenKind::kStartTagOpen, std::move(name), line_};
    }
    // Character data up to the next '<'.
    size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != '<') {
      if (input_[pos_] == '\n') ++line_;
      ++pos_;
    }
    SSUM_RETURN_NOT_OK(CheckTokenSize(pos_ - start, "text run"));
    std::string decoded;
    SSUM_ASSIGN_OR_RETURN(decoded,
                          DecodeEntities(input_.substr(start, pos_ - start)));
    return XmlToken{XmlTokenKind::kText, std::move(decoded), line_};
  }
}

Result<bool> XmlLexer::PullAttribute(std::string* name, std::string* value) {
  SkipWhitespace();
  if (Peek() == '>' || (Peek() == '/' && Peek(1) == '>') ||
      pos_ >= input_.size()) {
    return false;
  }
  SSUM_ASSIGN_OR_RETURN(*name, LexName());
  SkipWhitespace();
  if (!Consume("=")) {
    return ParseErrorAt(line_, pos_) << "expected '=' after attribute name";
  }
  SkipWhitespace();
  char quote = Peek();
  if (quote != '"' && quote != '\'') {
    return ParseErrorAt(line_, pos_) << "expected quoted attribute value";
  }
  ++pos_;
  size_t start = pos_;
  while (pos_ < input_.size() && input_[pos_] != quote) {
    if (input_[pos_] == '\n') ++line_;
    ++pos_;
  }
  if (pos_ >= input_.size()) {
    return ParseErrorAt(line_, pos_) << "unterminated attribute value";
  }
  SSUM_RETURN_NOT_OK(CheckTokenSize(pos_ - start, "attribute value"));
  std::string decoded;
  SSUM_ASSIGN_OR_RETURN(decoded,
                        DecodeEntities(input_.substr(start, pos_ - start)));
  *value = std::move(decoded);
  ++pos_;  // closing quote
  return true;
}

}  // namespace ssum
