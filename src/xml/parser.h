#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/parse_limits.h"
#include "common/result.h"

namespace ssum {

/// DOM element node. Mixed content is simplified: all character data inside
/// an element is concatenated into `text` (sufficient for data-centric XML,
/// which is what schema summarization targets).
struct XmlElement {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlElement> children;
  std::string text;

  /// First attribute with the given name, or nullptr.
  const std::string* FindAttribute(std::string_view attr_name) const;
  /// First child with the given name, or nullptr.
  const XmlElement* FindChild(std::string_view child_name) const;
  /// All children with the given name.
  std::vector<const XmlElement*> FindChildren(std::string_view child_name) const;
};

struct XmlDocument {
  XmlElement root;
};

/// Parses a complete document; exactly one top-level element is required.
///
/// Abort-free by contract: any malformed or over-limit input yields a
/// ParseError/OutOfRange status stamped with line and byte offset, never a
/// crash. The parser uses an explicit element stack (no recursion), so
/// `limits.max_depth` bounds heap rather than the machine stack, and
/// `limits.max_items` caps the total element + attribute count.
Result<XmlDocument> ParseXml(std::string_view input,
                             const ParseLimits& limits =
                                 ParseLimits::Defaults());

/// File convenience wrapper; errors carry `path` as the source context.
Result<XmlDocument> ReadXmlFile(const std::string& path,
                                const ParseLimits& limits =
                                    ParseLimits::Defaults());

}  // namespace ssum
