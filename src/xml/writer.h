#pragma once

#include <string>

#include "common/status.h"
#include "xml/parser.h"

namespace ssum {

struct XmlWriteOptions {
  /// Indentation per nesting level; 0 writes a compact single line.
  int indent = 2;
  /// Emit the "<?xml version=...?>" declaration.
  bool declaration = true;
};

/// Serializes a document (attribute and text values escaped).
std::string WriteXml(const XmlDocument& doc, const XmlWriteOptions& options = {});

Status WriteXmlFile(const XmlDocument& doc, const std::string& path,
                    const XmlWriteOptions& options = {});

}  // namespace ssum
