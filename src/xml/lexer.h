#pragma once

#include <string>
#include <string_view>

#include "common/parse_limits.h"
#include "common/result.h"

namespace ssum {

/// Token kinds produced by the XML lexer. The lexer works at markup
/// granularity: a tag-open token carries the tag name; attributes are lexed
/// by the parser using PullAttribute while inside a tag.
enum class XmlTokenKind : unsigned char {
  kStartTagOpen,   ///< "<name"           (text = name)
  kEndTag,         ///< "</name ... >"    (text = name)
  kTagClose,       ///< ">"
  kTagSelfClose,   ///< "/>"
  kText,           ///< character data, entity-decoded (text = content)
  kEndOfInput,
};

struct XmlToken {
  XmlTokenKind kind;
  std::string text;
  size_t line = 0;
};

/// Streaming lexer for a pragmatic XML subset: elements, attributes,
/// character data, CDATA sections, comments, processing instructions and
/// DOCTYPE (the latter three are skipped), and the five predefined entities
/// plus decimal/hex character references. No namespace processing (colons
/// are ordinary name characters).
///
/// Hardened against untrusted input: every token (name, attribute value,
/// text run) is capped at `limits.max_token_bytes` and all errors carry the
/// line number and byte offset of the offending input.
class XmlLexer {
 public:
  explicit XmlLexer(std::string_view input,
                    const ParseLimits& limits = ParseLimits::Defaults());

  /// Next markup-level token.
  Result<XmlToken> Next();

  /// Inside a start tag (after kStartTagOpen, before kTagClose /
  /// kTagSelfClose): lexes one attribute into *name / *value. Returns false
  /// when the tag has no further attributes.
  Result<bool> PullAttribute(std::string* name, std::string* value);

  size_t line() const { return line_; }
  /// Byte offset of the next unread character (error context).
  size_t offset() const { return pos_; }

 private:
  void SkipWhitespace();
  /// Comments, PIs, DOCTYPE; true when something was skipped. Sets *error
  /// (unterminated constructs, DOCTYPE nesting over limits.max_depth).
  bool SkipMisc(Status* error);
  Result<std::string> LexName();
  Result<std::string> DecodeEntities(std::string_view raw);
  Status CheckTokenSize(size_t size, const char* what) const;
  char Peek(size_t ahead = 0) const;
  bool Consume(std::string_view expected);

  std::string_view input_;
  ParseLimits limits_;
  size_t pos_ = 0;
  size_t line_ = 1;
  bool in_tag_ = false;
};

}  // namespace ssum
