#pragma once

#include <string>
#include <string_view>

#include "common/result.h"

namespace ssum {

/// Token kinds produced by the XML lexer. The lexer works at markup
/// granularity: a tag-open token carries the tag name; attributes are lexed
/// by the parser using PullAttribute while inside a tag.
enum class XmlTokenKind : unsigned char {
  kStartTagOpen,   ///< "<name"           (text = name)
  kEndTag,         ///< "</name ... >"    (text = name)
  kTagClose,       ///< ">"
  kTagSelfClose,   ///< "/>"
  kText,           ///< character data, entity-decoded (text = content)
  kEndOfInput,
};

struct XmlToken {
  XmlTokenKind kind;
  std::string text;
  size_t line = 0;
};

/// Streaming lexer for a pragmatic XML subset: elements, attributes,
/// character data, CDATA sections, comments, processing instructions and
/// DOCTYPE (the latter three are skipped), and the five predefined entities
/// plus decimal/hex character references. No namespace processing (colons
/// are ordinary name characters).
class XmlLexer {
 public:
  explicit XmlLexer(std::string_view input);

  /// Next markup-level token.
  Result<XmlToken> Next();

  /// Inside a start tag (after kStartTagOpen, before kTagClose /
  /// kTagSelfClose): lexes one attribute into *name / *value. Returns false
  /// when the tag has no further attributes.
  Result<bool> PullAttribute(std::string* name, std::string* value);

  size_t line() const { return line_; }

 private:
  void SkipWhitespace();
  bool SkipMisc();  ///< comments, PIs, DOCTYPE; returns true when skipped
  Result<std::string> LexName();
  Result<std::string> DecodeEntities(std::string_view raw);
  char Peek(size_t ahead = 0) const;
  bool Consume(std::string_view expected);

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  bool in_tag_ = false;
};

}  // namespace ssum
