#include "datasets/tpch.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/random.h"

namespace ssum {

namespace {

constexpr size_t kRegion = 0, kNation = 1, kSupplier = 2, kPart = 3,
                 kPartsupp = 4, kCustomer = 5, kOrders = 6, kLineitem = 7;

Catalog BuildCatalog() {
  Catalog cat;
  auto add = [&](TableDef def) {
    Status s = cat.AddTable(std::move(def));
    SSUM_CHECK(s.ok(), s.ToString());
  };
  using CT = ColumnType;
  add({"region",
       {{"r_regionkey", CT::kInt, true},
        {"r_name", CT::kString, false},
        {"r_comment", CT::kString, false}},
       {}});
  add({"nation",
       {{"n_nationkey", CT::kInt, true},
        {"n_name", CT::kString, false},
        {"n_regionkey", CT::kInt, false},
        {"n_comment", CT::kString, false}},
       {{"n_regionkey", "region", "r_regionkey"}}});
  add({"supplier",
       {{"s_suppkey", CT::kInt, true},
        {"s_name", CT::kString, false},
        {"s_address", CT::kString, false},
        {"s_nationkey", CT::kInt, false},
        {"s_phone", CT::kString, false},
        {"s_acctbal", CT::kFloat, false},
        {"s_comment", CT::kString, false}},
       {{"s_nationkey", "nation", "n_nationkey"}}});
  add({"part",
       {{"p_partkey", CT::kInt, true},
        {"p_name", CT::kString, false},
        {"p_mfgr", CT::kString, false},
        {"p_brand", CT::kString, false},
        {"p_type", CT::kString, false},
        {"p_size", CT::kInt, false},
        {"p_container", CT::kString, false},
        {"p_retailprice", CT::kFloat, false},
        {"p_comment", CT::kString, false}},
       {}});
  add({"partsupp",
       {{"ps_partkey", CT::kInt, false},
        {"ps_suppkey", CT::kInt, false},
        {"ps_availqty", CT::kInt, false},
        {"ps_supplycost", CT::kFloat, false},
        {"ps_comment", CT::kString, false}},
       {{"ps_partkey", "part", "p_partkey"},
        {"ps_suppkey", "supplier", "s_suppkey"}}});
  add({"customer",
       {{"c_custkey", CT::kInt, true},
        {"c_name", CT::kString, false},
        {"c_address", CT::kString, false},
        {"c_nationkey", CT::kInt, false},
        {"c_phone", CT::kString, false},
        {"c_acctbal", CT::kFloat, false},
        {"c_mktsegment", CT::kString, false},
        {"c_comment", CT::kString, false}},
       {{"c_nationkey", "nation", "n_nationkey"}}});
  add({"orders",
       {{"o_orderkey", CT::kInt, true},
        {"o_custkey", CT::kInt, false},
        {"o_orderstatus", CT::kString, false},
        {"o_totalprice", CT::kFloat, false},
        {"o_orderdate", CT::kDate, false},
        {"o_orderpriority", CT::kString, false},
        {"o_clerk", CT::kString, false},
        {"o_shippriority", CT::kInt, false},
        {"o_comment", CT::kString, false}},
       {{"o_custkey", "customer", "c_custkey"}}});
  add({"lineitem",
       {{"l_orderkey", CT::kInt, false},
        {"l_partkey", CT::kInt, false},
        {"l_suppkey", CT::kInt, false},
        {"l_linenumber", CT::kInt, false},
        {"l_quantity", CT::kFloat, false},
        {"l_extendedprice", CT::kFloat, false},
        {"l_discount", CT::kFloat, false},
        {"l_tax", CT::kFloat, false},
        {"l_returnflag", CT::kString, false},
        {"l_linestatus", CT::kString, false},
        {"l_shipdate", CT::kDate, false},
        {"l_commitdate", CT::kDate, false},
        {"l_receiptdate", CT::kDate, false},
        {"l_shipinstruct", CT::kString, false},
        {"l_shipmode", CT::kString, false},
        {"l_comment", CT::kString, false}},
       {{"l_orderkey", "orders", "o_orderkey"},
        {"l_partkey", "part", "p_partkey"},
        {"l_suppkey", "supplier", "s_suppkey"}}});
  return cat;
}

}  // namespace

TpchDataset::TpchDataset(TpchParams params)
    : params_(params), catalog_(BuildCatalog()) {
  auto m = BuildRelationalSchema(catalog_, "tpch");
  SSUM_CHECK(m.ok(), m.status().ToString());
  mapping_ = std::move(*m);
}

Result<TpchDataset> TpchDataset::Make(TpchParams params) {
  if (!std::isfinite(params.sf) || params.sf <= 0.0 || params.sf > 1000.0) {
    return Status::InvalidArgument("TPC-H scale factor must be in (0, 1000]");
  }
  if (!std::isfinite(params.lineitems_per_order) ||
      params.lineitems_per_order < 1.0 || params.lineitems_per_order > 7.0) {
    return Status::InvalidArgument(
        "TPC-H lineitems_per_order must be in [1, 7] (spec: uniform 1..7)");
  }
  return TpchDataset(params);
}

Result<uint64_t> TpchDataset::RowsOf(size_t t) const {
  if (t >= catalog_.tables().size()) {
    return Status::InvalidArgument("RowsOf: table index " + std::to_string(t) +
                                   " out of range (TPC-H has " +
                                   std::to_string(catalog_.tables().size()) +
                                   " tables)");
  }
  return RowsOfUnchecked(t);
}

uint64_t TpchDataset::RowsOfUnchecked(size_t t) const {
  const double sf = params_.sf;
  auto scale = [&](double base) {
    return static_cast<uint64_t>(base * sf + 0.5);
  };
  switch (t) {
    case kRegion:
      return 5;
    case kNation:
      return 25;
    case kSupplier:
      return scale(10000);
    case kPart:
      return scale(200000);
    case kPartsupp:
      return scale(800000);
    case kCustomer:
      return scale(150000);
    case kOrders:
      return scale(1500000);
    case kLineitem:
      // Derived: orders * lineitems_per_order (spec ~6M at sf 1 with
      // 1..7 per order; the paper's 12,550k data elements at sf 0.1
      // correspond to ~600k lineitems).
      return static_cast<uint64_t>(
          std::llround(static_cast<double>(RowsOfUnchecked(kOrders)) *
                       params_.lineitems_per_order));
    default:
      SSUM_CHECK(false, "RowsOfUnchecked: bad table index (internal)");
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Streaming generator
// ---------------------------------------------------------------------------

namespace {

// Row events carry structure and reference counts only, so every row of a
// table emits the identical event sequence; the per-order lineitem fanout
// lives in the materializing generator, not here. That makes the stream
// trivially splittable: unit u is the u-th row of the tables concatenated
// in catalog order, and no generator state crosses unit boundaries.
class TpchStream : public InstanceStream, public ShardedInstanceSource {
 public:
  explicit TpchStream(const TpchDataset* ds) : ds_(ds) {}

  const SchemaGraph& schema() const override { return ds_->schema(); }

  Status Accept(InstanceVisitor* v) const override {
    v->OnEnter(schema().root());
    for (size_t t = 0; t < ds_->catalog().tables().size(); ++t) {
      const uint64_t rows = *ds_->RowsOf(t);
      for (uint64_t r = 0; r < rows; ++r) EmitRow(v, t);
    }
    v->OnLeave(schema().root());
    return Status::OK();
  }

  // --- ShardedInstanceSource ----------------------------------------------

  uint64_t NumUnits() const override {
    uint64_t rows = 0;
    for (size_t t = 0; t < ds_->catalog().tables().size(); ++t) {
      rows += *ds_->RowsOf(t);
    }
    return rows;
  }

  Status AcceptSkeleton(InstanceVisitor* v) const override {
    v->OnEnter(schema().root());
    v->OnLeave(schema().root());
    return Status::OK();
  }

  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* v) const override {
    SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
    uint64_t base = 0;
    for (size_t t = 0; t < ds_->catalog().tables().size() && begin < end; ++t) {
      const uint64_t table_end = base + *ds_->RowsOf(t);
      for (; begin < end && begin < table_end; ++begin) EmitRow(v, t);
      base = table_end;
    }
    return Status::OK();
  }

 private:
  void EmitRow(InstanceVisitor* v, size_t t) const {
    const RelationalSchemaMapping& m = ds_->mapping();
    const TableDef& def = ds_->catalog().tables()[t];
    v->OnEnter(m.table_elements[t]);
    for (size_t f = 0; f < def.foreign_keys.size(); ++f) {
      v->OnReference(m.fk_links[t][f]);
    }
    for (size_t c = 0; c < def.columns.size(); ++c) {
      ElementId col = m.column_elements[t][c];
      v->OnEnter(col);
      v->OnLeave(col);
    }
    v->OnLeave(m.table_elements[t]);
  }

  const TpchDataset* ds_;
};

}  // namespace

std::unique_ptr<InstanceStream> TpchDataset::MakeStream() const {
  return std::make_unique<TpchStream>(this);
}

std::unique_ptr<ShardedInstanceSource> TpchDataset::MakeShardedSource() const {
  return std::make_unique<TpchStream>(this);
}

// ---------------------------------------------------------------------------
// Materializing generator (tiny scale factors)
// ---------------------------------------------------------------------------

Result<Database> TpchDataset::GenerateDatabase() const {
  if (RowsOfUnchecked(kLineitem) > 2000000) {
    return Status::InvalidArgument(
        "GenerateDatabase is intended for small scale factors; use "
        "MakeStream for annotation at benchmark scale");
  }
  Database db(&catalog_);
  Rng rng(params_.seed);
  auto pad = [](uint64_t v, int width) {
    std::string s = std::to_string(v);
    while (static_cast<int>(s.size()) < width) s.insert(s.begin(), '0');
    return s;
  };
  const char* kNations[] = {"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA",
                            "EGYPT"};
  const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                            "MIDDLE EAST"};
  const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                             "HOUSEHOLD", "MACHINERY"};
  const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                               "4-NOT SPECIFIED", "5-LOW"};
  const char* kModes[] = {"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP",
                          "TRUCK"};

  auto date = [&](int base_year) {
    return std::to_string(base_year + rng.NextBounded(7)) + "-" +
           pad(1 + rng.NextBounded(12), 2) + "-" +
           pad(1 + rng.NextBounded(28), 2);
  };
  auto money = [&](double lo, double hi) {
    double v = lo + rng.NextDouble() * (hi - lo);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return std::string(buf);
  };

  Table* region = *db.FindTable("region");
  for (uint64_t r = 0; r < RowsOfUnchecked(kRegion); ++r) {
    SSUM_RETURN_NOT_OK(region->AppendRow(
        {std::to_string(r), kRegions[r % 5], "benchmark region"}));
  }
  Table* nation = *db.FindTable("nation");
  for (uint64_t n = 0; n < RowsOfUnchecked(kNation); ++n) {
    SSUM_RETURN_NOT_OK(nation->AppendRow(
        {std::to_string(n), n < 5 ? kNations[n] : "NATION" + pad(n, 2),
         std::to_string(n % RowsOfUnchecked(kRegion)), "benchmark nation"}));
  }
  Table* supplier = *db.FindTable("supplier");
  for (uint64_t s = 0; s < RowsOfUnchecked(kSupplier); ++s) {
    SSUM_RETURN_NOT_OK(supplier->AppendRow(
        {std::to_string(s), "Supplier#" + pad(s, 9), "addr-" + pad(s, 6),
         std::to_string(rng.NextBounded(RowsOfUnchecked(kNation))),
         "27-" + pad(rng.NextBounded(10000000), 7), money(-999, 9999),
         "reliable supplier"}));
  }
  Table* part = *db.FindTable("part");
  for (uint64_t p = 0; p < RowsOfUnchecked(kPart); ++p) {
    SSUM_RETURN_NOT_OK(part->AppendRow(
        {std::to_string(p), "part name " + pad(p, 6),
         "Manufacturer#" + std::to_string(1 + rng.NextBounded(5)),
         "Brand#" + std::to_string(11 + rng.NextBounded(45)),
         "STANDARD POLISHED TIN", std::to_string(1 + rng.NextBounded(50)),
         "JUMBO PKG", money(900, 2000), "part comment"}));
  }
  Table* partsupp = *db.FindTable("partsupp");
  for (uint64_t p = 0; p < RowsOfUnchecked(kPart); ++p) {
    for (int k = 0; k < 4; ++k) {
      if (partsupp->num_rows() >= RowsOfUnchecked(kPartsupp)) break;
      SSUM_RETURN_NOT_OK(partsupp->AppendRow(
          {std::to_string(p),
           std::to_string(rng.NextBounded(RowsOfUnchecked(kSupplier))),
           std::to_string(1 + rng.NextBounded(9999)), money(1, 1000),
           "partsupp comment"}));
    }
  }
  Table* customer = *db.FindTable("customer");
  for (uint64_t c = 0; c < RowsOfUnchecked(kCustomer); ++c) {
    SSUM_RETURN_NOT_OK(customer->AppendRow(
        {std::to_string(c), "Customer#" + pad(c, 9), "addr-" + pad(c, 6),
         std::to_string(rng.NextBounded(RowsOfUnchecked(kNation))),
         "13-" + pad(rng.NextBounded(10000000), 7), money(-999, 9999),
         kSegments[rng.NextBounded(5)], "customer comment"}));
  }
  Table* orders = *db.FindTable("orders");
  Table* lineitem = *db.FindTable("lineitem");
  uint64_t lineitems_left = RowsOfUnchecked(kLineitem);
  for (uint64_t o = 0; o < RowsOfUnchecked(kOrders); ++o) {
    SSUM_RETURN_NOT_OK(orders->AppendRow(
        {std::to_string(o), std::to_string(rng.NextBounded(RowsOfUnchecked(kCustomer))),
         rng.NextBool(0.5) ? "O" : "F", money(800, 500000), date(1992),
         kPriorities[rng.NextBounded(5)], "Clerk#" + pad(rng.NextBounded(1000), 9),
         "0", "order comment"}));
    uint64_t per = o + 1 == RowsOfUnchecked(kOrders)
                       ? lineitems_left
                       : std::min<uint64_t>(lineitems_left,
                                            1 + rng.NextBounded(7));
    for (uint64_t l = 0; l < per; ++l) {
      SSUM_RETURN_NOT_OK(lineitem->AppendRow(
          {std::to_string(o), std::to_string(rng.NextBounded(RowsOfUnchecked(kPart))),
           std::to_string(rng.NextBounded(RowsOfUnchecked(kSupplier))),
           std::to_string(l + 1), std::to_string(1 + rng.NextBounded(50)),
           money(900, 100000), "0.0" + std::to_string(rng.NextBounded(9)),
           "0.0" + std::to_string(rng.NextBounded(8)),
           rng.NextBool(0.5) ? "N" : "R", rng.NextBool(0.5) ? "O" : "F",
           date(1992), date(1992), date(1992), "DELIVER IN PERSON",
           kModes[rng.NextBounded(7)], "lineitem comment"}));
    }
    lineitems_left -= per;
  }
  return db;
}

}  // namespace ssum
