#include "datasets/xmark.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "schema/schema_builder.h"

namespace ssum {

const std::array<const char*, 6>& XMarkDataset::RegionNames() {
  static const std::array<const char*, 6> kNames{
      "africa", "asia", "australia", "europe", "namerica", "samerica"};
  return kNames;
}

namespace {

/// Builds the (text | parlist) description content model with the parlist
/// recursion unfolded once (DESIGN.md: recursion is cut to keep the schema
/// finite, matching the paper's finite element count).
XMarkDataset::DescriptionIds BuildDescription(SchemaBuilder* b,
                                              ElementId parent) {
  XMarkDataset::DescriptionIds d;
  d.description = b->Choice(parent, "description");
  d.text = b->Rcd(d.description, "text");
  d.bold = b->SetSimple(d.text, "bold");
  d.keyword = b->SetSimple(d.text, "keyword");
  d.emph = b->SetSimple(d.text, "emph");
  d.parlist = b->Rcd(d.description, "parlist");
  d.listitem = b->SetRcd(d.parlist, "listitem");
  d.li_text = b->Rcd(d.listitem, "text");
  d.li_bold = b->SetSimple(d.li_text, "bold");
  d.li_keyword = b->SetSimple(d.li_text, "keyword");
  d.li_emph = b->SetSimple(d.li_text, "emph");
  return d;
}

}  // namespace

Result<XMarkDataset> XMarkDataset::Make(XMarkParams params) {
  if (!std::isfinite(params.sf) || params.sf <= 0.0 || params.sf > 1000.0) {
    return Status::InvalidArgument("XMark scale factor must be in (0, 1000]");
  }
  return XMarkDataset(params);
}

XMarkDataset::XMarkDataset(XMarkParams params) : params_(params) {
  SchemaBuilder b("site");

  // --- regions / items -----------------------------------------------------
  regions_ = b.Rcd(b.Root(), "regions");
  for (size_t r = 0; r < 6; ++r) {
    region_[r] = b.Rcd(regions_, RegionNames()[r]);
    ItemIds& it = item_[r];
    it.item = b.SetRcd(region_[r], "item");
    it.id = b.Attr(it.item, "id", AtomicKind::kId);
    it.featured = b.Attr(it.item, "featured");
    it.location = b.Simple(it.item, "location");
    it.quantity = b.Simple(it.item, "quantity", AtomicKind::kInt);
    it.name = b.Simple(it.item, "name");
    it.payment = b.Simple(it.item, "payment");
    XMarkDataset::DescriptionIds d = BuildDescription(&b, it.item);
    it.description = d.description;
    it.text = d.text;
    it.bold = d.bold;
    it.keyword = d.keyword;
    it.emph = d.emph;
    it.parlist = d.parlist;
    it.listitem = d.listitem;
    it.li_text = d.li_text;
    it.li_bold = d.li_bold;
    it.li_keyword = d.li_keyword;
    it.li_emph = d.li_emph;
    it.shipping = b.Simple(it.item, "shipping");
    it.incategory = b.SetRcd(it.item, "incategory");
    it.incategory_category =
        b.Attr(it.incategory, "category", AtomicKind::kIdRef);
    it.mailbox = b.Rcd(it.item, "mailbox");
    it.mail = b.SetRcd(it.mailbox, "mail");
    it.mail_from = b.Simple(it.mail, "from");
    it.mail_to = b.Simple(it.mail, "to");
    it.mail_date = b.Simple(it.mail, "date", AtomicKind::kDate);
    it.mail_text = b.Rcd(it.mail, "text");
    it.mail_bold = b.SetSimple(it.mail_text, "bold");
    it.mail_keyword = b.SetSimple(it.mail_text, "keyword");
    it.mail_emph = b.SetSimple(it.mail_text, "emph");
  }

  // --- categories / catgraph ----------------------------------------------
  categories_ = b.Rcd(b.Root(), "categories");
  category_ = b.SetRcd(categories_, "category");
  category_id_ = b.Attr(category_, "id", AtomicKind::kId);
  category_name_ = b.Simple(category_, "name");
  category_desc_ = BuildDescription(&b, category_);
  catgraph_ = b.Rcd(b.Root(), "catgraph");
  edge_ = b.SetRcd(catgraph_, "edge");
  edge_from_ = b.Attr(edge_, "from", AtomicKind::kIdRef);
  edge_to_ = b.Attr(edge_, "to", AtomicKind::kIdRef);

  // --- people ---------------------------------------------------------------
  people_ = b.Rcd(b.Root(), "people");
  person_ = b.SetRcd(people_, "person");
  person_id_ = b.Attr(person_, "id", AtomicKind::kId);
  person_name_ = b.Simple(person_, "name");
  emailaddress_ = b.Simple(person_, "emailaddress");
  phone_ = b.Simple(person_, "phone");
  address_ = b.Rcd(person_, "address");
  street_ = b.Simple(address_, "street");
  city_ = b.Simple(address_, "city");
  country_ = b.Simple(address_, "country");
  province_ = b.Simple(address_, "province");
  zipcode_ = b.Simple(address_, "zipcode");
  homepage_ = b.Simple(person_, "homepage");
  creditcard_ = b.Simple(person_, "creditcard");
  profile_ = b.Rcd(person_, "profile");
  income_ = b.Attr(profile_, "income", AtomicKind::kFloat);
  interest_ = b.SetRcd(profile_, "interest");
  interest_category_ = b.Attr(interest_, "category", AtomicKind::kIdRef);
  education_ = b.Simple(profile_, "education");
  gender_ = b.Simple(profile_, "gender");
  business_ = b.Simple(profile_, "business");
  age_ = b.Simple(profile_, "age", AtomicKind::kInt);
  watches_ = b.Rcd(person_, "watches");
  watch_ = b.SetRcd(watches_, "watch");
  watch_auction_ = b.Attr(watch_, "open_auction", AtomicKind::kIdRef);

  // --- open auctions ---------------------------------------------------------
  open_auctions_ = b.Rcd(b.Root(), "open_auctions");
  open_auction_ = b.SetRcd(open_auctions_, "open_auction");
  oa_id_ = b.Attr(open_auction_, "id", AtomicKind::kId);
  initial_ = b.Simple(open_auction_, "initial", AtomicKind::kFloat);
  reserve_ = b.Simple(open_auction_, "reserve", AtomicKind::kFloat);
  bidder_ = b.SetRcd(open_auction_, "bidder");
  bidder_person_attr_ = b.Attr(bidder_, "person", AtomicKind::kIdRef);
  bid_date_ = b.Simple(bidder_, "date", AtomicKind::kDate);
  bid_time_ = b.Simple(bidder_, "time");
  increase_ = b.Simple(bidder_, "increase", AtomicKind::kFloat);
  current_ = b.Simple(open_auction_, "current", AtomicKind::kFloat);
  privacy_ = b.Simple(open_auction_, "privacy");
  oa_itemref_ = b.Rcd(open_auction_, "itemref");
  oa_itemref_item_ = b.Attr(oa_itemref_, "item", AtomicKind::kIdRef);
  seller_ = b.Rcd(open_auction_, "seller");
  seller_person_ = b.Attr(seller_, "person", AtomicKind::kIdRef);
  oa_annotation_.annotation = b.Rcd(open_auction_, "annotation");
  oa_annotation_.author = b.Rcd(oa_annotation_.annotation, "author");
  oa_annotation_.author_person =
      b.Attr(oa_annotation_.author, "person", AtomicKind::kIdRef);
  oa_annotation_.desc = BuildDescription(&b, oa_annotation_.annotation);
  oa_annotation_.happiness =
      b.Simple(oa_annotation_.annotation, "happiness", AtomicKind::kInt);
  oa_quantity_ = b.Simple(open_auction_, "quantity", AtomicKind::kInt);
  oa_type_ = b.Simple(open_auction_, "type");
  interval_ = b.Rcd(open_auction_, "interval");
  start_ = b.Simple(interval_, "start", AtomicKind::kDate);
  end_ = b.Simple(interval_, "end", AtomicKind::kDate);

  // --- closed auctions --------------------------------------------------------
  closed_auctions_ = b.Rcd(b.Root(), "closed_auctions");
  closed_auction_ = b.SetRcd(closed_auctions_, "closed_auction");
  ca_seller_ = b.Rcd(closed_auction_, "seller");
  ca_seller_person_ = b.Attr(ca_seller_, "person", AtomicKind::kIdRef);
  ca_buyer_ = b.Rcd(closed_auction_, "buyer");
  ca_buyer_person_ = b.Attr(ca_buyer_, "person", AtomicKind::kIdRef);
  ca_itemref_ = b.Rcd(closed_auction_, "itemref");
  ca_itemref_item_ = b.Attr(ca_itemref_, "item", AtomicKind::kIdRef);
  price_ = b.Simple(closed_auction_, "price", AtomicKind::kFloat);
  ca_date_ = b.Simple(closed_auction_, "date", AtomicKind::kDate);
  ca_quantity_ = b.Simple(closed_auction_, "quantity", AtomicKind::kInt);
  ca_type_ = b.Simple(closed_auction_, "type");
  ca_annotation_.annotation = b.Rcd(closed_auction_, "annotation");
  ca_annotation_.author = b.Rcd(ca_annotation_.annotation, "author");
  ca_annotation_.author_person =
      b.Attr(ca_annotation_.author, "person", AtomicKind::kIdRef);
  ca_annotation_.desc = BuildDescription(&b, ca_annotation_.annotation);
  ca_annotation_.happiness =
      b.Simple(ca_annotation_.annotation, "happiness", AtomicKind::kInt);

  // --- value links (semantic parent-level endpoints, Section 2) -------------
  for (size_t r = 0; r < 6; ++r) {
    l_incategory_[r] = b.Link(item_[r].incategory, category_,
                              item_[r].incategory_category, category_id_);
  }
  l_edge_from_ = b.Link(edge_, category_, edge_from_, category_id_);
  l_edge_to_ = b.Link(edge_, category_, edge_to_, category_id_);
  l_interest_ = b.Link(interest_, category_, interest_category_, category_id_);
  l_watch_ = b.Link(watch_, open_auction_, watch_auction_, oa_id_);
  // The paper treats bidder/@person -> person/@id as bidder -> person.
  l_bidder_person_ = b.Link(bidder_, person_, bidder_person_attr_, person_id_);
  l_seller_person_ = b.Link(seller_, person_, seller_person_, person_id_);
  l_author_oa_ = b.Link(oa_annotation_.author, person_,
                        oa_annotation_.author_person, person_id_);
  l_ca_seller_ = b.Link(ca_seller_, person_, ca_seller_person_, person_id_);
  l_ca_buyer_ = b.Link(ca_buyer_, person_, ca_buyer_person_, person_id_);
  l_author_ca_ = b.Link(ca_annotation_.author, person_,
                        ca_annotation_.author_person, person_id_);
  for (size_t r = 0; r < 6; ++r) {
    l_oa_itemref_[r] =
        b.Link(oa_itemref_, item_[r].item, oa_itemref_item_, item_[r].id);
    l_ca_itemref_[r] =
        b.Link(ca_itemref_, item_[r].item, ca_itemref_item_, item_[r].id);
  }

  graph_ = std::move(b).Build();
}

// ---------------------------------------------------------------------------
// Streaming generator
// ---------------------------------------------------------------------------

class XMarkStream : public InstanceStream, public ShardedInstanceSource {
 public:
  /// Top-level entity sections in serial traversal order. Sections 0..5 are
  /// the six regions' items.
  enum Section {
    kCategories = 6,
    kCatgraph,
    kPeople,
    kOpenAuctions,
    kClosedAuctions,
    kNumSections
  };

  explicit XMarkStream(const XMarkDataset* ds) : ds_(ds) {}

  const SchemaGraph& schema() const override { return ds_->schema(); }

  Status Accept(InstanceVisitor* v) const override {
    return WalkContainers(v, /*with_units=*/true);
  }

  // --- ShardedInstanceSource ----------------------------------------------

  uint64_t NumUnits() const override {
    uint64_t total = 0;
    for (int s = 0; s < kNumSections; ++s) total += SectionCount(s);
    return total;
  }

  Status AcceptSkeleton(InstanceVisitor* v) const override {
    return WalkContainers(v, /*with_units=*/false);
  }

  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* v) const override {
    SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
    uint64_t base = 0;
    for (int s = 0; s < kNumSections && begin < end; ++s) {
      const uint64_t section_end = base + SectionCount(s);
      for (; begin < end && begin < section_end; ++begin) {
        EmitUnit(v, s, begin - base);
      }
      base = section_end;
    }
    return Status::OK();
  }

 private:
  static void Leaf(InstanceVisitor* v, ElementId e) {
    v->OnEnter(e);
    v->OnLeave(e);
  }

  uint64_t SectionCount(int s) const {
    const XMarkParams& p = ds_->params_;
    auto scaled = [&](uint32_t base) {
      return static_cast<uint64_t>(static_cast<double>(base) * p.sf + 0.5);
    };
    if (s < 6) return scaled(p.items_per_region[static_cast<size_t>(s)]);
    switch (s) {
      case kCategories:
        return scaled(p.categories);
      case kCatgraph:
        return scaled(p.catgraph_edges);
      case kPeople:
        return scaled(p.persons);
      case kOpenAuctions:
        return scaled(p.open_auctions);
      case kClosedAuctions:
        return scaled(p.closed_auctions);
    }
    return 0;
  }

  /// One generator per unit, forked from the base seed by (section, index):
  /// identical draws whether the unit is reached serially or from the
  /// middle of a shard.
  Rng UnitRng(int section, uint64_t index) const {
    return Rng(ds_->params_.seed)
        .Fork((static_cast<uint64_t>(section) << 48) | index);
  }

  void EmitUnit(InstanceVisitor* v, int section, uint64_t index) const {
    Rng rng = UnitRng(section, index);
    if (section < 6) {
      EmitItem(v, &rng, static_cast<size_t>(section));
      return;
    }
    switch (section) {
      case kCategories:
        EmitCategory(v, &rng);
        break;
      case kCatgraph:
        EmitEdge(v);
        break;
      case kPeople:
        EmitPerson(v, &rng);
        break;
      case kOpenAuctions:
        EmitOpenAuction(v, &rng);
        break;
      case kClosedAuctions:
        EmitClosedAuction(v, &rng);
        break;
    }
  }

  void EmitSectionUnits(InstanceVisitor* v, int section) const {
    const uint64_t n = SectionCount(section);
    for (uint64_t i = 0; i < n; ++i) EmitUnit(v, section, i);
  }

  Status WalkContainers(InstanceVisitor* v, bool with_units) const {
    auto section = [&](ElementId container, int s) {
      v->OnEnter(container);
      if (with_units) EmitSectionUnits(v, s);
      v->OnLeave(container);
    };
    v->OnEnter(schema().root());
    v->OnEnter(ds_->regions_);
    for (size_t r = 0; r < 6; ++r) section(ds_->region_[r], static_cast<int>(r));
    v->OnLeave(ds_->regions_);
    section(ds_->categories_, kCategories);
    section(ds_->catgraph_, kCatgraph);
    section(ds_->people_, kPeople);
    section(ds_->open_auctions_, kOpenAuctions);
    section(ds_->closed_auctions_, kClosedAuctions);
    v->OnLeave(schema().root());
    return Status::OK();
  }

  void EmitCategory(InstanceVisitor* v, Rng* rng) const {
    v->OnEnter(ds_->category_);
    Leaf(v, ds_->category_id_);
    Leaf(v, ds_->category_name_);
    EmitDescription(v, rng, ds_->category_desc_);
    v->OnLeave(ds_->category_);
  }

  void EmitEdge(InstanceVisitor* v) const {
    v->OnEnter(ds_->edge_);
    v->OnReference(ds_->l_edge_from_);
    v->OnReference(ds_->l_edge_to_);
    Leaf(v, ds_->edge_from_);
    Leaf(v, ds_->edge_to_);
    v->OnLeave(ds_->edge_);
  }

  /// Picks the region an item reference points to, weighted by item counts.
  size_t PickRegion(Rng* rng) const {
    const auto& per = ds_->params_.items_per_region;
    double total = 0;
    for (uint32_t c : per) total += c;
    double x = rng->NextDouble() * total;
    for (size_t r = 0; r < 6; ++r) {
      x -= per[r];
      if (x <= 0) return r;
    }
    return 5;
  }

  void EmitText(InstanceVisitor* v, Rng* rng, ElementId text, ElementId bold,
                ElementId keyword, ElementId emph) const {
    const XMarkParams& p = ds_->params_;
    v->OnEnter(text);
    for (uint64_t i = 0, n = rng->NextPoisson(p.markup_mean); i < n; ++i)
      Leaf(v, bold);
    for (uint64_t i = 0, n = rng->NextPoisson(p.markup_mean); i < n; ++i)
      Leaf(v, keyword);
    for (uint64_t i = 0, n = rng->NextPoisson(p.markup_mean); i < n; ++i)
      Leaf(v, emph);
    v->OnLeave(text);
  }

  void EmitDescription(InstanceVisitor* v, Rng* rng,
                       const XMarkDataset::DescriptionIds& d) const {
    const XMarkParams& p = ds_->params_;
    v->OnEnter(d.description);
    if (rng->NextBool(p.prob_parlist)) {
      v->OnEnter(d.parlist);
      uint64_t items = 1 + rng->NextPoisson(p.listitem_mean - 1.0);
      for (uint64_t i = 0; i < items; ++i) {
        v->OnEnter(d.listitem);
        EmitText(v, rng, d.li_text, d.li_bold, d.li_keyword, d.li_emph);
        v->OnLeave(d.listitem);
      }
      v->OnLeave(d.parlist);
    } else {
      EmitText(v, rng, d.text, d.bold, d.keyword, d.emph);
    }
    v->OnLeave(d.description);
  }

  void EmitAnnotation(InstanceVisitor* v, Rng* rng,
                      const XMarkDataset::AnnotationIds& a,
                      LinkId author_link) const {
    v->OnEnter(a.annotation);
    v->OnEnter(a.author);
    v->OnReference(author_link);
    Leaf(v, a.author_person);
    v->OnLeave(a.author);
    EmitDescription(v, rng, a.desc);
    Leaf(v, a.happiness);
    v->OnLeave(a.annotation);
  }

  void EmitItem(InstanceVisitor* v, Rng* rng, size_t r) const {
    const XMarkParams& p = ds_->params_;
    const XMarkDataset::ItemIds& it = ds_->item_[r];
    v->OnEnter(it.item);
    Leaf(v, it.id);
    if (rng->NextBool(0.1)) Leaf(v, it.featured);
    Leaf(v, it.location);
    Leaf(v, it.quantity);
    Leaf(v, it.name);
    Leaf(v, it.payment);
    XMarkDataset::DescriptionIds d{it.description, it.text,    it.bold,
                                   it.keyword,     it.emph,    it.parlist,
                                   it.listitem,    it.li_text, it.li_bold,
                                   it.li_keyword,  it.li_emph};
    EmitDescription(v, rng, d);
    Leaf(v, it.shipping);
    uint64_t cats = 1 + rng->NextPoisson(p.incategory_mean - 1.0);
    for (uint64_t c = 0; c < cats; ++c) {
      v->OnEnter(it.incategory);
      v->OnReference(ds_->l_incategory_[r]);
      Leaf(v, it.incategory_category);
      v->OnLeave(it.incategory);
    }
    v->OnEnter(it.mailbox);
    for (uint64_t m = 0, n = rng->NextPoisson(p.mail_mean); m < n; ++m) {
      v->OnEnter(it.mail);
      Leaf(v, it.mail_from);
      Leaf(v, it.mail_to);
      Leaf(v, it.mail_date);
      EmitText(v, rng, it.mail_text, it.mail_bold, it.mail_keyword,
               it.mail_emph);
      v->OnLeave(it.mail);
    }
    v->OnLeave(it.mailbox);
    v->OnLeave(it.item);
  }

  void EmitPerson(InstanceVisitor* v, Rng* rng) const {
    const XMarkParams& p = ds_->params_;
    v->OnEnter(ds_->person_);
    Leaf(v, ds_->person_id_);
    Leaf(v, ds_->person_name_);
    Leaf(v, ds_->emailaddress_);
    if (rng->NextBool(p.prob_phone)) Leaf(v, ds_->phone_);
    if (rng->NextBool(p.prob_address)) {
      v->OnEnter(ds_->address_);
      Leaf(v, ds_->street_);
      Leaf(v, ds_->city_);
      Leaf(v, ds_->country_);
      if (rng->NextBool(0.5)) Leaf(v, ds_->province_);
      Leaf(v, ds_->zipcode_);
      v->OnLeave(ds_->address_);
    }
    if (rng->NextBool(p.prob_homepage)) Leaf(v, ds_->homepage_);
    if (rng->NextBool(p.prob_creditcard)) Leaf(v, ds_->creditcard_);
    if (rng->NextBool(p.prob_profile)) {
      v->OnEnter(ds_->profile_);
      Leaf(v, ds_->income_);
      for (uint64_t i = 0, n = rng->NextPoisson(p.interest_mean); i < n; ++i) {
        v->OnEnter(ds_->interest_);
        v->OnReference(ds_->l_interest_);
        Leaf(v, ds_->interest_category_);
        v->OnLeave(ds_->interest_);
      }
      if (rng->NextBool(p.prob_education)) Leaf(v, ds_->education_);
      if (rng->NextBool(p.prob_gender)) Leaf(v, ds_->gender_);
      Leaf(v, ds_->business_);
      if (rng->NextBool(p.prob_age)) Leaf(v, ds_->age_);
      v->OnLeave(ds_->profile_);
    }
    v->OnEnter(ds_->watches_);
    for (uint64_t i = 0, n = rng->NextPoisson(p.watches_mean); i < n; ++i) {
      v->OnEnter(ds_->watch_);
      v->OnReference(ds_->l_watch_);
      Leaf(v, ds_->watch_auction_);
      v->OnLeave(ds_->watch_);
    }
    v->OnLeave(ds_->watches_);
    v->OnLeave(ds_->person_);
  }

  void EmitOpenAuction(InstanceVisitor* v, Rng* rng) const {
    const XMarkParams& p = ds_->params_;
    v->OnEnter(ds_->open_auction_);
    Leaf(v, ds_->oa_id_);
    Leaf(v, ds_->initial_);
    if (rng->NextBool(p.prob_reserve)) Leaf(v, ds_->reserve_);
    uint64_t bidders = rng->NextPoisson(p.bidders_mean);
    for (uint64_t i = 0; i < bidders; ++i) {
      v->OnEnter(ds_->bidder_);
      v->OnReference(ds_->l_bidder_person_);
      Leaf(v, ds_->bidder_person_attr_);
      Leaf(v, ds_->bid_date_);
      Leaf(v, ds_->bid_time_);
      Leaf(v, ds_->increase_);
      v->OnLeave(ds_->bidder_);
    }
    Leaf(v, ds_->current_);
    if (rng->NextBool(p.prob_privacy)) Leaf(v, ds_->privacy_);
    v->OnEnter(ds_->oa_itemref_);
    v->OnReference(ds_->l_oa_itemref_[PickRegion(rng)]);
    Leaf(v, ds_->oa_itemref_item_);
    v->OnLeave(ds_->oa_itemref_);
    v->OnEnter(ds_->seller_);
    v->OnReference(ds_->l_seller_person_);
    Leaf(v, ds_->seller_person_);
    v->OnLeave(ds_->seller_);
    if (rng->NextBool(p.prob_annotation)) {
      EmitAnnotation(v, rng, ds_->oa_annotation_, ds_->l_author_oa_);
    }
    Leaf(v, ds_->oa_quantity_);
    Leaf(v, ds_->oa_type_);
    v->OnEnter(ds_->interval_);
    Leaf(v, ds_->start_);
    Leaf(v, ds_->end_);
    v->OnLeave(ds_->interval_);
    v->OnLeave(ds_->open_auction_);
  }

  void EmitClosedAuction(InstanceVisitor* v, Rng* rng) const {
    const XMarkParams& p = ds_->params_;
    v->OnEnter(ds_->closed_auction_);
    v->OnEnter(ds_->ca_seller_);
    v->OnReference(ds_->l_ca_seller_);
    Leaf(v, ds_->ca_seller_person_);
    v->OnLeave(ds_->ca_seller_);
    v->OnEnter(ds_->ca_buyer_);
    v->OnReference(ds_->l_ca_buyer_);
    Leaf(v, ds_->ca_buyer_person_);
    v->OnLeave(ds_->ca_buyer_);
    v->OnEnter(ds_->ca_itemref_);
    v->OnReference(ds_->l_ca_itemref_[PickRegion(rng)]);
    Leaf(v, ds_->ca_itemref_item_);
    v->OnLeave(ds_->ca_itemref_);
    Leaf(v, ds_->price_);
    Leaf(v, ds_->ca_date_);
    Leaf(v, ds_->ca_quantity_);
    Leaf(v, ds_->ca_type_);
    if (rng->NextBool(p.prob_annotation)) {
      EmitAnnotation(v, rng, ds_->ca_annotation_, ds_->l_author_ca_);
    }
    v->OnLeave(ds_->closed_auction_);
  }

  const XMarkDataset* ds_;
};

std::unique_ptr<InstanceStream> XMarkDataset::MakeStream() const {
  return std::make_unique<XMarkStream>(this);
}

std::unique_ptr<ShardedInstanceSource> XMarkDataset::MakeShardedSource() const {
  return std::make_unique<XMarkStream>(this);
}

}  // namespace ssum
