#include <vector>

#include "common/logging.h"
#include "datasets/xmark.h"

namespace ssum {

// The 20 XMark benchmark queries (Schmidt et al., "The XML Benchmark
// Project") translated into query intentions: the schema elements each
// query's English formulation references (Section 5.4's methodology —
// intentions extracted from the query descriptions).
Result<Workload> XMarkDataset::Queries() const {
  struct Spec {
    const char* name;
    std::vector<const char*> paths;
  };
  const std::vector<Spec> specs = {
      // Q1: name of the person with id 'person0'.
      {"q01", {"people/person", "people/person/@id", "people/person/name"}},
      // Q2: initial increases of all bids.
      {"q02",
       {"open_auctions/open_auction", "open_auctions/open_auction/bidder",
        "open_auctions/open_auction/bidder/increase"}},
      // Q3: first and current increases of auctions.
      {"q03",
       {"open_auctions/open_auction/bidder/increase",
        "open_auctions/open_auction/current"}},
      // Q4: auctions where a given person bid before another; return reserve.
      {"q04",
       {"open_auctions/open_auction",
        "open_auctions/open_auction/bidder/@person",
        "open_auctions/open_auction/reserve"}},
      // Q5: closed auctions with price at least 40.
      {"q05",
       {"closed_auctions/closed_auction",
        "closed_auctions/closed_auction/price"}},
      // Q6: items per region.
      {"q06",
       {"regions", "regions/europe/item", "regions/namerica/item"}},
      // Q7: amount of prose (descriptions, annotations, mails).
      {"q07",
       {"regions/europe/item/description",
        "regions/europe/item/mailbox/mail",
        "open_auctions/open_auction/annotation/description"}},
      // Q8: ended auctions per person (join buyer with person).
      {"q08",
       {"people/person", "people/person/@id",
        "closed_auctions/closed_auction/buyer"}},
      // Q9: like Q8, also returning the item sold.
      {"q09",
       {"people/person", "closed_auctions/closed_auction/buyer",
        "closed_auctions/closed_auction/itemref", "regions/europe/item"}},
      // Q10: person profiles grouped by interest (wide projection).
      {"q10",
       {"people/person", "people/person/profile",
        "people/person/profile/interest", "people/person/profile/gender",
        "people/person/profile/age", "people/person/profile/education",
        "people/person/profile/@income", "people/person/name",
        "people/person/address/city", "people/person/address/country"}},
      // Q11: join person income with auction initial price.
      {"q11",
       {"people/person", "people/person/profile/@income",
        "open_auctions/open_auction/initial"}},
      // Q12: like Q11 with reserve.
      {"q12",
       {"people/person", "people/person/profile/@income",
        "open_auctions/open_auction/reserve"}},
      // Q13: names and descriptions of australian items.
      {"q13",
       {"regions/australia/item", "regions/australia/item/name",
        "regions/australia/item/description"}},
      // Q14: items whose description mentions a keyword.
      {"q14",
       {"regions/namerica/item", "regions/namerica/item/name",
        "regions/namerica/item/description/text"}},
      // Q15: deeply nested keyword inside auction annotations.
      {"q15",
       {"open_auctions/open_auction/annotation",
        "open_auctions/open_auction/annotation/description/parlist/listitem",
        "open_auctions/open_auction/annotation/description/parlist/listitem/"
        "text/keyword"}},
      // Q16: like Q15 but returning the seller.
      {"q16",
       {"open_auctions/open_auction/seller",
        "open_auctions/open_auction/annotation",
        "open_auctions/open_auction/annotation/description"}},
      // Q17: persons without a homepage.
      {"q17",
       {"people/person", "people/person/name", "people/person/homepage"}},
      // Q18: user-defined function over reserves.
      {"q18",
       {"open_auctions/open_auction", "open_auctions/open_auction/reserve"}},
      // Q19: items sorted by location.
      {"q19",
       {"regions/asia/item", "regions/asia/item/location",
        "regions/asia/item/name"}},
      // Q20: persons counted by income bracket.
      {"q20",
       {"people/person/profile", "people/person/profile/@income"}},
  };
  Workload w;
  w.name = "xmark";
  for (const Spec& s : specs) {
    std::vector<std::string> paths(s.paths.begin(), s.paths.end());
    auto q = MakeIntention(graph_, s.name, paths);
    if (!q.ok()) return q.status().WithContext(std::string("query ") + s.name);
    w.queries.push_back(std::move(*q));
  }
  return w;
}

}  // namespace ssum
