#include "datasets/registry.h"

#include <functional>
#include <memory>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "datasets/tpch.h"
#include "datasets/xmark.h"
#include "store/artifact_cache.h"
#include "store/fingerprint.h"

namespace ssum {

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kXMark:
      return "XMark";
    case DatasetKind::kTpch:
      return "TPC-H";
    case DatasetKind::kMimi:
      return "MiMI";
  }
  return "?";
}

namespace {

/// Bump when any generator's output changes for identical parameters —
/// the revision is part of every dataset cache key, so stale annotation
/// snapshots from an older generator simply stop being addressed.
/// Revision 2: XMark and MiMI entities draw from per-unit forked Rngs
/// (splittable sources). Shard/thread counts do NOT enter the key — the
/// sharded pass is bit-identical to the serial one for any shard count.
constexpr uint64_t kGeneratorRevision = 2;

/// Cache key for a synthetic dataset's annotations: generator identity
/// (name, revision, scale and dataset-specific parameters) mixed with the
/// schema fingerprint. Deliberately NOT a stream digest — digesting costs a
/// full traversal, the same order of work as annotating (fingerprint.h).
Fingerprint DatasetAnnotationsKey(const SchemaGraph& schema,
                                  const char* generator, double scale,
                                  uint64_t extra = 0) {
  Fnv1a64 h;
  h.Update("ssum-dataset-fp:");
  h.UpdateU64(kGeneratorRevision);
  h.Update(generator);
  h.UpdateDouble(scale);
  h.UpdateU64(extra);
  return MixFingerprints(Fingerprint{h.Digest()}, FingerprintSchema(schema));
}

/// Loads the annotations from the cache or runs the sharded annotation
/// pass over a freshly-made splittable source. The source is only
/// materialized on a miss, so a warm start skips instance generation
/// entirely.
Result<Annotations> AnnotateOrLoad(
    ArtifactCache* cache, const SchemaGraph& schema, const Fingerprint& key,
    const std::function<std::unique_ptr<ShardedInstanceSource>()>&
        make_source) {
  if (cache != nullptr) {
    if (auto hit = cache->LoadAnnotations(schema, key)) return std::move(*hit);
  }
  auto source = make_source();
  Annotations ann;
  SSUM_ASSIGN_OR_RETURN(ann, AnnotateSchemaSharded(*source));
  if (cache != nullptr) {
    Status installed = cache->StoreAnnotations(key, ann);
    if (!installed.ok()) {
      SSUM_LOG(kWarning) << "cache: annotations install failed: "
                         << installed.ToString();
    }
  }
  return ann;
}

}  // namespace

Result<DatasetBundle> LoadMimi(MimiVersion version, double scale,
                               ArtifactCache* cache) {
  MimiParams params;
  params.version = version;
  params.scale = scale;
  MimiDataset ds;
  SSUM_ASSIGN_OR_RETURN(ds, MimiDataset::Make(params));
  Fingerprint key =
      DatasetAnnotationsKey(ds.schema(), "MiMI", scale,
                            static_cast<uint64_t>(version));
  Annotations ann;
  SSUM_ASSIGN_OR_RETURN(
      ann, AnnotateOrLoad(cache, ds.schema(), key,
                          [&ds] { return ds.MakeShardedSource(); }));
  // Every data node increments exactly one element cardinality, so the
  // annotation totals already count the instance — no second traversal.
  uint64_t nodes = ann.TotalNodes();
  Workload workload;
  SSUM_ASSIGN_OR_RETURN(workload, ds.Queries());
  DatasetBundle bundle{std::string("MiMI (") + MimiVersionName(version) + ")",
                       SchemaGraph("tmp"),
                       std::move(ann),
                       std::move(workload),
                       /*paper_summary_size=*/10,
                       nodes};
  bundle.schema = ds.schema();  // SchemaGraph is a cheap value type (~300 elements)
  return bundle;
}

Result<DatasetBundle> LoadDataset(DatasetKind kind, double scale,
                                  ArtifactCache* cache) {
  switch (kind) {
    case DatasetKind::kXMark: {
      XMarkParams params;
      params.sf = scale;
      XMarkDataset ds;
      SSUM_ASSIGN_OR_RETURN(ds, XMarkDataset::Make(params));
      Fingerprint key = DatasetAnnotationsKey(ds.schema(), "XMark", params.sf);
      Annotations ann;
      SSUM_ASSIGN_OR_RETURN(
          ann, AnnotateOrLoad(cache, ds.schema(), key,
                              [&ds] { return ds.MakeShardedSource(); }));
      uint64_t nodes = ann.TotalNodes();
      Workload workload;
      SSUM_ASSIGN_OR_RETURN(workload, ds.Queries());
      DatasetBundle bundle{"XMark",
                           SchemaGraph("tmp"),
                           std::move(ann),
                           std::move(workload),
                           /*paper_summary_size=*/10,
                           nodes};
      bundle.schema = ds.schema();  // SchemaGraph is a cheap value type (~300 elements)
      return bundle;
    }
    case DatasetKind::kTpch: {
      TpchParams params;
      params.sf = 0.1 * scale;
      TpchDataset ds;
      SSUM_ASSIGN_OR_RETURN(ds, TpchDataset::Make(params));
      Fingerprint key = DatasetAnnotationsKey(ds.schema(), "TPC-H", params.sf);
      Annotations ann;
      SSUM_ASSIGN_OR_RETURN(
          ann, AnnotateOrLoad(cache, ds.schema(), key,
                              [&ds] { return ds.MakeShardedSource(); }));
      uint64_t nodes = ann.TotalNodes();
      Workload workload;
      SSUM_ASSIGN_OR_RETURN(workload, ds.Queries());
      DatasetBundle bundle{"TPC-H",
                           SchemaGraph("tmp"),
                           std::move(ann),
                           std::move(workload),
                           /*paper_summary_size=*/5,
                           nodes};
      bundle.schema = ds.schema();  // SchemaGraph is a cheap value type (~300 elements)
      return bundle;
    }
    case DatasetKind::kMimi:
      return LoadMimi(MimiVersion::kJan2006, scale, cache);
  }
  return Status::InvalidArgument("unknown dataset kind");
}

}  // namespace ssum
