#include "datasets/registry.h"

#include "datasets/tpch.h"
#include "datasets/xmark.h"

namespace ssum {

const char* DatasetName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kXMark:
      return "XMark";
    case DatasetKind::kTpch:
      return "TPC-H";
    case DatasetKind::kMimi:
      return "MiMI";
  }
  return "?";
}

namespace {

Result<uint64_t> CountNodes(const InstanceStream& stream) {
  CountingVisitor counter;
  SSUM_RETURN_NOT_OK(stream.Accept(&counter));
  return counter.nodes();
}

}  // namespace

Result<DatasetBundle> LoadMimi(MimiVersion version, double scale) {
  MimiParams params;
  params.version = version;
  params.scale = scale;
  MimiDataset ds;
  SSUM_ASSIGN_OR_RETURN(ds, MimiDataset::Make(params));
  auto stream = ds.MakeStream();
  Annotations ann;
  SSUM_ASSIGN_OR_RETURN(ann, AnnotateSchema(*stream));
  uint64_t nodes;
  SSUM_ASSIGN_OR_RETURN(nodes, CountNodes(*stream));
  Workload workload;
  SSUM_ASSIGN_OR_RETURN(workload, ds.Queries());
  DatasetBundle bundle{std::string("MiMI (") + MimiVersionName(version) + ")",
                       SchemaGraph("tmp"),
                       std::move(ann),
                       std::move(workload),
                       /*paper_summary_size=*/10,
                       nodes};
  bundle.schema = ds.schema();  // SchemaGraph is a cheap value type (~300 elements)
  return bundle;
}

Result<DatasetBundle> LoadDataset(DatasetKind kind, double scale) {
  switch (kind) {
    case DatasetKind::kXMark: {
      XMarkParams params;
      params.sf = scale;
      XMarkDataset ds;
      SSUM_ASSIGN_OR_RETURN(ds, XMarkDataset::Make(params));
      auto stream = ds.MakeStream();
      Annotations ann;
      SSUM_ASSIGN_OR_RETURN(ann, AnnotateSchema(*stream));
      uint64_t nodes;
      SSUM_ASSIGN_OR_RETURN(nodes, CountNodes(*stream));
      Workload workload;
      SSUM_ASSIGN_OR_RETURN(workload, ds.Queries());
      DatasetBundle bundle{"XMark",
                           SchemaGraph("tmp"),
                           std::move(ann),
                           std::move(workload),
                           /*paper_summary_size=*/10,
                           nodes};
      bundle.schema = ds.schema();  // SchemaGraph is a cheap value type (~300 elements)
      return bundle;
    }
    case DatasetKind::kTpch: {
      TpchParams params;
      params.sf = 0.1 * scale;
      TpchDataset ds;
      SSUM_ASSIGN_OR_RETURN(ds, TpchDataset::Make(params));
      auto stream = ds.MakeStream();
      Annotations ann;
      SSUM_ASSIGN_OR_RETURN(ann, AnnotateSchema(*stream));
      uint64_t nodes;
      SSUM_ASSIGN_OR_RETURN(nodes, CountNodes(*stream));
      Workload workload;
      SSUM_ASSIGN_OR_RETURN(workload, ds.Queries());
      DatasetBundle bundle{"TPC-H",
                           SchemaGraph("tmp"),
                           std::move(ann),
                           std::move(workload),
                           /*paper_summary_size=*/5,
                           nodes};
      bundle.schema = ds.schema();  // SchemaGraph is a cheap value type (~300 elements)
      return bundle;
    }
    case DatasetKind::kMimi:
      return LoadMimi(MimiVersion::kJan2006, scale);
  }
  return Status::InvalidArgument("unknown dataset kind");
}

}  // namespace ssum
