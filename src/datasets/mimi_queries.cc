#include <vector>

#include "common/logging.h"
#include "datasets/mimi.h"

namespace ssum {

// The 52 MiMI query-group intentions. The real six-month query trace is
// unavailable; this workload mirrors its published profile — 52 clustered
// query groups, average intention size ~3.35, heavily concentrated on the
// protein (molecule) and interaction entities with a tail touching
// experiments, publications, pathways, organisms and sources (the paper's
// observation that "real queries tend to focus on the important elements").
Result<Workload> MimiDataset::Queries() const {
  struct Spec {
    const char* name;
    std::vector<const char*> paths;
  };
  const char* kMol = "molecules/molecule";
  const char* kInt = "interactions/interaction";
  const char* kExp = "experiments/experiment";
  const char* kPub = "publications/publication";
  const std::vector<Spec> specs = {
      // --- molecule lookups (the dominant group) ---------------------------
      {"g01", {kMol, "molecules/molecule/@id", "molecules/molecule/name"}},
      {"g02", {kMol, "molecules/molecule/symbol"}},
      {"g03", {kMol, "molecules/molecule/name", "molecules/molecule/symbol"}},
      {"g04",
       {kMol, "molecules/molecule/synonyms/synonym",
        "molecules/molecule/name"}},
      {"g05",
       {kMol, "molecules/molecule/keywords/keyword",
        "molecules/molecule/name"}},
      {"g06", {kMol, "molecules/molecule/description"}},
      {"g07",
       {kMol, "molecules/molecule/@id",
        "molecules/molecule/external_accession"}},
      {"g08",
       {kMol, "molecules/molecule/external_accession",
        "sources/source/name"}},
      // --- molecule <-> interaction joins ----------------------------------
      {"g09",
       {kMol, "molecules/molecule/interaction_ref", kInt}},
      {"g10",
       {kMol, "molecules/molecule/@id", kInt,
        "interactions/interaction/participant_a"}},
      {"g11",
       {kInt, "interactions/interaction/participant_a",
        "interactions/interaction/participant_b"}},
      {"g12",
       {kInt, "interactions/interaction/confidence/score"}},
      {"g13",
       {kInt, "interactions/interaction/confidence/score",
        "interactions/interaction/confidence/method"}},
      {"g14",
       {kInt, "interactions/interaction/@type",
        "interactions/interaction/detection/method"}},
      {"g15",
       {kMol, kInt, "interactions/interaction/confidence/score",
        "molecules/molecule/symbol"}},
      {"g16",
       {kInt, "interactions/interaction/binding_site",
        "interactions/interaction/binding_site/start"}},
      {"g17",
       {kInt, "interactions/interaction/provenance_source", "sources/source/name"}},
      // --- GO / annotation queries -----------------------------------------
      {"g18",
       {kMol, "molecules/molecule/annotations/go_annotation",
        "molecules/molecule/annotations/go_annotation/term"}},
      {"g19",
       {kMol, "molecules/molecule/annotations/go_annotation/@go_id",
        "molecules/molecule/annotations/go_annotation/aspect"}},
      {"g20",
       {kMol, "molecules/molecule/annotations/go_annotation/evidence",
        "molecules/molecule/name"}},
      {"g21",
       {kMol, "molecules/molecule/annotations/function_note"}},
      // --- organism-scoped queries ------------------------------------------
      {"g22",
       {kMol, "molecules/molecule/organism_ref",
        "organisms/organism/scientific_name"}},
      {"g23",
       {kMol, "organisms/organism", "organisms/organism/common_name",
        "molecules/molecule/name"}},
      {"g24",
       {"organisms/organism", "organisms/organism/taxonomy/genus",
        "organisms/organism/taxonomy/species"}},
      // --- sequence / gene / protein properties ------------------------------
      {"g25",
       {kMol, "molecules/molecule/sequence/residues",
        "molecules/molecule/sequence/length"}},
      {"g26", {kMol, "molecules/molecule/sequence/checksum"}},
      {"g27",
       {kMol, "molecules/molecule/gene/locus",
        "molecules/molecule/gene/chromosome"}},
      {"g28",
       {kMol, "molecules/molecule/gene/start", "molecules/molecule/gene/end",
        "molecules/molecule/gene/strand"}},
      {"g29",
       {kMol, "molecules/molecule/protein_properties/molecular_weight"}},
      {"g30",
       {kMol, "molecules/molecule/protein_properties/isoelectric_point",
        "molecules/molecule/protein_properties/length"}},
      {"g31",
       {kMol, "molecules/molecule/cellular_locations/cellular_location"}},
      {"g32",
       {kMol, "molecules/molecule/tissue_expressions/tissue_expression",
        "molecules/molecule/tissue_expressions/tissue_expression/tissue"}},
      // --- experiment / publication provenance -------------------------------
      {"g33",
       {kInt, "interactions/interaction/experiment_ref",
        kExp}},
      {"g34",
       {kExp, "experiments/experiment/method/name"}},
      {"g35",
       {kExp, "experiments/experiment/method/name",
        "experiments/experiment/description"}},
      {"g36",
       {kExp, "experiments/experiment/publication_ref", kPub,
        "publications/publication/title"}},
      {"g37",
       {kPub, "publications/publication/title",
        "publications/publication/year"}},
      {"g38",
       {kPub, "publications/publication/authors/author",
        "publications/publication/journal"}},
      {"g39",
       {kInt, kExp, "experiments/experiment/host_organism_ref",
        "organisms/organism/scientific_name"}},
      {"g40",
       {kExp, "experiments/experiment/host_organism_ref"}},
      // --- pathways ------------------------------------------------------------
      {"g41",
       {kMol, "molecules/molecule/annotations/pathway_ref",
        "pathways/pathway"}},
      {"g42",
       {"pathways/pathway", "pathways/pathway/name"}},
      {"g43",
       {kMol, "pathways/pathway/name", "molecules/molecule/symbol"}},
      // --- domains (post Oct-2005 queries) --------------------------------------
      {"g44",
       {kMol, "molecules/molecule/domain_hit", "domains/domain"}},
      {"g45",
       {"domains/domain", "domains/domain/name", "domains/domain/family"}},
      {"g46",
       {kMol, "molecules/molecule/domain_hit/score",
        "domains/domain/name"}},
      // --- source / administrative -----------------------------------------------
      {"g47",
       {"sources/source", "sources/source/name", "sources/source/version"}},
      {"g48",
       {"sources/source", "sources/source/imported_date"}},
      // --- cross-entity analytical groups -------------------------------------------
      {"g49",
       {kMol, kInt, "interactions/interaction/experiment_ref",
        "experiments/experiment/method/name"}},
      {"g50",
       {kMol, "molecules/molecule/organism_ref", kInt,
        "interactions/interaction/confidence/score"}},
      {"g51",
       {kInt, "interactions/interaction/participant_a",
        "molecules/molecule/symbol", "molecules/molecule/name"}},
      {"g52",
       {kMol, "molecules/molecule/keywords/keyword",
        "molecules/molecule/annotations/go_annotation/term",
        "molecules/molecule/symbol"}},
  };
  Workload w;
  w.name = "mimi";
  for (const Spec& s : specs) {
    std::vector<std::string> paths(s.paths.begin(), s.paths.end());
    auto q = MakeIntention(graph_, s.name, paths);
    if (!q.ok()) return q.status().WithContext(std::string("query ") + s.name);
    w.queries.push_back(std::move(*q));
  }
  return w;
}

}  // namespace ssum
