#pragma once

#include <array>
#include <memory>

#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "query/workload.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Generation parameters for the synthetic XMark auction database
/// (substitute for the original xmlgen, see DESIGN.md). Entity counts below
/// are the xmlgen scale-factor-1 values; fanouts approximate the benchmark's
/// distributions.
struct XMarkParams {
  double sf = 1.0;  ///< scale factor (paper: 1.0)
  uint64_t seed = 42;

  // Entity counts at sf = 1 (scaled linearly).
  std::array<uint32_t, 6> items_per_region{550, 2000, 2200, 6000, 10000, 1000};
  uint32_t persons = 25500;
  uint32_t open_auctions = 12000;
  uint32_t closed_auctions = 9750;
  uint32_t categories = 1000;
  uint32_t catgraph_edges = 3800;

  // Fanouts / presence probabilities (scale independent).
  double bidders_mean = 7.0;
  double incategory_mean = 3.0;
  double mail_mean = 1.2;
  double interest_mean = 1.2;
  double watches_mean = 1.0;
  double prob_phone = 0.4;
  double prob_address = 0.6;
  double prob_homepage = 0.4;
  double prob_creditcard = 0.35;
  double prob_profile = 0.7;
  double prob_education = 0.5;
  double prob_gender = 0.6;
  double prob_age = 0.5;
  double prob_reserve = 0.4;
  double prob_privacy = 0.3;
  double prob_annotation = 0.4;
  double prob_parlist = 0.3;      ///< description branches to parlist
  double markup_mean = 1.2;       ///< bold/keyword/emph occurrences per text
  double listitem_mean = 1.8;
};

/// The XMark benchmark substrate: the expanded auction schema (the DTD
/// unfolded per context, the paper's hierarchical-schema treatment), a
/// streaming instance generator, and the 20 benchmark query intentions.
class XMarkDataset {
 public:
  /// Validated factory: rejects non-finite or non-positive scale factors
  /// with InvalidArgument instead of producing a generator with nonsensical
  /// entity counts. Prefer this whenever the parameters come from user
  /// input.
  static Result<XMarkDataset> Make(XMarkParams params);

  /// Direct construction for compiled-in parameter sets (defaults, tests).
  explicit XMarkDataset(XMarkParams params = {});

  const SchemaGraph& schema() const { return graph_; }
  const XMarkParams& params() const { return params_; }

  /// Streaming instance generator; every Accept replays the identical
  /// database. Each top-level entity (item, category, edge, person,
  /// auction) draws from its own Rng forked from params().seed, so any
  /// entity sub-range replays without generating the preceding events —
  /// the splittable-source contract behind sharded annotation.
  std::unique_ptr<InstanceStream> MakeStream() const;

  /// The same generator as a splittable source: one unit per top-level
  /// entity. Annotating it sharded is bit-identical to the serial pass.
  std::unique_ptr<ShardedInstanceSource> MakeShardedSource() const;

  /// The 20 XMark benchmark queries as schema-element intentions.
  Result<Workload> Queries() const;

  /// Region names in schema order (africa .. samerica).
  static const std::array<const char*, 6>& RegionNames();

  // Nested id bundles are public so that the generator implementation (a
  // separate translation unit) can traverse them; the id fields themselves
  // stay private.

  /// Element ids of one region's unfolded item subtree.
  struct ItemIds {
    ElementId item, id, featured, location, quantity, name, payment, shipping;
    ElementId incategory, incategory_category;
    ElementId mailbox, mail, mail_from, mail_to, mail_date;
    ElementId mail_text, mail_bold, mail_keyword, mail_emph;
    // description subtree
    ElementId description, text, bold, keyword, emph;
    ElementId parlist, listitem, li_text, li_bold, li_keyword, li_emph;
  };
  /// Description subtree ids (shared shape, distinct ids per context).
  struct DescriptionIds {
    ElementId description, text, bold, keyword, emph;
    ElementId parlist, listitem, li_text, li_bold, li_keyword, li_emph;
  };
  struct AnnotationIds {
    ElementId annotation, author, author_person, happiness;
    DescriptionIds desc;
  };

 private:
  friend class XMarkStream;

  XMarkParams params_;
  SchemaGraph graph_;

  // Named element ids used by the generator and the query workload.
  ElementId regions_;
  std::array<ElementId, 6> region_;
  std::array<ItemIds, 6> item_;
  ElementId categories_, category_, category_id_, category_name_;
  DescriptionIds category_desc_;
  ElementId catgraph_, edge_, edge_from_, edge_to_;
  ElementId people_, person_, person_id_, person_name_, emailaddress_, phone_;
  ElementId address_, street_, city_, country_, province_, zipcode_;
  ElementId homepage_, creditcard_;
  ElementId profile_, income_, interest_, interest_category_, education_,
      gender_, business_, age_;
  ElementId watches_, watch_, watch_auction_;
  ElementId open_auctions_, open_auction_, oa_id_, initial_, reserve_,
      current_, privacy_, oa_quantity_, oa_type_;
  // The paper's Figure 1 flattens xmlgen's personref wrapper: @person is a
  // direct attribute of bidder, and the value link runs bidder -> person.
  ElementId bidder_, bidder_person_attr_, bid_date_, bid_time_, increase_;
  ElementId oa_itemref_, oa_itemref_item_, seller_, seller_person_;
  ElementId interval_, start_, end_;
  AnnotationIds oa_annotation_;
  ElementId closed_auctions_, closed_auction_, ca_seller_, ca_seller_person_,
      ca_buyer_, ca_buyer_person_, ca_itemref_, ca_itemref_item_, price_,
      ca_date_, ca_quantity_, ca_type_;
  AnnotationIds ca_annotation_;

  // Value links (LinkIds) used when emitting references.
  LinkId l_incategory_[6];
  LinkId l_edge_from_, l_edge_to_;
  LinkId l_interest_, l_watch_;
  LinkId l_bidder_person_, l_seller_person_, l_oa_itemref_[6];
  LinkId l_ca_seller_, l_ca_buyer_, l_ca_itemref_[6];
  LinkId l_author_oa_, l_author_ca_;
};

}  // namespace ssum
