#include "datasets/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/random.h"
#include "schema/schema_builder.h"

namespace ssum {

namespace {

/// Skew-biased index into [0, n): u^skew concentrates picks near 0 (the
/// oldest elements) for skew > 1.
size_t SkewedIndex(Rng* rng, size_t n, double skew) {
  const double u = rng->NextDouble();
  size_t idx = static_cast<size_t>(static_cast<double>(n) * std::pow(u, skew));
  return std::min(idx, n - 1);
}

}  // namespace

SyntheticSchema BuildSyntheticSchema(const SyntheticSchemaParams& params) {
  SSUM_CHECK(params.elements >= 2, "synthetic schema needs >= 2 elements");
  SSUM_CHECK(params.skew > 0.0, "synthetic skew must be positive");
  Rng root_rng(params.seed);
  Rng grow_rng = root_rng.Fork(0);
  Rng link_rng = root_rng.Fork(1);
  Rng card_rng = root_rng.Fork(2);

  SchemaBuilder builder("synthetic");
  // Non-Simple elements, eligible as parents and as value-link endpoints.
  std::vector<ElementId> interior = {builder.Root()};
  while (builder.graph().size() < params.elements) {
    const ElementId parent =
        interior[SkewedIndex(&grow_rng, interior.size(), params.skew)];
    std::string label = "e" + std::to_string(builder.graph().size());
    const bool set_of = grow_rng.NextBool(params.set_fraction);
    if (grow_rng.NextBool(params.simple_fraction)) {
      if (set_of) {
        builder.SetSimple(parent, std::move(label));
      } else {
        builder.Simple(parent, std::move(label));
      }
    } else {
      const ElementId e = set_of ? builder.SetRcd(parent, std::move(label))
                                 : builder.Rcd(parent, std::move(label));
      interior.push_back(e);
    }
  }

  // Value links between record elements (relational-FK flavor). Both
  // endpoints are skew-picked so references concentrate on hub elements;
  // self-links are simply skipped (the graph rejects them).
  std::vector<LinkId> vlinks_of;  // parallel to the referrer list below
  std::vector<ElementId> vlink_referrer;
  for (size_t i = 1; i < interior.size(); ++i) {
    if (!link_rng.NextBool(params.value_link_fraction)) continue;
    const ElementId referrer = interior[i];
    const ElementId referee =
        interior[SkewedIndex(&link_rng, interior.size(), params.skew)];
    if (referee == referrer) continue;
    vlinks_of.push_back(builder.Link(referrer, referee));
    vlink_referrer.push_back(referrer);
  }

  SyntheticSchema out{std::move(builder).Build(), Annotations{}};
  const SchemaGraph& graph = out.graph;

  // Top-down cardinalities: children follow parents in id order, so one
  // forward pass sees every parent before its children. Set-valued elements
  // multiply by a Poisson multiplicity with an occasional 32x heavy tail
  // (Zipf-ish hot spots); single-valued elements inherit the parent count.
  Annotations ann(graph);
  ann.set_card(graph.root(), 1);
  for (ElementId e = 1; e < graph.size(); ++e) {
    const uint64_t parent_card = ann.card(graph.parent(e));
    uint64_t card = parent_card;
    if (graph.type(e).set_of) {
      uint64_t mult = 1 + card_rng.NextPoisson(params.mean_multiplicity);
      if (card_rng.NextBool(0.05)) mult *= 32;
      card = parent_card * mult;
    }
    card = std::min(card, params.max_card);
    ann.set_card(e, card);
    // Every child instance is one structural-link instance.
    ann.set_structural_count(graph.parent_link(e), card);
  }
  // Each referrer instance carries one reference.
  for (size_t i = 0; i < vlinks_of.size(); ++i) {
    ann.set_value_count(vlinks_of[i], ann.card(vlink_referrer[i]));
  }
  out.annotations = std::move(ann);
  return out;
}

}  // namespace ssum
