#pragma once

#include <string>

#include "common/result.h"
#include "datasets/mimi.h"
#include "query/workload.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

class ArtifactCache;  // store/artifact_cache.h

enum class DatasetKind : unsigned char { kXMark = 0, kTpch, kMimi };

const char* DatasetName(DatasetKind kind);

/// One fully-prepared evaluation dataset: schema, database statistics (from
/// a full annotateSchema pass over the generated instance), the query
/// workload, and the summary size the paper uses for it in Tables 3/4 and
/// Figure 9.
struct DatasetBundle {
  std::string name;
  SchemaGraph schema;
  Annotations annotations;
  Workload workload;
  size_t paper_summary_size;
  uint64_t data_elements;  ///< total data nodes in the generated instance
};

/// Generates and annotates a dataset at the paper's scale
/// (XMark sf 1, TPC-H sf 0.1, MiMI Jan-2006). `scale` multiplies the
/// instance size (use < 1 for quick tests; statistics-derived RCs are
/// scale-invariant by design).
///
/// With a non-null `cache`, the annotation pass — the one stage that scales
/// with database size — warm-starts from the snapshot store: the statistics
/// are keyed by the dataset's *generator identity* (kind, version, scale
/// and a generator revision constant) rather than by a stream digest, since
/// digesting a synthetic stream costs the same traversal annotating it
/// does. A hit skips instance generation entirely; any cache failure falls
/// back to the full generate + annotate pass.
Result<DatasetBundle> LoadDataset(DatasetKind kind, double scale = 1.0,
                                  ArtifactCache* cache = nullptr);

/// MiMI at a specific archived version (Table 5).
Result<DatasetBundle> LoadMimi(MimiVersion version, double scale = 1.0,
                               ArtifactCache* cache = nullptr);

}  // namespace ssum
