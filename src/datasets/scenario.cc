#include "datasets/scenario.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/importance.h"
#include "instance/unit_digest.h"
#include "query/generate_workload.h"
#include "schema/schema_builder.h"
#include "stats/delta.h"
#include "store/artifact_cache.h"

namespace ssum {
namespace {

/// Bump when generation changes for identical specs — the revision is part
/// of every scenario cache key, so stale annotation snapshots from an older
/// generator stop being addressed (same discipline as datasets/registry.cc).
constexpr uint64_t kScenarioRevision = 2;  // 2: mutate.* version-chain knobs

/// Rng stream ids forked off the spec seed. Units use the high-bit scheme
/// (stream << 48 | unit) so every unit replays standalone from the middle
/// of any shard (the XMark idiom).
constexpr uint64_t kGrowStream = 1;
constexpr uint64_t kLinkStream = 2;
constexpr uint64_t kWorkloadStream = 3;
constexpr uint64_t kUnitStream = 4;
/// Mutation streams fork off mutate_seed (not seed), so the same base
/// scenario mutated two different ways shares every untouched unit.
constexpr uint64_t kMutateUnitStream = 5;
constexpr uint64_t kMutateGrowStream = 6;

// --- spec parsing ----------------------------------------------------------

Status ReadU64(const ConfigMap& c, std::string_view key, uint64_t* out) {
  if (!c.Has(key)) return Status::OK();
  auto v = c.GetInt(key);
  SSUM_RETURN_NOT_OK(v.status());
  if (*v < 0) {
    return Status::InvalidArgument("config key '" + std::string(key) +
                                   "' must be >= 0");
  }
  *out = static_cast<uint64_t>(*v);
  return Status::OK();
}

Status ReadU32(const ConfigMap& c, std::string_view key, uint32_t* out) {
  uint64_t v = *out;
  SSUM_RETURN_NOT_OK(ReadU64(c, key, &v));
  if (v > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("config key '" + std::string(key) +
                                   "' out of range");
  }
  *out = static_cast<uint32_t>(v);
  return Status::OK();
}

Status ReadDouble(const ConfigMap& c, std::string_view key, double* out) {
  if (!c.Has(key)) return Status::OK();
  auto v = c.GetDouble(key);
  SSUM_RETURN_NOT_OK(v.status());
  *out = *v;
  return Status::OK();
}

Status ReadString(const ConfigMap& c, std::string_view key, std::string* out) {
  if (!c.Has(key)) return Status::OK();
  auto v = c.GetString(key);
  SSUM_RETURN_NOT_OK(v.status());
  *out = *v;
  return Status::OK();
}

Status CheckFraction(double v, const char* what) {
  if (v < 0.0 || v > 1.0 || !std::isfinite(v)) {
    return Status::InvalidArgument(std::string(what) +
                                   " must be in [0, 1], got " +
                                   FormatDouble(v, 4));
  }
  return Status::OK();
}

Status ValidateSpec(const ScenarioSpec& s) {
  if (s.name.empty() || s.name.size() > 100 ||
      s.name.find('\n') != std::string::npos) {
    return Status::InvalidArgument("scenario name must be 1..100 characters");
  }
  if (s.entity_classes < 1 || s.entity_classes > 10000) {
    return Status::InvalidArgument("schema.entity_classes must be in "
                                   "[1, 10000]");
  }
  if (s.schema_elements < s.entity_classes + 1 || s.schema_elements > 1000000) {
    return Status::InvalidArgument(
        "schema.elements must be in [entity_classes + 1, 1000000]");
  }
  if (s.max_depth < 2 || s.max_depth > 64) {
    return Status::InvalidArgument("schema.max_depth must be in [2, 64]");
  }
  SSUM_RETURN_NOT_OK(CheckFraction(s.simple_fraction,
                                   "schema.simple_fraction"));
  SSUM_RETURN_NOT_OK(CheckFraction(s.choice_fraction,
                                   "schema.choice_fraction"));
  if (s.simple_fraction + s.choice_fraction > 1.0) {
    return Status::InvalidArgument(
        "schema.simple_fraction + schema.choice_fraction must be <= 1");
  }
  SSUM_RETURN_NOT_OK(CheckFraction(s.set_fraction, "schema.set_fraction"));
  if (s.fanout_skew <= 0.0 || s.fanout_skew > 16.0 ||
      !std::isfinite(s.fanout_skew)) {
    return Status::InvalidArgument("schema.fanout_skew must be in (0, 16]");
  }
  SSUM_RETURN_NOT_OK(CheckFraction(s.value_link_fraction,
                                   "schema.value_link_fraction"));
  if (s.instance_units < 1 || s.instance_units > 100000000) {
    return Status::InvalidArgument("instance.units must be in [1, 1e8]");
  }
  if (s.unit_skew != "uniform" && s.unit_skew != "zipf") {
    return Status::InvalidArgument("instance.unit_skew must be 'uniform' or "
                                   "'zipf', got '" + s.unit_skew + "'");
  }
  if (s.zipf_s <= 0.0 || s.zipf_s > 8.0 || !std::isfinite(s.zipf_s)) {
    return Status::InvalidArgument("instance.zipf_s must be in (0, 8]");
  }
  if (s.set_mean < 0.0 || s.set_mean > 1000.0 || !std::isfinite(s.set_mean)) {
    return Status::InvalidArgument("instance.set_mean must be in [0, 1000]");
  }
  SSUM_RETURN_NOT_OK(CheckFraction(s.presence, "instance.presence"));
  SSUM_RETURN_NOT_OK(CheckFraction(s.reference_prob,
                                   "instance.reference_prob"));
  if (s.max_unit_nodes < 1 || s.max_unit_nodes > 10000000) {
    return Status::InvalidArgument("instance.max_unit_nodes must be in "
                                   "[1, 1e7]");
  }
  SSUM_RETURN_NOT_OK(CheckFraction(s.mutate_fraction, "mutate.fraction"));
  SSUM_RETURN_NOT_OK(CheckFraction(s.mutate_amplitude, "mutate.amplitude"));
  if (s.mutate_add_elements > 1000000) {
    return Status::InvalidArgument("mutate.add_elements must be <= 1e6");
  }
  if (s.mutate_remove_elements > 1000000) {
    return Status::InvalidArgument("mutate.remove_elements must be <= 1e6");
  }
  if (s.queries < 1 || s.queries > 100000) {
    return Status::InvalidArgument("workload.queries must be in [1, 100000]");
  }
  if (s.query_mean_size < 1.0 || s.query_mean_size > 100.0 ||
      !std::isfinite(s.query_mean_size)) {
    return Status::InvalidArgument("workload.mean_size must be in [1, 100]");
  }
  SSUM_RETURN_NOT_OK(CheckFraction(s.query_focus, "workload.focus"));
  SSUM_RETURN_NOT_OK(CheckFraction(s.query_locality, "workload.locality"));
  if (s.summary_k < 1 || s.summary_k > 10000) {
    return Status::InvalidArgument("bench.summary_k must be in [1, 10000]");
  }
  if (s.tier != "quick" && s.tier != "full") {
    return Status::InvalidArgument("bench.tier must be 'quick' or 'full', "
                                   "got '" + s.tier + "'");
  }
  return Status::OK();
}

/// Skewed index pick over [0, n): exponent 1 is uniform, larger exponents
/// concentrate on low indices (the oldest, shallowest elements) — the
/// preferential-attachment knob of src/datasets/synthetic.h.
size_t SkewedIndex(Rng* rng, size_t n, double skew) {
  double u = rng->NextDouble();
  size_t i = static_cast<size_t>(static_cast<double>(n) * std::pow(u, skew));
  return std::min(i, n - 1);
}

/// Set-mean multiplier the mutation layer applies to `unit` (1.0 =
/// untouched). Draws from its own forked Rng, never the unit stream, so an
/// unselected unit replays byte-identically to the unmutated version — the
/// invariant the whole delta path rests on. Shared by EmitUnit and
/// DirtyUnitsBetween, which must agree exactly.
double MutateUnitMultiplier(const ScenarioSpec& spec, uint64_t unit) {
  if (spec.mutate_fraction <= 0.0) return 1.0;
  Rng m = Rng(spec.mutate_seed).Fork((kMutateUnitStream << 48) | unit);
  if (m.NextDouble() >= spec.mutate_fraction) return 1.0;
  return 1.0 + spec.mutate_amplitude * (2.0 * m.NextDouble() - 1.0);
}

}  // namespace

Result<ScenarioSpec> ParseScenarioSpec(const ConfigMap& config) {
  ScenarioSpec spec;
  SSUM_RETURN_NOT_OK(ReadString(config, "name", &spec.name));
  SSUM_RETURN_NOT_OK(ReadU64(config, "seed", &spec.seed));
  SSUM_RETURN_NOT_OK(ReadU32(config, "schema.elements", &spec.schema_elements));
  SSUM_RETURN_NOT_OK(
      ReadU32(config, "schema.entity_classes", &spec.entity_classes));
  SSUM_RETURN_NOT_OK(ReadU32(config, "schema.max_depth", &spec.max_depth));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "schema.simple_fraction", &spec.simple_fraction));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "schema.choice_fraction", &spec.choice_fraction));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "schema.set_fraction", &spec.set_fraction));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "schema.fanout_skew", &spec.fanout_skew));
  SSUM_RETURN_NOT_OK(ReadDouble(config, "schema.value_link_fraction",
                                &spec.value_link_fraction));
  SSUM_RETURN_NOT_OK(ReadU64(config, "instance.units", &spec.instance_units));
  SSUM_RETURN_NOT_OK(ReadString(config, "instance.unit_skew", &spec.unit_skew));
  SSUM_RETURN_NOT_OK(ReadDouble(config, "instance.zipf_s", &spec.zipf_s));
  SSUM_RETURN_NOT_OK(ReadDouble(config, "instance.set_mean", &spec.set_mean));
  SSUM_RETURN_NOT_OK(ReadDouble(config, "instance.presence", &spec.presence));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "instance.reference_prob", &spec.reference_prob));
  SSUM_RETURN_NOT_OK(
      ReadU32(config, "instance.max_unit_nodes", &spec.max_unit_nodes));
  SSUM_RETURN_NOT_OK(ReadU64(config, "mutate.seed", &spec.mutate_seed));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "mutate.fraction", &spec.mutate_fraction));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "mutate.amplitude", &spec.mutate_amplitude));
  SSUM_RETURN_NOT_OK(
      ReadU32(config, "mutate.add_elements", &spec.mutate_add_elements));
  SSUM_RETURN_NOT_OK(
      ReadU32(config, "mutate.remove_elements", &spec.mutate_remove_elements));
  SSUM_RETURN_NOT_OK(ReadU32(config, "workload.queries", &spec.queries));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "workload.mean_size", &spec.query_mean_size));
  SSUM_RETURN_NOT_OK(ReadDouble(config, "workload.focus", &spec.query_focus));
  SSUM_RETURN_NOT_OK(
      ReadDouble(config, "workload.locality", &spec.query_locality));
  SSUM_RETURN_NOT_OK(ReadU32(config, "bench.summary_k", &spec.summary_k));
  SSUM_RETURN_NOT_OK(ReadString(config, "bench.tier", &spec.tier));
  SSUM_RETURN_NOT_OK(config.CheckAllKeysRead());
  SSUM_RETURN_NOT_OK(ValidateSpec(spec));
  return spec;
}

Result<ScenarioSpec> ParseScenarioSpecText(std::string_view text,
                                           std::string_view source,
                                           const ParseLimits& limits) {
  ConfigMap config;
  SSUM_ASSIGN_OR_RETURN(config, ConfigMap::Parse(text, source, limits));
  return ParseScenarioSpec(config);
}

Result<ScenarioSpec> LoadScenarioSpecFile(const std::string& path,
                                          const ParseLimits& limits) {
  ConfigMap config;
  SSUM_ASSIGN_OR_RETURN(config, ConfigMap::ParseFile(path, limits));
  return ParseScenarioSpec(config);
}

std::string SerializeScenarioSpec(const ScenarioSpec& s) {
  std::string out;
  auto line = [&out](std::string_view key, const std::string& value) {
    out.append(key);
    out.append(": ");
    out.append(value);
    out.push_back('\n');
  };
  auto num = [](double v) { return FormatDouble(v, 6); };
  line("name", s.name);
  line("seed", std::to_string(s.seed));
  line("schema.elements", std::to_string(s.schema_elements));
  line("schema.entity_classes", std::to_string(s.entity_classes));
  line("schema.max_depth", std::to_string(s.max_depth));
  line("schema.simple_fraction", num(s.simple_fraction));
  line("schema.choice_fraction", num(s.choice_fraction));
  line("schema.set_fraction", num(s.set_fraction));
  line("schema.fanout_skew", num(s.fanout_skew));
  line("schema.value_link_fraction", num(s.value_link_fraction));
  line("instance.units", std::to_string(s.instance_units));
  line("instance.unit_skew", s.unit_skew);
  line("instance.zipf_s", num(s.zipf_s));
  line("instance.set_mean", num(s.set_mean));
  line("instance.presence", num(s.presence));
  line("instance.reference_prob", num(s.reference_prob));
  line("instance.max_unit_nodes", std::to_string(s.max_unit_nodes));
  line("mutate.seed", std::to_string(s.mutate_seed));
  line("mutate.fraction", num(s.mutate_fraction));
  line("mutate.amplitude", num(s.mutate_amplitude));
  line("mutate.add_elements", std::to_string(s.mutate_add_elements));
  line("mutate.remove_elements", std::to_string(s.mutate_remove_elements));
  line("workload.queries", std::to_string(s.queries));
  line("workload.mean_size", num(s.query_mean_size));
  line("workload.focus", num(s.query_focus));
  line("workload.locality", num(s.query_locality));
  line("bench.summary_k", std::to_string(s.summary_k));
  line("bench.tier", s.tier);
  return out;
}

Fingerprint ScenarioFingerprint(const ScenarioSpec& spec) {
  Fnv1a64 h;
  h.Update("ssum-scenario-fp:");
  h.UpdateU64(kScenarioRevision);
  h.Update(SerializeScenarioSpec(spec));
  return Fingerprint{h.Digest()};
}

Result<std::vector<uint64_t>> DirtyUnitsBetween(const ScenarioSpec& base,
                                                const ScenarioSpec& next) {
  // Only the per-unit perturbation knobs may differ: anything else changes
  // the schema or the unit layout, where this shortcut would lie.
  ScenarioSpec a = base;
  ScenarioSpec b = next;
  a.mutate_seed = b.mutate_seed = 0;
  a.mutate_fraction = b.mutate_fraction = 0.0;
  a.mutate_amplitude = b.mutate_amplitude = 0.0;
  if (SerializeScenarioSpec(a) != SerializeScenarioSpec(b)) {
    return Status::InvalidArgument(
        "DirtyUnitsBetween: specs differ beyond mutate seed/fraction/"
        "amplitude; use unit digests instead");
  }
  std::vector<uint64_t> dirty;
  for (uint64_t u = 0; u < base.instance_units; ++u) {
    // A unit's bytes depend on the mutation layer only through this
    // multiplier (EmitUnit), so equal multipliers mean identical bytes.
    if (MutateUnitMultiplier(base, u) != MutateUnitMultiplier(next, u)) {
      dirty.push_back(u);
    }
  }
  return dirty;
}

// --- schema synthesis ------------------------------------------------------

ScenarioDataset::ScenarioDataset(ScenarioSpec spec, SchemaGraph schema)
    : spec_(std::move(spec)), schema_(std::move(schema)) {}

Result<ScenarioDataset> ScenarioDataset::Make(const ScenarioSpec& spec) {
  SSUM_RETURN_NOT_OK(ValidateSpec(spec));

  SchemaBuilder builder("db");
  Rng grow = Rng(spec.seed).Fork(kGrowStream);

  // Entity-class roots: the shard boundary. Each class is a SetOf Rcd child
  // of the root, and every unit of the stream is one instance of one class.
  std::vector<ElementId> class_roots;
  class_roots.reserve(spec.entity_classes);
  for (uint32_t c = 0; c < spec.entity_classes; ++c) {
    class_roots.push_back(
        builder.SetRcd(builder.Root(), "c" + std::to_string(c)));
  }

  // Grow the remaining budget: each new element attaches under a skew-picked
  // interior element (non-Simple, depth < max_depth; never the root, so the
  // skeleton stays root-only and units stay entity subtrees).
  std::vector<ElementId> interior = class_roots;
  uint32_t budget = spec.schema_elements - 1 - spec.entity_classes;
  for (uint32_t i = 0; i < budget; ++i) {
    ElementId parent =
        interior[SkewedIndex(&grow, interior.size(), spec.fanout_skew)];
    double u = grow.NextDouble();
    bool set_of = grow.NextBool(spec.set_fraction);
    // A Choice at the depth cap could never receive a branch (its children
    // would exceed max_depth), so the draw degrades to Rcd there.
    bool choice_ok = builder.graph().depth(parent) + 1 < spec.max_depth;
    ElementId id;
    bool is_interior = false;
    std::string tag = std::to_string(builder.graph().size());
    if (u < spec.simple_fraction) {
      id = set_of ? builder.SetSimple(parent, "s" + tag)
                  : builder.Simple(parent, "s" + tag);
    } else if (choice_ok &&
               u < spec.simple_fraction + spec.choice_fraction) {
      id = builder.Choice(parent, "ch" + tag, set_of);
      is_interior = true;
    } else {
      id = set_of ? builder.SetRcd(parent, "r" + tag)
                  : builder.Rcd(parent, "r" + tag);
      is_interior = true;
    }
    if (is_interior && builder.graph().depth(id) < spec.max_depth) {
      interior.push_back(id);
    }
  }

  // Mutation-layer growth: extra elements appended *after* the base budget
  // from a stream forked off mutate_seed, so the base schema is a stable
  // id-prefix of every mutated version. (A schema change still moves the
  // schema fingerprint — added elements key a cold path by design.)
  if (spec.mutate_add_elements > 0) {
    Rng mut_grow = Rng(spec.mutate_seed).Fork(kMutateGrowStream);
    for (uint32_t i = 0; i < spec.mutate_add_elements; ++i) {
      ElementId parent =
          interior[SkewedIndex(&mut_grow, interior.size(), spec.fanout_skew)];
      bool set_of = mut_grow.NextBool(spec.set_fraction);
      std::string tag = std::to_string(builder.graph().size());
      // Mutation growth only adds Simple leaves: enough to change the
      // schema shape without re-running Choice repair bookkeeping.
      ElementId id = set_of ? builder.SetSimple(parent, "ms" + tag)
                            : builder.Simple(parent, "ms" + tag);
      (void)id;
    }
  }

  // Choice repair: a childless Choice can never instantiate a branch, so
  // give each one a Simple alternative (deterministic, id-ordered).
  {
    std::vector<ElementId> childless;
    const SchemaGraph& g = builder.graph();
    for (ElementId e = 0; e < g.size(); ++e) {
      if (g.type(e).kind == TypeKind::kChoice && g.children(e).empty()) {
        childless.push_back(e);
      }
    }
    for (ElementId e : childless) {
      builder.Simple(e, "alt" + std::to_string(builder.graph().size()));
    }
  }

  // Value links between non-Simple, non-root endpoints; duplicates and
  // self-links are re-drawn (bounded attempts keep hostile fractions
  // terminating).
  {
    Rng link = Rng(spec.seed).Fork(kLinkStream);
    const SchemaGraph& g = builder.graph();
    std::vector<ElementId> candidates;
    for (ElementId e = 1; e < g.size(); ++e) {
      if (g.type(e).kind != TypeKind::kSimple) candidates.push_back(e);
    }
    if (candidates.size() >= 2) {
      size_t target = static_cast<size_t>(
          std::llround(spec.value_link_fraction * static_cast<double>(g.size())));
      std::set<std::pair<ElementId, ElementId>> seen;
      size_t attempts = 0;
      while (seen.size() < target && attempts < 10 * target + 16) {
        ++attempts;
        ElementId a = candidates[link.NextBounded(candidates.size())];
        ElementId b = candidates[link.NextBounded(candidates.size())];
        if (a == b || !seen.emplace(a, b).second) continue;
        builder.Link(a, b);
      }
    }
  }

  ScenarioDataset ds(spec, std::move(builder).Build());
  ds.class_roots_ = std::move(class_roots);

  // Apportion units over classes: uniform, or zipf-weighted 1/(c+1)^s via
  // largest remainder so the shares sum to exactly instance_units.
  {
    uint32_t n = spec.entity_classes;
    std::vector<double> weights(n, 1.0);
    if (spec.unit_skew == "zipf") {
      for (uint32_t c = 0; c < n; ++c) {
        weights[c] = 1.0 / std::pow(static_cast<double>(c + 1), spec.zipf_s);
      }
    }
    double total = 0.0;
    for (double w : weights) total += w;
    std::vector<uint64_t> units(n, 0);
    std::vector<std::pair<double, uint32_t>> remainders;
    uint64_t assigned = 0;
    for (uint32_t c = 0; c < n; ++c) {
      double exact =
          static_cast<double>(spec.instance_units) * weights[c] / total;
      units[c] = static_cast<uint64_t>(exact);
      assigned += units[c];
      remainders.emplace_back(-(exact - static_cast<double>(units[c])), c);
    }
    std::sort(remainders.begin(), remainders.end());
    for (uint32_t i = 0; assigned < spec.instance_units; ++i) {
      ++units[remainders[i % n].second];
      ++assigned;
    }
    ds.class_base_.assign(1, 0);
    for (uint32_t c = 0; c < n; ++c) {
      ds.class_base_.push_back(ds.class_base_.back() + units[c]);
    }
  }

  ds.vlinks_of_.assign(ds.schema_.size(), {});
  const auto& vlinks = ds.schema_.value_links();
  for (LinkId l = 0; l < vlinks.size(); ++l) {
    ds.vlinks_of_[vlinks[l].referrer].push_back(l);
  }

  // Data-level removal: suppress the highest-id Simple leaves. Restricted
  // to Simple on purpose — emitting a Simple instance consumes no Rng
  // draws, so dropping it leaves every other byte of the unit identical to
  // the unmutated version (only units that contained it go dirty).
  ds.mutate_suppressed_.assign(ds.schema_.size(), 0);
  if (spec.mutate_remove_elements > 0) {
    uint32_t left = spec.mutate_remove_elements;
    for (ElementId e = ds.schema_.size(); left > 0 && e-- > 1;) {
      if (ds.schema_.type(e).kind == TypeKind::kSimple) {
        ds.mutate_suppressed_[e] = 1;
        --left;
      }
    }
  }

  if (spec.unit_skew == "zipf") {
    ds.set_zipf_ = std::make_unique<ZipfTable>(16, spec.zipf_s);
  }
  return ds;
}

// --- instance stream -------------------------------------------------------

/// Splittable scenario stream: unit u is the u-th entity instance in
/// class-major order, generated from Rng(seed).Fork(kUnitStream<<48 | u) so
/// any sub-range replays byte-identically without the preceding events.
class ScenarioStream : public InstanceStream, public ShardedInstanceSource {
 public:
  explicit ScenarioStream(const ScenarioDataset* ds) : ds_(ds) {}

  const SchemaGraph& schema() const override { return ds_->schema(); }

  Status Accept(InstanceVisitor* v) const override {
    v->OnEnter(schema().root());
    SSUM_RETURN_NOT_OK(EmitRange(0, NumUnits(), v));
    v->OnLeave(schema().root());
    return Status::OK();
  }

  uint64_t NumUnits() const override { return ds_->NumUnits(); }

  Status AcceptSkeleton(InstanceVisitor* v) const override {
    v->OnEnter(schema().root());
    v->OnLeave(schema().root());
    return Status::OK();
  }

  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* v) const override {
    SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
    return EmitRange(begin, end, v);
  }

 private:
  Status EmitRange(uint64_t begin, uint64_t end, InstanceVisitor* v) const {
    const auto& base = ds_->class_base_;
    // First class whose range contains `begin`.
    size_t c = static_cast<size_t>(
        std::upper_bound(base.begin(), base.end(), begin) - base.begin() - 1);
    for (uint64_t u = begin; u < end; ++u) {
      while (u >= base[c + 1]) ++c;
      EmitUnit(u, ds_->class_roots_[c], v);
    }
    return Status::OK();
  }

  void EmitUnit(uint64_t unit, ElementId entity, InstanceVisitor* v) const {
    const ScenarioSpec& spec = ds_->spec();
    Rng rng = Rng(spec.seed).Fork((kUnitStream << 48) | unit);
    // Zipf mode heavy-tails the unit's set counts: a few huge entities,
    // many small ones — the within-extent analogue of the class skew.
    double set_mean = spec.set_mean;
    if (ds_->set_zipf_ != nullptr) {
      set_mean *= 1.0 + static_cast<double>(ds_->set_zipf_->Sample(&rng));
    }
    set_mean *= MutateUnitMultiplier(spec, unit);
    uint64_t budget = spec.max_unit_nodes;
    EmitElement(entity, set_mean, &rng, &budget, v);
  }

  void EmitElement(ElementId e, double set_mean, Rng* rng, uint64_t* budget,
                   InstanceVisitor* v) const {
    if (*budget == 0) return;
    --*budget;
    v->OnEnter(e);
    for (LinkId l : ds_->vlinks_of_[e]) {
      if (rng->NextBool(ds_->spec().reference_prob)) v->OnReference(l);
    }
    const SchemaGraph& g = ds_->schema();
    const ElementType& type = g.type(e);
    const auto& children = g.children(e);
    if (type.kind == TypeKind::kChoice && !children.empty()) {
      // Exactly one branch per choice instance (instance/conformance.h).
      EmitElement(children[rng->NextBounded(children.size())], set_mean, rng,
                  budget, v);
    } else if (type.kind == TypeKind::kRcd) {
      for (ElementId child : children) {
        uint64_t count = g.type(child).set_of
                             ? rng->NextPoisson(set_mean)
                             : (rng->NextBool(ds_->spec().presence) ? 1 : 0);
        // Draw first, then drop: the Rng sequence every sibling sees stays
        // identical whether or not this leaf is suppressed.
        if (ds_->mutate_suppressed_[child] != 0) count = 0;
        for (uint64_t i = 0; i < count; ++i) {
          EmitElement(child, set_mean, rng, budget, v);
        }
      }
    }
    v->OnLeave(e);
  }

  const ScenarioDataset* ds_;
};

std::unique_ptr<InstanceStream> ScenarioDataset::MakeStream() const {
  return std::make_unique<ScenarioStream>(this);
}

std::unique_ptr<ShardedInstanceSource> ScenarioDataset::MakeShardedSource()
    const {
  return std::make_unique<ScenarioStream>(this);
}

Result<Workload> ScenarioDataset::Queries(
    const Annotations& annotations) const {
  ImportanceResult importance = ComputeImportance(schema_, annotations);
  WorkloadGenOptions options;
  options.num_queries = spec_.queries;
  options.mean_size = spec_.query_mean_size;
  options.focus = spec_.query_focus;
  options.locality = spec_.query_locality;
  options.seed = Rng(spec_.seed).Fork(kWorkloadStream).Next();
  Workload workload = GenerateWorkload(schema_, importance.importance, options);
  workload.name = spec_.name;
  return workload;
}

// --- registry/cache integration --------------------------------------------

Result<DatasetBundle> LoadScenario(const ScenarioSpec& spec,
                                   ArtifactCache* cache) {
  auto made = ScenarioDataset::Make(spec);
  if (!made.ok()) return made.status();
  const ScenarioDataset& ds = *made;

  // Keyed by generator identity (revision + canonical spec) mixed with the
  // schema fingerprint — never a stream digest, which would cost the same
  // traversal annotating does (see datasets/registry.cc).
  Fingerprint key =
      MixFingerprints(ScenarioFingerprint(spec), FingerprintSchema(ds.schema()));

  Annotations ann;
  bool loaded = false;
  if (cache != nullptr) {
    if (auto hit = cache->LoadAnnotations(ds.schema(), key)) {
      ann = std::move(*hit);
      loaded = true;
    }
  }
  if (!loaded) {
    auto source = ds.MakeShardedSource();
    SSUM_ASSIGN_OR_RETURN(ann, AnnotateSchemaSharded(*source));
    if (cache != nullptr) {
      Status installed = cache->StoreAnnotations(key, ann);
      if (!installed.ok()) {
        SSUM_LOG(kWarning) << "cache: scenario annotations install failed: "
                           << installed.ToString();
      }
    }
  }

  uint64_t nodes = ann.TotalNodes();
  Workload workload;
  SSUM_ASSIGN_OR_RETURN(workload, ds.Queries(ann));
  DatasetBundle bundle{"scenario:" + spec.name,
                       SchemaGraph("tmp"),
                       std::move(ann),
                       std::move(workload),
                       /*paper_summary_size=*/spec.summary_k,
                       nodes};
  bundle.schema = ds.schema();
  return bundle;
}

Result<DatasetBundle> LoadScenarioFile(const std::string& path,
                                       ArtifactCache* cache) {
  ScenarioSpec spec;
  SSUM_ASSIGN_OR_RETURN(spec, LoadScenarioSpecFile(path));
  return LoadScenario(spec, cache);
}

namespace {

/// The annotation cache key LoadScenario uses — delta lineage links must be
/// keyed identically or resolution would never find them.
Fingerprint ScenarioAnnotationKey(const ScenarioDataset& ds) {
  return MixFingerprints(ScenarioFingerprint(ds.spec()),
                         FingerprintSchema(ds.schema()));
}

/// Base annotations for the delta pass: lineage-aware cache lookup first,
/// cold annotation (with install) otherwise.
Result<Annotations> BaseAnnotations(const ScenarioDataset& base,
                                    ArtifactCache* cache,
                                    uint32_t* lineage_hops) {
  if (cache != nullptr) {
    if (auto hit =
            cache->LoadAnnotationsLineage(base.schema(),
                                          ScenarioAnnotationKey(base))) {
      *lineage_hops = hit->delta_hops;
      return std::move(hit->annotations);
    }
  }
  auto source = base.MakeShardedSource();
  Annotations ann;
  SSUM_ASSIGN_OR_RETURN(ann, AnnotateSchemaSharded(*source));
  if (cache != nullptr) {
    if (Status s = cache->StoreAnnotations(ScenarioAnnotationKey(base), ann);
        !s.ok()) {
      SSUM_LOG(kWarning) << "cache: base annotations install failed: "
                         << s.ToString();
    }
  }
  return ann;
}

}  // namespace

Result<ScenarioDeltaResult> AnnotateScenarioDelta(const ScenarioDataset& base,
                                                  const ScenarioDataset& next,
                                                  ArtifactCache* cache) {
  ScenarioDeltaResult result;
  result.total_units = next.NumUnits();
  SSUM_ASSIGN_OR_RETURN(
      result.base_annotations,
      BaseAnnotations(base, cache, &result.lineage_hops));

  // Preconditions of per-unit identity; violations are expected states
  // (mutate.add_elements changes the schema by design), not errors.
  if (FingerprintSchema(base.schema()) != FingerprintSchema(next.schema())) {
    result.fallback_reason = "schema changed between versions";
  } else if (base.NumUnits() != next.NumUnits()) {
    result.fallback_reason = "unit count changed between versions";
  }

  std::vector<uint64_t> dirty;
  if (result.fallback_reason.empty()) {
    // Analytic fast path (two Rng draws per unit) when only the per-unit
    // mutation knobs moved; the digest diff covers every other same-schema
    // change at the cost of one hashing traversal per source.
    auto analytic = DirtyUnitsBetween(base.spec(), next.spec());
    if (analytic.ok()) {
      dirty = std::move(*analytic);
    } else {
      auto base_digests = ComputeUnitDigests(*base.MakeShardedSource());
      auto next_digests = ComputeUnitDigests(*next.MakeShardedSource());
      if (base_digests.ok() && next_digests.ok()) {
        auto diffed = DiffUnitDigests(*base_digests, *next_digests);
        if (diffed.ok()) {
          dirty = std::move(*diffed);
        } else {
          result.fallback_reason = diffed.status().message();
        }
      } else {
        result.fallback_reason = "unit digest pass failed";
      }
    }
  }

  if (result.fallback_reason.empty()) {
    auto base_source = base.MakeShardedSource();
    auto next_source = next.MakeShardedSource();
    auto delta_ann = DeltaAnnotate(*base_source, *next_source,
                                   result.base_annotations, dirty);
    if (delta_ann.ok()) {
      result.annotations = std::move(*delta_ann);
      result.dirty_units = dirty.size();
      result.incremental = true;
      if (cache != nullptr) {
        // Install the lineage link, not the full child arrays: the next
        // version stays loadable (LoadAnnotationsLineage replays the chain)
        // at a fraction of the bytes, and a broken link only ever costs the
        // cold recompute.
        auto delta =
            DiffAnnotations(result.base_annotations, result.annotations);
        if (delta.ok()) {
          delta->dirty_units = result.dirty_units;
          delta->total_units = result.total_units;
          Status s = cache->StoreAnnotationsDelta(
              ScenarioAnnotationKey(next), ScenarioAnnotationKey(base),
              *delta);
          if (!s.ok()) {
            SSUM_LOG(kWarning) << "cache: annotation delta install failed: "
                               << s.ToString();
          }
        }
      }
      return result;
    }
    result.fallback_reason = delta_ann.status().message();
  }

  // Cold fallback: annotate `next` from scratch and install the full arrays
  // (there is no usable lineage to link to).
  auto source = next.MakeShardedSource();
  SSUM_ASSIGN_OR_RETURN(result.annotations, AnnotateSchemaSharded(*source));
  result.dirty_units = result.total_units;
  if (cache != nullptr) {
    if (Status s = cache->StoreAnnotations(ScenarioAnnotationKey(next),
                                           result.annotations);
        !s.ok()) {
      SSUM_LOG(kWarning) << "cache: annotations install failed: "
                         << s.ToString();
    }
  }
  return result;
}

}  // namespace ssum
