#include "datasets/mimi.h"

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "schema/schema_builder.h"

namespace ssum {

const char* MimiVersionName(MimiVersion v) {
  switch (v) {
    case MimiVersion::kApr2004:
      return "Apr 2004";
    case MimiVersion::kJan2005:
      return "Jan 2005";
    case MimiVersion::kJan2006:
      return "Jan 2006";
  }
  return "?";
}

MimiDataset::MimiDataset(MimiParams params) : params_(params) {
  SchemaBuilder b("mimi");

  // --- organisms -------------------------------------------------------------
  organisms_ = b.Rcd(b.Root(), "organisms");
  organism_ = b.SetRcd(organisms_, "organism");
  org_id_ = b.Attr(organism_, "id", AtomicKind::kId);
  org_name_ = b.Simple(organism_, "scientific_name");
  org_common_ = b.Simple(organism_, "common_name");
  strain_ = b.Simple(organism_, "strain");
  taxonomy_ = b.Rcd(organism_, "taxonomy");
  kingdom_ = b.Simple(taxonomy_, "kingdom");
  phylum_ = b.Simple(taxonomy_, "phylum");
  tax_class_ = b.Simple(taxonomy_, "class");
  tax_order_ = b.Simple(taxonomy_, "order");
  family_ = b.Simple(taxonomy_, "family");
  genus_ = b.Simple(taxonomy_, "genus");
  species_ = b.Simple(taxonomy_, "species");
  genome_ = b.Rcd(organism_, "genome");  // sparse
  assembly_ = b.Simple(genome_, "assembly");
  genome_size_ = b.Simple(genome_, "size", AtomicKind::kInt);
  gene_count_ = b.Simple(genome_, "gene_count", AtomicKind::kInt);

  // --- sources ---------------------------------------------------------------
  sources_ = b.Rcd(b.Root(), "sources");
  source_ = b.SetRcd(sources_, "source");
  src_id_ = b.Attr(source_, "id", AtomicKind::kId);
  src_name_ = b.Simple(source_, "name");
  src_version_ = b.Simple(source_, "version");
  src_url_ = b.Simple(source_, "url");
  src_imported_ = b.Simple(source_, "imported_date", AtomicKind::kDate);
  src_records_ = b.Simple(source_, "record_count", AtomicKind::kInt);
  src_contact_ = b.Simple(source_, "contact");
  src_license_ = b.Simple(source_, "license");
  src_citation_ = b.Simple(source_, "citation_policy");

  // --- molecules (the central protein entity) --------------------------------
  molecules_ = b.Rcd(b.Root(), "molecules");
  molecule_ = b.SetRcd(molecules_, "molecule");
  mol_id_ = b.Attr(molecule_, "id", AtomicKind::kId);
  mol_type_ = b.Attr(molecule_, "type");
  mol_name_ = b.Simple(molecule_, "name");
  symbol_ = b.Simple(molecule_, "symbol");
  mol_desc_ = b.Simple(molecule_, "description");
  created_ = b.Simple(molecule_, "created_date", AtomicKind::kDate);
  modified_ = b.Simple(molecule_, "modified_date", AtomicKind::kDate);
  organism_ref_ = b.Simple(molecule_, "organism_ref", AtomicKind::kIdRef);
  sequence_ = b.Rcd(molecule_, "sequence");
  seq_length_ = b.Simple(sequence_, "length", AtomicKind::kInt);
  seq_checksum_ = b.Simple(sequence_, "checksum");
  seq_residues_ = b.Simple(sequence_, "residues");
  seq_form_ = b.Simple(sequence_, "molecular_form");
  gene_ = b.Rcd(molecule_, "gene");
  locus_ = b.Simple(gene_, "locus");
  chromosome_ = b.Simple(gene_, "chromosome");
  gene_start_ = b.Simple(gene_, "start", AtomicKind::kInt);
  gene_end_ = b.Simple(gene_, "end", AtomicKind::kInt);
  strand_ = b.Simple(gene_, "strand");
  map_location_ = b.Simple(gene_, "map_location");
  protein_props_ = b.Rcd(molecule_, "protein_properties");
  mol_weight_ = b.Simple(protein_props_, "molecular_weight", AtomicKind::kFloat);
  iso_point_ = b.Simple(protein_props_, "isoelectric_point", AtomicKind::kFloat);
  prop_length_ = b.Simple(protein_props_, "length", AtomicKind::kInt);
  structure_ = b.Rcd(molecule_, "structure");  // sparse (solved structures)
  pdb_id_ = b.Simple(structure_, "pdb_id", AtomicKind::kId);
  resolution_ = b.Simple(structure_, "resolution", AtomicKind::kFloat);
  struct_method_ = b.Simple(structure_, "method");
  chains_ = b.Simple(structure_, "chains", AtomicKind::kInt);
  deposited_ = b.Simple(structure_, "deposited_date", AtomicKind::kDate);
  external_accession_ =
      b.SetSimple(molecule_, "external_accession", AtomicKind::kIdRef);
  synonyms_ = b.Rcd(molecule_, "synonyms");
  synonym_ = b.SetSimple(synonyms_, "synonym");
  keywords_ = b.Rcd(molecule_, "keywords");
  keyword_ = b.SetSimple(keywords_, "keyword");
  cellular_locations_ = b.Rcd(molecule_, "cellular_locations");
  cellular_location_ = b.SetSimple(cellular_locations_, "cellular_location");
  tissue_expressions_ = b.Rcd(molecule_, "tissue_expressions");
  tissue_expression_ = b.SetRcd(tissue_expressions_, "tissue_expression");
  tissue_ = b.Simple(tissue_expression_, "tissue");
  level_ = b.Simple(tissue_expression_, "level");
  annotations_ = b.Rcd(molecule_, "annotations");
  go_annotation_ = b.SetRcd(annotations_, "go_annotation");
  go_id_ = b.Attr(go_annotation_, "go_id");
  go_aspect_ = b.Simple(go_annotation_, "aspect");
  go_evidence_ = b.Simple(go_annotation_, "evidence");
  go_term_ = b.Simple(go_annotation_, "term");
  pathway_ref_ = b.SetSimple(annotations_, "pathway_ref", AtomicKind::kIdRef);
  function_note_ = b.SetSimple(annotations_, "function_note");
  domain_hit_ = b.SetRcd(molecule_, "domain_hit");
  dh_domain_ = b.Attr(domain_hit_, "domain", AtomicKind::kIdRef);
  dh_start_ = b.Simple(domain_hit_, "start", AtomicKind::kInt);
  dh_end_ = b.Simple(domain_hit_, "end", AtomicKind::kInt);
  dh_score_ = b.Simple(domain_hit_, "score", AtomicKind::kFloat);
  interaction_ref_ =
      b.SetSimple(molecule_, "interaction_ref", AtomicKind::kIdRef);

  // --- interactions ------------------------------------------------------------
  interactions_ = b.Rcd(b.Root(), "interactions");
  interaction_ = b.SetRcd(interactions_, "interaction");
  int_id_ = b.Attr(interaction_, "id", AtomicKind::kId);
  int_type_ = b.Attr(interaction_, "type");
  participant_a_ = b.Simple(interaction_, "participant_a", AtomicKind::kIdRef);
  participant_b_ = b.Simple(interaction_, "participant_b", AtomicKind::kIdRef);
  experiment_ref_ =
      b.SetSimple(interaction_, "experiment_ref", AtomicKind::kIdRef);
  confidence_ = b.Rcd(interaction_, "confidence");
  conf_score_ = b.Simple(confidence_, "score", AtomicKind::kFloat);
  conf_method_ = b.Simple(confidence_, "method");
  detection_ = b.Rcd(interaction_, "detection");
  det_method_ = b.Simple(detection_, "method");
  det_class_ = b.Simple(detection_, "confidence_class");
  kinetics_ = b.Rcd(interaction_, "kinetics");  // sparse
  kd_ = b.Simple(kinetics_, "kd", AtomicKind::kFloat);
  kon_ = b.Simple(kinetics_, "kon", AtomicKind::kFloat);
  koff_ = b.Simple(kinetics_, "koff", AtomicKind::kFloat);
  kin_unit_ = b.Simple(kinetics_, "unit");
  binding_site_ = b.SetRcd(interaction_, "binding_site");
  site_start_ = b.Simple(binding_site_, "start", AtomicKind::kInt);
  site_end_ = b.Simple(binding_site_, "end", AtomicKind::kInt);
  site_motif_ = b.Simple(binding_site_, "motif");
  provenance_source_ =
      b.Simple(interaction_, "provenance_source", AtomicKind::kIdRef);

  // --- experiments ---------------------------------------------------------------
  experiments_ = b.Rcd(b.Root(), "experiments");
  experiment_ = b.SetRcd(experiments_, "experiment");
  exp_id_ = b.Attr(experiment_, "id", AtomicKind::kId);
  exp_type_ = b.Attr(experiment_, "type");
  exp_desc_ = b.Simple(experiment_, "description");
  exp_method_ = b.Rcd(experiment_, "method");
  exp_method_name_ = b.Simple(exp_method_, "name");
  exp_ontology_ = b.Simple(exp_method_, "ontology_ref");
  conditions_ = b.Rcd(experiment_, "conditions");  // sparse
  temperature_ = b.Simple(conditions_, "temperature", AtomicKind::kFloat);
  ph_ = b.Simple(conditions_, "ph", AtomicKind::kFloat);
  buffer_ = b.Simple(conditions_, "buffer");
  publication_ref_ =
      b.Simple(experiment_, "publication_ref", AtomicKind::kIdRef);
  host_organism_ref_ =
      b.Simple(experiment_, "host_organism_ref", AtomicKind::kIdRef);

  // --- publications -----------------------------------------------------------------
  publications_ = b.Rcd(b.Root(), "publications");
  publication_ = b.SetRcd(publications_, "publication");
  pub_pubmed_ = b.Attr(publication_, "pubmed", AtomicKind::kId);
  pub_title_ = b.Simple(publication_, "title");
  pub_journal_ = b.Simple(publication_, "journal");
  pub_year_ = b.Simple(publication_, "year", AtomicKind::kInt);
  pub_volume_ = b.Simple(publication_, "volume");
  pub_pages_ = b.Simple(publication_, "pages");
  pub_abstract_ = b.Simple(publication_, "abstract");
  pub_doi_ = b.Simple(publication_, "doi");
  pub_issue_ = b.Simple(publication_, "issue");
  authors_ = b.Rcd(publication_, "authors");
  author_ = b.SetSimple(authors_, "author");

  // --- pathways ------------------------------------------------------------------------
  pathways_ = b.Rcd(b.Root(), "pathways");
  pathway_ = b.SetRcd(pathways_, "pathway");
  path_id_ = b.Attr(pathway_, "id", AtomicKind::kId);
  path_name_ = b.Simple(pathway_, "name");
  path_category_ = b.Simple(pathway_, "category");
  path_desc_ = b.Simple(pathway_, "description");
  path_source_ref_ = b.Simple(pathway_, "source_ref", AtomicKind::kIdRef);
  member_ref_ = b.SetSimple(pathway_, "member_ref", AtomicKind::kIdRef);

  // --- domains (imported October 2005) ------------------------------------------------
  domains_ = b.Rcd(b.Root(), "domains");
  domain_ = b.SetRcd(domains_, "domain");
  dom_id_ = b.Attr(domain_, "id", AtomicKind::kId);
  dom_name_ = b.Simple(domain_, "name");
  dom_family_ = b.Simple(domain_, "family");
  dom_desc_ = b.Simple(domain_, "description");
  dom_length_ = b.Simple(domain_, "length", AtomicKind::kInt);
  dom_interpro_ = b.Simple(domain_, "interpro_id");
  dom_source_ref_ = b.Simple(domain_, "source_ref", AtomicKind::kIdRef);

  // --- value links (semantic endpoints are the enclosing entities) ----------
  l_organism_ref_ = b.Link(molecule_, organism_, organism_ref_, org_id_);
  l_external_ = b.Link(molecule_, source_, external_accession_, src_id_);
  l_pathway_ref_ = b.Link(annotations_, pathway_, pathway_ref_, path_id_);
  l_domain_hit_ = b.Link(domain_hit_, domain_, dh_domain_, dom_id_);
  l_interaction_ref_ =
      b.Link(molecule_, interaction_, interaction_ref_, int_id_);
  l_participant_a_ = b.Link(interaction_, molecule_, participant_a_, mol_id_);
  l_participant_b_ = b.Link(interaction_, molecule_, participant_b_, mol_id_);
  l_experiment_ref_ =
      b.Link(interaction_, experiment_, experiment_ref_, exp_id_);
  l_provenance_ = b.Link(interaction_, source_, provenance_source_, src_id_);
  l_publication_ref_ =
      b.Link(experiment_, publication_, publication_ref_, pub_pubmed_);
  l_host_organism_ =
      b.Link(experiment_, organism_, host_organism_ref_, org_id_);
  l_path_source_ = b.Link(pathway_, source_, path_source_ref_, src_id_);
  l_path_member_ = b.Link(pathway_, molecule_, member_ref_, mol_id_);
  l_dom_source_ = b.Link(domain_, source_, dom_source_ref_, src_id_);

  graph_ = std::move(b).Build();
}

Result<MimiDataset> MimiDataset::Make(MimiParams params) {
  if (static_cast<unsigned char>(params.version) >
      static_cast<unsigned char>(MimiVersion::kJan2006)) {
    return Status::InvalidArgument(
        "bad MiMI version " +
        std::to_string(static_cast<unsigned>(params.version)) +
        " (valid: 0 = Apr 2004, 1 = Jan 2005, 2 = Jan 2006)");
  }
  if (!std::isfinite(params.scale) || params.scale <= 0.0 ||
      params.scale > 1000.0) {
    return Status::InvalidArgument("MiMI scale must be in (0, 1000]");
  }
  return MimiDataset(params);
}

Result<MimiDataset::Counts> MimiDataset::CountsFor(MimiVersion v) const {
  // Chosen so Jan 2006 yields ~7M data elements (Table 1: 7,055k); earlier
  // versions reflect the deployment's growth and the October 2005
  // protein-domain import (Table 5).
  switch (v) {
    case MimiVersion::kApr2004:
      return Counts{300, 6, 30000, 70000, 12000, 20000, 800, 0, 1.0, 0.0,
                    1.0};
    case MimiVersion::kJan2005:
      return Counts{400, 11, 60000, 150000, 24000, 40000, 1800, 0, 1.3, 0.0,
                    1.2};
    case MimiVersion::kJan2006:
      return Counts{500, 18, 80000, 200000, 30000, 45000, 2500, 10000, 2.0,
                    0.8, 1.4};
  }
  return Status::InvalidArgument(
      "bad MiMI version " + std::to_string(static_cast<unsigned>(v)) +
      " (valid: 0 = Apr 2004, 1 = Jan 2005, 2 = Jan 2006)");
}

// ---------------------------------------------------------------------------
// Streaming generator
// ---------------------------------------------------------------------------

class MimiStream : public InstanceStream, public ShardedInstanceSource {
 public:
  /// Top-level entity sections in serial traversal order.
  enum Section {
    kOrganisms = 0,
    kSources,
    kMolecules,
    kInteractions,
    kExperiments,
    kPublications,
    kPathways,
    kDomains,
    kNumSections
  };

  explicit MimiStream(const MimiDataset* ds) : ds_(ds) {}

  const SchemaGraph& schema() const override { return ds_->schema(); }

  Status Accept(InstanceVisitor* v) const override {
    return WalkContainers(v, /*with_units=*/true);
  }

  // --- ShardedInstanceSource ----------------------------------------------

  uint64_t NumUnits() const override {
    auto c = ds_->CountsFor(ds_->params_.version);
    if (!c.ok()) return 0;  // AcceptSkeleton reports the error
    uint64_t total = 0;
    for (int s = 0; s < kNumSections; ++s) total += SectionCount(*c, s);
    return total;
  }

  Status AcceptSkeleton(InstanceVisitor* v) const override {
    return WalkContainers(v, /*with_units=*/false);
  }

  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* v) const override {
    SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
    MimiDataset::Counts c;
    SSUM_ASSIGN_OR_RETURN(c, ds_->CountsFor(ds_->params_.version));
    uint64_t base = 0;
    for (int s = 0; s < kNumSections && begin < end; ++s) {
      const uint64_t section_end = base + SectionCount(c, s);
      for (; begin < end && begin < section_end; ++begin) {
        EmitUnit(v, c, s, begin - base);
      }
      base = section_end;
    }
    return Status::OK();
  }

 private:
  static void Leaf(InstanceVisitor* v, ElementId e) {
    v->OnEnter(e);
    v->OnLeave(e);
  }

  ElementId Container(int s) const {
    const MimiDataset& d = *ds_;
    const ElementId containers[kNumSections] = {
        d.organisms_,   d.sources_,      d.molecules_, d.interactions_,
        d.experiments_, d.publications_, d.pathways_,  d.domains_};
    return containers[s];
  }

  uint64_t SectionCount(const MimiDataset::Counts& c, int s) const {
    auto n = [&](uint64_t base) {
      return static_cast<uint64_t>(static_cast<double>(base) *
                                       ds_->params_.scale +
                                   0.5);
    };
    switch (s) {
      case kOrganisms:
        return n(c.organisms);
      case kSources:
        return n(c.sources);
      case kMolecules:
        return n(c.molecules);
      case kInteractions:
        return n(c.interactions);
      case kExperiments:
        return n(c.experiments);
      case kPublications:
        return n(c.publications);
      case kPathways:
        return n(c.pathways);
      case kDomains:
        return n(c.domains);
    }
    return 0;
  }

  /// One generator per unit, forked from the base seed by (section, index):
  /// identical draws whether the unit is reached serially or from the
  /// middle of a shard.
  Rng UnitRng(int section, uint64_t index) const {
    return Rng(ds_->params_.seed)
        .Fork((static_cast<uint64_t>(section) << 48) | index);
  }

  void EmitUnit(InstanceVisitor* v, const MimiDataset::Counts& c, int section,
                uint64_t index) const {
    Rng rng = UnitRng(section, index);
    switch (section) {
      case kOrganisms:
        EmitOrganism(v, &rng);
        break;
      case kSources:
        EmitSource(v);
        break;
      case kMolecules:
        EmitMolecule(v, &rng, c);
        break;
      case kInteractions:
        EmitInteraction(v, &rng);
        break;
      case kExperiments:
        EmitExperiment(v, &rng);
        break;
      case kPublications:
        EmitPublication(v, &rng);
        break;
      case kPathways:
        EmitPathway(v, &rng);
        break;
      case kDomains:
        EmitDomain(v, &rng);
        break;
    }
  }

  Status WalkContainers(InstanceVisitor* v, bool with_units) const {
    MimiDataset::Counts c;
    SSUM_ASSIGN_OR_RETURN(c, ds_->CountsFor(ds_->params_.version));
    v->OnEnter(schema().root());
    for (int s = 0; s < kNumSections; ++s) {
      v->OnEnter(Container(s));
      if (with_units) {
        const uint64_t n = SectionCount(c, s);
        for (uint64_t i = 0; i < n; ++i) EmitUnit(v, c, s, i);
      }
      v->OnLeave(Container(s));
    }
    v->OnLeave(schema().root());
    return Status::OK();
  }

  void EmitOrganism(InstanceVisitor* v, Rng* rng) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.organism_);
    Leaf(v, d.org_id_);
    Leaf(v, d.org_name_);
    if (rng->NextBool(0.5)) Leaf(v, d.org_common_);
    if (rng->NextBool(0.4)) Leaf(v, d.strain_);
    v->OnEnter(d.taxonomy_);
    Leaf(v, d.kingdom_);
    Leaf(v, d.phylum_);
    Leaf(v, d.tax_class_);
    Leaf(v, d.tax_order_);
    Leaf(v, d.family_);
    Leaf(v, d.genus_);
    Leaf(v, d.species_);
    v->OnLeave(d.taxonomy_);
    if (rng->NextBool(0.3)) {
      v->OnEnter(d.genome_);
      Leaf(v, d.assembly_);
      Leaf(v, d.genome_size_);
      Leaf(v, d.gene_count_);
      v->OnLeave(d.genome_);
    }
    v->OnLeave(d.organism_);
  }

  void EmitSource(InstanceVisitor* v) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.source_);
    Leaf(v, d.src_id_);
    Leaf(v, d.src_name_);
    Leaf(v, d.src_version_);
    Leaf(v, d.src_url_);
    Leaf(v, d.src_imported_);
    Leaf(v, d.src_records_);
    Leaf(v, d.src_contact_);
    Leaf(v, d.src_license_);
    Leaf(v, d.src_citation_);
    v->OnLeave(d.source_);
  }

  void EmitExperiment(InstanceVisitor* v, Rng* rng) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.experiment_);
    Leaf(v, d.exp_id_);
    if (rng->NextBool(0.7)) Leaf(v, d.exp_type_);
    Leaf(v, d.exp_desc_);
    v->OnEnter(d.exp_method_);
    Leaf(v, d.exp_method_name_);
    if (rng->NextBool(0.6)) Leaf(v, d.exp_ontology_);
    v->OnLeave(d.exp_method_);
    if (rng->NextBool(0.05)) {  // sparse structured conditions
      v->OnEnter(d.conditions_);
      Leaf(v, d.temperature_);
      Leaf(v, d.ph_);
      Leaf(v, d.buffer_);
      v->OnLeave(d.conditions_);
    }
    v->OnReference(d.l_publication_ref_);
    Leaf(v, d.publication_ref_);
    v->OnReference(d.l_host_organism_);
    Leaf(v, d.host_organism_ref_);
    v->OnLeave(d.experiment_);
  }

  void EmitPublication(InstanceVisitor* v, Rng* rng) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.publication_);
    Leaf(v, d.pub_pubmed_);
    Leaf(v, d.pub_title_);
    Leaf(v, d.pub_journal_);
    Leaf(v, d.pub_year_);
    if (rng->NextBool(0.8)) Leaf(v, d.pub_volume_);
    if (rng->NextBool(0.8)) Leaf(v, d.pub_pages_);
    if (rng->NextBool(0.6)) Leaf(v, d.pub_abstract_);
    if (rng->NextBool(0.5)) Leaf(v, d.pub_doi_);
    if (rng->NextBool(0.7)) Leaf(v, d.pub_issue_);
    v->OnEnter(d.authors_);
    for (uint64_t a = 0, m = 1 + rng->NextPoisson(2.0); a < m; ++a) {
      Leaf(v, d.author_);
    }
    v->OnLeave(d.authors_);
    v->OnLeave(d.publication_);
  }

  void EmitPathway(InstanceVisitor* v, Rng* rng) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.pathway_);
    Leaf(v, d.path_id_);
    Leaf(v, d.path_name_);
    if (rng->NextBool(0.7)) Leaf(v, d.path_category_);
    if (rng->NextBool(0.5)) Leaf(v, d.path_desc_);
    v->OnReference(d.l_path_source_);
    Leaf(v, d.path_source_ref_);
    for (uint64_t m = 0, k = rng->NextPoisson(8.0); m < k; ++m) {
      v->OnReference(d.l_path_member_);
      Leaf(v, d.member_ref_);
    }
    v->OnLeave(d.pathway_);
  }

  void EmitDomain(InstanceVisitor* v, Rng* rng) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.domain_);
    Leaf(v, d.dom_id_);
    Leaf(v, d.dom_name_);
    Leaf(v, d.dom_family_);
    Leaf(v, d.dom_desc_);
    Leaf(v, d.dom_length_);
    if (rng->NextBool(0.8)) Leaf(v, d.dom_interpro_);
    v->OnReference(d.l_dom_source_);
    Leaf(v, d.dom_source_ref_);
    v->OnLeave(d.domain_);
  }

  void EmitMolecule(InstanceVisitor* v, Rng* rng,
                    const MimiDataset::Counts& c) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.molecule_);
    Leaf(v, d.mol_id_);
    Leaf(v, d.mol_type_);
    Leaf(v, d.mol_name_);
    if (rng->NextBool(0.8)) Leaf(v, d.symbol_);
    if (rng->NextBool(0.6)) Leaf(v, d.mol_desc_);
    Leaf(v, d.created_);
    if (rng->NextBool(0.7)) Leaf(v, d.modified_);
    v->OnReference(d.l_organism_ref_);
    Leaf(v, d.organism_ref_);
    if (rng->NextBool(0.9)) {
      v->OnEnter(d.sequence_);
      Leaf(v, d.seq_length_);
      Leaf(v, d.seq_checksum_);
      Leaf(v, d.seq_residues_);
      if (rng->NextBool(0.4)) Leaf(v, d.seq_form_);
      v->OnLeave(d.sequence_);
    }
    if (rng->NextBool(0.7)) {
      v->OnEnter(d.gene_);
      Leaf(v, d.locus_);
      Leaf(v, d.chromosome_);
      Leaf(v, d.gene_start_);
      Leaf(v, d.gene_end_);
      Leaf(v, d.strand_);
      if (rng->NextBool(0.3)) Leaf(v, d.map_location_);
      v->OnLeave(d.gene_);
    }
    if (rng->NextBool(0.6)) {
      v->OnEnter(d.protein_props_);
      Leaf(v, d.mol_weight_);
      Leaf(v, d.iso_point_);
      Leaf(v, d.prop_length_);
      v->OnLeave(d.protein_props_);
    }
    if (rng->NextBool(0.03)) {  // sparse solved structures
      v->OnEnter(d.structure_);
      Leaf(v, d.pdb_id_);
      Leaf(v, d.resolution_);
      Leaf(v, d.struct_method_);
      Leaf(v, d.chains_);
      Leaf(v, d.deposited_);
      v->OnLeave(d.structure_);
    }
    for (uint64_t i = 0, m = rng->NextPoisson(1.5); i < m; ++i) {
      v->OnReference(d.l_external_);
      Leaf(v, d.external_accession_);
    }
    v->OnEnter(d.synonyms_);
    for (uint64_t i = 0, m = rng->NextPoisson(1.2); i < m; ++i)
      Leaf(v, d.synonym_);
    v->OnLeave(d.synonyms_);
    v->OnEnter(d.keywords_);
    for (uint64_t i = 0, m = rng->NextPoisson(1.5); i < m; ++i)
      Leaf(v, d.keyword_);
    v->OnLeave(d.keywords_);
    v->OnEnter(d.cellular_locations_);
    for (uint64_t i = 0, m = rng->NextPoisson(0.8); i < m; ++i)
      Leaf(v, d.cellular_location_);
    v->OnLeave(d.cellular_locations_);
    v->OnEnter(d.tissue_expressions_);
    for (uint64_t i = 0, m = rng->NextPoisson(0.5); i < m; ++i) {
      v->OnEnter(d.tissue_expression_);
      Leaf(v, d.tissue_);
      Leaf(v, d.level_);
      v->OnLeave(d.tissue_expression_);
    }
    v->OnLeave(d.tissue_expressions_);
    v->OnEnter(d.annotations_);
    for (uint64_t i = 0, m = rng->NextPoisson(c.go_per_molecule); i < m; ++i) {
      v->OnEnter(d.go_annotation_);
      Leaf(v, d.go_id_);
      Leaf(v, d.go_aspect_);
      Leaf(v, d.go_evidence_);
      Leaf(v, d.go_term_);
      v->OnLeave(d.go_annotation_);
    }
    for (uint64_t i = 0, m = rng->NextPoisson(0.4); i < m; ++i) {
      v->OnReference(d.l_pathway_ref_);
      Leaf(v, d.pathway_ref_);
    }
    for (uint64_t i = 0, m = rng->NextPoisson(0.3); i < m; ++i)
      Leaf(v, d.function_note_);
    v->OnLeave(d.annotations_);
    for (uint64_t i = 0, m = rng->NextPoisson(c.domains_per_molecule); i < m;
         ++i) {
      v->OnEnter(d.domain_hit_);
      v->OnReference(d.l_domain_hit_);
      Leaf(v, d.dh_domain_);
      Leaf(v, d.dh_start_);
      Leaf(v, d.dh_end_);
      Leaf(v, d.dh_score_);
      v->OnLeave(d.domain_hit_);
    }
    for (uint64_t i = 0,
                  m = rng->NextPoisson(c.interaction_refs_per_molecule);
         i < m; ++i) {
      v->OnReference(d.l_interaction_ref_);
      Leaf(v, d.interaction_ref_);
    }
    v->OnLeave(d.molecule_);
  }

  void EmitInteraction(InstanceVisitor* v, Rng* rng) const {
    const MimiDataset& d = *ds_;
    v->OnEnter(d.interaction_);
    Leaf(v, d.int_id_);
    Leaf(v, d.int_type_);
    v->OnReference(d.l_participant_a_);
    Leaf(v, d.participant_a_);
    v->OnReference(d.l_participant_b_);
    Leaf(v, d.participant_b_);
    for (uint64_t i = 0, m = 1 + rng->NextPoisson(0.9); i < m; ++i) {
      v->OnReference(d.l_experiment_ref_);
      Leaf(v, d.experiment_ref_);
    }
    v->OnEnter(d.confidence_);
    Leaf(v, d.conf_score_);
    Leaf(v, d.conf_method_);
    v->OnLeave(d.confidence_);
    if (rng->NextBool(0.7)) {
      v->OnEnter(d.detection_);
      Leaf(v, d.det_method_);
      Leaf(v, d.det_class_);
      v->OnLeave(d.detection_);
    }
    if (rng->NextBool(0.02)) {  // sparse kinetics measurements
      v->OnEnter(d.kinetics_);
      Leaf(v, d.kd_);
      Leaf(v, d.kon_);
      Leaf(v, d.koff_);
      Leaf(v, d.kin_unit_);
      v->OnLeave(d.kinetics_);
    }
    for (uint64_t i = 0, m = rng->NextPoisson(0.3); i < m; ++i) {
      v->OnEnter(d.binding_site_);
      Leaf(v, d.site_start_);
      Leaf(v, d.site_end_);
      if (rng->NextBool(0.5)) Leaf(v, d.site_motif_);
      v->OnLeave(d.binding_site_);
    }
    v->OnReference(d.l_provenance_);
    Leaf(v, d.provenance_source_);
    v->OnLeave(d.interaction_);
  }

  const MimiDataset* ds_;
};

std::unique_ptr<InstanceStream> MimiDataset::MakeStream() const {
  return std::make_unique<MimiStream>(this);
}

std::unique_ptr<ShardedInstanceSource> MimiDataset::MakeShardedSource() const {
  return std::make_unique<MimiStream>(this);
}

}  // namespace ssum
