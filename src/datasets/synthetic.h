#pragma once

#include <cstdint>

#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// Deterministic synthetic schema generator for scaling experiments — a
/// down-payment on the ROADMAP's gMark-style benchmark item. The paper
/// datasets top out at a few hundred elements; bench/approx_scaling needs
/// schemas one to two orders of magnitude larger, where the exact
/// MaxCoverage path is infeasible.
///
/// The generator grows a structural tree one element at a time: each new
/// element attaches to an existing non-Simple parent picked with a
/// skew-controlled bias toward early elements (producing a few high-fanout
/// hubs and many shallow leaves, like real document schemas), and becomes a
/// Simple leaf or a (possibly set-valued) record. A second pass sprinkles
/// value links between record elements, and a third derives skewed
/// cardinality annotations top-down: set-valued elements multiply their
/// parent's cardinality by a Poisson draw with an occasional heavy tail.
///
/// Everything is driven by one seed through forked Rng streams, so a given
/// parameter set always yields the identical graph and annotations —
/// across runs, platforms, and thread counts (generation is serial).
struct SyntheticSchemaParams {
  uint64_t seed = 42;
  /// Total element count including the root.
  size_t elements = 10000;
  /// Probability a new element is a Simple leaf (vs a record subtree).
  double simple_fraction = 0.45;
  /// Probability a new element is set-valued under its parent.
  double set_fraction = 0.35;
  /// Parent-choice bias exponent (> 0). Larger values concentrate fanout
  /// on early elements: the parent index is floor(|interior| * u^skew)
  /// for uniform u.
  double skew = 1.1;
  /// Probability a record element gets an outgoing value link.
  double value_link_fraction = 0.04;
  /// Mean per-parent multiplicity of set-valued elements (cardinality
  /// growth per tree level).
  double mean_multiplicity = 8.0;
  /// Cardinality ceiling, keeping deep chains finite.
  uint64_t max_card = 100000000;
};

struct SyntheticSchema {
  SchemaGraph graph;
  Annotations annotations;
};

SyntheticSchema BuildSyntheticSchema(const SyntheticSchemaParams& params);

}  // namespace ssum
