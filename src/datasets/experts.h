#pragma once

#include <vector>

#include "common/result.h"
#include "schema/schema_graph.h"

namespace ssum {

/// A simulated expert panel (paper Section 5.2): each member supplies a
/// ranked list of the schema elements they consider most worth surfacing;
/// the member's size-k summary is the first k entries. The rankings below
/// are hand-curated from domain knowledge of the datasets, with deliberate
/// tail disagreement calibrated to the paper's reported inter-expert
/// agreement levels (see DESIGN.md substitutions).
struct ExpertPanel {
  /// rankings[user] = ranked element list (>= 15 entries each).
  std::vector<std::vector<ElementId>> rankings;

  /// The first k elements of a member's ranking.
  std::vector<ElementId> SummaryOf(size_t user, size_t k) const;

  /// Elements chosen by at least `majority` members in their size-k
  /// summaries ("user consensus summary").
  std::vector<ElementId> Consensus(size_t k, size_t majority = 2) const;
};

/// Three XMark experts (benchmark power users).
Result<ExpertPanel> XMarkExpertPanel(const SchemaGraph& schema);

/// Three MiMI experts (the deployment's administrators).
Result<ExpertPanel> MimiExpertPanel(const SchemaGraph& schema);

}  // namespace ssum
