#include "datasets/experts.h"

#include <algorithm>
#include <map>

namespace ssum {

std::vector<ElementId> ExpertPanel::SummaryOf(size_t user, size_t k) const {
  const std::vector<ElementId>& r = rankings[user];
  size_t n = std::min(k, r.size());
  return std::vector<ElementId>(r.begin(), r.begin() + n);
}

std::vector<ElementId> ExpertPanel::Consensus(size_t k,
                                              size_t majority) const {
  std::map<ElementId, size_t> votes;
  for (size_t u = 0; u < rankings.size(); ++u) {
    for (ElementId e : SummaryOf(u, k)) ++votes[e];
  }
  std::vector<ElementId> out;
  // Preserve the first user's ranking order for determinism, then append
  // any remaining majority elements in id order.
  for (ElementId e : SummaryOf(0, k)) {
    if (votes[e] >= majority) out.push_back(e);
  }
  for (const auto& [e, v] : votes) {
    if (v >= majority &&
        std::find(out.begin(), out.end(), e) == out.end()) {
      out.push_back(e);
    }
  }
  return out;
}

namespace {

Result<ExpertPanel> PanelFromPaths(
    const SchemaGraph& schema,
    const std::vector<std::vector<const char*>>& users) {
  ExpertPanel panel;
  for (const auto& paths : users) {
    std::vector<ElementId> ranking;
    for (const char* p : paths) {
      ElementId e;
      auto res = schema.FindPath(p);
      if (!res.ok()) return res.status().WithContext("expert path");
      e = *res;
      ranking.push_back(e);
    }
    panel.rankings.push_back(std::move(ranking));
  }
  return panel;
}

}  // namespace

Result<ExpertPanel> XMarkExpertPanel(const SchemaGraph& schema) {
  return PanelFromPaths(
      schema,
      {
          // Expert 1: entity-centric view of the auction site.
          {"people/person", "regions/namerica/item",
           "open_auctions/open_auction", "closed_auctions/closed_auction",
           "open_auctions/open_auction/bidder", "regions/europe/item",
           "categories/category", "open_auctions/open_auction/seller",
           "people/person/profile", "closed_auctions/closed_auction/buyer",
           "people/person/address", "open_auctions/open_auction/annotation",
           "regions/asia/item", "people/person/watches/watch",
           "open_auctions/open_auction/interval"},
          // Expert 2: catalog-oriented view (categories early, bidder later).
          {"people/person", "open_auctions/open_auction",
           "regions/namerica/item", "categories/category",
           "open_auctions/open_auction/bidder",
           "closed_auctions/closed_auction", "regions/europe/item",
           "people/person/profile/interest",
           "closed_auctions/closed_auction/price", "people/person/profile",
           "open_auctions/open_auction/current", "regions/australia/item",
           "catgraph/edge", "people/person/name",
           "closed_auctions/closed_auction/annotation"},
          // Expert 3: trading-activity view.
          {"people/person", "regions/namerica/item",
           "open_auctions/open_auction", "open_auctions/open_auction/bidder",
           "closed_auctions/closed_auction",
           "open_auctions/open_auction/seller", "regions/europe/item",
           "people/person/address", "categories/category",
           "people/person/profile", "open_auctions/open_auction/itemref",
           "closed_auctions/closed_auction/buyer",
           "people/person/watches/watch", "regions/samerica/item",
           "open_auctions/open_auction/annotation"},
      });
}

Result<ExpertPanel> MimiExpertPanel(const SchemaGraph& schema) {
  return PanelFromPaths(
      schema,
      {
          // Administrator 1: data-model view (annotations are MiMI's
          // value-add, so they rank them early).
          {"molecules/molecule", "interactions/interaction",
           "molecules/molecule/annotations/go_annotation",
           "experiments/experiment", "publications/publication",
           "organisms/organism", "interactions/interaction/confidence",
           "pathways/pathway", "molecules/molecule/sequence",
           "domains/domain", "molecules/molecule/domain_hit",
           "molecules/molecule/gene", "sources/source",
           "molecules/molecule/external_accession",
           "publications/publication/authors/author"},
          // Administrator 2: integration-pipeline view (sources early).
          {"molecules/molecule", "interactions/interaction",
           "molecules/molecule/annotations/go_annotation",
           "experiments/experiment", "sources/source",
           "publications/publication", "organisms/organism",
           "interactions/interaction/detection",
           "molecules/molecule/external_accession",
           "interactions/interaction/confidence", "pathways/pathway",
           "molecules/molecule/sequence", "domains/domain",
           "interactions/interaction/provenance_source",
           "experiments/experiment/method"},
          // Administrator 3: biologist-facing view.
          {"molecules/molecule", "interactions/interaction",
           "molecules/molecule/annotations/go_annotation",
           "interactions/interaction/confidence",
           "experiments/experiment", "publications/publication",
           "molecules/molecule/gene", "organisms/organism",
           "molecules/molecule/domain_hit", "pathways/pathway",
           "molecules/molecule/sequence",
           "molecules/molecule/protein_properties",
           "molecules/molecule/tissue_expressions/tissue_expression",
           "domains/domain",
           "molecules/molecule/cellular_locations/cellular_location"},
      });
}

}  // namespace ssum
