#pragma once

#include <memory>

#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "query/workload.h"
#include "relational/bridge.h"
#include "relational/catalog.h"

namespace ssum {

/// Generation parameters for the TPC-H substrate (dbgen reimplementation,
/// see DESIGN.md). Row counts follow the TPC-H specification at the given
/// scale factor; the paper evaluates at sf = 0.1.
struct TpchParams {
  double sf = 0.1;
  uint64_t seed = 7;
  /// Mean lineitems per order (spec: uniform 1..7, mean 4).
  double lineitems_per_order = 4.0;
};

/// The TPC-H benchmark substrate: catalog, schema-graph mapping, streaming
/// row generator (for annotation at sf 0.1 without materializing ~12.5M
/// cells), a materializing generator (for examples/tests at tiny scale), and
/// the 22 benchmark query intentions.
class TpchDataset {
 public:
  /// Validated factory: rejects non-finite or non-positive scale factors and
  /// out-of-range lineitem fanouts with InvalidArgument instead of producing
  /// a generator with nonsensical (or overflowing) row counts. Prefer this
  /// whenever the parameters come from user input.
  static Result<TpchDataset> Make(TpchParams params);

  /// Direct construction for compiled-in parameter sets (defaults, tests).
  explicit TpchDataset(TpchParams params = {});

  const TpchParams& params() const { return params_; }
  const Catalog& catalog() const { return catalog_; }
  const RelationalSchemaMapping& mapping() const { return mapping_; }
  const SchemaGraph& schema() const { return mapping_.graph; }

  /// Streaming instance generator (structure + reference counts only).
  std::unique_ptr<InstanceStream> MakeStream() const;

  /// The same generator as a splittable source: one unit per row, tables
  /// concatenated in catalog order. Row events are value-free and identical
  /// within a table, so any sub-range replays without a generator state.
  std::unique_ptr<ShardedInstanceSource> MakeShardedSource() const;

  /// Materializes tables with plausible synthetic values and valid foreign
  /// keys. Intended for small scale factors (<= 0.01).
  Result<Database> GenerateDatabase() const;

  /// The 22 TPC-H queries as schema-element intentions.
  Result<Workload> Queries() const;

  /// Spec row count for table index `t` at the configured scale factor;
  /// InvalidArgument when `t` is not a TPC-H table index.
  Result<uint64_t> RowsOf(size_t table_index) const;

 private:
  uint64_t RowsOfUnchecked(size_t table_index) const;

  TpchParams params_;
  Catalog catalog_;
  RelationalSchemaMapping mapping_;
};

}  // namespace ssum
