#pragma once

#include <memory>

#include "instance/event_stream.h"
#include "query/workload.h"
#include "relational/bridge.h"
#include "relational/catalog.h"

namespace ssum {

/// Generation parameters for the TPC-H substrate (dbgen reimplementation,
/// see DESIGN.md). Row counts follow the TPC-H specification at the given
/// scale factor; the paper evaluates at sf = 0.1.
struct TpchParams {
  double sf = 0.1;
  uint64_t seed = 7;
  /// Mean lineitems per order (spec: uniform 1..7, mean 4).
  double lineitems_per_order = 4.0;
};

/// The TPC-H benchmark substrate: catalog, schema-graph mapping, streaming
/// row generator (for annotation at sf 0.1 without materializing ~12.5M
/// cells), a materializing generator (for examples/tests at tiny scale), and
/// the 22 benchmark query intentions.
class TpchDataset {
 public:
  explicit TpchDataset(TpchParams params = {});

  const TpchParams& params() const { return params_; }
  const Catalog& catalog() const { return catalog_; }
  const RelationalSchemaMapping& mapping() const { return mapping_; }
  const SchemaGraph& schema() const { return mapping_.graph; }

  /// Streaming instance generator (structure + reference counts only).
  std::unique_ptr<InstanceStream> MakeStream() const;

  /// Materializes tables with plausible synthetic values and valid foreign
  /// keys. Intended for small scale factors (<= 0.01).
  Result<Database> GenerateDatabase() const;

  /// The 22 TPC-H queries as schema-element intentions.
  Workload Queries() const;

  /// Spec row count for table index `t` at the configured scale factor.
  uint64_t RowsOf(size_t table_index) const;

 private:
  TpchParams params_;
  Catalog catalog_;
  RelationalSchemaMapping mapping_;
};

}  // namespace ssum
