#include <vector>

#include "common/logging.h"
#include "datasets/tpch.h"

namespace ssum {

// The 22 TPC-H queries as intentions: every relation plus every column a
// query's select / where / group-by clauses reference (Section 5.4: TPC-H
// intentions are "reverse engineered from the actual query"). Join keys are
// included — the user must locate them to express the join.
Result<Workload> TpchDataset::Queries() const {
  struct Spec {
    const char* name;
    std::vector<const char*> paths;
  };
  const std::vector<Spec> specs = {
      {"q01",
       {"lineitem", "lineitem/l_returnflag", "lineitem/l_linestatus",
        "lineitem/l_quantity", "lineitem/l_extendedprice",
        "lineitem/l_discount", "lineitem/l_tax", "lineitem/l_shipdate"}},
      {"q02",
       {"part", "supplier", "partsupp", "nation", "region",
        "supplier/s_acctbal", "supplier/s_name", "nation/n_name",
        "part/p_partkey", "part/p_mfgr", "supplier/s_address",
        "supplier/s_phone", "supplier/s_comment", "part/p_size",
        "part/p_type", "partsupp/ps_partkey", "partsupp/ps_suppkey",
        "partsupp/ps_supplycost", "region/r_name", "nation/n_regionkey",
        "supplier/s_nationkey"}},
      {"q03",
       {"customer", "orders", "lineitem", "customer/c_mktsegment",
        "customer/c_custkey", "orders/o_custkey", "orders/o_orderkey",
        "lineitem/l_orderkey", "lineitem/l_extendedprice",
        "lineitem/l_discount", "orders/o_orderdate", "orders/o_shippriority",
        "lineitem/l_shipdate"}},
      {"q04",
       {"orders", "lineitem", "orders/o_orderpriority", "orders/o_orderdate",
        "orders/o_orderkey", "lineitem/l_orderkey", "lineitem/l_commitdate",
        "lineitem/l_receiptdate"}},
      {"q05",
       {"customer", "orders", "lineitem", "supplier", "nation", "region",
        "nation/n_name", "lineitem/l_extendedprice", "lineitem/l_discount",
        "customer/c_custkey", "orders/o_custkey", "lineitem/l_orderkey",
        "orders/o_orderkey", "lineitem/l_suppkey", "supplier/s_suppkey",
        "customer/c_nationkey", "supplier/s_nationkey", "nation/n_regionkey",
        "region/r_regionkey", "region/r_name", "orders/o_orderdate"}},
      {"q06",
       {"lineitem", "lineitem/l_extendedprice", "lineitem/l_discount",
        "lineitem/l_shipdate", "lineitem/l_quantity"}},
      {"q07",
       {"supplier", "lineitem", "orders", "customer", "nation",
        "nation/n_name", "lineitem/l_shipdate", "lineitem/l_extendedprice",
        "lineitem/l_discount", "supplier/s_suppkey", "lineitem/l_suppkey",
        "orders/o_orderkey", "lineitem/l_orderkey", "customer/c_custkey",
        "orders/o_custkey", "supplier/s_nationkey", "customer/c_nationkey"}},
      {"q08",
       {"part", "supplier", "lineitem", "orders", "customer", "nation",
        "region", "orders/o_orderdate", "lineitem/l_extendedprice",
        "lineitem/l_discount", "region/r_name", "part/p_type",
        "nation/n_name", "part/p_partkey", "lineitem/l_partkey",
        "supplier/s_suppkey", "lineitem/l_suppkey"}},
      {"q09",
       {"part", "supplier", "lineitem", "partsupp", "orders", "nation",
        "nation/n_name", "orders/o_orderdate", "lineitem/l_extendedprice",
        "lineitem/l_discount", "partsupp/ps_supplycost",
        "lineitem/l_quantity", "part/p_name", "part/p_partkey",
        "lineitem/l_partkey", "partsupp/ps_partkey", "partsupp/ps_suppkey",
        "lineitem/l_suppkey"}},
      {"q10",
       {"customer", "orders", "lineitem", "nation", "customer/c_custkey",
        "customer/c_name", "lineitem/l_extendedprice", "lineitem/l_discount",
        "customer/c_acctbal", "nation/n_name", "customer/c_address",
        "customer/c_phone", "customer/c_comment", "orders/o_orderdate",
        "lineitem/l_returnflag", "orders/o_custkey", "lineitem/l_orderkey",
        "customer/c_nationkey"}},
      {"q11",
       {"partsupp", "supplier", "nation", "partsupp/ps_partkey",
        "partsupp/ps_supplycost", "partsupp/ps_availqty",
        "partsupp/ps_suppkey", "supplier/s_suppkey", "supplier/s_nationkey",
        "nation/n_name"}},
      {"q12",
       {"orders", "lineitem", "lineitem/l_shipmode",
        "orders/o_orderpriority", "lineitem/l_commitdate",
        "lineitem/l_shipdate", "lineitem/l_receiptdate",
        "orders/o_orderkey", "lineitem/l_orderkey"}},
      {"q13",
       {"customer", "orders", "customer/c_custkey", "orders/o_custkey",
        "orders/o_orderkey", "orders/o_comment"}},
      {"q14",
       {"lineitem", "part", "lineitem/l_extendedprice",
        "lineitem/l_discount", "part/p_type", "lineitem/l_shipdate",
        "part/p_partkey", "lineitem/l_partkey"}},
      {"q15",
       {"supplier", "lineitem", "supplier/s_suppkey", "supplier/s_name",
        "supplier/s_address", "supplier/s_phone", "lineitem/l_suppkey",
        "lineitem/l_extendedprice", "lineitem/l_discount",
        "lineitem/l_shipdate"}},
      {"q16",
       {"partsupp", "part", "supplier", "part/p_brand", "part/p_type",
        "part/p_size", "partsupp/ps_suppkey", "partsupp/ps_partkey",
        "part/p_partkey", "supplier/s_suppkey", "supplier/s_comment"}},
      {"q17",
       {"lineitem", "part", "part/p_brand", "part/p_container",
        "lineitem/l_quantity", "lineitem/l_extendedprice", "part/p_partkey",
        "lineitem/l_partkey"}},
      {"q18",
       {"customer", "orders", "lineitem", "customer/c_name",
        "customer/c_custkey", "orders/o_orderkey", "orders/o_orderdate",
        "orders/o_totalprice", "lineitem/l_quantity", "orders/o_custkey",
        "lineitem/l_orderkey"}},
      {"q19",
       {"lineitem", "part", "lineitem/l_extendedprice",
        "lineitem/l_discount", "part/p_brand", "part/p_container",
        "lineitem/l_quantity", "part/p_size", "lineitem/l_shipmode",
        "lineitem/l_shipinstruct", "part/p_partkey", "lineitem/l_partkey"}},
      {"q20",
       {"supplier", "nation", "partsupp", "part", "lineitem",
        "supplier/s_name", "supplier/s_address", "nation/n_name",
        "part/p_name", "partsupp/ps_availqty", "lineitem/l_quantity",
        "lineitem/l_shipdate", "partsupp/ps_partkey", "partsupp/ps_suppkey",
        "supplier/s_suppkey", "supplier/s_nationkey"}},
      {"q21",
       {"supplier", "lineitem", "orders", "nation", "supplier/s_name",
        "lineitem/l_receiptdate", "lineitem/l_commitdate",
        "orders/o_orderstatus", "nation/n_name", "lineitem/l_suppkey",
        "supplier/s_suppkey", "orders/o_orderkey", "lineitem/l_orderkey",
        "supplier/s_nationkey"}},
      {"q22",
       {"customer", "orders", "customer/c_phone", "customer/c_acctbal",
        "orders/o_custkey", "customer/c_custkey"}},
  };
  Workload w;
  w.name = "tpch";
  for (const Spec& s : specs) {
    std::vector<std::string> paths(s.paths.begin(), s.paths.end());
    auto q = MakeIntention(schema(), s.name, paths);
    if (!q.ok()) return q.status().WithContext(std::string("query ") + s.name);
    w.queries.push_back(std::move(*q));
  }
  return w;
}

}  // namespace ssum
