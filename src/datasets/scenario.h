#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.h"
#include "common/random.h"
#include "common/result.h"
#include "datasets/registry.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "query/workload.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "store/fingerprint.h"

namespace ssum {

class ArtifactCache;  // store/artifact_cache.h

/// Declarative description of a synthetic evaluation scenario: a schema
/// shape, a conforming instance stream, and a query workload — all derived
/// deterministically from one seed. Scenarios generalize the paper's three
/// fixed datasets into an open-ended stress matrix (size, fan-out, depth,
/// Choice/SetOf mix, cardinality skew); case files live in bench/scenarios/
/// and docs/scenarios.md documents the grammar.
///
/// Every field maps 1:1 to a `key: value` line of the config format
/// (common/config.h); SerializeScenarioSpec renders the canonical form,
/// which doubles as the spec's cache identity.
struct ScenarioSpec {
  std::string name = "scenario";
  uint64_t seed = 1;

  // --- schema shape --------------------------------------------------------
  /// Element budget for the generated schema graph (including the root and
  /// the entity-class roots; Choice repair may add a few alternatives).
  uint32_t schema_elements = 200;
  /// Top-level entity classes: SetOf Rcd children of the root, one instance
  /// subtree per unit — the shard boundary of the generated stream.
  uint32_t entity_classes = 8;
  /// Structural depth cap for grown elements (root is depth 0).
  uint32_t max_depth = 8;
  /// Fraction of grown elements that are Simple leaves.
  double simple_fraction = 0.55;
  /// Fraction of grown elements that are Choice groups.
  double choice_fraction = 0.05;
  /// Probability a grown element carries the SetOf wrapper.
  double set_fraction = 0.25;
  /// Parent-pick skew when attaching grown elements: 1 spreads children
  /// uniformly over the interior; larger values concentrate fan-out on the
  /// oldest (shallowest) elements, producing hub-heavy schemas.
  double fanout_skew = 1.0;
  /// Value links added per schema element (0.05 => ~5 links per 100
  /// elements) between non-Simple, non-root endpoints.
  double value_link_fraction = 0.05;

  // --- instance shape ------------------------------------------------------
  /// Total top-level entity instances (units of the sharded stream).
  uint64_t instance_units = 2000;
  /// How units distribute over entity classes: "uniform" (even split) or
  /// "zipf" (class c weighted 1/(c+1)^zipf_s — few huge extents, many
  /// small, the skew of real databases).
  std::string unit_skew = "uniform";
  /// Zipf exponent for unit_skew: zipf (also heavy-tails per-unit set
  /// counts in that mode).
  double zipf_s = 1.1;
  /// Mean SetOf-child count per parent instance (Poisson).
  double set_mean = 3.0;
  /// Probability a single-valued child is present in an instance.
  double presence = 0.9;
  /// Probability each outgoing value link of an entered node emits a
  /// reference instance.
  double reference_prob = 0.5;
  /// Hard node budget per unit subtree — bounds memory and keeps hostile
  /// configs (set_mean^depth blowups) generative rather than explosive.
  uint32_t max_unit_nodes = 4096;

  // --- mutation (version chains) -------------------------------------------
  /// Seeded mutation layer deriving a new *version* of the same scenario: a
  /// chain of specs that keep every base knob fixed and vary only mutate.*
  /// (what `ssum gen --chain` emits). Cardinality perturbation and element
  /// removal leave the schema — and therefore every annotation shape —
  /// unchanged, which is what makes delta-annotation applicable between
  /// versions; added elements change the schema and deliberately key a cold
  /// path (docs/incremental.md).
  uint64_t mutate_seed = 0;
  /// Fraction of units whose set cardinalities are perturbed. 0 = pristine.
  double mutate_fraction = 0.0;
  /// Relative set_mean swing of a perturbed unit: multiplier drawn
  /// uniformly from [1 - amplitude, 1 + amplitude].
  double mutate_amplitude = 0.25;
  /// Extra schema elements grown by the mutation layer (schema change).
  uint32_t mutate_add_elements = 0;
  /// Highest-id Simple leaves whose instances stop being emitted (a
  /// data-level removal; the schema keeps the element, its cardinality
  /// drops toward zero).
  uint32_t mutate_remove_elements = 0;

  // --- workload ------------------------------------------------------------
  uint32_t queries = 40;
  double query_mean_size = 3.0;
  double query_focus = 0.8;
  double query_locality = 0.7;

  // --- bench ---------------------------------------------------------------
  /// Summary size k the scenario bench evaluates at.
  uint32_t summary_k = 8;
  /// Case tier: "quick" cases run in the per-PR CI gate, "full" cases only
  /// in the nightly comprehensive matrix.
  std::string tier = "quick";
};

/// Parses a spec from an already-parsed config, validating ranges and
/// rejecting unknown keys (misspellings fail loudly with line context).
Result<ScenarioSpec> ParseScenarioSpec(const ConfigMap& config);

/// Parses a spec from config text / a case file.
Result<ScenarioSpec> ParseScenarioSpecText(
    std::string_view text, std::string_view source,
    const ParseLimits& limits = ParseLimits::Defaults());
Result<ScenarioSpec> LoadScenarioSpecFile(
    const std::string& path,
    const ParseLimits& limits = ParseLimits::Defaults());

/// Canonical config rendering: fixed key order, normalized numbers. Parsing
/// it back yields an identical spec; the bytes are the spec's cache
/// identity (see ScenarioFingerprint).
std::string SerializeScenarioSpec(const ScenarioSpec& spec);

/// Identity fingerprint of a spec: generator revision + canonical
/// serialization. Stable across runs and processes; any knob change moves
/// the fingerprint, so stale cache entries stop being addressed.
Fingerprint ScenarioFingerprint(const ScenarioSpec& spec);

/// Units whose generated bytes differ between two versions of one scenario
/// — the analytic fast path of incremental annotation (no instance
/// traversal; two Rng draws per unit). Valid only when the specs differ in
/// the mutate seed/fraction/amplitude knobs alone (same schema, same unit
/// count); anything else is InvalidArgument and callers fall back to
/// digest diffing (instance/unit_digest.h), which is always correct.
Result<std::vector<uint64_t>> DirtyUnitsBetween(const ScenarioSpec& base,
                                                const ScenarioSpec& next);

/// A generated scenario dataset: schema graph plus a splittable instance
/// stream, one unit per top-level entity instance. Construction is cheap
/// (schema only); instances are generated on traversal, each unit from its
/// own forked Rng so any sub-range replays without the preceding events —
/// the sharded pass is bit-identical to the serial one at any shard count.
class ScenarioDataset {
 public:
  /// Validates the spec and synthesizes the schema. The spec is re-checked
  /// even when it came from ParseScenarioSpec (defense in depth for
  /// hand-built specs).
  static Result<ScenarioDataset> Make(const ScenarioSpec& spec);

  const ScenarioSpec& spec() const { return spec_; }
  const SchemaGraph& schema() const { return schema_; }

  /// Units of the sharded stream (== spec.instance_units).
  uint64_t NumUnits() const { return class_base_.back(); }

  /// Serial / splittable traversals. The dataset must outlive the stream.
  std::unique_ptr<InstanceStream> MakeStream() const;
  std::unique_ptr<ShardedInstanceSource> MakeShardedSource() const;

  /// Samples the scenario workload. Importance derives from `annotations`
  /// (annotate first, then ask for queries — same shape as LoadScenario).
  Result<Workload> Queries(const Annotations& annotations) const;

 private:
  friend class ScenarioStream;

  ScenarioDataset(ScenarioSpec spec, SchemaGraph schema);

  ScenarioSpec spec_;
  SchemaGraph schema_;
  /// SetOf Rcd children of the root, one per entity class.
  std::vector<ElementId> class_roots_;
  /// Prefix sums of units per class: class c owns global unit indices
  /// [class_base_[c], class_base_[c+1]). Size entity_classes + 1.
  std::vector<uint64_t> class_base_;
  /// Outgoing value links per element (referrer side), in link-id order.
  std::vector<std::vector<LinkId>> vlinks_of_;
  /// Per-element emission suppression (mutate.remove_elements): 1 marks a
  /// Simple leaf whose instances are dropped. Suppressed leaves consume no
  /// Rng draws when emitted, so dropping them leaves every other byte of
  /// the unit untouched.
  std::vector<uint8_t> mutate_suppressed_;
  /// Per-unit set-count multiplier distribution in zipf mode.
  std::unique_ptr<ZipfTable> set_zipf_;
};

/// Generates, annotates (warm-starting from `cache` when non-null, keyed by
/// the scenario fingerprint + schema fingerprint) and packages a scenario
/// as a DatasetBundle, making generated datasets first-class citizens of
/// the registry/cache/serve paths.
Result<DatasetBundle> LoadScenario(const ScenarioSpec& spec,
                                   ArtifactCache* cache = nullptr);

/// LoadScenario from a case file path (the daemon's "scenario:<path>"
/// dataset names and the CLI's `ssum gen --config` both land here).
Result<DatasetBundle> LoadScenarioFile(const std::string& path,
                                       ArtifactCache* cache = nullptr);

/// Outcome of AnnotateScenarioDelta: the next version's Annotations plus
/// everything a caller needs to report *how* they were obtained. The
/// annotations are bit-identical to a full AnnotateSchemaSharded pass over
/// `next` regardless of which path produced them.
struct ScenarioDeltaResult {
  /// Base version's annotations (always produced; the incremental matrix
  /// patch needs them to seed the dirty-element set).
  Annotations base_annotations;
  /// Next version's annotations.
  Annotations annotations;
  /// Units re-walked by the delta pass (== all units on the cold path).
  uint64_t dirty_units = 0;
  uint64_t total_units = 0;
  /// Delta containers replayed to reconstruct the base annotations (0 when
  /// the base was a direct cache hit or computed cold).
  uint32_t lineage_hops = 0;
  /// True when the delta pass ran; false means the cold fallback annotated
  /// `next` from scratch (see fallback_reason).
  bool incremental = false;
  /// Human-readable cause of a cold fallback ("schema changed", ...);
  /// empty when incremental.
  std::string fallback_reason;
};

/// Incremental annotation across two versions of one scenario: obtains the
/// base annotations (cache lineage -> cold compute), derives the dirty-unit
/// set (the analytic DirtyUnitsBetween fast path, else per-unit digest
/// diffing), re-walks only the dirty units (stats/delta.h DeltaAnnotate),
/// and installs the resulting AnnotationDelta in `cache` (may be null) as a
/// lineage link keyed by the *next* version's annotation key — exactly the
/// key LoadScenario uses, so later loads of the next version resolve the
/// chain. Any precondition the delta path cannot meet (different schemas,
/// different unit counts, a failed delta pass) degrades to the cold path;
/// the function only fails when even cold annotation fails.
Result<ScenarioDeltaResult> AnnotateScenarioDelta(const ScenarioDataset& base,
                                                  const ScenarioDataset& next,
                                                  ArtifactCache* cache = nullptr);

}  // namespace ssum
