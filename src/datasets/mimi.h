#pragma once

#include <memory>

#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "query/workload.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Archived versions of the MiMI database (paper Table 5). The real MiMI is
/// unavailable; the synthetic substrate mirrors its published description —
/// a protein-centric integration of heterogeneous sources whose coverage
/// grew over time, with protein-domain data imported in October 2005.
enum class MimiVersion : unsigned char {
  kApr2004 = 0,  ///< early deployment: fewer sources, no domains
  kJan2005,      ///< broad growth vs Apr 2004
  kJan2006,      ///< "current" version used throughout Section 5
};

const char* MimiVersionName(MimiVersion v);

struct MimiParams {
  MimiVersion version = MimiVersion::kJan2006;
  uint64_t seed = 17;
  /// Global scale multiplier over the version's base counts (1.0 yields
  /// ~7M data elements for Jan 2006, matching Table 1's 7,055k).
  double scale = 1.0;
};

/// The MiMI substrate: a 155-element protein-interaction schema, a
/// version-dependent skewed data generator, a 52-query workload mirroring
/// the deployment's trace profile (real queries concentrate on the central
/// entities — Section 5.4's observation), and simulated expert summaries
/// (see datasets/experts.h).
///
/// Schema design notes (mirroring real integrated biomedical databases):
///  - reference leaves (interaction_ref, participant_a, ...) are Simple
///    idref carriers whose value links connect the enclosing entities;
///  - several structurally rich but sparsely populated subtrees exist
///    (structure, kinetics, conditions, genome) — elaborate integration
///    substructures with little data, which purely schema-driven
///    summarization overvalues (Figure 9's MiMI result).
class MimiDataset {
 public:
  /// Validated factory: rejects an out-of-range version byte (e.g. from a
  /// deserialized or CLI-supplied value cast into MimiVersion) and
  /// non-finite or non-positive scale with InvalidArgument. Prefer this
  /// whenever the parameters come from user input.
  static Result<MimiDataset> Make(MimiParams params);

  /// Direct construction for compiled-in parameter sets (defaults, tests).
  explicit MimiDataset(MimiParams params = {});

  const SchemaGraph& schema() const { return graph_; }
  const MimiParams& params() const { return params_; }

  std::unique_ptr<InstanceStream> MakeStream() const;

  /// The same generator as a splittable source: one unit per top-level
  /// entity (organism, source, molecule, ...), each with its own forked
  /// Rng, so annotating it sharded is bit-identical to the serial pass.
  std::unique_ptr<ShardedInstanceSource> MakeShardedSource() const;

  /// The 52 query intentions (identical across versions so Table 5
  /// compares like with like).
  Result<Workload> Queries() const;

 private:
  friend class MimiStream;

  /// Version-dependent entity counts (at scale 1).
  struct Counts {
    uint64_t organisms, sources, molecules, interactions, experiments,
        publications, pathways, domains;
    double go_per_molecule;
    double domains_per_molecule;     // 0 before Oct 2005
    double interaction_refs_per_molecule;
  };
  /// InvalidArgument when `v` is not a known archived version.
  Result<Counts> CountsFor(MimiVersion v) const;

  MimiParams params_;
  SchemaGraph graph_;

  // Element ids (named after their schema paths).
  ElementId organisms_, organism_, org_id_, org_name_, org_common_, strain_;
  ElementId taxonomy_, kingdom_, phylum_, tax_class_, tax_order_, family_,
      genus_, species_;
  ElementId genome_, assembly_, genome_size_, gene_count_;
  ElementId sources_, source_, src_id_, src_name_, src_version_, src_url_,
      src_imported_, src_records_, src_contact_, src_license_, src_citation_;
  ElementId molecules_, molecule_, mol_id_, mol_type_, mol_name_, symbol_,
      mol_desc_, created_, modified_;
  ElementId organism_ref_;
  ElementId sequence_, seq_length_, seq_checksum_, seq_residues_, seq_form_;
  ElementId gene_, locus_, chromosome_, gene_start_, gene_end_, strand_,
      map_location_;
  ElementId protein_props_, mol_weight_, iso_point_, prop_length_;
  ElementId structure_, pdb_id_, resolution_, struct_method_, chains_,
      deposited_;
  ElementId external_accession_;
  ElementId synonyms_, synonym_;
  ElementId keywords_, keyword_;
  ElementId cellular_locations_, cellular_location_;
  ElementId tissue_expressions_, tissue_expression_, tissue_, level_;
  ElementId annotations_, go_annotation_, go_id_, go_aspect_, go_evidence_,
      go_term_, pathway_ref_, function_note_;
  ElementId domain_hit_, dh_domain_, dh_start_, dh_end_, dh_score_;
  ElementId interaction_ref_;
  ElementId interactions_, interaction_, int_id_, int_type_;
  ElementId participant_a_, participant_b_, experiment_ref_;
  ElementId confidence_, conf_score_, conf_method_;
  ElementId detection_, det_method_, det_class_;
  ElementId kinetics_, kd_, kon_, koff_, kin_unit_;
  ElementId binding_site_, site_start_, site_end_, site_motif_;
  ElementId provenance_source_;
  ElementId experiments_, experiment_, exp_id_, exp_type_, exp_desc_;
  ElementId exp_method_, exp_method_name_, exp_ontology_;
  ElementId conditions_, temperature_, ph_, buffer_;
  ElementId publication_ref_, host_organism_ref_;
  ElementId publications_, publication_, pub_pubmed_, pub_title_,
      pub_journal_, pub_year_, pub_volume_, pub_pages_, pub_abstract_,
      pub_doi_, pub_issue_, authors_, author_;
  ElementId pathways_, pathway_, path_id_, path_name_, path_category_,
      path_desc_, path_source_ref_, member_ref_;
  ElementId domains_, domain_, dom_id_, dom_name_, dom_family_, dom_desc_,
      dom_length_, dom_interpro_, dom_source_ref_;

  // Value links.
  LinkId l_organism_ref_, l_external_, l_pathway_ref_, l_domain_hit_,
      l_interaction_ref_, l_participant_a_, l_participant_b_,
      l_experiment_ref_, l_provenance_, l_publication_ref_,
      l_host_organism_, l_path_source_, l_path_member_, l_dom_source_;
};

}  // namespace ssum
