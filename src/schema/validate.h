#pragma once

#include "common/status.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Structural well-formedness checks beyond what the append-only API already
/// guarantees (Definition 1):
///  - exactly one element (the root) has no incoming structural link;
///  - Simple elements have no children;
///  - Rcd/Choice interior elements have at least one child (warning-level:
///    reported as FailedPrecondition only when `strict`);
///  - value-link carrier fields, when present, are Simple elements inside
///    their endpoint's subtree;
///  - value-link endpoints are not the root.
Status ValidateSchemaGraph(const SchemaGraph& graph, bool strict = false);

}  // namespace ssum
