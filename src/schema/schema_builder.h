#pragma once

#include <string>
#include <utility>

#include "schema/schema_graph.h"

namespace ssum {

/// Ergonomic construction wrapper for hand-written schemas (datasets, tests).
///
/// All methods fatal-check their arguments: misuse is a programming error in
/// schema-authoring code, not a runtime condition. Code assembling schemas
/// from untrusted input should use SchemaGraph's Status-returning API
/// directly.
class SchemaBuilder {
 public:
  explicit SchemaBuilder(std::string root_label = "root")
      : graph_(std::move(root_label)) {}

  ElementId Root() const { return graph_.root(); }

  /// Record child occurring once under its parent.
  ElementId Rcd(ElementId parent, std::string label);
  /// Record child occurring many times (SetOf Rcd) — collections, relations.
  ElementId SetRcd(ElementId parent, std::string label);
  /// Choice group child.
  ElementId Choice(ElementId parent, std::string label, bool set_of = false);
  /// Single-valued Simple child (column / attribute / text leaf).
  ElementId Simple(ElementId parent, std::string label,
                   AtomicKind atomic = AtomicKind::kString);
  /// Set-valued Simple child.
  ElementId SetSimple(ElementId parent, std::string label,
                      AtomicKind atomic = AtomicKind::kString);
  /// XML-style attribute: Simple child labeled "@name".
  ElementId Attr(ElementId parent, std::string name,
                 AtomicKind atomic = AtomicKind::kString);

  /// Value link between semantic endpoints, with optional Simple carriers.
  LinkId Link(ElementId referrer, ElementId referee,
              ElementId referrer_field = kInvalidElement,
              ElementId referee_field = kInvalidElement);

  /// Access during construction (e.g. to look up paths).
  const SchemaGraph& graph() const { return graph_; }

  /// Finalizes the schema. The builder must not be used afterwards.
  SchemaGraph Build() && { return std::move(graph_); }

 private:
  ElementId Add(ElementId parent, std::string label, ElementType type);

  SchemaGraph graph_;
};

}  // namespace ssum
