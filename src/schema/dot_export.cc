#include "schema/dot_export.h"

#include <sstream>

namespace ssum {

namespace {

std::string EscapeDot(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string ExportDot(const SchemaGraph& graph, const DotOptions& options) {
  std::vector<bool> visible(graph.size(), false);
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (graph.depth(e) > options.max_depth) continue;
    if (options.hide_simple && graph.type(e).kind == TypeKind::kSimple)
      continue;
    visible[e] = true;
  }
  std::ostringstream os;
  os << "digraph \"" << EscapeDot(options.graph_name) << "\" {\n"
     << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (!visible[e]) continue;
    std::string label = EscapeDot(graph.label(e));
    if (graph.type(e).set_of) label += "*";
    os << "  n" << e << " [label=\"" << label << "\"";
    if (graph.type(e).abstract_) os << ", style=dashed";
    if (e < options.highlight.size() && options.highlight[e]) {
      os << ", peripheries=2";
    }
    os << "];\n";
  }
  for (const StructuralLink& s : graph.structural_links()) {
    if (!visible[s.parent] || !visible[s.child]) continue;
    os << "  n" << s.parent << " -> n" << s.child << ";\n";
  }
  for (const ValueLink& v : graph.value_links()) {
    if (!visible[v.referrer] || !visible[v.referee]) continue;
    os << "  n" << v.referrer << " -> n" << v.referee << " [style=dashed];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ssum
