#include "schema/type.h"

#include "common/string_util.h"

namespace ssum {

namespace {

const char* AtomicName(AtomicKind a) {
  switch (a) {
    case AtomicKind::kString:
      return "str";
    case AtomicKind::kInt:
      return "int";
    case AtomicKind::kFloat:
      return "float";
    case AtomicKind::kDate:
      return "date";
    case AtomicKind::kId:
      return "id";
    case AtomicKind::kIdRef:
      return "idref";
    case AtomicKind::kNone:
      return "none";
  }
  return "?";
}

bool AtomicFromName(const std::string& name, AtomicKind* out) {
  if (name == "str") *out = AtomicKind::kString;
  else if (name == "int") *out = AtomicKind::kInt;
  else if (name == "float") *out = AtomicKind::kFloat;
  else if (name == "date") *out = AtomicKind::kDate;
  else if (name == "id") *out = AtomicKind::kId;
  else if (name == "idref") *out = AtomicKind::kIdRef;
  else if (name == "none") *out = AtomicKind::kNone;
  else return false;
  return true;
}

}  // namespace

std::string TypeToString(const ElementType& type) {
  std::string out;
  if (type.abstract_) out += "Abstract ";
  if (type.set_of) out += "SetOf ";
  switch (type.kind) {
    case TypeKind::kSimple:
      out += "Simple(";
      out += AtomicName(type.atomic);
      out += ")";
      break;
    case TypeKind::kRcd:
      out += "Rcd";
      break;
    case TypeKind::kChoice:
      out += "Choice";
      break;
  }
  return out;
}

bool TypeFromString(const std::string& text, ElementType* out) {
  ElementType t;
  std::string rest = text;
  if (StartsWith(rest, "Abstract ")) {
    t.abstract_ = true;
    rest = rest.substr(9);
  }
  if (StartsWith(rest, "SetOf ")) {
    t.set_of = true;
    rest = rest.substr(6);
  }
  if (rest == "Rcd") {
    t.kind = TypeKind::kRcd;
  } else if (rest == "Choice") {
    t.kind = TypeKind::kChoice;
  } else if (StartsWith(rest, "Simple(") && EndsWith(rest, ")")) {
    t.kind = TypeKind::kSimple;
    std::string atom = rest.substr(7, rest.size() - 8);
    if (!AtomicFromName(atom, &t.atomic)) return false;
  } else {
    return false;
  }
  *out = t;
  return true;
}

}  // namespace ssum
