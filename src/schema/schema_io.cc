#include "schema/schema_io.h"

#include <fstream>
#include <sstream>

#include "common/status_builder.h"
#include "common/string_util.h"

namespace ssum {

namespace {

std::string IdOrDash(ElementId id) {
  return id == kInvalidElement ? "-" : std::to_string(id);
}

Result<ElementId> ParseIdOrDash(const std::string& field) {
  if (field == "-") return kInvalidElement;
  int64_t v;
  SSUM_ASSIGN_OR_RETURN(v, ParseInt64(field));
  if (v < 0) return Status::ParseError("negative element id");
  return static_cast<ElementId>(v);
}

}  // namespace

std::string SerializeSchema(const SchemaGraph& graph) {
  std::ostringstream os;
  os << "ssum-schema v1\n";
  for (ElementId e = 0; e < graph.size(); ++e) {
    os << "e\t" << e << '\t' << IdOrDash(graph.parent(e)) << '\t'
       << TypeToString(graph.type(e)) << '\t' << graph.label(e) << '\n';
  }
  for (const ValueLink& v : graph.value_links()) {
    os << "v\t" << v.referrer << '\t' << v.referee << '\t'
       << IdOrDash(v.referrer_field) << '\t' << IdOrDash(v.referee_field)
       << '\n';
  }
  return os.str();
}

Result<SchemaGraph> ParseSchema(const std::string& text,
                                const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(text.size(), limits, "schema text"));
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || TrimWhitespace(line) != "ssum-schema v1") {
    return ParseErrorAt(1, 0) << "missing 'ssum-schema v1' header";
  }
  SchemaGraph graph("pending-root");
  bool saw_root = false;
  size_t line_no = 1;
  size_t line_offset = line.size() + 1;
  size_t records = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const size_t this_offset = line_offset;
    line_offset += line.size() + 1;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (++records > limits.max_items) {
      return ParseErrorAt(line_no, this_offset)
             << "schema exceeds the " << limits.max_items << "-record limit";
    }
    std::vector<std::string> f = SplitString(line, '\t');
    auto fail = [&](const std::string& why) {
      return Status(ParseErrorAt(line_no, this_offset) << why);
    };
    if (f[0] == "e") {
      if (f.size() != 5) return fail("element line needs 5 fields");
      int64_t id;
      SSUM_ASSIGN_OR_RETURN(id, ParseInt64(f[1]));
      ElementId parent;
      SSUM_ASSIGN_OR_RETURN(parent, ParseIdOrDash(f[2]));
      ElementType type;
      if (!TypeFromString(f[3], &type)) return fail("bad type '" + f[3] + "'");
      const std::string& label = f[4];
      if (!saw_root) {
        if (parent != kInvalidElement || id != 0) {
          return fail("first element must be the root with id 0");
        }
        graph = SchemaGraph(label, type);
        saw_root = true;
        continue;
      }
      if (id != static_cast<int64_t>(graph.size())) {
        return fail("element ids must be dense and in order");
      }
      auto res = graph.AddElement(parent, label, type);
      if (!res.ok()) return res.status().WithContext("line " +
                                                     std::to_string(line_no));
    } else if (f[0] == "v") {
      if (f.size() != 5) return fail("value-link line needs 5 fields");
      if (!saw_root) return fail("value link before any element");
      ElementId referrer, referee, rfield, efield;
      SSUM_ASSIGN_OR_RETURN(referrer, ParseIdOrDash(f[1]));
      SSUM_ASSIGN_OR_RETURN(referee, ParseIdOrDash(f[2]));
      SSUM_ASSIGN_OR_RETURN(rfield, ParseIdOrDash(f[3]));
      SSUM_ASSIGN_OR_RETURN(efield, ParseIdOrDash(f[4]));
      auto res = graph.AddValueLink(referrer, referee, rfield, efield);
      if (!res.ok()) return res.status().WithContext("line " +
                                                     std::to_string(line_no));
    } else {
      return fail("unknown record type '" + f[0] + "'");
    }
  }
  if (!saw_root) return Status::ParseError("schema has no elements");
  return graph;
}

Status WriteSchemaFile(const SchemaGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << SerializeSchema(graph);
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<SchemaGraph> ReadSchemaFile(const std::string& path,
                                   const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto graph = ParseSchema(buf.str(), limits);
  if (!graph.ok()) return graph.status().WithContext(path);
  return graph;
}

}  // namespace ssum
