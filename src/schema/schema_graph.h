#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "schema/type.h"

namespace ssum {

/// Dense element identifier. Elements are numbered 0..size()-1 in insertion
/// order; the root is always element 0.
using ElementId = uint32_t;
inline constexpr ElementId kInvalidElement =
    std::numeric_limits<ElementId>::max();

/// Dense link identifier within its link class (structural or value).
using LinkId = uint32_t;

/// Structural link (e_parent ->S e_child), Definition 1.
struct StructuralLink {
  ElementId parent;
  ElementId child;
  bool operator==(const StructuralLink&) const = default;
};

/// Value link (e_referrer ->V e_referee), Definition 1. In the paper value
/// links syntactically connect Simple children but semantically connect the
/// enclosing parents; this struct stores the semantic (parent-level)
/// endpoints, with the Simple carriers kept for provenance.
struct ValueLink {
  ElementId referrer;
  ElementId referee;
  /// Simple elements that syntactically carry the link (e.g. bidder/@person
  /// and person/@id). kInvalidElement when the link was declared directly
  /// between the parents (e.g. relational FK groups).
  ElementId referrer_field = kInvalidElement;
  ElementId referee_field = kInvalidElement;
  bool operator==(const ValueLink&) const = default;
};

/// One adjacency entry of an element. Each physical link produces two
/// Neighbor records, one at each endpoint, with `forward` telling whether
/// the owning element is the link's origin (parent / referrer).
struct Neighbor {
  ElementId other;
  LinkId link;          ///< index into structural_links() or value_links()
  bool is_structural;
  bool forward;         ///< owner is parent (structural) / referrer (value)
};

/// Labeled directed schema graph SG = <E, S, V, r> (Definition 1).
///
/// Models both hierarchical (XML) and relational schemas:
///  - hierarchical: the element tree mirrors the document schema;
///  - relational: an artificial root has one structural child per relation
///    (SetOf Rcd), whose Simple children are the columns; foreign keys are
///    value links.
///
/// The graph is append-only: elements and value links may be added, never
/// removed. All derived indices (paths, depths, adjacency) stay valid.
class SchemaGraph {
 public:
  /// Creates a graph containing only the root element.
  explicit SchemaGraph(std::string root_label = "root",
                       ElementType root_type = ElementType::Rcd());

  /// Appends a child element under `parent`. Returns its id.
  /// Fails when `parent` is out of range or is a Simple element.
  Result<ElementId> AddElement(ElementId parent, std::string label,
                               ElementType type);

  /// Adds a value link between the (semantic) endpoints. The optional field
  /// arguments record the Simple carriers. Fails on out-of-range ids or
  /// self-links.
  Result<LinkId> AddValueLink(ElementId referrer, ElementId referee,
                              ElementId referrer_field = kInvalidElement,
                              ElementId referee_field = kInvalidElement);

  size_t size() const { return labels_.size(); }
  ElementId root() const { return 0; }

  const std::string& label(ElementId e) const { return labels_[e]; }
  const ElementType& type(ElementId e) const { return types_[e]; }
  /// Parent in the structural tree; kInvalidElement for the root.
  ElementId parent(ElementId e) const { return parents_[e]; }
  const std::vector<ElementId>& children(ElementId e) const {
    return children_[e];
  }
  /// Number of structural links from root to `e` (root depth 0).
  uint32_t depth(ElementId e) const { return depths_[e]; }

  const std::vector<StructuralLink>& structural_links() const {
    return slinks_;
  }
  const std::vector<ValueLink>& value_links() const { return vlinks_; }

  /// Structural link connecting `child` to its parent; kInvalidElement-guarded:
  /// must not be called on the root.
  LinkId parent_link(ElementId child) const { return parent_link_[child]; }

  /// All adjacency records of `e` (structural + value, both directions).
  const std::vector<Neighbor>& neighbors(ElementId e) const {
    return neighbors_[e];
  }

  /// Total number of physical links.
  size_t num_links() const { return slinks_.size() + vlinks_.size(); }

  /// Slash-separated label path from root, e.g. "site/people/person".
  std::string PathOf(ElementId e) const;

  /// Resolves a slash-separated path. Root is addressed by its own label.
  Result<ElementId> FindPath(std::string_view path) const;

  /// All elements whose label equals `label` (labels are not unique).
  std::vector<ElementId> FindByLabel(std::string_view label) const;

  /// First element with the given label in insertion order, or error.
  Result<ElementId> FindFirstByLabel(std::string_view label) const;

  /// True when `ancestor` lies on the structural path from root to `e`
  /// (an element is its own ancestor).
  bool IsStructuralAncestor(ElementId ancestor, ElementId e) const;

  /// Elements in the structural subtree rooted at `e`, pre-order.
  std::vector<ElementId> Subtree(ElementId e) const;

  /// Human-readable multi-line dump (labels, types, links) for debugging.
  std::string DebugString() const;

 private:
  std::vector<std::string> labels_;
  std::vector<ElementType> types_;
  std::vector<ElementId> parents_;
  std::vector<LinkId> parent_link_;
  std::vector<uint32_t> depths_;
  std::vector<std::vector<ElementId>> children_;
  std::vector<StructuralLink> slinks_;
  std::vector<ValueLink> vlinks_;
  std::vector<std::vector<Neighbor>> neighbors_;
};

}  // namespace ssum
