#include "schema/schema_graph.h"

#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace ssum {

SchemaGraph::SchemaGraph(std::string root_label, ElementType root_type) {
  labels_.push_back(std::move(root_label));
  root_type.set_of = false;  // the root is a single document / catalog
  types_.push_back(root_type);
  parents_.push_back(kInvalidElement);
  parent_link_.push_back(kInvalidElement);
  depths_.push_back(0);
  children_.emplace_back();
  neighbors_.emplace_back();
}

Result<ElementId> SchemaGraph::AddElement(ElementId parent, std::string label,
                                          ElementType type) {
  if (parent >= size()) {
    return Status::InvalidArgument("AddElement: parent id out of range");
  }
  if (types_[parent].kind == TypeKind::kSimple) {
    return Status::InvalidArgument("AddElement: parent '" + labels_[parent] +
                                   "' is a Simple element");
  }
  if (label.empty()) {
    return Status::InvalidArgument("AddElement: empty label");
  }
  ElementId id = static_cast<ElementId>(size());
  LinkId link = static_cast<LinkId>(slinks_.size());
  labels_.push_back(std::move(label));
  types_.push_back(type);
  parents_.push_back(parent);
  parent_link_.push_back(link);
  depths_.push_back(depths_[parent] + 1);
  children_.emplace_back();
  neighbors_.emplace_back();
  children_[parent].push_back(id);
  slinks_.push_back({parent, id});
  neighbors_[parent].push_back({id, link, /*is_structural=*/true,
                                /*forward=*/true});
  neighbors_[id].push_back({parent, link, /*is_structural=*/true,
                            /*forward=*/false});
  return id;
}

Result<LinkId> SchemaGraph::AddValueLink(ElementId referrer, ElementId referee,
                                         ElementId referrer_field,
                                         ElementId referee_field) {
  if (referrer >= size() || referee >= size()) {
    return Status::InvalidArgument("AddValueLink: endpoint id out of range");
  }
  if (referrer == referee) {
    return Status::InvalidArgument("AddValueLink: self link on '" +
                                   labels_[referrer] + "'");
  }
  if (referrer_field != kInvalidElement && referrer_field >= size()) {
    return Status::InvalidArgument("AddValueLink: referrer field out of range");
  }
  if (referee_field != kInvalidElement && referee_field >= size()) {
    return Status::InvalidArgument("AddValueLink: referee field out of range");
  }
  LinkId link = static_cast<LinkId>(vlinks_.size());
  vlinks_.push_back({referrer, referee, referrer_field, referee_field});
  neighbors_[referrer].push_back({referee, link, /*is_structural=*/false,
                                  /*forward=*/true});
  neighbors_[referee].push_back({referrer, link, /*is_structural=*/false,
                                 /*forward=*/false});
  return link;
}

std::string SchemaGraph::PathOf(ElementId e) const {
  SSUM_CHECK(e < size(), "PathOf: element out of range");
  std::vector<std::string_view> parts;
  for (ElementId cur = e; cur != kInvalidElement; cur = parents_[cur]) {
    parts.push_back(labels_[cur]);
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '/';
    out += *it;
  }
  return out;
}

Result<ElementId> SchemaGraph::FindPath(std::string_view path) const {
  std::vector<std::string> parts = SplitString(path, '/');
  if (parts.empty()) return Status::InvalidArgument("FindPath: empty path");
  size_t idx = 0;
  ElementId cur = root();
  if (parts[0] == labels_[root()]) {
    idx = 1;  // path may start with the root label
  }
  for (; idx < parts.size(); ++idx) {
    ElementId next = kInvalidElement;
    for (ElementId c : children_[cur]) {
      if (labels_[c] == parts[idx]) {
        next = c;
        break;
      }
    }
    if (next == kInvalidElement) {
      return Status::NotFound("FindPath: no child '" + parts[idx] +
                              "' under '" + PathOf(cur) + "'");
    }
    cur = next;
  }
  return cur;
}

std::vector<ElementId> SchemaGraph::FindByLabel(std::string_view label) const {
  std::vector<ElementId> out;
  for (ElementId e = 0; e < size(); ++e) {
    if (labels_[e] == label) out.push_back(e);
  }
  return out;
}

Result<ElementId> SchemaGraph::FindFirstByLabel(std::string_view label) const {
  for (ElementId e = 0; e < size(); ++e) {
    if (labels_[e] == label) return e;
  }
  return Status::NotFound("no element labeled '" + std::string(label) + "'");
}

bool SchemaGraph::IsStructuralAncestor(ElementId ancestor, ElementId e) const {
  SSUM_CHECK(ancestor < size() && e < size(), "ancestor test out of range");
  for (ElementId cur = e; cur != kInvalidElement; cur = parents_[cur]) {
    if (cur == ancestor) return true;
    // Early exit: depth is monotone along the parent chain.
    if (depths_[cur] < depths_[ancestor]) return false;
  }
  return false;
}

std::vector<ElementId> SchemaGraph::Subtree(ElementId e) const {
  SSUM_CHECK(e < size(), "Subtree: element out of range");
  std::vector<ElementId> out;
  std::vector<ElementId> stack{e};
  while (!stack.empty()) {
    ElementId cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    const auto& kids = children_[cur];
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) stack.push_back(*it);
  }
  return out;
}

std::string SchemaGraph::DebugString() const {
  std::ostringstream os;
  os << "SchemaGraph(" << size() << " elements, " << slinks_.size()
     << " structural links, " << vlinks_.size() << " value links)\n";
  for (ElementId e = 0; e < size(); ++e) {
    os << "  [" << e << "] " << PathOf(e) << " : " << TypeToString(types_[e])
       << "\n";
  }
  for (const auto& v : vlinks_) {
    os << "  vlink " << labels_[v.referrer] << " -> " << labels_[v.referee]
       << "\n";
  }
  return os.str();
}

}  // namespace ssum
