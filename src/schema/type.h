#pragma once

#include <string>

namespace ssum {

/// Structural kind of an element's type (Definition 1).
///
///   tau ::= SetOf tau | Simple | (Rcd | Choice)[e1:tau1, ..., en:taun]
///
/// `SetOf` is modeled as a flag on the element rather than a wrapper node:
/// an element is either single-valued or set-valued under its parent.
/// Summaries add an `Abstract` wrapper (Definition 2), likewise a flag.
enum class TypeKind : unsigned char {
  kSimple = 0,  ///< atomic value (relational column, XML attribute/text)
  kRcd,         ///< record: all children present ("all"/"sequence" groups)
  kChoice,      ///< choice: exactly one child present
};

/// Atomic value domain for Simple elements. Used by the instance layer and
/// the relational catalog; the summarization algorithms never inspect it.
enum class AtomicKind : unsigned char {
  kString = 0,
  kInt,
  kFloat,
  kDate,
  kId,     ///< unique key within the element's extent
  kIdRef,  ///< reference to an Id element (value-link source)
  kNone,   ///< not a Simple element
};

/// Full element type: kind plus the SetOf / Abstract wrappers.
struct ElementType {
  TypeKind kind = TypeKind::kRcd;
  bool set_of = false;    ///< SetOf wrapper: may occur multiple times
  bool abstract_ = false; ///< Abstract wrapper: summary element
  AtomicKind atomic = AtomicKind::kNone;

  static ElementType Simple(AtomicKind a = AtomicKind::kString,
                            bool set_of = false) {
    return {TypeKind::kSimple, set_of, false, a};
  }
  static ElementType Rcd(bool set_of = false) {
    return {TypeKind::kRcd, set_of, false, AtomicKind::kNone};
  }
  static ElementType Choice(bool set_of = false) {
    return {TypeKind::kChoice, set_of, false, AtomicKind::kNone};
  }

  bool operator==(const ElementType&) const = default;
};

/// Short printable form, e.g. "SetOf Rcd", "Simple(int)", "Abstract Rcd".
std::string TypeToString(const ElementType& type);

/// Inverse of TypeToString for the schema text format. Returns false on
/// unrecognized input.
bool TypeFromString(const std::string& text, ElementType* out);

}  // namespace ssum
