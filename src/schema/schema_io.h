#pragma once

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Line-oriented, tab-separated text format for schema graphs:
///
///   ssum-schema v1
///   e <tab> <id> <tab> <parent|-> <tab> <type> <tab> <label>
///   v <tab> <referrer> <tab> <referee> <tab> <rfield|-> <tab> <efield|->
///
/// Elements appear in id order (so parents precede children); the first
/// element line is the root with parent "-". Labels may contain any
/// character except tab and newline.
std::string SerializeSchema(const SchemaGraph& graph);

/// Parses the text format. Fails with ParseError on any malformed line and
/// with the underlying graph error on inconsistent structure.
Result<SchemaGraph> ParseSchema(const std::string& text);

/// File convenience wrappers.
Status WriteSchemaFile(const SchemaGraph& graph, const std::string& path);
Result<SchemaGraph> ReadSchemaFile(const std::string& path);

}  // namespace ssum
