#pragma once

#include <iosfwd>
#include <string>

#include "common/parse_limits.h"
#include "common/result.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Line-oriented, tab-separated text format for schema graphs:
///
///   ssum-schema v1
///   e <tab> <id> <tab> <parent|-> <tab> <type> <tab> <label>
///   v <tab> <referrer> <tab> <referee> <tab> <rfield|-> <tab> <efield|->
///
/// Elements appear in id order (so parents precede children); the first
/// element line is the root with parent "-". Labels may contain any
/// character except tab and newline.
std::string SerializeSchema(const SchemaGraph& graph);

/// Parses the text format. Abort-free: any malformed line yields a
/// ParseError with line and byte-offset context, inconsistent structure the
/// underlying graph error, and input over `limits` (total bytes, element +
/// link records vs `limits.max_items`) an OutOfRange status.
Result<SchemaGraph> ParseSchema(
    const std::string& text,
    const ParseLimits& limits = ParseLimits::Defaults());

/// File convenience wrappers.
Status WriteSchemaFile(const SchemaGraph& graph, const std::string& path);
Result<SchemaGraph> ReadSchemaFile(
    const std::string& path,
    const ParseLimits& limits = ParseLimits::Defaults());

}  // namespace ssum
