#pragma once

#include <string>

#include "schema/schema_graph.h"

namespace ssum {

/// Rendering options for Graphviz export.
struct DotOptions {
  /// Suppress elements deeper than this (0 = root only, default unlimited).
  uint32_t max_depth = 0xffffffff;
  /// Skip Simple elements (columns / attributes) to reduce clutter.
  bool hide_simple = false;
  /// Graph name emitted in the DOT header.
  std::string graph_name = "schema";
  /// Optional set of element ids to highlight (doubled border). Indexed by
  /// ElementId; empty means no highlighting.
  std::vector<bool> highlight;
};

/// Renders the schema graph in Graphviz DOT: structural links as solid
/// edges, value links as dashed edges, SetOf elements marked with '*'
/// (matching the paper's Figure 1 conventions).
std::string ExportDot(const SchemaGraph& graph, const DotOptions& options = {});

}  // namespace ssum
