#include "schema/schema_builder.h"

#include "common/logging.h"

namespace ssum {

ElementId SchemaBuilder::Add(ElementId parent, std::string label,
                             ElementType type) {
  auto res = graph_.AddElement(parent, std::move(label), type);
  SSUM_CHECK(res.ok(), res.status().ToString());
  return *res;
}

ElementId SchemaBuilder::Rcd(ElementId parent, std::string label) {
  return Add(parent, std::move(label), ElementType::Rcd(false));
}

ElementId SchemaBuilder::SetRcd(ElementId parent, std::string label) {
  return Add(parent, std::move(label), ElementType::Rcd(true));
}

ElementId SchemaBuilder::Choice(ElementId parent, std::string label,
                                bool set_of) {
  return Add(parent, std::move(label), ElementType::Choice(set_of));
}

ElementId SchemaBuilder::Simple(ElementId parent, std::string label,
                                AtomicKind atomic) {
  return Add(parent, std::move(label), ElementType::Simple(atomic, false));
}

ElementId SchemaBuilder::SetSimple(ElementId parent, std::string label,
                                   AtomicKind atomic) {
  return Add(parent, std::move(label), ElementType::Simple(atomic, true));
}

ElementId SchemaBuilder::Attr(ElementId parent, std::string name,
                              AtomicKind atomic) {
  SSUM_CHECK(!name.empty(), "Attr: empty name");
  std::string label = name[0] == '@' ? std::move(name) : "@" + name;
  return Add(parent, std::move(label), ElementType::Simple(atomic, false));
}

LinkId SchemaBuilder::Link(ElementId referrer, ElementId referee,
                           ElementId referrer_field, ElementId referee_field) {
  auto res =
      graph_.AddValueLink(referrer, referee, referrer_field, referee_field);
  SSUM_CHECK(res.ok(), res.status().ToString());
  return *res;
}

}  // namespace ssum
