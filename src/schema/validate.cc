#include "schema/validate.h"

namespace ssum {

Status ValidateSchemaGraph(const SchemaGraph& graph, bool strict) {
  // Root uniqueness: every non-root element has a parent by construction,
  // so it suffices to check the root has none.
  if (graph.parent(graph.root()) != kInvalidElement) {
    return Status::Internal("root has a structural parent");
  }
  for (ElementId e = 0; e < graph.size(); ++e) {
    const ElementType& t = graph.type(e);
    if (t.kind == TypeKind::kSimple && !graph.children(e).empty()) {
      return Status::FailedPrecondition("Simple element '" + graph.PathOf(e) +
                                        "' has children");
    }
    if (strict && e != graph.root() && t.kind != TypeKind::kSimple &&
        graph.children(e).empty()) {
      return Status::FailedPrecondition("interior element '" +
                                        graph.PathOf(e) + "' has no children");
    }
    if (e != graph.root() && graph.label(e).empty()) {
      return Status::FailedPrecondition("element with empty label");
    }
  }
  for (const ValueLink& v : graph.value_links()) {
    if (v.referrer == graph.root() || v.referee == graph.root()) {
      return Status::FailedPrecondition("value link touches the root");
    }
    if (v.referrer_field != kInvalidElement) {
      if (graph.type(v.referrer_field).kind != TypeKind::kSimple) {
        return Status::FailedPrecondition(
            "referrer field '" + graph.PathOf(v.referrer_field) +
            "' is not Simple");
      }
      if (!graph.IsStructuralAncestor(v.referrer, v.referrer_field)) {
        return Status::FailedPrecondition(
            "referrer field '" + graph.PathOf(v.referrer_field) +
            "' is outside referrer subtree");
      }
    }
    if (v.referee_field != kInvalidElement) {
      if (graph.type(v.referee_field).kind != TypeKind::kSimple) {
        return Status::FailedPrecondition("referee field '" +
                                          graph.PathOf(v.referee_field) +
                                          "' is not Simple");
      }
      if (!graph.IsStructuralAncestor(v.referee, v.referee_field)) {
        return Status::FailedPrecondition("referee field '" +
                                          graph.PathOf(v.referee_field) +
                                          "' is outside referee subtree");
      }
    }
  }
  return Status::OK();
}

}  // namespace ssum
