#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "core/summary.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Interactive expanded-summary view (paper Figure 2(C)): starting from a
/// full summary, the user selectively expands abstract elements, revealing
/// the original elements of their groups while the rest of the schema stays
/// abstracted. This is the stateful API a schema browser builds on.
///
/// The session never mutates the summary; expansion state lives here.
class ExplorationSession {
 public:
  /// `schema` and `summary` must outlive the session; the summary must be
  /// over `schema`.
  ExplorationSession(const SchemaGraph& schema, const SchemaSummary& summary);

  /// Reveals the group of `abstract_rep`. Fails when the element is not an
  /// abstract element of the summary.
  Status Expand(ElementId abstract_rep);

  /// Hides the group again. Fails when the element is not abstract or was
  /// not expanded.
  Status Collapse(ElementId abstract_rep);

  bool IsExpanded(ElementId abstract_rep) const;

  /// Elements currently on screen: the root, collapsed abstract elements,
  /// and the members of every expanded group — in schema-id order.
  std::vector<ElementId> VisibleElements() const;

  /// Number of elements on screen — the "information density" the user is
  /// currently exposed to (paper Section 1).
  size_t VisibleCount() const;

  /// A link on screen. `abstract_from` / `abstract_to` tell whether the
  /// endpoint is a collapsed abstract element; `dashed` marks links that
  /// stand for (or are) value links, per the paper's drawing convention.
  struct VisibleLink {
    ElementId from;
    ElementId to;
    bool abstract_from;
    bool abstract_to;
    bool dashed;
  };

  /// Links between visible elements, consolidated across collapsed groups.
  std::vector<VisibleLink> VisibleLinks() const;

  /// Graphviz rendering of the current view: collapsed abstract elements as
  /// rounded boxes, expanded members as plain boxes inside a cluster
  /// (Figure 2(C)'s dashed frame).
  std::string ToDot(const std::string& graph_name = "exploration") const;

 private:
  /// The visible node standing for original element `e`: `e` itself when
  /// its group is expanded, its representative otherwise (the root stands
  /// for itself).
  ElementId ProxyOf(ElementId e) const;

  const SchemaGraph& schema_;
  const SchemaSummary& summary_;
  std::vector<bool> expanded_;  // indexed by ElementId (representatives)
};

}  // namespace ssum
