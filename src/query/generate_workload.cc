#include "query/generate_workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ssum {

Workload GenerateWorkload(const SchemaGraph& schema,
                          const std::vector<double>& importance,
                          const WorkloadGenOptions& options) {
  SSUM_CHECK(importance.size() == schema.size(),
             "importance vector must match the schema");
  SSUM_CHECK(options.focus >= 0.0 && options.focus <= 1.0,
             "focus must lie in [0,1]");
  Rng rng(options.seed);

  // Sampling weights: importance^(2*focus), normalized over non-root
  // elements. focus=0 degenerates to uniform; focus=1 squares importance,
  // concentrating mass on the head of the distribution.
  const double exponent = 2.0 * options.focus;
  std::vector<double> weights(schema.size(), 0.0);
  for (ElementId e = 0; e < schema.size(); ++e) {
    if (e == schema.root()) continue;
    double base = std::max(importance[e], 0.0);
    weights[e] = exponent == 0.0 ? 1.0 : std::pow(base, exponent);
  }

  Workload workload;
  workload.name = "synthetic(focus=" + std::to_string(options.focus) + ")";
  for (size_t q = 0; q < options.num_queries; ++q) {
    QueryIntention intention;
    intention.name = "s" + std::to_string(q + 1);
    size_t target_size =
        1 + static_cast<size_t>(rng.NextPoisson(
                std::max(0.0, options.mean_size - 1.0)));
    // Anchor element.
    size_t anchor_idx = rng.NextWeighted(weights);
    if (anchor_idx >= schema.size()) anchor_idx = 1 % schema.size();
    ElementId anchor = static_cast<ElementId>(anchor_idx);
    intention.elements.push_back(anchor);
    std::vector<ElementId> anchor_subtree = schema.Subtree(anchor);
    // Additional elements: local to the anchor with probability `locality`,
    // fresh importance-weighted draws otherwise.
    size_t guard = 0;
    while (intention.elements.size() < target_size &&
           ++guard < 20 * target_size + 50) {
      ElementId next;
      if (rng.NextBool(options.locality) && anchor_subtree.size() > 1) {
        next = anchor_subtree[1 + rng.NextBounded(anchor_subtree.size() - 1)];
      } else {
        size_t idx = rng.NextWeighted(weights);
        if (idx >= schema.size()) continue;
        next = static_cast<ElementId>(idx);
      }
      if (next == schema.root()) continue;
      if (std::find(intention.elements.begin(), intention.elements.end(),
                    next) != intention.elements.end()) {
        continue;
      }
      intention.elements.push_back(next);
    }
    workload.queries.push_back(std::move(intention));
  }
  return workload;
}

}  // namespace ssum
