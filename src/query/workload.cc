#include "query/workload.h"

#include <sstream>

#include "common/string_util.h"

namespace ssum {

double Workload::AverageIntentionSize() const {
  if (queries.empty()) return 0;
  double total = 0;
  for (const QueryIntention& q : queries) total += static_cast<double>(q.size());
  return total / static_cast<double>(queries.size());
}

std::string SerializeWorkload(const SchemaGraph& graph,
                              const Workload& workload) {
  std::ostringstream os;
  for (const QueryIntention& q : workload.queries) {
    os << q.name;
    for (ElementId e : q.elements) os << '\t' << graph.PathOf(e);
    os << '\n';
  }
  return os.str();
}

Result<Workload> ParseWorkload(const SchemaGraph& graph, std::string name,
                               const std::string& text) {
  Workload w;
  w.name = std::move(name);
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> f = SplitString(line, '\t');
    if (f.size() < 2) {
      return Status::ParseError("workload line " + std::to_string(line_no) +
                                ": need a name and at least one path");
    }
    std::vector<std::string> paths(f.begin() + 1, f.end());
    QueryIntention q;
    auto res = MakeIntention(graph, f[0], paths);
    if (!res.ok()) {
      return res.status().WithContext("workload line " +
                                      std::to_string(line_no));
    }
    w.queries.push_back(std::move(*res));
  }
  return w;
}

}  // namespace ssum
