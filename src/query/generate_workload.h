#pragma once

#include "common/random.h"
#include "query/workload.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Synthetic workload generation (extension of the paper's Section 5.4
/// discussion). The paper conjectures that schema summaries help *real*
/// workloads — which concentrate on important elements — more than
/// benchmark workloads, which "spread their queries around the schema",
/// but notes its experiments "do not provide enough information to verify
/// this conjecture". This generator parameterizes exactly that axis so the
/// conjecture can be tested (see bench/conjecture_workload_focus).
struct WorkloadGenOptions {
  /// Number of query intentions.
  size_t num_queries = 50;
  /// Mean intention size (>= 1; sizes are 1 + Poisson(mean - 1)).
  double mean_size = 3.0;
  /// Focus in [0, 1]: 0 samples anchor elements uniformly at random
  /// (benchmark-like), 1 samples them proportionally to importance^2
  /// (sharply concentrated, real-trace-like). Intermediate values
  /// interpolate the exponent.
  double focus = 1.0;
  /// Probability that each additional intention element is drawn from the
  /// anchor's structural subtree (locality); otherwise it is drawn like a
  /// fresh anchor.
  double locality = 0.7;
  uint64_t seed = 99;
};

/// Samples a workload over `schema`. `importance` must be indexed by
/// ElementId (e.g. ImportanceResult::importance). The root is never
/// sampled.
Workload GenerateWorkload(const SchemaGraph& schema,
                          const std::vector<double>& importance,
                          const WorkloadGenOptions& options = {});

}  // namespace ssum
