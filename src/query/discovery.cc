#include "query/discovery.h"

#include "core/multilevel.h"

#include <algorithm>
#include <deque>
#include <functional>

#include "common/logging.h"

namespace ssum {

const char* TraversalStrategyName(TraversalStrategy s) {
  switch (s) {
    case TraversalStrategy::kDepthFirst:
      return "DepthFirst";
    case TraversalStrategy::kBreadthFirst:
      return "BreadthFirst";
    case TraversalStrategy::kBestFirst:
      return "BestFirst";
  }
  return "?";
}

DiscoveryOracle::DiscoveryOracle(const SchemaGraph& graph) : graph_(&graph) {
  const size_t n = graph.size();
  successors_.resize(n);
  for (ElementId e = 0; e < n; ++e) {
    std::vector<ElementId>& succ = successors_[e];
    for (ElementId c : graph.children(e)) succ.push_back(c);
    for (const Neighbor& nbr : graph.neighbors(e)) {
      if (!nbr.is_structural && nbr.forward) {
        if (std::find(succ.begin(), succ.end(), nbr.other) == succ.end()) {
          succ.push_back(nbr.other);
        }
      }
    }
  }
  // Reachability closure (graphs are small; O(N * E) DFS per source).
  reach_.assign(n, std::vector<bool>(n, false));
  std::vector<ElementId> stack;
  for (ElementId s = 0; s < n; ++s) {
    std::vector<bool>& r = reach_[s];
    stack.clear();
    stack.push_back(s);
    r[s] = true;
    while (!stack.empty()) {
      ElementId cur = stack.back();
      stack.pop_back();
      for (ElementId nxt : successors_[cur]) {
        if (!r[nxt]) {
          r[nxt] = true;
          stack.push_back(nxt);
        }
      }
    }
  }
}

namespace {

/// Shared bookkeeping of one simulated discovery session.
struct Session {
  std::vector<bool> is_intent;
  std::vector<bool> found;     // intention elements already located
  std::vector<bool> visited;   // elements already examined (revisits free)
  size_t unfound = 0;
  uint64_t cost = 0;
  uint64_t visits = 0;
  std::vector<ElementId> trace;

  Session(size_t n, const QueryIntention& intention)
      : is_intent(n, false), found(n, false), visited(n, false) {
    for (ElementId e : intention.elements) {
      if (!is_intent[e]) {
        is_intent[e] = true;
        ++unfound;
      }
    }
  }

  bool done() const { return unfound == 0; }

  /// Examines `e`; charges one unit unless it belongs to the intention.
  void Visit(ElementId e) {
    if (visited[e]) return;
    visited[e] = true;
    ++visits;
    trace.push_back(e);
    if (is_intent[e]) {
      if (!found[e]) {
        found[e] = true;
        --unfound;
      }
    } else {
      ++cost;
    }
  }
};

DiscoveryResult LinearScan(const DiscoveryOracle& oracle,
                           const QueryIntention& intention, bool depth_first) {
  const SchemaGraph& graph = oracle.graph();
  Session s(graph.size(), intention);
  std::deque<ElementId> frontier;
  std::vector<bool> queued(graph.size(), false);
  // The root is the free starting position; enqueue its successors.
  queued[graph.root()] = true;
  s.visited[graph.root()] = true;
  const auto& root_succ = oracle.successors(graph.root());
  if (depth_first) {
    for (auto it = root_succ.rbegin(); it != root_succ.rend(); ++it) {
      frontier.push_back(*it);
      queued[*it] = true;
    }
  } else {
    for (ElementId c : root_succ) {
      frontier.push_back(c);
      queued[c] = true;
    }
  }
  while (!frontier.empty() && !s.done()) {
    ElementId cur;
    if (depth_first) {
      cur = frontier.back();
      frontier.pop_back();
    } else {
      cur = frontier.front();
      frontier.pop_front();
    }
    s.Visit(cur);
    if (s.done()) break;
    const auto& succ = oracle.successors(cur);
    if (depth_first) {
      for (auto it = succ.rbegin(); it != succ.rend(); ++it) {
        if (!s.visited[*it] && !queued[*it]) {
          frontier.push_back(*it);
          queued[*it] = true;
        }
      }
    } else {
      for (ElementId c : succ) {
        if (!s.visited[c] && !queued[c]) {
          frontier.push_back(c);
          queued[c] = true;
        }
      }
    }
  }
  return {s.cost, s.visits, s.done(), std::move(s.trace)};
}

/// Best-first exploration (Section 5.3): at the current element, children
/// are examined one at a time in schema order; the label oracle then tells
/// whether the examined child's subtree holds an element of interest, and
/// the walk descends into the first one that does.
class BestFirstExplorer {
 public:
  BestFirstExplorer(const DiscoveryOracle& oracle, Session* session)
      : oracle_(oracle),
        session_(session),
        on_stack_(oracle.graph().size(), false) {}

  /// True when any unfound intention element is reachable from `e`.
  bool HasUnfound(ElementId e) const {
    const auto& graph = oracle_.graph();
    for (ElementId t = 0; t < graph.size(); ++t) {
      if (session_->is_intent[t] && !session_->found[t] &&
          oracle_.Reaches(e, t)) {
        return true;
      }
    }
    return false;
  }

  /// Explores from `x` (already visited by the caller) until no unfound
  /// intention element reachable from `x` remains or no progress is
  /// possible through unexplored routes.
  void Explore(ElementId x) {
    if (session_->done()) return;
    on_stack_[x] = true;
    bool progress = true;
    while (progress && !session_->done()) {
      progress = false;
      for (ElementId c : oracle_.successors(x)) {
        if (session_->done()) break;
        // The oracle tells the user when this subtree owes nothing more;
        // they stop examining its children immediately.
        if (!HasUnfound(x)) break;
        if (on_stack_[c]) continue;
        const bool first_look = !session_->visited[c];
        // Examining the child is a visit (charged unless in the intention).
        size_t before = session_->unfound;
        if (first_look) {
          session_->Visit(c);
          if (session_->unfound < before) progress = true;
        }
        // The label oracle: descend when interest lies below.
        if (HasUnfound(c)) {
          size_t before_explore = session_->unfound;
          Explore(c);
          if (session_->unfound < before_explore) progress = true;
        }
        if (session_->done()) break;
      }
      // Re-scan only while this subtree still owes us elements and the last
      // pass achieved something (guards against value-link cycles).
      if (!HasUnfound(x)) break;
    }
    on_stack_[x] = false;
  }

 private:
  const DiscoveryOracle& oracle_;
  Session* session_;
  std::vector<bool> on_stack_;
};

}  // namespace

DiscoveryResult Discover(const DiscoveryOracle& oracle,
                         const QueryIntention& intention,
                         TraversalStrategy strategy) {
  if (strategy != TraversalStrategy::kBestFirst) {
    return LinearScan(oracle, intention,
                      strategy == TraversalStrategy::kDepthFirst);
  }
  const SchemaGraph& graph = oracle.graph();
  Session s(graph.size(), intention);
  s.visited[graph.root()] = true;  // free starting position
  if (s.is_intent[graph.root()]) {
    s.found[graph.root()] = true;
    --s.unfound;
  }
  BestFirstExplorer explorer(oracle, &s);
  explorer.Explore(graph.root());
  return {s.cost, s.visits, s.done(), std::move(s.trace)};
}

namespace {

/// Shared group-expansion machinery for summary-based discovery: owns the
/// member partition (original element -> representative) and the best-first
/// exploration of an expanded group outward from its representative.
class GroupExplorer {
 public:
  GroupExplorer(const SchemaGraph& graph, Session* session,
                const std::vector<ElementId>& representative)
      : graph_(graph), session_(session), members_(graph.size()) {
    for (ElementId e = 0; e < graph.size(); ++e) {
      if (e == graph.root()) continue;
      members_[representative[e]].push_back(e);
    }
  }

  bool GroupHasUnfound(ElementId rep) const {
    for (ElementId m : members_[rep]) {
      if (session_->is_intent[m] && !session_->found[m]) return true;
    }
    return false;
  }

  const std::vector<ElementId>& Group(ElementId rep) const {
    return members_[rep];
  }

  /// Explores the expanded group of `rep` (see DiscoverWithSummary's model
  /// comment) until it owes no intention elements.
  void ExploreGroup(ElementId rep) {
    Session& s = *session_;
    const std::vector<ElementId>& group = members_[rep];
    std::vector<bool> in_group(graph_.size(), false);
    for (ElementId m : group) in_group[m] = true;
    // Directional label oracle: does any unfound intention element lie in
    // the group region reachable from `c` WITHOUT passing back through
    // `from`? (The subtree-containment oracle of Section 5.3, generalized
    // to the group's internal graph.)
    auto has_unfound_beyond = [&](ElementId c, ElementId from) {
      std::vector<ElementId> stack{c};
      std::vector<bool> seen(graph_.size(), false);
      seen[c] = true;
      if (from != kInvalidElement) seen[from] = true;
      while (!stack.empty()) {
        ElementId cur = stack.back();
        stack.pop_back();
        if (s.is_intent[cur] && !s.found[cur]) return true;
        for (ElementId nxt : GroupNeighbors(cur)) {
          if (in_group[nxt] && !seen[nxt]) {
            seen[nxt] = true;
            stack.push_back(nxt);
          }
        }
      }
      return false;
    };
    std::vector<bool> on_stack(graph_.size(), false);
    std::function<void(ElementId, ElementId)> explore =
        [&](ElementId x, ElementId came_from) {
      on_stack[x] = true;
      for (ElementId c : GroupNeighbors(x)) {
        if (s.done()) break;
        if (!has_unfound_beyond(x, came_from)) break;  // region exhausted
        if (!in_group[c] || on_stack[c] || c == came_from) continue;
        if (!s.visited[c]) s.Visit(c);
        if (s.done()) break;
        if (has_unfound_beyond(c, x)) explore(c, x);
      }
      on_stack[x] = false;
    };
    if (has_unfound_beyond(rep, kInvalidElement)) {
      explore(rep, kInvalidElement);
    }
    // Disconnected remainder (groups are usually affinity-connected, but an
    // assignment may strand members): scan remaining members in order.
    while (GroupHasUnfound(rep) && !s.done()) {
      bool progress = false;
      for (ElementId m : group) {
        if (s.done()) break;
        if (s.visited[m]) continue;
        size_t before = s.unfound;
        s.Visit(m);
        if (s.unfound < before) progress = true;
        if (has_unfound_beyond(m, kInvalidElement)) explore(m, kInvalidElement);
      }
      if (!progress) break;
    }
  }

 private:
  /// Group-internal adjacency in exploration order. The expanded view lays
  /// out the group below its representative, with interior (entity-like)
  /// elements visually salient; the user examines entity neighbors first —
  /// structural children, then linked entities — before reading leaf
  /// attributes, and the enclosing container last.
  std::vector<ElementId> GroupNeighbors(ElementId e) const {
    std::vector<ElementId> out;
    for (ElementId c : graph_.children(e)) {
      if (graph_.type(c).kind != TypeKind::kSimple) out.push_back(c);
    }
    for (const Neighbor& nbr : graph_.neighbors(e)) {
      if (!nbr.is_structural && nbr.forward) out.push_back(nbr.other);
    }
    for (const Neighbor& nbr : graph_.neighbors(e)) {
      if (!nbr.is_structural && !nbr.forward) out.push_back(nbr.other);
    }
    for (ElementId c : graph_.children(e)) {
      if (graph_.type(c).kind == TypeKind::kSimple) out.push_back(c);
    }
    if (graph_.parent(e) != kInvalidElement) out.push_back(graph_.parent(e));
    return out;
  }

  const SchemaGraph& graph_;
  Session* session_;
  std::vector<std::vector<ElementId>> members_;
};

Session StartSummarySession(const SchemaGraph& graph,
                            const QueryIntention& intention) {
  Session s(graph.size(), intention);
  s.visited[graph.root()] = true;
  if (s.is_intent[graph.root()]) {
    s.found[graph.root()] = true;
    --s.unfound;
  }
  return s;
}

}  // namespace

DiscoveryResult DiscoverWithSummary(const DiscoveryOracle& oracle,
                                    const SchemaSummary& summary,
                                    const QueryIntention& intention) {
  // Model (Section 5.3, and Section 2's "the abstract element assumes the
  // identity of the representative element"):
  //  - The full summary presents its abstract elements in selection order —
  //    "presenting early on the elements that are more likely to be
  //    queried". The user examines them one at a time; examining an
  //    abstract element is a visit of its *representative* original element
  //    (free when the representative is in the intention, one unit
  //    otherwise).
  //  - When the label oracle reports interest inside the examined group,
  //    the user expands it and explores the group's internal structure
  //    best-first *outward from the representative*, one unit per visited
  //    non-intention element. Group-internal moves may follow structural
  //    and value links in either direction (the expanded view lays out the
  //    whole group, Figure 2(C)).
  //  - Groups partition the schema, so one pass over the summary finds
  //    every intention element.
  const SchemaGraph& graph = oracle.graph();
  SSUM_CHECK(summary.schema == &graph, "summary/oracle schema mismatch");
  Session s = StartSummarySession(graph, intention);
  GroupExplorer explorer(graph, &s, summary.representative);
  for (ElementId a : summary.abstract_elements) {
    if (s.done()) break;
    if (!s.visited[a]) s.Visit(a);
    if (explorer.GroupHasUnfound(a)) explorer.ExploreGroup(a);
  }
  return {s.cost, s.visits, s.done(), std::move(s.trace)};
}

DiscoveryResult DiscoverWithMultiLevel(const DiscoveryOracle& oracle,
                                       const std::vector<SummaryLevel>& levels,
                                       const QueryIntention& intention) {
  const SchemaGraph& graph = oracle.graph();
  SSUM_CHECK(!levels.empty(), "multi-level discovery needs >= 1 level");
  for (const SummaryLevel& level : levels) {
    SSUM_CHECK(level.representative.size() == graph.size(),
               "summary levels are over a different schema");
  }
  Session s = StartSummarySession(graph, intention);
  // Groups at the finest level drive the original-element exploration.
  GroupExplorer explorer(graph, &s, levels[0].representative);

  // territory(a, L): does the set of original elements represented by `a`
  // at level L hold unfound intention elements?
  auto territory_has_unfound = [&](size_t level, ElementId a) {
    const std::vector<ElementId>& rep = levels[level].representative;
    for (ElementId e = 0; e < graph.size(); ++e) {
      if (e == graph.root() || rep[e] != a) continue;
      if (s.is_intent[e] && !s.found[e]) return true;
    }
    return false;
  };

  // The user scans a level's abstract elements in presentation order and
  // drills into the finer level below any element owing interest.
  std::function<void(size_t, const std::vector<ElementId>&)> scan =
      [&](size_t level, const std::vector<ElementId>& candidates) {
        for (ElementId a : candidates) {
          if (s.done()) break;
          if (!s.visited[a]) s.Visit(a);
          if (!territory_has_unfound(level, a)) continue;
          if (level == 0) {
            explorer.ExploreGroup(a);
            continue;
          }
          // Finer-level abstract elements represented by `a`, in the finer
          // level's own presentation order.
          std::vector<ElementId> finer;
          for (ElementId f : levels[level - 1].abstract_elements) {
            if (levels[level].representative[f] == a) finer.push_back(f);
          }
          scan(level - 1, finer);
          // Fallback: elements of a's territory whose finest-level group
          // representative is not itself represented by `a` (possible when
          // level maps disagree on boundaries) — rescan the finest level.
          if (territory_has_unfound(level, a) && !s.done()) {
            scan(0, levels[0].abstract_elements);
          }
        }
      };
  scan(levels.size() - 1, levels.back().abstract_elements);
  // Completeness fallback: sweep the finest level.
  if (!s.done()) scan(0, levels[0].abstract_elements);
  return {s.cost, s.visits, s.done(), std::move(s.trace)};
}

namespace {

/// Shared parallel-average shell: evaluates cost(q) for every query into a
/// per-query slot, then sums in query order (the serial accumulation order,
/// so the floating-point result is bit-identical for any thread count).
double AverageQueryCost(
    const Workload& workload, const ParallelOptions& parallel,
    const std::function<uint64_t(const QueryIntention&)>& cost) {
  if (workload.queries.empty()) return 0;
  std::vector<double> costs(workload.queries.size());
  Status st = ParallelFor(
      0, workload.queries.size(), /*grain=*/4,
      [&](size_t i) {
        costs[i] = static_cast<double>(cost(workload.queries[i]));
      },
      parallel.threads);
  SSUM_CHECK(st.ok(), st.ToString());
  double total = 0;
  for (double c : costs) total += c;
  return total / static_cast<double>(workload.queries.size());
}

}  // namespace

double AverageDiscoveryCost(const DiscoveryOracle& oracle,
                            const Workload& workload,
                            TraversalStrategy strategy,
                            const ParallelOptions& parallel) {
  return AverageQueryCost(workload, parallel, [&](const QueryIntention& q) {
    return Discover(oracle, q, strategy).cost;
  });
}

double AverageDiscoveryCostWithSummary(const DiscoveryOracle& oracle,
                                       const SchemaSummary& summary,
                                       const Workload& workload,
                                       const ParallelOptions& parallel) {
  return AverageQueryCost(workload, parallel, [&](const QueryIntention& q) {
    return DiscoverWithSummary(oracle, summary, q).cost;
  });
}

}  // namespace ssum
