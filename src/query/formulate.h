#pragma once

#include <string>

#include "common/result.h"
#include "query/intention.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Query formulation support (the step after discovery, Section 5.3's
/// worked example): once the user has located the schema elements of an
/// intention, generate a query skeleton with the paths filled in. The user
/// supplies predicates/logic; the skeleton removes the path-hunting.

/// Builds an XQuery FLWOR skeleton for a hierarchical schema. Each distinct
/// nearest SetOf ancestor of the intention elements becomes a `for`
/// variable bound to its absolute path; leaf intention elements become
/// return-clause paths relative to their variable. Mirrors the paper's
/// example:
///
///   for $a in /site/people/person
///   where $a/@id = (...)
///   return <res>{ $a/name }</res>
Result<std::string> FormulateXQuerySkeleton(const SchemaGraph& schema,
                                            const QueryIntention& intention);

/// Builds a SQL skeleton for a relational schema graph (relations = SetOf
/// children of the root, columns = their Simple children): SELECT the
/// intention columns FROM the intention relations, with JOIN predicates
/// derived from the value links (foreign keys) connecting the chosen
/// relations.
Result<std::string> FormulateSqlSkeleton(const SchemaGraph& schema,
                                         const QueryIntention& intention);

}  // namespace ssum
