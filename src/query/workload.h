#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "query/intention.h"
#include "schema/schema_graph.h"

namespace ssum {

/// A named set of query intentions over one schema (a dataset's query set).
struct Workload {
  std::string name;
  std::vector<QueryIntention> queries;

  size_t size() const { return queries.size(); }

  /// Average number of elements per intention (Table 1's
  /// "avg. query intention size").
  double AverageIntentionSize() const;
};

/// Text round-trip. Format: one query per line,
///   <name> <tab> <path> <tab> <path> ...
/// Blank lines and '#' comments ignored.
std::string SerializeWorkload(const SchemaGraph& graph,
                              const Workload& workload);
Result<Workload> ParseWorkload(const SchemaGraph& graph, std::string name,
                               const std::string& text);

}  // namespace ssum
