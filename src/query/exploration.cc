#include "query/exploration.h"

#include <map>
#include <sstream>

#include "common/logging.h"

namespace ssum {

ExplorationSession::ExplorationSession(const SchemaGraph& schema,
                                       const SchemaSummary& summary)
    : schema_(schema), summary_(summary), expanded_(schema.size(), false) {
  SSUM_CHECK(summary.schema == &schema, "summary is over a different schema");
}

Status ExplorationSession::Expand(ElementId abstract_rep) {
  if (!summary_.IsAbstract(abstract_rep)) {
    return Status::InvalidArgument("'" + schema_.label(abstract_rep) +
                                   "' is not an abstract element");
  }
  if (expanded_[abstract_rep]) {
    return Status::FailedPrecondition("'" + schema_.label(abstract_rep) +
                                      "' is already expanded");
  }
  expanded_[abstract_rep] = true;
  return Status::OK();
}

Status ExplorationSession::Collapse(ElementId abstract_rep) {
  if (!summary_.IsAbstract(abstract_rep)) {
    return Status::InvalidArgument("'" + schema_.label(abstract_rep) +
                                   "' is not an abstract element");
  }
  if (!expanded_[abstract_rep]) {
    return Status::FailedPrecondition("'" + schema_.label(abstract_rep) +
                                      "' is not expanded");
  }
  expanded_[abstract_rep] = false;
  return Status::OK();
}

bool ExplorationSession::IsExpanded(ElementId abstract_rep) const {
  return abstract_rep < expanded_.size() && expanded_[abstract_rep];
}

ElementId ExplorationSession::ProxyOf(ElementId e) const {
  if (e == schema_.root()) return e;
  ElementId rep = summary_.representative[e];
  return expanded_[rep] ? e : rep;
}

std::vector<ElementId> ExplorationSession::VisibleElements() const {
  std::vector<ElementId> out;
  for (ElementId e = 0; e < schema_.size(); ++e) {
    if (e == schema_.root()) {
      out.push_back(e);
      continue;
    }
    ElementId rep = summary_.representative[e];
    if (expanded_[rep] ? true : e == rep) out.push_back(e);
  }
  return out;
}

size_t ExplorationSession::VisibleCount() const {
  return VisibleElements().size();
}

std::vector<ExplorationSession::VisibleLink>
ExplorationSession::VisibleLinks() const {
  // Consolidate original links between visible proxies; within an expanded
  // group original links stay original, across collapsed groups they merge.
  std::map<std::pair<ElementId, ElementId>, VisibleLink> merged;
  auto add = [&](ElementId a, ElementId b, bool value_kind) {
    ElementId from = ProxyOf(a);
    ElementId to = ProxyOf(b);
    if (from == to) return;
    auto [it, inserted] = merged.try_emplace(
        {from, to},
        VisibleLink{from, to,
                    summary_.IsAbstract(from) && !expanded_[from],
                    summary_.IsAbstract(to) && !expanded_[to], value_kind});
    if (!inserted) it->second.dashed |= value_kind;
  };
  for (const StructuralLink& s : schema_.structural_links()) {
    add(s.parent, s.child, /*value_kind=*/false);
  }
  for (const ValueLink& v : schema_.value_links()) {
    add(v.referrer, v.referee, /*value_kind=*/true);
  }
  std::vector<VisibleLink> out;
  out.reserve(merged.size());
  for (auto& [key, link] : merged) out.push_back(link);
  return out;
}

std::string ExplorationSession::ToDot(const std::string& graph_name) const {
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::ostringstream os;
  os << "digraph \"" << escape(graph_name) << "\" {\n"
     << "  rankdir=TB;\n  node [shape=box, fontsize=10];\n";
  os << "  n" << schema_.root() << " [label=\""
     << escape(schema_.label(schema_.root())) << "\"];\n";
  size_t cluster = 0;
  for (ElementId a : summary_.abstract_elements) {
    std::string label = escape(schema_.label(a));
    if (schema_.type(a).set_of) label += "*";
    if (!expanded_[a]) {
      os << "  n" << a << " [label=\"" << label << "\", style=rounded];\n";
      continue;
    }
    // Expanded group: a dashed cluster frame, Figure 2(C) style.
    os << "  subgraph cluster_" << cluster++ << " {\n"
       << "    label=\"" << label << "\"; style=dashed;\n";
    for (ElementId m : summary_.Group(a)) {
      std::string mlabel = escape(schema_.label(m));
      if (schema_.type(m).set_of) mlabel += "*";
      os << "    n" << m << " [label=\"" << mlabel << "\"];\n";
    }
    os << "  }\n";
  }
  for (const VisibleLink& l : VisibleLinks()) {
    os << "  n" << l.from << " -> n" << l.to;
    if (l.dashed) os << " [style=dashed]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ssum
