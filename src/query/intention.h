#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "schema/schema_graph.h"

namespace ssum {

/// A query intention (Section 5.3): the set of schema elements the user
/// wants to reference but whose locations in the schema she does not know.
struct QueryIntention {
  std::string name;
  std::vector<ElementId> elements;

  size_t size() const { return elements.size(); }
};

/// Builds an intention from slash-separated element paths; fails when a path
/// does not resolve. Duplicate paths collapse to one element.
Result<QueryIntention> MakeIntention(const SchemaGraph& graph,
                                     std::string name,
                                     const std::vector<std::string>& paths);

}  // namespace ssum
