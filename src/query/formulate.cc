#include "query/formulate.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace ssum {

namespace {

/// Nearest ancestor (or self) with a SetOf type — the natural iteration
/// entity for an element; the root when none exists.
ElementId IterationEntity(const SchemaGraph& schema, ElementId e) {
  for (ElementId cur = e; cur != kInvalidElement; cur = schema.parent(cur)) {
    if (schema.type(cur).set_of) return cur;
  }
  return schema.root();
}

/// Absolute slash path with a leading '/', attributes as '@name'.
std::string AbsolutePath(const SchemaGraph& schema, ElementId e) {
  return "/" + schema.PathOf(e);
}

/// Path of `e` relative to `ancestor` ("." when equal).
std::string RelativePath(const SchemaGraph& schema, ElementId ancestor,
                         ElementId e) {
  if (ancestor == e) return ".";
  std::vector<std::string> parts;
  for (ElementId cur = e; cur != ancestor; cur = schema.parent(cur)) {
    parts.push_back(schema.label(cur));
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!out.empty()) out += '/';
    out += *it;
  }
  return out;
}

}  // namespace

Result<std::string> FormulateXQuerySkeleton(const SchemaGraph& schema,
                                            const QueryIntention& intention) {
  if (intention.elements.empty()) {
    return Status::InvalidArgument("empty intention");
  }
  for (ElementId e : intention.elements) {
    if (e >= schema.size()) {
      return Status::InvalidArgument("intention element out of range");
    }
  }
  // Group intention elements under iteration entities, outermost first.
  std::map<ElementId, std::vector<ElementId>> groups;
  for (ElementId e : intention.elements) {
    groups[IterationEntity(schema, e)].push_back(e);
  }
  std::vector<ElementId> entities;
  for (const auto& [entity, members] : groups) entities.push_back(entity);
  std::stable_sort(entities.begin(), entities.end(),
                   [&](ElementId a, ElementId b) {
                     return schema.depth(a) < schema.depth(b);
                   });
  std::map<ElementId, std::string> var_of;
  const char* names = "abcdefghij";
  std::ostringstream os;
  size_t vi = 0;
  for (ElementId entity : entities) {
    std::string var = "$" + std::string(1, names[vi % 10]) +
                      (vi >= 10 ? std::to_string(vi / 10) : "");
    ++vi;
    var_of[entity] = var;
    // Nest under an enclosing entity variable when one exists.
    ElementId outer = entity == schema.root()
                          ? kInvalidElement
                          : IterationEntity(schema, schema.parent(entity));
    auto it = outer == kInvalidElement ? var_of.end() : var_of.find(outer);
    if (it != var_of.end() && outer != schema.root()) {
      os << "for " << var << " in " << it->second << "/"
         << RelativePath(schema, outer, entity) << "\n";
    } else {
      os << "for " << var << " in " << AbsolutePath(schema, entity) << "\n";
    }
  }
  os << "where (: predicates over:";
  for (ElementId entity : entities) {
    for (ElementId e : groups[entity]) {
      os << " " << var_of[entity] << "/"
         << RelativePath(schema, entity, e);
    }
  }
  os << " :)\nreturn\n  <result>{";
  bool first = true;
  for (ElementId entity : entities) {
    for (ElementId e : groups[entity]) {
      os << (first ? " " : ", ") << var_of[entity] << "/"
         << RelativePath(schema, entity, e);
      first = false;
    }
  }
  os << " }</result>";
  return os.str();
}

Result<std::string> FormulateSqlSkeleton(const SchemaGraph& schema,
                                         const QueryIntention& intention) {
  if (intention.elements.empty()) {
    return Status::InvalidArgument("empty intention");
  }
  // Relations referenced by the intention (directly or via a column).
  std::set<ElementId> relations;
  std::vector<ElementId> columns;
  for (ElementId e : intention.elements) {
    if (e >= schema.size()) {
      return Status::InvalidArgument("intention element out of range");
    }
    if (e == schema.root()) continue;
    ElementId rel = e;
    while (schema.parent(rel) != schema.root()) {
      rel = schema.parent(rel);
      if (rel == kInvalidElement) {
        return Status::InvalidArgument("element outside any relation");
      }
    }
    relations.insert(rel);
    if (e != rel) columns.push_back(e);
  }
  if (relations.empty()) {
    return Status::InvalidArgument("intention references no relation");
  }
  std::ostringstream os;
  os << "SELECT ";
  if (columns.empty()) {
    os << "*";
  } else {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) os << ", ";
      ElementId rel = schema.parent(columns[i]);
      os << schema.label(rel) << "." << schema.label(columns[i]);
    }
  }
  os << "\nFROM ";
  bool first = true;
  for (ElementId rel : relations) {
    if (!first) os << ", ";
    os << schema.label(rel);
    first = false;
  }
  // Join predicates: foreign keys connecting two chosen relations.
  std::vector<std::string> joins;
  for (const ValueLink& v : schema.value_links()) {
    if (relations.count(v.referrer) && relations.count(v.referee) &&
        v.referrer_field != kInvalidElement &&
        v.referee_field != kInvalidElement) {
      joins.push_back(schema.label(v.referrer) + "." +
                      schema.label(v.referrer_field) + " = " +
                      schema.label(v.referee) + "." +
                      schema.label(v.referee_field));
    }
  }
  os << "\nWHERE ";
  if (joins.empty()) {
    os << "/* predicates */";
  } else {
    for (size_t i = 0; i < joins.size(); ++i) {
      if (i) os << "\n  AND ";
      os << joins[i];
    }
    os << "\n  /* AND predicates */";
  }
  return os.str();
}

}  // namespace ssum
