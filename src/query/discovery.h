#pragma once

#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "core/summary.h"
#include "query/intention.h"
#include "query/workload.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Schema-exploration strategies without a summary (Section 5.3). Traversal
/// follows structural children plus outgoing value links (the paper's
/// relational-schema provision), in schema order.
enum class TraversalStrategy : unsigned char {
  kDepthFirst = 0,   ///< pre-order scan
  kBreadthFirst,     ///< level-order scan
  kBestFirst,        ///< optimistic label-oracle traversal
};

const char* TraversalStrategyName(TraversalStrategy s);

struct DiscoveryResult {
  /// Units charged: one per visited element not in the intention (plus one
  /// per abstract element visited, in the summary variant). The root is the
  /// free starting position.
  uint64_t cost = 0;
  /// Total elements visited (intention members included, root excluded).
  uint64_t visited = 0;
  /// All intention elements were located.
  bool complete = false;
  /// Elements in visit order (for session replay / debugging).
  std::vector<ElementId> trace;
};

/// Precomputed traversal adjacency and reachability oracle for one schema.
/// Build once, evaluate many queries.
class DiscoveryOracle {
 public:
  explicit DiscoveryOracle(const SchemaGraph& graph);

  const SchemaGraph& graph() const { return *graph_; }

  /// Traversal successors of `e`: structural children, then value-link
  /// referees, in schema order.
  const std::vector<ElementId>& successors(ElementId e) const {
    return successors_[e];
  }

  /// True when `target` is reachable from `from` via traversal edges
  /// (including from == target).
  bool Reaches(ElementId from, ElementId target) const {
    return reach_[from][target];
  }

 private:
  const SchemaGraph* graph_;
  std::vector<std::vector<ElementId>> successors_;
  std::vector<std::vector<bool>> reach_;
};

/// Simulates query discovery on the raw schema with the given strategy.
DiscoveryResult Discover(const DiscoveryOracle& oracle,
                         const QueryIntention& intention,
                         TraversalStrategy strategy);

/// Simulates best-first query discovery with a schema summary (Section 5.3):
/// the user walks the abstract-link graph from the root, pays one unit per
/// abstract element visited, expands abstract elements whose groups contain
/// unfound intention elements, and explores expanded groups best-first along
/// their internal structural links (one unit per visited non-intention
/// original element).
DiscoveryResult DiscoverWithSummary(const DiscoveryOracle& oracle,
                                    const SchemaSummary& summary,
                                    const QueryIntention& intention);

/// Simulates best-first discovery with a multi-level summary (the paper's
/// Section 2 extension for very large schemas). The user scans the coarsest
/// level in presentation order; a coarse abstract element whose territory
/// holds unfound intention elements expands into the finer-level abstract
/// elements it represents, and the finest level expands into original
/// elements explored from the representative (same charging rules as
/// DiscoverWithSummary). `levels` must come from SummarizeMultiLevel (level
/// 0 finest) over the oracle's schema.
DiscoveryResult DiscoverWithMultiLevel(
    const DiscoveryOracle& oracle,
    const std::vector<struct SummaryLevel>& levels,
    const QueryIntention& intention);

/// Average cost over a workload (raw schema). Queries are independent
/// sessions, so they are evaluated in parallel per `parallel`; per-query
/// costs land in preassigned slots and are summed in query order, making the
/// average bit-identical for every thread count.
double AverageDiscoveryCost(const DiscoveryOracle& oracle,
                            const Workload& workload,
                            TraversalStrategy strategy,
                            const ParallelOptions& parallel = {});

/// Average cost over a workload (with summary); same parallel evaluation
/// and determinism contract as AverageDiscoveryCost.
double AverageDiscoveryCostWithSummary(const DiscoveryOracle& oracle,
                                       const SchemaSummary& summary,
                                       const Workload& workload,
                                       const ParallelOptions& parallel = {});

}  // namespace ssum
