#include "query/intention.h"

#include <algorithm>

namespace ssum {

Result<QueryIntention> MakeIntention(const SchemaGraph& graph,
                                     std::string name,
                                     const std::vector<std::string>& paths) {
  QueryIntention q;
  q.name = std::move(name);
  for (const std::string& p : paths) {
    ElementId e;
    auto res = graph.FindPath(p);
    if (!res.ok()) return res.status().WithContext("intention '" + q.name + "'");
    e = *res;
    if (std::find(q.elements.begin(), q.elements.end(), e) ==
        q.elements.end()) {
      q.elements.push_back(e);
    }
  }
  if (q.elements.empty()) {
    return Status::InvalidArgument("intention '" + q.name + "' is empty");
  }
  return q;
}

}  // namespace ssum
