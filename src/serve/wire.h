#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "core/summarize.h"

namespace ssum {

/// Wire protocol of the summarization daemon (serve/server.h).
///
/// Every message is one length-prefixed frame:
///
///   u32 LE  body length in bytes
///   body    a binary snapshot container (store/container.h) of payload
///           kind kServeRequest or kServeResponse
///
/// Reusing the container envelope buys the protocol the same integrity
/// story the store already has: magic, per-section CRC32C, trailer CRC —
/// any corrupted byte decodes to a Status, never a crash. Unknown section
/// tags are ignored (a newer client may send fields an older server skips);
/// a missing required field or a wrong-size fixed field is ParseError.
///
/// Request sections (tag → payload):
///   1  verb        u32 LE (ServeVerb, required)
///   2  dataset     UTF-8 dataset name (xmark|tpch|mimi)
///   3  k           u64 LE summary size
///   4  algorithm   u32 LE (core Algorithm enum)
///   5  mode        u32 LE (core SummaryMode enum)
///   6  epsilon     u64 LE IEEE-754 double bits (approx sketch epsilon)
///   7  deadline_ms u64 LE wall-clock budget; presence arms a Deadline at
///                  decode time (queue wait counts); 0 = already expired
///   8  stall_ms    u64 LE artificial handler stall — a testing aid the
///                  overload and deadline-expiry checks use to hold workers
///                  busy deterministically (docs/serving.md)
///   9  path        UTF-8 schema path, repeated (discover)
///
/// Response sections:
///   1  status      u32 LE StatusCode
///   2  message     UTF-8 diagnostic (errors) or short note
///   3  payload     verb-specific bytes (summarize: SerializeSummary text,
///                  bit-identical to the one-shot CLI's -o output)
inline constexpr uint32_t kServeTagVerb = 1;
inline constexpr uint32_t kServeTagDataset = 2;
inline constexpr uint32_t kServeTagK = 3;
inline constexpr uint32_t kServeTagAlgorithm = 4;
inline constexpr uint32_t kServeTagMode = 5;
inline constexpr uint32_t kServeTagEpsilon = 6;
inline constexpr uint32_t kServeTagDeadlineMs = 7;
inline constexpr uint32_t kServeTagStallMs = 8;
inline constexpr uint32_t kServeTagPath = 9;

inline constexpr uint32_t kServeTagStatus = 1;
inline constexpr uint32_t kServeTagMessage = 2;
inline constexpr uint32_t kServeTagPayload = 3;

/// Hard per-frame ceiling both sides enforce before allocating: a garbage
/// length prefix cannot make either side buffer gigabytes.
inline constexpr size_t kMaxServeFrameBytes = 16u << 20;

enum class ServeVerb : uint32_t {
  kHealth = 1,
  kSummarize = 2,
  kDiscover = 3,
  kCacheStat = 4,
  kMetrics = 5,
  kShutdown = 6,
};

const char* ServeVerbName(ServeVerb verb);
Result<ServeVerb> ParseServeVerb(std::string_view name);

struct ServeRequest {
  ServeVerb verb = ServeVerb::kHealth;
  std::string dataset;
  uint64_t k = 10;
  Algorithm algorithm = Algorithm::kBalanceSummary;
  SummaryMode mode = SummaryMode::kExact;
  double epsilon = 0.1;
  bool has_deadline = false;
  uint64_t deadline_ms = 0;
  uint64_t stall_ms = 0;
  std::vector<std::string> paths;
};

struct ServeResponse {
  StatusCode status = StatusCode::kOk;
  std::string message;
  std::string payload;

  bool ok() const { return status == StatusCode::kOk; }
  /// Reconstructs the wire error as a Status (OK for an OK response).
  Status ToStatus() const;
};

/// Container-body encoders; frame them with WriteFrame.
std::string EncodeRequest(const ServeRequest& request);
std::string EncodeResponse(const ServeResponse& response);

/// Verifying decoders. Corruption is DataLoss, truncation OutOfRange,
/// structurally valid containers with bad field values ParseError /
/// InvalidArgument — exactly the store's error taxonomy.
Result<ServeRequest> DecodeRequest(std::string_view body);
Result<ServeResponse> DecodeResponse(std::string_view body);

/// Reads one length-prefixed frame body. A peer that closed before sending
/// any byte is NotFound (a clean end of the request stream, not an error);
/// a connection cut mid-frame is OutOfRange; a length prefix above
/// `max_bytes` is rejected before any allocation.
Result<std::string> ReadFrame(Connection* conn,
                              size_t max_bytes = kMaxServeFrameBytes);

/// Writes the length prefix and `body` as one send.
Status WriteFrame(Connection* conn, std::string_view body);

}  // namespace ssum
