#pragma once

#include <memory>
#include <string>

#include "common/env.h"
#include "common/result.h"
#include "serve/wire.h"

namespace ssum {

/// Synchronous client for the summarization daemon. One client owns one
/// connection; Call() is a strict request/response round trip, so a client
/// is safe to share across threads only with external serialization — the
/// load generator (bench/serve_scaling) gives each thread its own client.
class ServeClient {
 public:
  /// Connects to a serving daemon at "host:port". `env` defaults to
  /// Env::Default(); tests pass a FaultInjectingEnv to exercise connect /
  /// send / recv failures.
  static Result<ServeClient> Connect(const std::string& addr,
                                     Env* env = nullptr);

  ServeClient(ServeClient&&) = default;
  ServeClient& operator=(ServeClient&&) = default;

  /// Sends one request frame and reads the response frame. A non-OK return
  /// is a transport or framing failure; a server-side error arrives as an
  /// OK Result whose response carries the wire status (ToStatus()).
  Result<ServeResponse> Call(const ServeRequest& request);

  /// Closes the connection (idempotent; implied by destruction).
  Status Close();

 private:
  explicit ServeClient(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  std::unique_ptr<Connection> conn_;
};

}  // namespace ssum
