#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/parallel.h"
#include "common/parse_limits.h"
#include "common/result.h"
#include "core/summarize.h"
#include "datasets/registry.h"
#include "serve/wire.h"
#include "store/artifact_cache.h"

namespace ssum {

struct ServeServerOptions {
  /// Listen address; port 0 binds an ephemeral port (read it back from
  /// port() after Start).
  std::string listen = "127.0.0.1:0";
  /// Warm-start cache directory shared by every request; empty disables
  /// caching (cache-stat then reports FailedPrecondition).
  std::string cache_dir;
  /// Worker threads executing requests.
  uint32_t workers = 2;
  /// Requests allowed to wait beyond the workers. Admission control sheds
  /// anything past workers + queue_depth in flight with kUnavailable at the
  /// wire — the server never hangs or drops a connection on overload.
  uint32_t queue_depth = 8;
  /// Concurrent connections; the excess gets kUnavailable and a close.
  uint32_t max_connections = 32;
  /// Dataset scale for summarize/discover (matches `ssum demo`'s reduced
  /// scale; statistics-derived RCs are scale-invariant).
  double dataset_scale = 0.05;
  /// Directory holding the scenario case files clients may name as
  /// "scenario:<file>". Names resolve relative to this directory and must
  /// stay inside it (no absolute paths, no "..", no symlink escapes).
  /// Empty disables scenario datasets entirely — the server never opens a
  /// client-chosen file path.
  std::string scenario_dir;
  /// Parse limits applied to every request-driven ingestion.
  ParseLimits limits = ParseLimits::Defaults();
  /// Requests whose end-to-end latency (queueing included) reaches this
  /// many milliseconds are logged with verb, dataset, and latency, and
  /// counted in ServeMetrics::slow_requests. 0 disables the log.
  uint32_t slow_request_ms = 0;
  /// All network IO goes through this Env (not owned; must outlive the
  /// server through Stop()); tests pass a FaultInjectingEnv to fault
  /// accept/recv/send deterministically.
  Env* env = nullptr;
};

/// Point-in-time metrics snapshot, also rendered by the `metrics` verb.
struct ServeMetrics {
  uint64_t requests = 0;
  uint64_t ok = 0;
  uint64_t errors = 0;        ///< non-OK other than the two below
  uint64_t unavailable = 0;   ///< shed by admission control
  uint64_t deadline_expired = 0;
  uint64_t per_verb[7] = {};  ///< indexed by ServeVerb value (0 unused)
  uint64_t p50_us = 0;        ///< over the last <= 2048 requests
  uint64_t p99_us = 0;
  /// Keep-alive effectiveness: connections accepted vs requests served on
  /// an already-open connection (every request after a connection's first).
  uint64_t connections_opened = 0;
  uint64_t keepalive_reused = 0;
  /// Requests at or over ServeServerOptions::slow_request_ms.
  uint64_t slow_requests = 0;
};

/// The summarization daemon: accepts connections, decodes request frames
/// (serve/wire.h), executes them on a bounded worker pool, and answers with
/// response frames. One instance owns the listener, the worker pool, the
/// shared ArtifactCache, and a pool of per-dataset SummarizerContexts, so a
/// warm `summarize` is a fingerprint lookup — no matrices, no selection.
///
/// Error contract at the wire: every decodable request gets a response
/// frame, including overload (kUnavailable) and deadline expiry
/// (kDeadlineExceeded) — a connection is only ever closed by the peer, by a
/// malformed frame, or by server shutdown.
class SummarizeServer {
 public:
  explicit SummarizeServer(ServeServerOptions options);
  ~SummarizeServer();

  SummarizeServer(const SummarizeServer&) = delete;
  SummarizeServer& operator=(const SummarizeServer&) = delete;

  /// Binds the listener and starts the accept loop. Non-OK when the
  /// address cannot be bound.
  Status Start();

  /// Blocks until a `shutdown` request (or Stop from another thread).
  void WaitForShutdown();

  /// Stops accepting, joins every connection and worker, flushes cache
  /// counters. Idempotent; implied by the destructor.
  void Stop();

  /// Bound port (after Start); resolves an ephemeral ":0" bind.
  int port() const { return port_; }
  /// "host:port" of the bound listener (after Start).
  const std::string& address() const { return address_; }

  ServeMetrics metrics() const;

  /// Executes one already-decoded request against this server's pools —
  /// the same path a wire request takes after decode. Exposed so the bench
  /// can compute reference responses in-process.
  ServeResponse Execute(const ServeRequest& request, const Deadline& deadline);

 private:
  void AcceptLoop();
  void ServeConnection(std::unique_ptr<Connection> conn);
  /// Admission control + worker-pool execution + metrics, shared by every
  /// connection. Returns the response to put on the wire.
  ServeResponse HandleDecoded(const ServeRequest& request,
                              const Deadline& deadline);

  ServeResponse DoSummarize(const ServeRequest& request,
                            const Deadline& deadline);
  ServeResponse DoDiscover(const ServeRequest& request,
                           const Deadline& deadline);
  ServeResponse DoCacheStat();
  ServeResponse DoMetrics();

  /// Serialized summary for (dataset, options, k, algorithm), via the
  /// in-memory memo, then the ArtifactCache, then a pooled-context compute.
  Result<std::string> SummaryPayload(const ServeRequest& request,
                                     const Deadline& deadline);

  struct DatasetEntry {
    std::mutex mutex;  ///< single-flight: one load/build per dataset at a time
    std::shared_ptr<DatasetBundle> bundle;
    /// Contexts keyed by (mode, epsilon bits): matrix construction depends
    /// on them; selection-only parameters (k, algorithm) share a context.
    std::map<std::pair<uint32_t, uint64_t>,
             std::shared_ptr<const SummarizerContext>>
        contexts;
  };
  /// Maps a client-supplied scenario name to the canonical path of a case
  /// file inside options_.scenario_dir, rejecting anything that would
  /// escape it. The canonical path doubles as the dataset-map key, so
  /// distinct spellings of one file share one entry.
  Result<std::string> ResolveScenarioPath(const std::string& name) const;
  /// Returned entries are shared_ptr so a concurrent eviction of a failed
  /// load can never leave a caller with a dangling pointer.
  Result<std::shared_ptr<DatasetEntry>> GetDataset(const std::string& name,
                                                   const Deadline& deadline);

  void RecordOutcome(ServeVerb verb, StatusCode code, uint64_t micros);

  ServeServerOptions options_;
  Env* env_ = nullptr;
  std::optional<ArtifactCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Listener> listener_;
  int port_ = 0;
  std::string address_;

  std::thread accept_thread_;
  std::atomic<bool> stop_{false};
  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;

  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::atomic<uint32_t> open_connections_{0};

  /// Requests admitted and not yet answered; admission control's gauge.
  std::atomic<uint32_t> in_flight_{0};

  std::mutex datasets_mutex_;
  /// shared_ptr values: a failed load erases its placeholder entry while
  /// other threads may still hold it (they retry against the orphan).
  std::map<std::string, std::shared_ptr<DatasetEntry>> datasets_;

  /// Serialized-summary memo: dataset + fingerprint hex -> wire payload.
  /// Bounded; cleared wholesale when it outgrows its budget.
  std::mutex memo_mutex_;
  std::map<std::string, std::string> summary_memo_;

  mutable std::mutex metrics_mutex_;
  ServeMetrics counters_;
  std::vector<uint32_t> latency_ring_;  ///< microseconds, fixed capacity
  size_t latency_next_ = 0;
  size_t latency_count_ = 0;
};

}  // namespace ssum
