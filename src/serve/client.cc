#include "serve/client.h"

namespace ssum {

Result<ServeClient> ServeClient::Connect(const std::string& addr, Env* env) {
  if (env == nullptr) env = Env::Default();
  std::unique_ptr<Connection> conn;
  SSUM_ASSIGN_OR_RETURN(conn, env->Connect(addr));
  return ServeClient(std::move(conn));
}

Result<ServeResponse> ServeClient::Call(const ServeRequest& request) {
  if (conn_ == nullptr) {
    return Status::FailedPrecondition("client is closed");
  }
  SSUM_RETURN_NOT_OK(WriteFrame(conn_.get(), EncodeRequest(request)));
  std::string body;
  SSUM_ASSIGN_OR_RETURN(body, ReadFrame(conn_.get()));
  return DecodeResponse(body);
}

Status ServeClient::Close() {
  if (conn_ == nullptr) return Status::OK();
  std::unique_ptr<Connection> conn = std::move(conn_);
  return conn->Close();
}

}  // namespace ssum
