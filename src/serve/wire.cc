#include "serve/wire.h"

#include <bit>
#include <cstring>

#include "store/container.h"

namespace ssum {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

std::string EncodedU32(uint32_t v) {
  std::string s;
  AppendU32(&s, v);
  return s;
}

std::string EncodedU64(uint64_t v) {
  std::string s;
  AppendU64(&s, v);
  return s;
}

/// Fixed-size fields must be exactly their size — a short or long section
/// is a malformed message, not a tolerable variant.
Result<uint32_t> SectionU32(std::string_view payload, const char* what) {
  if (payload.size() != 4) {
    return Status::ParseError(std::string(what) + " section must be 4 bytes");
  }
  return LoadU32(payload.data());
}

Result<uint64_t> SectionU64(std::string_view payload, const char* what) {
  if (payload.size() != 8) {
    return Status::ParseError(std::string(what) + " section must be 8 bytes");
  }
  return LoadU64(payload.data());
}

}  // namespace

const char* ServeVerbName(ServeVerb verb) {
  switch (verb) {
    case ServeVerb::kHealth:
      return "health";
    case ServeVerb::kSummarize:
      return "summarize";
    case ServeVerb::kDiscover:
      return "discover";
    case ServeVerb::kCacheStat:
      return "cache-stat";
    case ServeVerb::kMetrics:
      return "metrics";
    case ServeVerb::kShutdown:
      return "shutdown";
  }
  return "?";
}

Result<ServeVerb> ParseServeVerb(std::string_view name) {
  for (uint32_t v = static_cast<uint32_t>(ServeVerb::kHealth);
       v <= static_cast<uint32_t>(ServeVerb::kShutdown); ++v) {
    if (name == ServeVerbName(static_cast<ServeVerb>(v))) {
      return static_cast<ServeVerb>(v);
    }
  }
  return Status::InvalidArgument(
      "unknown verb '" + std::string(name) +
      "' (health|summarize|discover|cache-stat|metrics|shutdown)");
}

Status ServeResponse::ToStatus() const {
  switch (status) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(message);
    case StatusCode::kNotFound:
      return Status::NotFound(message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(message);
    case StatusCode::kParseError:
      return Status::ParseError(message);
    case StatusCode::kIoError:
      return Status::IoError(message);
    case StatusCode::kDataLoss:
      return Status::DataLoss(message);
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(message);
    case StatusCode::kInternal:
      return Status::Internal(message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(message);
    case StatusCode::kUnavailable:
      return Status::Unavailable(message);
  }
  return Status::Internal("response carried an unknown status code");
}

std::string EncodeRequest(const ServeRequest& request) {
  ContainerWriter writer(PayloadKind::kServeRequest);
  writer.AddSection(kServeTagVerb,
                    EncodedU32(static_cast<uint32_t>(request.verb)));
  if (!request.dataset.empty()) {
    writer.AddSection(kServeTagDataset, request.dataset);
  }
  writer.AddSection(kServeTagK, EncodedU64(request.k));
  writer.AddSection(kServeTagAlgorithm,
                    EncodedU32(static_cast<uint32_t>(request.algorithm)));
  writer.AddSection(kServeTagMode,
                    EncodedU32(static_cast<uint32_t>(request.mode)));
  writer.AddSection(kServeTagEpsilon,
                    EncodedU64(std::bit_cast<uint64_t>(request.epsilon)));
  if (request.has_deadline) {
    writer.AddSection(kServeTagDeadlineMs, EncodedU64(request.deadline_ms));
  }
  if (request.stall_ms > 0) {
    writer.AddSection(kServeTagStallMs, EncodedU64(request.stall_ms));
  }
  for (const std::string& path : request.paths) {
    writer.AddSection(kServeTagPath, path);
  }
  return std::move(writer).Finish();
}

std::string EncodeResponse(const ServeResponse& response) {
  ContainerWriter writer(PayloadKind::kServeResponse);
  writer.AddSection(kServeTagStatus,
                    EncodedU32(static_cast<uint32_t>(response.status)));
  if (!response.message.empty()) {
    writer.AddSection(kServeTagMessage, response.message);
  }
  if (!response.payload.empty()) {
    writer.AddSection(kServeTagPayload, response.payload);
  }
  return std::move(writer).Finish();
}

Result<ServeRequest> DecodeRequest(std::string_view body) {
  Container container;
  SSUM_ASSIGN_OR_RETURN(container, ParseContainer(body));
  if (container.info.payload_kind !=
      static_cast<uint32_t>(PayloadKind::kServeRequest)) {
    return Status::InvalidArgument(
        std::string("frame is not a serve request (payload kind ") +
        PayloadKindName(container.info.payload_kind) + ")");
  }
  ServeRequest request;
  bool have_verb = false;
  for (const ContainerSection& section : container.sections) {
    switch (section.tag) {
      case kServeTagVerb: {
        uint32_t raw;
        SSUM_ASSIGN_OR_RETURN(raw, SectionU32(section.payload, "verb"));
        if (raw < static_cast<uint32_t>(ServeVerb::kHealth) ||
            raw > static_cast<uint32_t>(ServeVerb::kShutdown)) {
          return Status::InvalidArgument("unknown verb code " +
                                         std::to_string(raw));
        }
        request.verb = static_cast<ServeVerb>(raw);
        have_verb = true;
        break;
      }
      case kServeTagDataset:
        request.dataset = std::string(section.payload);
        break;
      case kServeTagK: {
        uint64_t k;
        SSUM_ASSIGN_OR_RETURN(k, SectionU64(section.payload, "k"));
        if (k == 0) {
          return Status::InvalidArgument("k must be positive");
        }
        request.k = k;
        break;
      }
      case kServeTagAlgorithm: {
        uint32_t raw;
        SSUM_ASSIGN_OR_RETURN(raw, SectionU32(section.payload, "algorithm"));
        if (raw > static_cast<uint32_t>(Algorithm::kBalanceSummary)) {
          return Status::InvalidArgument("unknown algorithm code " +
                                         std::to_string(raw));
        }
        request.algorithm = static_cast<Algorithm>(raw);
        break;
      }
      case kServeTagMode: {
        uint32_t raw;
        SSUM_ASSIGN_OR_RETURN(raw, SectionU32(section.payload, "mode"));
        if (raw > static_cast<uint32_t>(SummaryMode::kApprox)) {
          return Status::InvalidArgument("unknown mode code " +
                                         std::to_string(raw));
        }
        request.mode = static_cast<SummaryMode>(raw);
        break;
      }
      case kServeTagEpsilon: {
        uint64_t bits;
        SSUM_ASSIGN_OR_RETURN(bits, SectionU64(section.payload, "epsilon"));
        const double eps = std::bit_cast<double>(bits);
        if (!(eps >= 0.0 && eps < 1.0)) {  // rejects NaN too
          return Status::InvalidArgument("epsilon must be in [0, 1)");
        }
        request.epsilon = eps;
        break;
      }
      case kServeTagDeadlineMs: {
        uint64_t ms;
        SSUM_ASSIGN_OR_RETURN(ms, SectionU64(section.payload, "deadline_ms"));
        request.has_deadline = true;
        request.deadline_ms = ms;
        break;
      }
      case kServeTagStallMs: {
        uint64_t ms;
        SSUM_ASSIGN_OR_RETURN(ms, SectionU64(section.payload, "stall_ms"));
        request.stall_ms = ms;
        break;
      }
      case kServeTagPath:
        request.paths.emplace_back(section.payload);
        break;
      default:
        break;  // forward compatibility: unknown tags are skippable
    }
  }
  if (!have_verb) {
    return Status::ParseError("request frame has no verb section");
  }
  return request;
}

Result<ServeResponse> DecodeResponse(std::string_view body) {
  Container container;
  SSUM_ASSIGN_OR_RETURN(container, ParseContainer(body));
  if (container.info.payload_kind !=
      static_cast<uint32_t>(PayloadKind::kServeResponse)) {
    return Status::InvalidArgument(
        std::string("frame is not a serve response (payload kind ") +
        PayloadKindName(container.info.payload_kind) + ")");
  }
  ServeResponse response;
  bool have_status = false;
  for (const ContainerSection& section : container.sections) {
    switch (section.tag) {
      case kServeTagStatus: {
        uint32_t raw;
        SSUM_ASSIGN_OR_RETURN(raw, SectionU32(section.payload, "status"));
        if (raw > static_cast<uint32_t>(StatusCode::kUnavailable)) {
          return Status::InvalidArgument("unknown status code " +
                                         std::to_string(raw));
        }
        response.status = static_cast<StatusCode>(raw);
        have_status = true;
        break;
      }
      case kServeTagMessage:
        response.message = std::string(section.payload);
        break;
      case kServeTagPayload:
        response.payload = std::string(section.payload);
        break;
      default:
        break;
    }
  }
  if (!have_status) {
    return Status::ParseError("response frame has no status section");
  }
  return response;
}

namespace {

/// Fills `out` completely, or reports how the stream ended: NotFound for a
/// clean EOF before the first byte (when allowed), OutOfRange mid-buffer.
Status ReadExactly(Connection* conn, char* out, size_t n,
                   bool clean_eof_allowed) {
  size_t got = 0;
  while (got < n) {
    size_t chunk;
    SSUM_ASSIGN_OR_RETURN(chunk, conn->Read(out + got, n - got));
    if (chunk == 0) {
      if (got == 0 && clean_eof_allowed) {
        return Status::NotFound("connection closed");
      }
      return Status::OutOfRange("connection closed mid-frame after " +
                                std::to_string(got) + " bytes");
    }
    got += chunk;
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ReadFrame(Connection* conn, size_t max_bytes) {
  char prefix[4];
  SSUM_RETURN_NOT_OK(
      ReadExactly(conn, prefix, sizeof(prefix), /*clean_eof_allowed=*/true));
  const uint32_t length = LoadU32(prefix);
  if (length > max_bytes) {
    return Status::OutOfRange("frame of " + std::to_string(length) +
                              " bytes exceeds the " +
                              std::to_string(max_bytes) + "-byte limit");
  }
  std::string body(length, '\0');
  SSUM_RETURN_NOT_OK(
      ReadExactly(conn, body.data(), length, /*clean_eof_allowed=*/false));
  return body;
}

Status WriteFrame(Connection* conn, std::string_view body) {
  if (body.size() > kMaxServeFrameBytes) {
    return Status::OutOfRange("frame of " + std::to_string(body.size()) +
                              " bytes exceeds the wire limit");
  }
  std::string framed;
  framed.reserve(4 + body.size());
  AppendU32(&framed, static_cast<uint32_t>(body.size()));
  framed.append(body);
  return conn->WriteAll(framed);
}

}  // namespace ssum
