#include "serve/server.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <climits>
#include <cstdlib>
#include <future>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/summary_io.h"
#include "datasets/scenario.h"
#include "query/discovery.h"
#include "query/intention.h"
#include "store/fingerprint.h"

namespace ssum {

namespace {

/// The latency ring keeps the most recent window; large enough that p99
/// over it is meaningful, small enough to snapshot under the metrics lock.
constexpr size_t kLatencyRingCapacity = 2048;

/// The memo can hold this many serialized summaries before being cleared
/// wholesale (distinct request shapes are few; wholesale is simpler and the
/// cost of a flush is one ArtifactCache hit per shape).
constexpr size_t kSummaryMemoBudget = 1024;

/// "scenario:<file>" names a generated dataset by a case file inside the
/// operator-configured scenario directory. The name never reaches the
/// filesystem directly: ResolveScenarioPath rejects anything outside that
/// directory first, and with no directory configured every scenario name
/// is refused outright.
constexpr std::string_view kScenarioPrefix = "scenario:";

/// Scenario datasets the server will hold at once. Resolution caps the
/// reachable set at the case files under scenario_dir; this additionally
/// bounds the memory a burst of distinct valid names can pin.
constexpr size_t kMaxScenarioDatasets = 16;

/// Lexical screen before any filesystem access: relative, '/'-separated,
/// no empty/"."/".." components, printable bytes only.
Status CheckScenarioName(const std::string& name) {
  const Status reject = Status::InvalidArgument(
      "scenario name must be a relative path inside the scenario directory "
      "(no absolute paths, no '..')");
  if (name.empty() || name.size() > 256) return reject;
  for (char c : name) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f || c == '\\') {
      return reject;
    }
  }
  size_t pos = 0;
  while (pos <= name.size()) {
    size_t slash = name.find('/', pos);
    std::string_view part =
        std::string_view(name).substr(pos, slash == std::string::npos
                                               ? std::string::npos
                                               : slash - pos);
    if (part.empty() || part == "." || part == "..") return reject;
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  return Status::OK();
}

Result<DatasetKind> ParseDatasetName(const std::string& name) {
  if (name == "xmark") return DatasetKind::kXMark;
  if (name == "tpch") return DatasetKind::kTpch;
  if (name == "mimi") return DatasetKind::kMimi;
  if (name.empty()) {
    return Status::InvalidArgument(
        "request needs a dataset (xmark|tpch|mimi|scenario:<config>)");
  }
  return Status::InvalidArgument(
      "unknown dataset '" + name + "' (xmark|tpch|mimi|scenario:<config>)");
}

ServeResponse ErrorResponse(const Status& status) {
  ServeResponse response;
  response.status = status.code();
  response.message = status.message();
  return response;
}

ServeResponse OkResponse(std::string payload) {
  ServeResponse response;
  response.payload = std::move(payload);
  return response;
}

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendCounter(std::string* out, const char* key, uint64_t value) {
  out->append(key);
  out->push_back('\t');
  out->append(std::to_string(value));
  out->push_back('\n');
}

}  // namespace

SummarizeServer::SummarizeServer(ServeServerOptions options)
    : options_(std::move(options)),
      env_(options_.env != nullptr ? options_.env : Env::Default()),
      latency_ring_(kLatencyRingCapacity, 0) {
  if (!options_.cache_dir.empty()) {
    cache_.emplace(options_.cache_dir, env_);
    if (Status s = cache_->EnsureDir(); !s.ok()) {
      SSUM_LOG(kWarning) << "serve: cache disabled: " << s.ToString();
      cache_.reset();
    }
  }
  pool_ = std::make_unique<ThreadPool>(std::max<uint32_t>(1, options_.workers));
}

SummarizeServer::~SummarizeServer() { Stop(); }

Status SummarizeServer::Start() {
  SSUM_ASSIGN_OR_RETURN(listener_, env_->NewListener(options_.listen));
  port_ = listener_->port();
  const size_t colon = options_.listen.rfind(':');
  std::string host =
      colon == std::string::npos ? "" : options_.listen.substr(0, colon);
  if (host.empty()) host = "127.0.0.1";
  address_ = host + ":" + std::to_string(port_);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SummarizeServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [this] { return stop_.load(); });
}

void SummarizeServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    stop_.store(true);
  }
  shutdown_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Connection threads exit on their next Readable tick (<= 100 ms).
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  if (pool_ != nullptr) pool_->Shutdown();
  if (listener_ != nullptr) (void)listener_->Close();
  if (cache_.has_value()) {
    if (Status s = cache_->FlushCounters(); !s.ok()) {
      SSUM_LOG(kWarning) << "serve: cache counter flush failed: "
                         << s.ToString();
    }
  }
}

void SummarizeServer::AcceptLoop() {
  while (!stop_.load()) {
    auto accepted = listener_->Accept(/*timeout_ms=*/100);
    if (!accepted.ok()) {
      if (accepted.status().IsNotFound()) continue;  // idle tick
      if (stop_.load()) break;
      SSUM_LOG(kWarning) << "serve: accept failed: "
                         << accepted.status().ToString();
      continue;
    }
    std::unique_ptr<Connection> conn = std::move(*accepted);
    if (open_connections_.fetch_add(1) >= options_.max_connections) {
      open_connections_.fetch_sub(1);
      // Over the connection cap: still a protocol-level answer, never a
      // silent close, so the client can tell overload from a crash.
      (void)WriteFrame(conn.get(),
                       EncodeResponse(ErrorResponse(Status::Unavailable(
                           "server is at its connection limit"))));
      (void)conn->Close();
      continue;
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_threads_.emplace_back(
        [this, c = std::move(conn)]() mutable { ServeConnection(std::move(c)); });
  }
}

void SummarizeServer::ServeConnection(std::unique_ptr<Connection> conn) {
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    ++counters_.connections_opened;
  }
  uint64_t served = 0;
  while (!stop_.load()) {
    auto readable = conn->Readable(/*timeout_ms=*/100);
    if (!readable.ok()) break;
    if (!*readable) continue;  // idle tick; recheck the stop flag
    auto body = ReadFrame(conn.get());
    if (!body.ok()) {
      // Clean EOF (NotFound) ends the stream silently; anything else gets a
      // best-effort diagnostic frame before the close.
      if (!body.status().IsNotFound()) {
        (void)WriteFrame(conn.get(),
                         EncodeResponse(ErrorResponse(body.status())));
      }
      break;
    }
    auto request = DecodeRequest(*body);
    if (!request.ok()) {
      (void)WriteFrame(conn.get(),
                       EncodeResponse(ErrorResponse(request.status())));
      break;
    }
    // The deadline arms here, before admission: time spent queued behind
    // busy workers counts against the request's budget.
    Deadline deadline = request->has_deadline
                            ? Deadline::After(static_cast<int64_t>(
                                  request->deadline_ms))
                            : Deadline::Unlimited();
    // Every request after a connection's first rode keep-alive — the
    // metrics verb reports the ratio so operators can see whether clients
    // actually reuse connections.
    if (served++ > 0) {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++counters_.keepalive_reused;
    }
    ServeResponse response = HandleDecoded(*request, deadline);
    if (Status s = WriteFrame(conn.get(), EncodeResponse(response));
        !s.ok()) {
      break;
    }
    if (request->verb == ServeVerb::kShutdown && response.ok()) {
      {
        std::lock_guard<std::mutex> lock(shutdown_mutex_);
        stop_.store(true);
      }
      shutdown_cv_.notify_all();
      break;
    }
  }
  (void)conn->Close();
  open_connections_.fetch_sub(1);
}

ServeResponse SummarizeServer::HandleDecoded(const ServeRequest& request,
                                             const Deadline& deadline) {
  const uint64_t started = NowMicros();
  const uint32_t capacity = std::max<uint32_t>(1, options_.workers) +
                            options_.queue_depth;
  ServeResponse response;
  if (in_flight_.fetch_add(1) >= capacity) {
    in_flight_.fetch_sub(1);
    response = ErrorResponse(Status::Unavailable(
        "server is over capacity (" + std::to_string(capacity) +
        " requests in flight); retry"));
  } else {
    std::promise<ServeResponse> promise;
    std::future<ServeResponse> future = promise.get_future();
    pool_->Submit([this, &request, &deadline, &promise] {
      promise.set_value(Execute(request, deadline));
    });
    response = future.get();
    in_flight_.fetch_sub(1);
  }
  const uint64_t elapsed_us = NowMicros() - started;
  RecordOutcome(request.verb, response.status, elapsed_us);
  if (options_.slow_request_ms > 0 &&
      elapsed_us >= uint64_t{options_.slow_request_ms} * 1000) {
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++counters_.slow_requests;
    }
    SSUM_LOG(kWarning) << "serve: slow request: verb="
                       << ServeVerbName(request.verb) << " dataset="
                       << (request.dataset.empty() ? "-" : request.dataset)
                       << " latency_ms=" << elapsed_us / 1000;
  }
  return response;
}

ServeResponse SummarizeServer::Execute(const ServeRequest& request,
                                       const Deadline& deadline) {
  if (Status s = deadline.Check("request"); !s.ok()) {
    return ErrorResponse(s);
  }
  // Testing aid: hold this worker for stall_ms in deadline-checked slices,
  // so overload and deadline-expiry paths are reachable deterministically.
  for (uint64_t slept = 0; slept < request.stall_ms; ++slept) {
    if (Status s = deadline.Check("request"); !s.ok()) {
      return ErrorResponse(s);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  switch (request.verb) {
    case ServeVerb::kHealth:
      return OkResponse("ok\n");
    case ServeVerb::kShutdown:
      return OkResponse("shutting down\n");
    case ServeVerb::kSummarize:
      return DoSummarize(request, deadline);
    case ServeVerb::kDiscover:
      return DoDiscover(request, deadline);
    case ServeVerb::kCacheStat:
      return DoCacheStat();
    case ServeVerb::kMetrics:
      return DoMetrics();
  }
  return ErrorResponse(Status::Internal("unhandled verb"));
}

Result<std::string> SummarizeServer::ResolveScenarioPath(
    const std::string& name) const {
  if (options_.scenario_dir.empty()) {
    return Status::FailedPrecondition(
        "scenario datasets are disabled (the server was started without a "
        "scenario directory)");
  }
  SSUM_RETURN_NOT_OK(CheckScenarioName(name));
  char dir_buf[PATH_MAX];
  if (::realpath(options_.scenario_dir.c_str(), dir_buf) == nullptr) {
    return Status::FailedPrecondition(
        "the configured scenario directory does not resolve");
  }
  const std::string dir(dir_buf);
  char path_buf[PATH_MAX];
  if (::realpath((dir + "/" + name).c_str(), path_buf) == nullptr) {
    return Status::NotFound("unknown scenario '" + name + "'");
  }
  const std::string path(path_buf);
  // realpath follows symlinks, so a link pointing outside the directory
  // resolves outside it and fails this containment check.
  if (!StartsWith(path, dir + "/")) {
    return Status::InvalidArgument(
        "scenario '" + name + "' escapes the scenario directory");
  }
  return path;
}

Result<std::shared_ptr<SummarizeServer::DatasetEntry>>
SummarizeServer::GetDataset(const std::string& name,
                            const Deadline& deadline) {
  const bool is_scenario = StartsWith(name, kScenarioPrefix);
  DatasetKind kind = DatasetKind::kXMark;
  std::string key = name;
  std::string scenario_path;
  if (is_scenario) {
    // Validate and canonicalize before touching the dataset map: hostile
    // names never insert anything, and every spelling of one case file
    // shares one entry.
    SSUM_ASSIGN_OR_RETURN(
        scenario_path,
        ResolveScenarioPath(std::string(name.substr(kScenarioPrefix.size()))));
    key = std::string(kScenarioPrefix) + scenario_path;
  } else {
    SSUM_ASSIGN_OR_RETURN(kind, ParseDatasetName(name));
  }
  std::shared_ptr<DatasetEntry> entry;
  {
    std::lock_guard<std::mutex> lock(datasets_mutex_);
    auto it = datasets_.find(key);
    if (it == datasets_.end()) {
      if (is_scenario) {
        size_t loaded = 0;
        for (const auto& [k, unused] : datasets_) {
          loaded += StartsWith(k, kScenarioPrefix) ? 1 : 0;
        }
        if (loaded >= kMaxScenarioDatasets) {
          return Status::Unavailable(
              "server already holds " +
              std::to_string(kMaxScenarioDatasets) +
              " scenario datasets; retry later");
        }
      }
      it = datasets_.emplace(key, std::make_shared<DatasetEntry>()).first;
    }
    entry = it->second;
  }
  std::lock_guard<std::mutex> lock(entry->mutex);
  if (entry->bundle == nullptr) {
    ArtifactCache* cache = cache_.has_value() ? &*cache_ : nullptr;
    auto bundle = [&]() -> Result<DatasetBundle> {
      SSUM_RETURN_NOT_OK(deadline.Check("dataset load"));
      return is_scenario ? LoadScenarioFile(scenario_path, cache)
                         : LoadDataset(kind, options_.dataset_scale, cache);
    }();
    if (!bundle.ok()) {
      // Drop the placeholder so failed loads (bad config, expired deadline)
      // do not grow the map; threads already holding the orphan retry
      // against it and the next request starts clean.
      std::lock_guard<std::mutex> map_lock(datasets_mutex_);
      auto it = datasets_.find(key);
      if (it != datasets_.end() && it->second == entry) datasets_.erase(it);
      return bundle.status();
    }
    entry->bundle = std::make_shared<DatasetBundle>(std::move(*bundle));
  }
  return entry;
}

Result<std::string> SummarizeServer::SummaryPayload(const ServeRequest& request,
                                                    const Deadline& deadline) {
  std::shared_ptr<DatasetEntry> entry;
  SSUM_ASSIGN_OR_RETURN(entry, GetDataset(request.dataset, deadline));

  SummarizeOptions options;
  options.mode = request.mode;
  options.approx_epsilon = request.epsilon;
  const Fingerprint fp =
      SummaryFingerprint(entry->bundle->schema, entry->bundle->annotations,
                         options, static_cast<size_t>(request.k),
                         request.algorithm);
  const std::string memo_key = request.dataset + ":" + fp.ToHex();
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    auto it = summary_memo_.find(memo_key);
    if (it != summary_memo_.end()) return it->second;
  }

  std::string payload;
  if (cache_.has_value()) {
    if (auto hit = cache_->LoadSummary(entry->bundle->schema, fp)) {
      payload = SerializeSummary(*hit);
    }
  }
  if (payload.empty()) {
    std::shared_ptr<const SummarizerContext> context;
    const std::pair<uint32_t, uint64_t> context_key = {
        static_cast<uint32_t>(request.mode),
        std::bit_cast<uint64_t>(request.epsilon)};
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      auto it = entry->contexts.find(context_key);
      if (it != entry->contexts.end()) {
        context = it->second;
      } else {
        SSUM_RETURN_NOT_OK(deadline.Check("context build"));
        SummarizeOptions build_options = options;
        build_options.parallel.deadline = deadline;
        auto built = SummarizerContext::Make(
            entry->bundle->schema, entry->bundle->annotations, build_options,
            cache_.has_value() ? &*cache_ : nullptr);
        SSUM_RETURN_NOT_OK(built.status());
        // Pooled contexts outlive this request: drop its deadline so a
        // later request is not poisoned by an expired budget.
        built->ResetDeadline();
        context =
            std::make_shared<SummarizerContext>(std::move(*built));
        entry->contexts.emplace(context_key, context);
      }
    }
    SSUM_RETURN_NOT_OK(deadline.Check("selection"));
    auto summary = Summarize(*context, static_cast<size_t>(request.k),
                             request.algorithm);
    SSUM_RETURN_NOT_OK(summary.status());
    if (cache_.has_value()) {
      if (Status s = cache_->StoreSummary(fp, *summary); !s.ok()) {
        SSUM_LOG(kWarning) << "serve: summary install failed: "
                           << s.ToString();
      }
    }
    payload = SerializeSummary(*summary);
  }
  {
    std::lock_guard<std::mutex> lock(memo_mutex_);
    if (summary_memo_.size() >= kSummaryMemoBudget) summary_memo_.clear();
    summary_memo_.emplace(memo_key, payload);
  }
  return payload;
}

ServeResponse SummarizeServer::DoSummarize(const ServeRequest& request,
                                           const Deadline& deadline) {
  auto payload = SummaryPayload(request, deadline);
  if (!payload.ok()) return ErrorResponse(payload.status());
  return OkResponse(std::move(*payload));
}

ServeResponse SummarizeServer::DoDiscover(const ServeRequest& request,
                                          const Deadline& deadline) {
  if (request.paths.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("discover needs at least one path"));
  }
  std::shared_ptr<DatasetEntry> entry;
  {
    auto got = GetDataset(request.dataset, deadline);
    if (!got.ok()) return ErrorResponse(got.status());
    entry = std::move(*got);
  }
  auto payload = SummaryPayload(request, deadline);
  if (!payload.ok()) return ErrorResponse(payload.status());
  auto summary = ParseSummary(entry->bundle->schema, *payload,
                              options_.limits);
  if (!summary.ok()) return ErrorResponse(summary.status());
  auto intention = MakeIntention(entry->bundle->schema, "serve",
                                 request.paths);
  if (!intention.ok()) return ErrorResponse(intention.status());
  if (Status s = deadline.Check("discovery"); !s.ok()) {
    return ErrorResponse(s);
  }
  DiscoveryOracle oracle(entry->bundle->schema);
  DiscoveryResult without =
      Discover(oracle, *intention, TraversalStrategy::kBestFirst);
  DiscoveryResult with = DiscoverWithSummary(oracle, *summary, *intention);
  std::string text;
  AppendCounter(&text, "cost_without_summary", without.cost);
  AppendCounter(&text, "cost_with_summary", with.cost);
  AppendCounter(&text, "complete", with.complete ? 1 : 0);
  return OkResponse(std::move(text));
}

ServeResponse SummarizeServer::DoCacheStat() {
  if (!cache_.has_value()) {
    return ErrorResponse(Status::FailedPrecondition(
        "the server has no cache directory (--cache-dir)"));
  }
  auto entries = cache_->List();
  if (!entries.ok()) return ErrorResponse(entries.status());
  uint64_t bytes = 0;
  for (const CacheEntry& e : *entries) bytes += e.bytes;
  const CacheCounters counters = cache_->session_counters();
  std::string text = "dir\t" + cache_->dir() + "\n";
  AppendCounter(&text, "containers", entries->size());
  AppendCounter(&text, "bytes", bytes);
  AppendCounter(&text, "hits", counters.hits);
  AppendCounter(&text, "misses", counters.misses);
  AppendCounter(&text, "installs", counters.installs);
  AppendCounter(&text, "corrupt", counters.corrupt);
  AppendCounter(&text, "foreign", counters.foreign);
  AppendCounter(&text, "mismatch", counters.mismatch);
  AppendCounter(&text, "quarantined", counters.quarantined);
  AppendCounter(&text, "healed", counters.healed);
  return OkResponse(std::move(text));
}

ServeResponse SummarizeServer::DoMetrics() {
  const ServeMetrics snapshot = metrics();
  std::string text;
  AppendCounter(&text, "requests", snapshot.requests);
  AppendCounter(&text, "ok", snapshot.ok);
  AppendCounter(&text, "errors", snapshot.errors);
  AppendCounter(&text, "unavailable", snapshot.unavailable);
  AppendCounter(&text, "deadline_expired", snapshot.deadline_expired);
  for (uint32_t v = static_cast<uint32_t>(ServeVerb::kHealth);
       v <= static_cast<uint32_t>(ServeVerb::kShutdown); ++v) {
    std::string key = std::string("verb_") +
                      ServeVerbName(static_cast<ServeVerb>(v));
    AppendCounter(&text, key.c_str(), snapshot.per_verb[v]);
  }
  AppendCounter(&text, "p50_us", snapshot.p50_us);
  AppendCounter(&text, "p99_us", snapshot.p99_us);
  AppendCounter(&text, "connections_opened", snapshot.connections_opened);
  AppendCounter(&text, "keepalive_reused", snapshot.keepalive_reused);
  AppendCounter(&text, "slow_requests", snapshot.slow_requests);
  if (cache_.has_value()) {
    const CacheCounters counters = cache_->session_counters();
    AppendCounter(&text, "cache_hits", counters.hits);
    AppendCounter(&text, "cache_misses", counters.misses);
    AppendCounter(&text, "cache_quarantined", counters.quarantined);
  }
  return OkResponse(std::move(text));
}

void SummarizeServer::RecordOutcome(ServeVerb verb, StatusCode code,
                                    uint64_t micros) {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ++counters_.requests;
  const size_t v = static_cast<size_t>(verb);
  if (v < 7) ++counters_.per_verb[v];
  switch (code) {
    case StatusCode::kOk:
      ++counters_.ok;
      break;
    case StatusCode::kUnavailable:
      ++counters_.unavailable;
      break;
    case StatusCode::kDeadlineExceeded:
      ++counters_.deadline_expired;
      break;
    default:
      ++counters_.errors;
      break;
  }
  latency_ring_[latency_next_] = static_cast<uint32_t>(
      std::min<uint64_t>(micros, UINT32_MAX));
  latency_next_ = (latency_next_ + 1) % latency_ring_.size();
  latency_count_ = std::min(latency_count_ + 1, latency_ring_.size());
}

ServeMetrics SummarizeServer::metrics() const {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  ServeMetrics snapshot = counters_;
  if (latency_count_ > 0) {
    std::vector<uint32_t> window(latency_ring_.begin(),
                                 latency_ring_.begin() +
                                     static_cast<long>(latency_count_));
    auto nth = [&window](double q) {
      const size_t rank = std::min(
          window.size() - 1,
          static_cast<size_t>(q * static_cast<double>(window.size())));
      std::nth_element(window.begin(),
                       window.begin() + static_cast<long>(rank), window.end());
      return static_cast<uint64_t>(window[rank]);
    };
    snapshot.p50_us = nth(0.50);
    snapshot.p99_us = nth(0.99);
  }
  return snapshot;
}

}  // namespace ssum
