#include "eval/agreement.h"

#include <algorithm>

namespace ssum {

double SummaryAgreement(const std::vector<ElementId>& a,
                        const std::vector<ElementId>& b, size_t k) {
  if (k == 0) return 0;
  size_t common = 0;
  for (ElementId e : a) {
    if (std::find(b.begin(), b.end(), e) != b.end()) ++common;
  }
  return static_cast<double>(common) / static_cast<double>(k);
}

double PanelAgreement(const ExpertPanel& panel, size_t k) {
  if (panel.rankings.empty() || k == 0) return 0;
  std::vector<ElementId> common = panel.SummaryOf(0, k);
  for (size_t u = 1; u < panel.rankings.size(); ++u) {
    std::vector<ElementId> s = panel.SummaryOf(u, k);
    std::vector<ElementId> next;
    for (ElementId e : common) {
      if (std::find(s.begin(), s.end(), e) != s.end()) next.push_back(e);
    }
    common = std::move(next);
  }
  return static_cast<double>(common.size()) / static_cast<double>(k);
}

}  // namespace ssum
