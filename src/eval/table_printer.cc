#include "eval/table_printer.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace ssum {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddSeparator() { rows_.emplace_back(); }

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto line = [&](char fill) {
    std::string out = "+";
    for (size_t w : widths) {
      out += std::string(w + 2, fill);
      out += '+';
    }
    out += '\n';
    return out;
  };
  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += ' ';
      out += cell;
      out += std::string(widths[c] - cell.size() + 1, ' ');
      out += '|';
    }
    out += '\n';
    return out;
  };
  std::string out = line('-');
  out += emit_row(headers_);
  out += line('=');
  for (const auto& row : rows_) {
    if (row.empty()) {
      out += line('-');
    } else {
      out += emit_row(row);
    }
  }
  out += line('-');
  return out;
}

std::string Percent(double fraction) {
  return FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace ssum
