#include "eval/experiment.h"

namespace ssum {

Result<QueryDiscoveryRow> RunQueryDiscoveryRow(const DatasetBundle& bundle,
                                               const SummarizeOptions& options) {
  QueryDiscoveryRow row;
  row.dataset = bundle.name;
  row.summary_size = bundle.paper_summary_size;
  row.summary_fraction = static_cast<double>(row.summary_size) /
                         static_cast<double>(bundle.schema.size());
  row.rounds = bundle.workload.size();
  DiscoveryOracle oracle(bundle.schema);
  row.depth_first = AverageDiscoveryCost(oracle, bundle.workload,
                                         TraversalStrategy::kDepthFirst);
  row.breadth_first = AverageDiscoveryCost(oracle, bundle.workload,
                                           TraversalStrategy::kBreadthFirst);
  row.best_first = AverageDiscoveryCost(oracle, bundle.workload,
                                        TraversalStrategy::kBestFirst);
  SummarizerContext context(bundle.schema, bundle.annotations, options);
  SchemaSummary summary;
  SSUM_ASSIGN_OR_RETURN(summary, Summarize(context, row.summary_size,
                                           Algorithm::kBalanceSummary));
  row.with_summary =
      AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload);
  row.saving = row.best_first > 0 ? 1.0 - row.with_summary / row.best_first
                                  : 0.0;
  return row;
}

Result<BalanceRow> RunBalanceRow(const DatasetBundle& bundle,
                                 const SummarizeOptions& options) {
  BalanceRow row;
  row.dataset = bundle.name;
  row.summary_size = bundle.paper_summary_size;
  DiscoveryOracle oracle(bundle.schema);
  row.best_first = AverageDiscoveryCost(oracle, bundle.workload,
                                        TraversalStrategy::kBestFirst);
  SummarizerContext context(bundle.schema, bundle.annotations, options);
  for (Algorithm alg : {Algorithm::kBalanceSummary, Algorithm::kMaxImportance,
                        Algorithm::kMaxCoverage}) {
    SchemaSummary summary;
    SSUM_ASSIGN_OR_RETURN(summary, Summarize(context, row.summary_size, alg));
    double cost =
        AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload);
    switch (alg) {
      case Algorithm::kBalanceSummary:
        row.balance = cost;
        break;
      case Algorithm::kMaxImportance:
        row.max_importance = cost;
        break;
      case Algorithm::kMaxCoverage:
        row.max_coverage = cost;
        break;
    }
  }
  return row;
}

Result<std::vector<SizeSweepPoint>> RunSizeSweep(
    const DatasetBundle& bundle, const std::vector<size_t>& sizes,
    const SummarizeOptions& options) {
  DiscoveryOracle oracle(bundle.schema);
  SummarizerContext context(bundle.schema, bundle.annotations, options);
  std::vector<SizeSweepPoint> out;
  for (size_t k : sizes) {
    SchemaSummary summary;
    SSUM_ASSIGN_OR_RETURN(summary,
                          Summarize(context, k, Algorithm::kBalanceSummary));
    out.push_back(
        {k, AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload)});
  }
  return out;
}

Result<StructureVsDataRow> RunStructureVsDataRow(
    const DatasetBundle& bundle, const SummarizeOptions& options) {
  StructureVsDataRow row;
  row.dataset = bundle.name;
  row.summary_size = bundle.paper_summary_size;
  DiscoveryOracle oracle(bundle.schema);

  // Balanced: p = 0.5 over the real annotations.
  {
    SummarizerContext context(bundle.schema, bundle.annotations, options);
    SchemaSummary summary;
    SSUM_ASSIGN_OR_RETURN(summary, Summarize(context, row.summary_size,
                                             Algorithm::kBalanceSummary));
    row.balanced =
        AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload);
  }
  // Fully data driven: p = 1 (importance == cardinality).
  {
    SummarizeOptions data_options = options;
    data_options.importance.neighborhood_factor = 1.0;
    SummarizerContext context(bundle.schema, bundle.annotations, data_options);
    SchemaSummary summary;
    SSUM_ASSIGN_OR_RETURN(summary, Summarize(context, row.summary_size,
                                             Algorithm::kBalanceSummary));
    row.data_driven =
        AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload);
  }
  // Fully schema driven: RC = 1 everywhere, I0 = 1.
  {
    Annotations uniform = Annotations::Uniform(bundle.schema);
    SummarizeOptions schema_options = options;
    schema_options.importance.cardinality_init = false;
    SummarizerContext context(bundle.schema, uniform, schema_options);
    SchemaSummary summary;
    SSUM_ASSIGN_OR_RETURN(summary, Summarize(context, row.summary_size,
                                             Algorithm::kBalanceSummary));
    row.schema_driven =
        AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload);
  }
  return row;
}

Result<double> EvaluateSummaryCost(const DatasetBundle& bundle,
                                   const SchemaSummary& summary) {
  if (summary.schema != &bundle.schema) {
    return Status::InvalidArgument("summary built for a different schema");
  }
  DiscoveryOracle oracle(bundle.schema);
  return AverageDiscoveryCostWithSummary(oracle, summary, bundle.workload);
}

}  // namespace ssum
