#include "eval/summary_diff.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace ssum {

SummaryDiff DiffSummaries(const SchemaSummary& before,
                          const SchemaSummary& after) {
  SSUM_CHECK(before.schema == after.schema,
             "DiffSummaries requires summaries over the same schema");
  const SchemaGraph& schema = *before.schema;
  SummaryDiff diff;
  size_t common = 0;
  for (ElementId a : after.abstract_elements) {
    if (std::find(before.abstract_elements.begin(),
                  before.abstract_elements.end(),
                  a) == before.abstract_elements.end()) {
      diff.added_abstract.push_back(a);
    } else {
      ++common;
    }
  }
  for (ElementId a : before.abstract_elements) {
    if (std::find(after.abstract_elements.begin(),
                  after.abstract_elements.end(),
                  a) == after.abstract_elements.end()) {
      diff.removed_abstract.push_back(a);
    }
  }
  for (ElementId e = 0; e < schema.size(); ++e) {
    if (e == schema.root()) continue;
    if (before.representative[e] != after.representative[e]) {
      diff.moved.push_back(e);
    }
  }
  size_t denom =
      std::max(before.abstract_elements.size(), after.abstract_elements.size());
  diff.agreement =
      denom == 0 ? 1.0 : static_cast<double>(common) / static_cast<double>(denom);
  return diff;
}

std::string SummaryDiff::Report(const SchemaGraph& schema) const {
  std::ostringstream os;
  if (Unchanged()) {
    os << "summaries identical\n";
    return os.str();
  }
  for (ElementId a : added_abstract) {
    os << "+ " << schema.PathOf(a) << "\n";
  }
  for (ElementId a : removed_abstract) {
    os << "- " << schema.PathOf(a) << "\n";
  }
  // Moves are usually a consequence of the +/- lines; cap the listing.
  size_t shown = 0;
  for (ElementId e : moved) {
    if (++shown > 20) {
      os << "~ ... (" << moved.size() - 20 << " more moved elements)\n";
      break;
    }
    os << "~ " << schema.PathOf(e) << "\n";
  }
  return os.str();
}

}  // namespace ssum
