#pragma once

#include <string>
#include <vector>

namespace ssum {

/// Fixed-width console table, for the benchmark binaries that regenerate
/// the paper's tables.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  /// Adds a horizontal separator before the next row.
  void AddSeparator();

  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row = separator
};

/// "12.3%" with one decimal.
std::string Percent(double fraction);

}  // namespace ssum
