#pragma once

#include <vector>

#include "datasets/experts.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Agreement between two summaries of nominal size k (paper Section 5.2):
/// the fraction of elements selected by both, over the summary size.
double SummaryAgreement(const std::vector<ElementId>& a,
                        const std::vector<ElementId>& b, size_t k);

/// "User agreement": fraction of the size-k summary all panel members
/// selected in common.
double PanelAgreement(const ExpertPanel& panel, size_t k);

}  // namespace ssum
