#pragma once

#include <string>
#include <vector>

#include "core/summary.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Structural comparison of two summaries over the same schema — the
/// analysis behind the paper's data-evolution discussion (Section 3.3,
/// Table 5): which abstract elements entered or left, and which elements
/// changed group.
struct SummaryDiff {
  /// Abstract in `after` but not in `before`.
  std::vector<ElementId> added_abstract;
  /// Abstract in `before` but not in `after`.
  std::vector<ElementId> removed_abstract;
  /// Elements (excluding the root) whose representative changed.
  std::vector<ElementId> moved;
  /// |before ∩ after| / max(|before|, |after|).
  double agreement = 0;

  bool Unchanged() const {
    return added_abstract.empty() && removed_abstract.empty() &&
           moved.empty();
  }

  /// Human-readable multi-line report ("+ domains/domain", "- ...",
  /// "~ element: old_group -> new_group").
  std::string Report(const SchemaGraph& schema) const;
};

/// Both summaries must be over the same schema object.
SummaryDiff DiffSummaries(const SchemaSummary& before,
                          const SchemaSummary& after);

}  // namespace ssum
