#pragma once

#include <vector>

#include "common/result.h"
#include "core/summarize.h"
#include "datasets/registry.h"
#include "query/discovery.h"

namespace ssum {

/// One dataset's row of Table 3: query discovery cost without a summary
/// (all three strategies) and with a BalanceSummary of the paper's size.
struct QueryDiscoveryRow {
  std::string dataset;
  double depth_first = 0;
  double breadth_first = 0;
  double best_first = 0;
  double with_summary = 0;
  size_t summary_size = 0;
  double summary_fraction = 0;  ///< size / schema size
  size_t rounds = 0;            ///< number of queries evaluated
  double saving = 0;            ///< 1 - with_summary / best_first
};

Result<QueryDiscoveryRow> RunQueryDiscoveryRow(
    const DatasetBundle& bundle, const SummarizeOptions& options = {});

/// One dataset's row of Table 4: best-first cost with summaries from each
/// of the three algorithms.
struct BalanceRow {
  std::string dataset;
  double best_first = 0;  ///< no-summary baseline
  double balance = 0;
  double max_importance = 0;
  double max_coverage = 0;
  size_t summary_size = 0;
};

Result<BalanceRow> RunBalanceRow(const DatasetBundle& bundle,
                                 const SummarizeOptions& options = {});

/// Figure 8: with-summary discovery cost for each summary size.
struct SizeSweepPoint {
  size_t size;
  double cost;
};
Result<std::vector<SizeSweepPoint>> RunSizeSweep(
    const DatasetBundle& bundle, const std::vector<size_t>& sizes,
    const SummarizeOptions& options = {});

/// Figure 9: the three importance modes of Section 5.4.
struct StructureVsDataRow {
  std::string dataset;
  double data_driven = 0;    ///< p = 1 (cardinalities only)
  double schema_driven = 0;  ///< RC = 1, I0 = 1 (structure only)
  double balanced = 0;       ///< p = 0.5 over real annotations
  size_t summary_size = 0;
};
Result<StructureVsDataRow> RunStructureVsDataRow(
    const DatasetBundle& bundle, const SummarizeOptions& options = {});

/// Evaluates an externally-built summary (expert/baseline) on the bundle's
/// workload with the best-first strategy.
Result<double> EvaluateSummaryCost(const DatasetBundle& bundle,
                                   const SchemaSummary& summary);

}  // namespace ssum
