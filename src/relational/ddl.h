#pragma once

#include <string>

#include "common/parse_limits.h"
#include "common/result.h"
#include "relational/catalog.h"

namespace ssum {

/// Parses a pragmatic SQL DDL subset into a Catalog — the natural entry
/// point for summarizing an existing relational database from its schema
/// dump:
///
///   CREATE TABLE orders (
///     o_orderkey   INTEGER PRIMARY KEY,
///     o_custkey    INTEGER,
///     o_orderdate  DATE,
///     o_comment    VARCHAR(79),
///     FOREIGN KEY (o_custkey) REFERENCES customer(c_custkey)
///   );
///
/// Supported: column types INT/INTEGER/BIGINT/SMALLINT (int),
/// FLOAT/DOUBLE/REAL/DECIMAL/NUMERIC (float), DATE/TIME/TIMESTAMP (date),
/// CHAR/VARCHAR/TEXT (string), optional (n[,m]) suffixes; inline
/// PRIMARY KEY and NOT NULL; table-level PRIMARY KEY (col[, ...]) and
/// FOREIGN KEY (col) REFERENCES table(col); `--` line comments;
/// case-insensitive keywords; quoted or bare identifiers.
/// Ignored (accepted and skipped): NOT NULL, UNIQUE, DEFAULT <literal>.
///
/// Abort-free by contract: malformed or over-limit input yields a
/// ParseError/OutOfRange status stamped with line and byte offset.
/// `limits.max_token_bytes` caps identifiers; `limits.max_items` caps the
/// total column + table count.
Result<Catalog> ParseDdl(const std::string& sql,
                         const ParseLimits& limits = ParseLimits::Defaults());

/// Emits CREATE TABLE statements reproducing the catalog (ParseDdl of the
/// output round-trips).
std::string WriteDdl(const Catalog& catalog);

}  // namespace ssum
