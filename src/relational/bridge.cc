#include "relational/bridge.h"

#include <algorithm>

namespace ssum {

namespace {

AtomicKind ToAtomic(ColumnType t, bool primary_key) {
  if (primary_key) return AtomicKind::kId;
  switch (t) {
    case ColumnType::kInt:
      return AtomicKind::kInt;
    case ColumnType::kFloat:
      return AtomicKind::kFloat;
    case ColumnType::kDate:
      return AtomicKind::kDate;
    case ColumnType::kString:
      return AtomicKind::kString;
  }
  return AtomicKind::kString;
}

}  // namespace

Result<RelationalSchemaMapping> BuildRelationalSchema(const Catalog& catalog,
                                                      std::string root_label) {
  SSUM_RETURN_NOT_OK(catalog.Validate());
  RelationalSchemaMapping m{SchemaGraph(std::move(root_label)), {}, {}, {}};
  const auto& tables = catalog.tables();
  m.table_elements.resize(tables.size());
  m.column_elements.resize(tables.size());
  m.fk_links.resize(tables.size());
  for (size_t t = 0; t < tables.size(); ++t) {
    auto table_elem =
        m.graph.AddElement(m.graph.root(), tables[t].name, ElementType::Rcd(true));
    SSUM_RETURN_NOT_OK(table_elem.status());
    m.table_elements[t] = *table_elem;
    m.column_elements[t].resize(tables[t].columns.size());
    for (size_t c = 0; c < tables[t].columns.size(); ++c) {
      const ColumnDef& col = tables[t].columns[c];
      auto col_elem = m.graph.AddElement(
          *table_elem, col.name,
          ElementType::Simple(ToAtomic(col.type, col.primary_key)));
      SSUM_RETURN_NOT_OK(col_elem.status());
      m.column_elements[t][c] = *col_elem;
    }
  }
  for (size_t t = 0; t < tables.size(); ++t) {
    m.fk_links[t].resize(tables[t].foreign_keys.size());
    for (size_t f = 0; f < tables[t].foreign_keys.size(); ++f) {
      const ForeignKeyDef& fk = tables[t].foreign_keys[f];
      int ref_t = catalog.TableIndex(fk.ref_table);
      int col = tables[t].ColumnIndex(fk.column);
      int ref_col = catalog.tables()[static_cast<size_t>(ref_t)].ColumnIndex(
          fk.ref_column);
      auto link = m.graph.AddValueLink(
          m.table_elements[t], m.table_elements[static_cast<size_t>(ref_t)],
          m.column_elements[t][static_cast<size_t>(col)],
          m.column_elements[static_cast<size_t>(ref_t)]
                           [static_cast<size_t>(ref_col)]);
      SSUM_RETURN_NOT_OK(link.status());
      m.fk_links[t][f] = *link;
    }
  }
  return m;
}

RelationalInstanceStream::RelationalInstanceStream(
    const RelationalSchemaMapping* mapping, const Database* database)
    : mapping_(mapping), database_(database) {}

std::vector<std::pair<size_t, LinkId>> RelationalInstanceStream::FkColumns(
    size_t t) const {
  const TableDef& def = database_->table(t).def();
  std::vector<std::pair<size_t, LinkId>> fk_cols;
  fk_cols.reserve(def.foreign_keys.size());
  for (size_t f = 0; f < def.foreign_keys.size(); ++f) {
    int col = def.ColumnIndex(def.foreign_keys[f].column);
    fk_cols.emplace_back(static_cast<size_t>(col), mapping_->fk_links[t][f]);
  }
  return fk_cols;
}

void RelationalInstanceStream::EmitRow(
    size_t t, size_t row,
    const std::vector<std::pair<size_t, LinkId>>& fk_cols,
    InstanceVisitor* visitor) const {
  const Table& table = database_->table(t);
  const TableDef& def = table.def();
  visitor->OnEnter(mapping_->table_elements[t]);
  for (const auto& [col, link] : fk_cols) {
    if (!table.IsNull(row, col)) visitor->OnReference(link);
  }
  for (size_t c = 0; c < def.columns.size(); ++c) {
    if (table.IsNull(row, c)) continue;
    const ElementId col_elem = mapping_->column_elements[t][c];
    visitor->OnEnter(col_elem);
    visitor->OnLeave(col_elem);
  }
  visitor->OnLeave(mapping_->table_elements[t]);
}

Status RelationalInstanceStream::Accept(InstanceVisitor* visitor) const {
  const SchemaGraph& graph = mapping_->graph;
  visitor->OnEnter(graph.root());
  for (size_t t = 0; t < database_->num_tables(); ++t) {
    const auto fk_cols = FkColumns(t);
    for (size_t r = 0; r < database_->table(t).num_rows(); ++r) {
      EmitRow(t, r, fk_cols, visitor);
    }
  }
  visitor->OnLeave(graph.root());
  return Status::OK();
}

uint64_t RelationalInstanceStream::NumUnits() const {
  uint64_t rows = 0;
  for (size_t t = 0; t < database_->num_tables(); ++t) {
    rows += database_->table(t).num_rows();
  }
  return rows;
}

Status RelationalInstanceStream::AcceptSkeleton(
    InstanceVisitor* visitor) const {
  visitor->OnEnter(mapping_->graph.root());
  visitor->OnLeave(mapping_->graph.root());
  return Status::OK();
}

Status RelationalInstanceStream::AcceptUnits(uint64_t begin, uint64_t end,
                                             InstanceVisitor* visitor) const {
  SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
  uint64_t base = 0;
  for (size_t t = 0; t < database_->num_tables() && begin < end; ++t) {
    const uint64_t rows = database_->table(t).num_rows();
    const uint64_t table_end = base + rows;
    if (begin < table_end) {
      const auto fk_cols = FkColumns(t);
      const uint64_t stop = std::min(end, table_end);
      for (uint64_t u = begin; u < stop; ++u) {
        EmitRow(t, static_cast<size_t>(u - base), fk_cols, visitor);
      }
      begin = stop;
    }
    base = table_end;
  }
  return Status::OK();
}

}  // namespace ssum
