#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "relational/catalog.h"

namespace ssum {

/// Row-major in-memory table. Cells are stored as strings ("" = NULL), with
/// typed accessors; this keeps the storage layer simple — the multi-million
/// row benchmark datasets bypass materialization entirely and stream events
/// (see datasets/).
class Table {
 public:
  explicit Table(const TableDef* def) : def_(def) {}

  const TableDef& def() const { return *def_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends a row; must have exactly one cell per column.
  Status AppendRow(std::vector<std::string> cells);

  const std::vector<std::string>& row(size_t r) const { return rows_[r]; }
  const std::string& cell(size_t r, size_t c) const { return rows_[r][c]; }
  bool IsNull(size_t r, size_t c) const { return rows_[r][c].empty(); }

  Result<int64_t> IntCell(size_t r, size_t c) const;
  Result<double> FloatCell(size_t r, size_t c) const;

 private:
  const TableDef* def_;
  std::vector<std::vector<std::string>> rows_;
};

/// A set of tables instantiating a catalog.
class Database {
 public:
  explicit Database(const Catalog* catalog);

  const Catalog& catalog() const { return *catalog_; }
  Table& table(size_t index) { return tables_[index]; }
  const Table& table(size_t index) const { return tables_[index]; }
  size_t num_tables() const { return tables_.size(); }

  Result<Table*> FindTable(const std::string& name);

  /// Verifies referential integrity: every non-NULL foreign-key cell matches
  /// some referenced-column value.
  Status CheckForeignKeys() const;

 private:
  const Catalog* catalog_;
  std::vector<Table> tables_;
};

}  // namespace ssum
