#pragma once

#include <utility>
#include <vector>

#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "relational/table.h"
#include "schema/schema_graph.h"

namespace ssum {

/// A relational catalog lowered into the paper's schema-graph model
/// (Definition 1): an artificial root with one SetOf Rcd child per relation,
/// Simple children for columns, and value links for foreign keys (the
/// referring relation is the referrer; the key columns are the carriers).
struct RelationalSchemaMapping {
  SchemaGraph graph;
  /// table index -> relation element.
  std::vector<ElementId> table_elements;
  /// table index, column index -> column element.
  std::vector<std::vector<ElementId>> column_elements;
  /// table index, foreign-key index -> value link.
  std::vector<std::vector<LinkId>> fk_links;
};

/// Lowers the catalog. Fails when Catalog::Validate fails.
Result<RelationalSchemaMapping> BuildRelationalSchema(
    const Catalog& catalog, std::string root_label = "catalog");

/// Streams a materialized Database as instance events: one node per row,
/// one node per non-NULL cell, one reference per non-NULL foreign-key cell.
///
/// Also a ShardedInstanceSource: one unit per row, tables concatenated in
/// catalog order, so annotation shards over row ranges.
class RelationalInstanceStream : public InstanceStream,
                                 public ShardedInstanceSource {
 public:
  /// `mapping` and `database` must outlive the stream; the database must
  /// instantiate the catalog the mapping was built from.
  RelationalInstanceStream(const RelationalSchemaMapping* mapping,
                           const Database* database);

  const SchemaGraph& schema() const override { return mapping_->graph; }
  Status Accept(InstanceVisitor* visitor) const override;

  // ShardedInstanceSource: the skeleton is the artificial catalog root;
  // unit u is the u-th row of the concatenated tables.
  uint64_t NumUnits() const override;
  Status AcceptSkeleton(InstanceVisitor* visitor) const override;
  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* visitor) const override;

 private:
  /// Foreign-key (column index, link) pairs of table `t`.
  std::vector<std::pair<size_t, LinkId>> FkColumns(size_t t) const;
  void EmitRow(size_t t, size_t row,
               const std::vector<std::pair<size_t, LinkId>>& fk_cols,
               InstanceVisitor* visitor) const;

  const RelationalSchemaMapping* mapping_;
  const Database* database_;
};

}  // namespace ssum
