#pragma once

#include <string>

#include "common/parse_limits.h"
#include "common/result.h"
#include "relational/table.h"

namespace ssum {

struct CsvOptions {
  char delimiter = ',';
  /// First line holds column names; validated against the table definition.
  bool header = true;
  /// Fields may be wrapped in double quotes; embedded quotes are doubled.
  bool allow_quotes = true;
};

/// Parses delimiter-separated text into `table` (appends rows). Supports
/// the quoting dialect above plus TPC-H style '|'-separated files (set
/// delimiter='|', header=false, allow_quotes=false; a trailing delimiter at
/// end of line is tolerated in that mode).
///
/// Abort-free by contract: ragged rows, embedded NUL bytes, and over-limit
/// input (rows over `limits.max_items`, fields over
/// `limits.max_token_bytes`) yield a ParseError/OutOfRange status with line
/// and byte-offset context, never a crash.
Status LoadCsv(const std::string& text, Table* table,
               const CsvOptions& options = {},
               const ParseLimits& limits = ParseLimits::Defaults());

Status LoadCsvFile(const std::string& path, Table* table,
                   const CsvOptions& options = {},
                   const ParseLimits& limits = ParseLimits::Defaults());

/// Serializes a table (with header when options.header).
std::string WriteCsv(const Table& table, const CsvOptions& options = {});

}  // namespace ssum
