#include "relational/csv.h"

#include <fstream>
#include <sstream>

#include "common/status_builder.h"
#include "common/string_util.h"

namespace ssum {

namespace {

/// `line_offset` is the byte offset of the line start within the whole
/// input, so field-level errors can point into a multi-gigabyte file.
Result<std::vector<std::string>> ParseLine(const std::string& line,
                                           const CsvOptions& options,
                                           size_t line_no, size_t line_offset,
                                           const ParseLimits& limits) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '\0') {
      return ParseErrorAt(line_no, line_offset + i)
             << "embedded NUL byte in CSV input";
    }
    if (cur.size() >= limits.max_token_bytes) {
      return ParseErrorAt(line_no, line_offset + i)
             << "field exceeds the " << limits.max_token_bytes
             << "-byte limit";
    }
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur.push_back(c);
      }
    } else if (options.allow_quotes && c == '"' && cur.empty()) {
      in_quotes = true;
    } else if (c == options.delimiter) {
      fields.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (in_quotes) {
    return ParseErrorAt(line_no, line_offset + line.size())
           << "unterminated quote";
  }
  fields.push_back(std::move(cur));
  return fields;
}

}  // namespace

Status LoadCsv(const std::string& text, Table* table,
               const CsvOptions& options, const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(text.size(), limits, "CSV input"));
  std::istringstream is(text);
  std::string line;
  size_t line_no = 0;
  size_t line_offset = 0;  // byte offset of the current line's first char
  size_t next_offset = 0;
  size_t rows = 0;
  bool saw_header = !options.header;
  const size_t ncols = table->def().columns.size();
  while (std::getline(is, line)) {
    ++line_no;
    line_offset = next_offset;
    next_offset += line.size() + 1;  // +1 for the consumed '\n'
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> fields;
    SSUM_ASSIGN_OR_RETURN(
        fields, ParseLine(line, options, line_no, line_offset, limits));
    // TPC-H dialect: tolerate one trailing empty field from a trailing '|'.
    if (!options.allow_quotes && fields.size() == ncols + 1 &&
        fields.back().empty()) {
      fields.pop_back();
    }
    if (!saw_header) {
      saw_header = true;
      if (fields.size() != ncols) {
        return ParseErrorAt(line_no, line_offset)
               << "header has " << fields.size() << " fields, table has "
               << ncols << " columns";
      }
      for (size_t i = 0; i < ncols; ++i) {
        if (fields[i] != table->def().columns[i].name) {
          return ParseErrorAt(line_no, line_offset)
                 << "header field '" << fields[i]
                 << "' does not match column '"
                 << table->def().columns[i].name << "'";
        }
      }
      continue;
    }
    if (fields.size() != ncols) {
      return ParseErrorAt(line_no, line_offset)
             << "row has " << fields.size() << " fields (expected " << ncols
             << ")";
    }
    if (++rows > limits.max_items) {
      return ParseErrorAt(line_no, line_offset)
             << "input exceeds the " << limits.max_items << "-row limit";
    }
    SSUM_RETURN_NOT_OK(table->AppendRow(std::move(fields)));
  }
  return Status::OK();
}

Status LoadCsvFile(const std::string& path, Table* table,
                   const CsvOptions& options, const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  Status s = LoadCsv(buf.str(), table, options, limits);
  if (!s.ok()) return s.WithContext(path);
  return s;
}

std::string WriteCsv(const Table& table, const CsvOptions& options) {
  std::ostringstream os;
  auto emit = [&](const std::string& field) {
    bool needs_quotes =
        options.allow_quotes &&
        (field.find(options.delimiter) != std::string::npos ||
         field.find('"') != std::string::npos ||
         field.find('\n') != std::string::npos);
    if (!needs_quotes) {
      os << field;
      return;
    }
    os << '"';
    for (char c : field) {
      if (c == '"') os << '"';
      os << c;
    }
    os << '"';
  };
  if (options.header) {
    for (size_t i = 0; i < table.def().columns.size(); ++i) {
      if (i) os << options.delimiter;
      emit(table.def().columns[i].name);
    }
    os << '\n';
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.def().columns.size(); ++c) {
      if (c) os << options.delimiter;
      emit(table.cell(r, c));
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace ssum
