#include "relational/ddl.h"

#include <cctype>
#include <sstream>

#include "common/status_builder.h"
#include "common/string_util.h"

namespace ssum {

namespace {

/// Token stream over the DDL text: identifiers/keywords, numbers, and
/// punctuation; `--` comments skipped. Keywords compare case-insensitively.
///
/// Lexical errors (unterminated quoted identifiers, tokens over
/// `limits.max_token_bytes`) set a sticky status and make Next() return "";
/// the parser surfaces the sticky status wherever it handles an empty token.
class DdlLexer {
 public:
  DdlLexer(const std::string& text, const ParseLimits& limits)
      : text_(text), limits_(limits) {}

  /// Next token, empty at end of input or on a (sticky) lexical error.
  /// Punctuation tokens are single characters "(", ")", ",", ";".
  std::string Next() {
    SkipSpaceAndComments();
    if (!status_.ok() || pos_ >= text_.size()) return "";
    char c = text_[pos_];
    if (c == '(' || c == ')' || c == ',' || c == ';') {
      ++pos_;
      return std::string(1, c);
    }
    if (c == '"' || c == '`') {  // quoted identifier
      char quote = c;
      size_t start = ++pos_;
      while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
      if (pos_ >= text_.size()) {
        status_ = ParseErrorAt(line(), start - 1)
                  << "DDL: unterminated quoted identifier";
        return "";
      }
      if (!CheckTokenSize(pos_ - start)) return "";
      std::string out = text_.substr(start, pos_ - start);
      ++pos_;
      return out;
    }
    size_t start = pos_;
    while (pos_ < text_.size() && !std::isspace(static_cast<unsigned char>(
                                      text_[pos_])) &&
           text_[pos_] != '(' && text_[pos_] != ')' && text_[pos_] != ',' &&
           text_[pos_] != ';') {
      ++pos_;
    }
    if (!CheckTokenSize(pos_ - start)) return "";
    return text_.substr(start, pos_ - start);
  }

  std::string Peek() {
    size_t saved = pos_;
    std::string tok = Next();
    pos_ = saved;
    return tok;
  }

  size_t line() const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    return line;
  }

  size_t offset() const { return pos_; }

  /// OK until a lexical error was hit; never cleared.
  const Status& status() const { return status_; }

 private:
  bool CheckTokenSize(size_t size) {
    if (size <= limits_.max_token_bytes) return true;
    status_ = ParseErrorAt(line(), pos_)
              << "DDL: token exceeds the " << limits_.max_token_bytes
              << "-byte limit";
    return false;
  }

  void SkipSpaceAndComments() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '-' &&
          text_[pos_ + 1] == '-') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  const std::string& text_;
  ParseLimits limits_;
  size_t pos_ = 0;
  Status status_;
};

bool KeywordIs(const std::string& token, const char* keyword) {
  return AsciiToLower(token) == keyword;
}

/// Maps a SQL type name to a ColumnType; false when unrecognized.
bool TypeFromSql(const std::string& name, ColumnType* out) {
  std::string t = AsciiToLower(name);
  if (t == "int" || t == "integer" || t == "bigint" || t == "smallint") {
    *out = ColumnType::kInt;
  } else if (t == "float" || t == "double" || t == "real" || t == "decimal" ||
             t == "numeric") {
    *out = ColumnType::kFloat;
  } else if (t == "date" || t == "time" || t == "timestamp") {
    *out = ColumnType::kDate;
  } else if (t == "char" || t == "varchar" || t == "text" || t == "string") {
    *out = ColumnType::kString;
  } else {
    return false;
  }
  return true;
}

Status ParseError(const DdlLexer& lexer, const std::string& why) {
  // A sticky lexical error is the root cause of any empty-token symptom.
  if (!lexer.status().ok()) return lexer.status();
  return ParseErrorAt(lexer.line(), lexer.offset()) << "DDL: " << why;
}

/// Identifiers that mix both quote characters cannot be re-serialized by
/// WriteDdl (the lexer has no escape syntax), so ParseDdl rejects them to
/// keep the documented WriteDdl round trip total.
Status ValidateIdent(const DdlLexer& lexer, const std::string& ident) {
  if (ident.find('"') != std::string::npos &&
      ident.find('`') != std::string::npos) {
    return ParseError(lexer, "identifier '" + ident +
                                 "' mixes both quote characters");
  }
  return Status::OK();
}

/// True when `name` can be emitted without quotes: a keyword-free
/// [A-Za-z_][A-Za-z0-9_]* word that does not lex as a type name.
bool IsBareIdent(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  ColumnType ignored;
  if (TypeFromSql(name, &ignored)) return false;
  static const char* const kReserved[] = {"create", "table",      "primary",
                                          "key",    "foreign",    "references",
                                          "not",    "null",       "unique",
                                          "default"};
  const std::string lower = AsciiToLower(name);
  for (const char* kw : kReserved) {
    if (lower == kw) return false;
  }
  return true;
}

/// Quotes `name` when needed. ParseDdl guarantees the name does not contain
/// both quote characters, so one of the two quote styles always fits.
std::string QuoteIdent(const std::string& name) {
  if (IsBareIdent(name)) return name;
  if (name.find('"') == std::string::npos) return '"' + name + '"';
  return '`' + name + '`';
}

/// Consumes a parenthesized argument list "(...)" when present (type
/// precision suffixes like VARCHAR(79) or DECIMAL(12,2)).
Status SkipPrecision(DdlLexer* lexer) {
  if (lexer->Peek() != "(") return Status::OK();
  lexer->Next();
  for (;;) {
    std::string tok = lexer->Next();
    if (tok.empty()) return ParseError(*lexer, "unterminated type arguments");
    if (tok == ")") return Status::OK();
  }
}

/// Parses "(ident [, ident ...])" into out.
Status ParseIdentList(DdlLexer* lexer, std::vector<std::string>* out) {
  if (lexer->Next() != "(") return ParseError(*lexer, "expected '('");
  for (;;) {
    std::string ident = lexer->Next();
    if (ident.empty()) return ParseError(*lexer, "unterminated column list");
    SSUM_RETURN_NOT_OK(ValidateIdent(*lexer, ident));
    out->push_back(ident);
    std::string sep = lexer->Next();
    if (sep == ")") return Status::OK();
    if (sep != ",") return ParseError(*lexer, "expected ',' or ')'");
  }
}

Status ParseTableBody(DdlLexer* lexer, TableDef* def) {
  if (lexer->Next() != "(") return ParseError(*lexer, "expected '('");
  for (;;) {
    std::string tok = lexer->Next();
    if (tok.empty()) return ParseError(*lexer, "unterminated CREATE TABLE");
    if (tok == ")") break;
    if (KeywordIs(tok, "primary")) {
      if (!KeywordIs(lexer->Next(), "key")) {
        return ParseError(*lexer, "expected KEY after PRIMARY");
      }
      std::vector<std::string> cols;
      SSUM_RETURN_NOT_OK(ParseIdentList(lexer, &cols));
      for (const std::string& c : cols) {
        int idx = def->ColumnIndex(c);
        if (idx < 0) {
          return ParseError(*lexer, "PRIMARY KEY on unknown column '" + c +
                                        "'");
        }
        def->columns[static_cast<size_t>(idx)].primary_key = true;
      }
    } else if (KeywordIs(tok, "foreign")) {
      if (!KeywordIs(lexer->Next(), "key")) {
        return ParseError(*lexer, "expected KEY after FOREIGN");
      }
      std::vector<std::string> cols;
      SSUM_RETURN_NOT_OK(ParseIdentList(lexer, &cols));
      if (!KeywordIs(lexer->Next(), "references")) {
        return ParseError(*lexer, "expected REFERENCES");
      }
      std::string ref_table = lexer->Next();
      if (ref_table.empty() || ref_table == "(") {
        return ParseError(*lexer, "expected referenced table name");
      }
      SSUM_RETURN_NOT_OK(ValidateIdent(*lexer, ref_table));
      std::vector<std::string> ref_cols;
      SSUM_RETURN_NOT_OK(ParseIdentList(lexer, &ref_cols));
      if (cols.size() != ref_cols.size()) {
        return ParseError(*lexer, "FOREIGN KEY column count mismatch");
      }
      // N-ary keys decompose into unary links (paper Section 2).
      for (size_t i = 0; i < cols.size(); ++i) {
        def->foreign_keys.push_back({cols[i], ref_table, ref_cols[i]});
      }
    } else {
      // Column definition: <name> <type>[(n[,m])] [modifiers...]
      ColumnDef col;
      col.name = tok;
      SSUM_RETURN_NOT_OK(ValidateIdent(*lexer, col.name));
      std::string type_name = lexer->Next();
      if (!TypeFromSql(type_name, &col.type)) {
        return ParseError(*lexer, "unknown type '" + type_name + "'");
      }
      SSUM_RETURN_NOT_OK(SkipPrecision(lexer));
      // Modifiers until ',' or ')'.
      for (;;) {
        std::string m = lexer->Peek();
        if (m == "," || m == ")" || m.empty()) break;
        lexer->Next();
        if (KeywordIs(m, "primary")) {
          if (!KeywordIs(lexer->Next(), "key")) {
            return ParseError(*lexer, "expected KEY after PRIMARY");
          }
          col.primary_key = true;
        } else if (KeywordIs(m, "not")) {
          if (!KeywordIs(lexer->Next(), "null")) {
            return ParseError(*lexer, "expected NULL after NOT");
          }
        } else if (KeywordIs(m, "unique")) {
          // accepted, no-op
        } else if (KeywordIs(m, "default")) {
          lexer->Next();  // skip the literal
        } else {
          return ParseError(*lexer, "unsupported column modifier '" + m + "'");
        }
      }
      def->columns.push_back(std::move(col));
    }
    std::string sep = lexer->Peek();
    if (sep == ",") lexer->Next();
  }
  return Status::OK();
}

}  // namespace

Result<Catalog> ParseDdl(const std::string& sql, const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(sql.size(), limits, "DDL script"));
  DdlLexer lexer(sql, limits);
  Catalog catalog;
  size_t items = 0;
  for (;;) {
    std::string tok = lexer.Next();
    if (tok.empty()) {
      SSUM_RETURN_NOT_OK(lexer.status());
      break;
    }
    if (!KeywordIs(tok, "create")) {
      return ParseError(lexer, "expected CREATE, got '" + tok + "'");
    }
    if (!KeywordIs(lexer.Next(), "table")) {
      return ParseError(lexer, "only CREATE TABLE is supported");
    }
    TableDef def;
    def.name = lexer.Next();
    if (def.name.empty() || def.name == "(") {
      return ParseError(lexer, "missing table name");
    }
    SSUM_RETURN_NOT_OK(ValidateIdent(lexer, def.name));
    SSUM_RETURN_NOT_OK(ParseTableBody(&lexer, &def));
    items += 1 + def.columns.size();
    if (items > limits.max_items) {
      return ParseError(lexer, "schema exceeds the " +
                                   std::to_string(limits.max_items) +
                                   "-item limit (tables + columns)");
    }
    SSUM_RETURN_NOT_OK(catalog.AddTable(std::move(def)));
    if (lexer.Peek() == ";") lexer.Next();
  }
  if (catalog.tables().empty()) {
    return Status::ParseError("DDL contains no CREATE TABLE statement");
  }
  SSUM_RETURN_NOT_OK(catalog.Validate());
  return catalog;
}

std::string WriteDdl(const Catalog& catalog) {
  std::ostringstream os;
  for (const TableDef& table : catalog.tables()) {
    os << "CREATE TABLE " << QuoteIdent(table.name) << " (\n";
    for (size_t c = 0; c < table.columns.size(); ++c) {
      const ColumnDef& col = table.columns[c];
      os << "  " << QuoteIdent(col.name) << " ";
      switch (col.type) {
        case ColumnType::kInt:
          os << "INTEGER";
          break;
        case ColumnType::kFloat:
          os << "FLOAT";
          break;
        case ColumnType::kDate:
          os << "DATE";
          break;
        case ColumnType::kString:
          os << "VARCHAR";
          break;
      }
      if (col.primary_key) os << " PRIMARY KEY";
      bool last = c + 1 == table.columns.size() && table.foreign_keys.empty();
      if (!last) os << ",";
      os << "\n";
    }
    for (size_t f = 0; f < table.foreign_keys.size(); ++f) {
      const ForeignKeyDef& fk = table.foreign_keys[f];
      os << "  FOREIGN KEY (" << QuoteIdent(fk.column) << ") REFERENCES "
         << QuoteIdent(fk.ref_table) << "(" << QuoteIdent(fk.ref_column)
         << ")";
      if (f + 1 != table.foreign_keys.size()) os << ",";
      os << "\n";
    }
    os << ");\n\n";
  }
  return os.str();
}

}  // namespace ssum
