#pragma once

#include <string>
#include <vector>

#include "common/result.h"

namespace ssum {

enum class ColumnType : unsigned char { kInt = 0, kFloat, kString, kDate };

const char* ColumnTypeName(ColumnType t);

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
  bool primary_key = false;
};

/// Single-column foreign key (the paper decomposes n-ary value links into
/// unary ones, Section 2).
struct ForeignKeyDef {
  std::string column;
  std::string ref_table;
  std::string ref_column;
};

struct TableDef {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<ForeignKeyDef> foreign_keys;

  /// Index of the named column, or -1.
  int ColumnIndex(const std::string& column_name) const;
};

/// Relational catalog: an ordered set of table definitions with
/// foreign-key constraints. The order defines schema-graph element order.
class Catalog {
 public:
  /// Adds a table; fails on duplicate table or column names.
  Status AddTable(TableDef def);

  const std::vector<TableDef>& tables() const { return tables_; }
  /// Index of the named table, or -1.
  int TableIndex(const std::string& name) const;
  const TableDef* FindTable(const std::string& name) const;

  /// Checks that every foreign key references an existing table and column.
  Status Validate() const;

 private:
  std::vector<TableDef> tables_;
};

}  // namespace ssum
