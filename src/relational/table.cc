#include "relational/table.h"

#include <set>

#include "common/string_util.h"

namespace ssum {

Status Table::AppendRow(std::vector<std::string> cells) {
  if (cells.size() != def_->columns.size()) {
    return Status::InvalidArgument(
        "row with " + std::to_string(cells.size()) + " cells for table '" +
        def_->name + "' (" + std::to_string(def_->columns.size()) +
        " columns)");
  }
  rows_.push_back(std::move(cells));
  return Status::OK();
}

Result<int64_t> Table::IntCell(size_t r, size_t c) const {
  return ParseInt64(rows_[r][c]);
}

Result<double> Table::FloatCell(size_t r, size_t c) const {
  return ParseDouble(rows_[r][c]);
}

Database::Database(const Catalog* catalog) : catalog_(catalog) {
  tables_.reserve(catalog->tables().size());
  for (const TableDef& def : catalog->tables()) {
    tables_.emplace_back(&def);
  }
}

Result<Table*> Database::FindTable(const std::string& name) {
  int idx = catalog_->TableIndex(name);
  if (idx < 0) return Status::NotFound("no table '" + name + "'");
  return &tables_[static_cast<size_t>(idx)];
}

Status Database::CheckForeignKeys() const {
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& table = tables_[t];
    for (const ForeignKeyDef& fk : table.def().foreign_keys) {
      int col = table.def().ColumnIndex(fk.column);
      int ref_tidx = catalog_->TableIndex(fk.ref_table);
      if (ref_tidx < 0) {
        return Status::FailedPrecondition("unknown referenced table '" +
                                          fk.ref_table + "'");
      }
      const Table& ref = tables_[static_cast<size_t>(ref_tidx)];
      int ref_col = ref.def().ColumnIndex(fk.ref_column);
      if (col < 0 || ref_col < 0) {
        return Status::FailedPrecondition("foreign key column missing");
      }
      std::set<std::string> keys;
      for (size_t r = 0; r < ref.num_rows(); ++r) {
        keys.insert(ref.cell(r, static_cast<size_t>(ref_col)));
      }
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const std::string& v = table.cell(r, static_cast<size_t>(col));
        if (v.empty()) continue;  // NULL
        if (keys.find(v) == keys.end()) {
          return Status::FailedPrecondition(
              "dangling foreign key " + table.def().name + "." + fk.column +
              " = '" + v + "'");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace ssum
