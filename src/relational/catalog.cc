#include "relational/catalog.h"

#include <set>

namespace ssum {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kFloat:
      return "float";
    case ColumnType::kString:
      return "string";
    case ColumnType::kDate:
      return "date";
  }
  return "?";
}

int TableDef::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column_name) return static_cast<int>(i);
  }
  return -1;
}

Status Catalog::AddTable(TableDef def) {
  if (def.name.empty()) {
    return Status::InvalidArgument("table with empty name");
  }
  if (TableIndex(def.name) >= 0) {
    return Status::AlreadyExists("table '" + def.name + "' already defined");
  }
  std::set<std::string> seen;
  for (const ColumnDef& c : def.columns) {
    if (c.name.empty()) {
      return Status::InvalidArgument("column with empty name in table '" +
                                     def.name + "'");
    }
    if (!seen.insert(c.name).second) {
      return Status::AlreadyExists("duplicate column '" + c.name +
                                   "' in table '" + def.name + "'");
    }
  }
  for (const ForeignKeyDef& fk : def.foreign_keys) {
    if (def.ColumnIndex(fk.column) < 0) {
      return Status::InvalidArgument("foreign key on unknown column '" +
                                     fk.column + "' in table '" + def.name +
                                     "'");
    }
  }
  tables_.push_back(std::move(def));
  return Status::OK();
}

int Catalog::TableIndex(const std::string& name) const {
  for (size_t i = 0; i < tables_.size(); ++i) {
    if (tables_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

const TableDef* Catalog::FindTable(const std::string& name) const {
  int idx = TableIndex(name);
  return idx < 0 ? nullptr : &tables_[static_cast<size_t>(idx)];
}

Status Catalog::Validate() const {
  for (const TableDef& t : tables_) {
    for (const ForeignKeyDef& fk : t.foreign_keys) {
      const TableDef* ref = FindTable(fk.ref_table);
      if (ref == nullptr) {
        return Status::InvalidArgument("table '" + t.name +
                                       "' references unknown table '" +
                                       fk.ref_table + "'");
      }
      if (ref->ColumnIndex(fk.ref_column) < 0) {
        return Status::InvalidArgument(
            "table '" + t.name + "' references unknown column '" +
            fk.ref_table + "." + fk.ref_column + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace ssum
