#pragma once

#include "baselines/semantic_labels.h"
#include "common/result.h"
#include "core/summary.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Conceptual schema analysis after Castano, De Antonellis, Fugini and
/// Pernici (TODS 1998) — the paper's baseline "CAFP [4]" in Table 6.
///
/// The original computes pairwise element *affinity* from semantically
/// weighted relationship paths and clusters agglomeratively. Our
/// reconstruction: single-linkage hierarchical clustering over link
/// weights — repeatedly merge the two clusters joined by the heaviest
/// remaining cross link until K clusters (besides the root) remain; each
/// cluster's representative is its highest entity-strength (then
/// highest-degree) member.
struct CafpOptions {
  /// Links below this weight never trigger a merge (keeps "reference"
  /// links from gluing unrelated entities together).
  double merge_threshold = 0.2;
};

Result<SchemaSummary> CafpSummarize(const SchemaGraph& graph,
                                    const SemanticLabeling& labeling,
                                    size_t k, const CafpOptions& options = {});

}  // namespace ssum
