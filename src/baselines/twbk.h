#pragma once

#include "baselines/semantic_labels.h"
#include "common/result.h"
#include "core/summary.h"
#include "schema/schema_graph.h"

namespace ssum {

/// ER-model clustering after Teorey, Wei, Bolton and Koenig (CACM 1989) —
/// the paper's baseline "TWBK [13]" in Table 6.
///
/// The original method picks "major entities" and applies grouping
/// operations (dominance, abstraction, constraint, relationship grouping)
/// that absorb surrounding entities along semantically strong
/// relationships. Our reconstruction:
///
///   1. Score every element as a major-entity candidate:
///        score = (1 + entity_strength) * sum of incident link weights.
///   2. The K best-scoring elements become cluster centers.
///   3. Every remaining element joins the center with the strongest
///      semantic connection: the maximum product of link weights along a
///      bounded-length path (grouping operations chain, so strength decays
///      multiplicatively across links).
///
/// With heuristic labels (no human), weights are nearly uniform and the
/// centers degenerate to high-degree hubs — the behaviour Table 6 reports
/// as "w/o human".
struct TwbkOptions {
  uint32_t max_steps = 16;
};

Result<SchemaSummary> TwbkSummarize(const SchemaGraph& graph,
                                    const SemanticLabeling& labeling,
                                    size_t k, const TwbkOptions& options = {});

}  // namespace ssum
