#include "baselines/cafp.h"

#include <algorithm>
#include <numeric>

namespace ssum {

Result<SchemaSummary> CafpSummarize(const SchemaGraph& graph,
                                    const SemanticLabeling& labeling,
                                    size_t k, const CafpOptions& options) {
  if (k == 0 || k >= graph.size()) {
    return Status::InvalidArgument("CAFP: bad summary size");
  }
  const size_t n = graph.size();

  // Weighted edge list (root excluded: the artificial root is organization,
  // not semantics, and must not glue the top-level collections together).
  struct Edge {
    ElementId a, b;
    double w;
  };
  std::vector<Edge> edges;
  for (ElementId e = 0; e < n; ++e) {
    for (const Neighbor& nbr : graph.neighbors(e)) {
      if (!nbr.forward) continue;  // each physical link once
      if (e == graph.root() || nbr.other == graph.root()) continue;
      edges.push_back({e, nbr.other, labeling.WeightOf(nbr)});
    }
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& x, const Edge& y) { return x.w > y.w; });

  // Single-linkage agglomeration via union-find, highest weights first.
  std::vector<ElementId> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<uint32_t> rank(n, 0);
  auto find = [&](ElementId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  size_t clusters = 0;
  for (ElementId e = 0; e < n; ++e) {
    if (e != graph.root()) ++clusters;
  }
  for (const Edge& edge : edges) {
    if (clusters <= k) break;
    if (edge.w < options.merge_threshold) break;
    ElementId ra = find(edge.a);
    ElementId rb = find(edge.b);
    if (ra == rb) continue;
    if (rank[ra] < rank[rb]) std::swap(ra, rb);
    parent[rb] = ra;
    if (rank[ra] == rank[rb]) ++rank[ra];
    --clusters;
  }

  // Representative per cluster: maximum entity strength, then maximum
  // degree, then smallest id — Simple elements only as a last resort.
  std::vector<ElementId> rep_of_cluster(n, kInvalidElement);
  auto better = [&](ElementId cand, ElementId cur) {
    if (cur == kInvalidElement) return true;
    bool cand_simple = graph.type(cand).kind == TypeKind::kSimple;
    bool cur_simple = graph.type(cur).kind == TypeKind::kSimple;
    if (cand_simple != cur_simple) return cur_simple;
    double es_cand = labeling.entity_strength[cand];
    double es_cur = labeling.entity_strength[cur];
    if (es_cand != es_cur) return es_cand > es_cur;
    size_t deg_cand = graph.neighbors(cand).size();
    size_t deg_cur = graph.neighbors(cur).size();
    if (deg_cand != deg_cur) return deg_cand > deg_cur;
    return cand < cur;
  };
  for (ElementId e = 0; e < n; ++e) {
    if (e == graph.root()) continue;
    ElementId root = find(e);
    if (better(e, rep_of_cluster[root])) rep_of_cluster[root] = e;
  }

  std::vector<ElementId> selected;
  std::vector<ElementId> representative(n, kInvalidElement);
  representative[graph.root()] = graph.root();
  for (ElementId e = 0; e < n; ++e) {
    if (e == graph.root()) continue;
    ElementId rep = rep_of_cluster[find(e)];
    representative[e] = rep;
    if (rep == e) selected.push_back(e);
  }
  // The threshold may leave more than K clusters; keep the K with the most
  // members and reassign the rest by the structural-parent fallback.
  if (selected.size() > k) {
    std::vector<size_t> member_count(n, 0);
    for (ElementId e = 0; e < n; ++e) {
      if (e != graph.root()) ++member_count[representative[e]];
    }
    std::stable_sort(selected.begin(), selected.end(),
                     [&](ElementId a, ElementId b) {
                       if (member_count[a] != member_count[b]) {
                         return member_count[a] > member_count[b];
                       }
                       return labeling.entity_strength[a] >
                              labeling.entity_strength[b];
                     });
    std::vector<bool> keep(n, false);
    selected.resize(k);
    for (ElementId s : selected) keep[s] = true;
    for (ElementId e = 0; e < n; ++e) {
      if (e == graph.root()) continue;
      if (!keep[representative[e]]) representative[e] = kInvalidElement;
    }
  }
  return BuildSummaryFromAssignment(graph, std::move(selected),
                                    std::move(representative));
}

}  // namespace ssum
