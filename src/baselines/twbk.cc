#include "baselines/twbk.h"

#include <algorithm>

#include "core/path_engine.h"

namespace ssum {

Result<SchemaSummary> TwbkSummarize(const SchemaGraph& graph,
                                    const SemanticLabeling& labeling,
                                    size_t k, const TwbkOptions& options) {
  if (k == 0 || k >= graph.size()) {
    return Status::InvalidArgument("TWBK: bad summary size");
  }
  const size_t n = graph.size();

  // 1-2. Major entity selection.
  std::vector<double> score(n, 0.0);
  for (ElementId e = 0; e < n; ++e) {
    if (e == graph.root()) continue;
    if (graph.type(e).kind == TypeKind::kSimple) continue;  // never an entity
    double degree = 0;
    for (const Neighbor& nbr : graph.neighbors(e)) {
      degree += labeling.WeightOf(nbr);
    }
    score[e] = (1.0 + labeling.entity_strength[e]) * degree;
  }
  std::vector<ElementId> order(n);
  for (ElementId e = 0; e < n; ++e) order[e] = e;
  std::stable_sort(order.begin(), order.end(), [&](ElementId a, ElementId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  std::vector<ElementId> centers;
  for (ElementId e : order) {
    if (score[e] <= 0) break;
    centers.push_back(e);
    if (centers.size() == k) break;
  }
  if (centers.size() < k) {
    // Pathological schema; pad with any non-root elements.
    for (ElementId e = 0; e < n && centers.size() < k; ++e) {
      if (e == graph.root()) continue;
      if (std::find(centers.begin(), centers.end(), e) == centers.end()) {
        centers.push_back(e);
      }
    }
  }

  // 3. Grouping: strongest multiplicative semantic connection to a center.
  EdgeFactors factors(n);
  for (ElementId u = 0; u < n; ++u) {
    const auto& nbrs = graph.neighbors(u);
    factors[u].resize(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      factors[u][i] = labeling.WeightOf(nbrs[i]);
    }
  }
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = true;  // long grouping chains are weaker
  std::vector<ElementId> representative(n, kInvalidElement);
  representative[graph.root()] = graph.root();
  std::vector<double> best(n, 0.0);
  // All center rows through the batched engine at once; the reduction stays
  // serial in center order so ties keep the earlier (higher-scoring) center.
  const WalkPlan plan = WalkPlan::Build(graph, factors);
  std::vector<double> strength_rows(centers.size() * n);
  std::vector<std::span<double>> rows(centers.size());
  for (size_t i = 0; i < centers.size(); ++i) {
    rows[i] = {strength_rows.data() + i * n, n};
  }
  MaxProductWalksBatch(plan, centers, walk, rows);
  for (size_t i = 0; i < centers.size(); ++i) {
    const ElementId c = centers[i];
    const std::span<const double> strength = rows[i];
    for (ElementId e = 0; e < n; ++e) {
      if (strength[e] > best[e]) {
        best[e] = strength[e];
        representative[e] = c;
      }
    }
  }
  for (ElementId c : centers) representative[c] = c;
  return BuildSummaryFromAssignment(graph, std::move(centers),
                                    std::move(representative));
}

}  // namespace ssum
