#include "baselines/semantic_labels.h"

#include "common/string_util.h"

namespace ssum {

double SemanticsWeight(LinkSemantics s) {
  switch (s) {
    case LinkSemantics::kUnknown:
      return 0.5;
    case LinkSemantics::kAttributeOf:
      return 0.9;
    case LinkSemantics::kContainment:
      return 1.0;
    case LinkSemantics::kIsA:
      return 0.8;
    case LinkSemantics::kAssociation:
      return 0.45;
    case LinkSemantics::kReference:
      return 0.15;
  }
  return 0.5;
}

double SemanticLabeling::WeightOf(const Neighbor& nbr) const {
  LinkSemantics s =
      nbr.is_structural ? structural[nbr.link] : value[nbr.link];
  return SemanticsWeight(s);
}

SemanticLabeling SemanticLabeling::Heuristic(const SchemaGraph& graph) {
  // Truly unsupervised: every link is Unknown. Even attribute-ness cannot
  // be inferred from structure alone — a Simple child may be an identifying
  // attribute, an idref reference, or a degenerate weak entity, and telling
  // them apart is precisely the semantic judgement the paper says "most can
  // not be done automatically" (Section 5.4).
  SemanticLabeling l;
  l.structural.resize(graph.structural_links().size(), LinkSemantics::kUnknown);
  l.value.resize(graph.value_links().size(), LinkSemantics::kUnknown);
  l.entity_strength.assign(graph.size(), 0.0);
  return l;
}

Result<SemanticLabeling> MimiHumanLabeling(const SchemaGraph& schema) {
  SemanticLabeling l = SemanticLabeling::Heuristic(schema);

  // Attributes of an entity (identified by the administrators).
  for (LinkId i = 0; i < schema.structural_links().size(); ++i) {
    ElementId child = schema.structural_links()[i].child;
    if (schema.type(child).kind == TypeKind::kSimple &&
        schema.type(child).atomic != AtomicKind::kIdRef) {
      l.structural[i] = LinkSemantics::kAttributeOf;
    }
  }

  // Structural links inside an entity's subtree are containment; links from
  // the root to the top-level collections are mere document organization
  // (kept Unknown so the clusters do not glue everything to the root).
  for (LinkId i = 0; i < schema.structural_links().size(); ++i) {
    const StructuralLink& s = schema.structural_links()[i];
    if (l.structural[i] == LinkSemantics::kAttributeOf) continue;
    if (s.parent == schema.root()) continue;
    l.structural[i] = LinkSemantics::kContainment;
  }

  // Value links: participation and evidence are associations; provenance and
  // source bookkeeping are weak references.
  for (LinkId i = 0; i < schema.value_links().size(); ++i) {
    const ValueLink& v = schema.value_links()[i];
    const std::string& referee = schema.label(v.referee);
    if (referee == "source" || referee == "organism") {
      l.value[i] = LinkSemantics::kReference;  // provenance / scoping
    } else {
      l.value[i] = LinkSemantics::kAssociation;  // participation / evidence
    }
  }

  // Principal entities, by administrator judgement.
  struct Strength {
    const char* path;
    double strength;
  };
  const Strength kStrengths[] = {
      {"molecules/molecule", 3.0},
      {"interactions/interaction", 2.6},
      {"experiments/experiment", 2.0},
      {"publications/publication", 1.8},
      {"organisms/organism", 1.6},
      {"pathways/pathway", 1.3},
      {"domains/domain", 1.3},
      {"sources/source", 1.1},
      {"molecules/molecule/annotations/go_annotation", 1.2},
      {"molecules/molecule/sequence", 1.0},
      {"molecules/molecule/gene", 0.9},
      {"interactions/interaction/confidence", 0.8},
      {"molecules/molecule/structure", 0.7},
      {"molecules/molecule/annotations", 0.6},
      {"publications/publication/authors/author", 0.5},
  };
  for (const Strength& s : kStrengths) {
    ElementId e;
    auto res = schema.FindPath(s.path);
    if (!res.ok()) return res.status().WithContext("MimiHumanLabeling");
    e = *res;
    l.entity_strength[e] = s.strength;
  }
  return l;
}

}  // namespace ssum
