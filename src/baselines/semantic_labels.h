#pragma once

#include <vector>

#include "common/result.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Semantic categories ER-model abstraction techniques expect on
/// relationships (Section 5.4's Table 6 discussion: the paper had to label
/// links — "with significant human efforts" — before TWBK/CAFP could run).
enum class LinkSemantics : unsigned char {
  kUnknown = 0,    ///< no information (the unsupervised default)
  kAttributeOf,    ///< leaf detail of an entity
  kContainment,    ///< weak entity / part-of
  kIsA,            ///< specialization
  kAssociation,    ///< meaningful domain relationship
  kReference,      ///< lookup / provenance pointer (weak)
};

/// Closeness weight the clustering techniques assign each category.
double SemanticsWeight(LinkSemantics s);

/// Per-link semantic labels plus per-element entity strength (the human
/// judgement of which elements are principal entities).
struct SemanticLabeling {
  std::vector<LinkSemantics> structural;  ///< per structural link id
  std::vector<LinkSemantics> value;       ///< per value link id
  std::vector<double> entity_strength;    ///< per element, 0 = unremarkable

  /// Weight of the link behind an adjacency record.
  double WeightOf(const Neighbor& nbr) const;

  /// Unsupervised defaults ("w/o human"): links to Simple children are
  /// recognizable as attributes, everything else is unknown, and no element
  /// is distinguished as a principal entity.
  static SemanticLabeling Heuristic(const SchemaGraph& graph);
};

/// Curated labels for the MiMI schema ("with human"): containment within
/// entity subtrees, association for interaction participation and
/// experimental evidence, reference for provenance, and entity strengths
/// for the principal biological entities.
Result<SemanticLabeling> MimiHumanLabeling(const SchemaGraph& schema);

}  // namespace ssum
