#pragma once

#include <vector>

#include "common/result.h"
#include "core/summarize.h"
#include "core/summary.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// A summary collapsed into a standalone schema graph: one element per
/// abstract element plus the root. Enables multi-level summarization
/// (Section 2's extension): summarizing the collapsed graph produces a
/// coarser summary of the original schema.
struct CollapsedSchema {
  SchemaGraph graph;
  Annotations annotations;
  /// origin[collapsed element] = original schema element (the
  /// representative); origin[0] is the original root.
  std::vector<ElementId> origin;
};

/// Collapses a summary into a schema graph:
///  - each abstract element becomes a structural child of the group of its
///    nearest represented structural ancestor (the root when none);
///  - every remaining abstract link becomes a value link;
///  - cardinalities are inherited from the representatives, structural link
///    counts equal the child's cardinality, and value link counts aggregate
///    the crossing original link counts.
Result<CollapsedSchema> CollapseSummary(const SchemaGraph& graph,
                                        const Annotations& annotations,
                                        const SchemaSummary& summary);

/// One level of a multi-level summary.
struct SummaryLevel {
  /// Abstract elements at this level, as *original-schema* element ids.
  std::vector<ElementId> abstract_elements;
  /// For each original element: its representative at this level.
  std::vector<ElementId> representative;
};

/// Builds a multi-level summary with the given per-level sizes
/// (sizes[0] > sizes[1] > ... — level 0 is the finest). Each level is a
/// summary of the previous level's collapsed graph; representatives are
/// composed back onto the original schema.
Result<std::vector<SummaryLevel>> SummarizeMultiLevel(
    const SchemaGraph& graph, const Annotations& annotations,
    const std::vector<size_t>& sizes,
    Algorithm algorithm = Algorithm::kBalanceSummary,
    const SummarizeOptions& options = {});

/// Expanded-summary view (paper Figure 2(C)): the elements visible when a
/// single abstract element of `summary` is expanded — the members of its
/// group plus the other abstract elements.
struct ExpandedView {
  /// Visible original elements (group members), pre-order by schema id.
  std::vector<ElementId> expanded_members;
  /// The remaining (still abstract) elements.
  std::vector<ElementId> abstract_elements;
};

Result<ExpandedView> ExpandAbstractElement(const SchemaSummary& summary,
                                           ElementId abstract_rep);

}  // namespace ssum
