#include "core/dominance.h"

#include <algorithm>

namespace ssum {

bool Dominates(const SchemaGraph& graph, const Annotations& annotations,
               const CoverageMatrix& coverage, ElementId e1, ElementId e2) {
  if (e1 == e2) return false;
  const size_t n = graph.size();
  // E, C1, C2 per Theorem 1.
  double c1 = 0;
  double c2 = 0;
  for (ElementId e = 0; e < n; ++e) {
    if (e == graph.root()) continue;
    const double by2 = coverage.At(e2, e);
    const double by1 = coverage.At(e1, e);
    if (by2 > by1) {
      c1 += by1;
      c2 += by2;
    }
  }
  // e_c: the element besides e1 with the highest coverage of e1.
  ElementId ec = kInvalidElement;
  double ec_cov = -1.0;
  for (ElementId e = 0; e < n; ++e) {
    if (e == e1 || e == graph.root()) continue;
    const double c = coverage.At(e, e1);
    if (c > ec_cov) {
      ec = e;
      ec_cov = c;
    }
  }
  const double card1 = static_cast<double>(annotations.card(e1));
  const double delta = c2 - c1;
  if (delta > card1 - coverage.At(e2, e1)) return false;
  if (ec != kInvalidElement && ec != e2) {
    if (delta > card1 - ec_cov) return false;
  }
  return true;
}

std::vector<ElementId> ExtendedAncestors(const SchemaGraph& graph,
                                         ElementId e) {
  // BFS over "parent-like" edges: structural parent, and referees of value
  // links where the current element is the referrer.
  std::vector<bool> seen(graph.size(), false);
  std::vector<ElementId> queue;
  std::vector<ElementId> out;
  auto push = [&](ElementId x) {
    if (x != kInvalidElement && !seen[x]) {
      seen[x] = true;
      queue.push_back(x);
      out.push_back(x);
    }
  };
  seen[e] = true;
  ElementId p = graph.parent(e);
  push(p);
  for (const Neighbor& nbr : graph.neighbors(e)) {
    if (!nbr.is_structural && nbr.forward) push(nbr.other);  // referee
  }
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    ElementId cur = queue[qi];
    push(graph.parent(cur));
    for (const Neighbor& nbr : graph.neighbors(cur)) {
      if (!nbr.is_structural && nbr.forward) push(nbr.other);
    }
  }
  return out;
}

DominanceResult ComputeDominance(const SchemaGraph& graph,
                                 const Annotations& annotations,
                                 const CoverageMatrix& coverage) {
  DominanceResult result;
  result.dominated.assign(graph.size(), false);
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e == graph.root()) continue;
    for (ElementId anc : ExtendedAncestors(graph, e)) {
      if (anc == graph.root()) continue;
      if (Dominates(graph, annotations, coverage, anc, e)) {
        result.pairs.push_back({anc, e});
        result.dominated[e] = true;
      }
    }
  }
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e == graph.root() || result.dominated[e]) continue;
    result.candidates.push_back(e);
  }
  return result;
}

}  // namespace ssum
