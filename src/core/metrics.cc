#include "core/metrics.h"

namespace ssum {

double SummaryImportanceRatio(const SchemaGraph& graph,
                              const std::vector<double>& importance,
                              const SchemaSummary& summary) {
  double total = 0;
  for (ElementId e = 0; e < graph.size(); ++e) total += importance[e];
  if (total <= 0) return 0;
  double in_summary = importance[graph.root()];
  for (ElementId s : summary.abstract_elements) in_summary += importance[s];
  return in_summary / total;
}

double SummaryCoverageValue(const SchemaGraph& graph,
                            const Annotations& annotations,
                            const CoverageMatrix& coverage,
                            const SchemaSummary& summary) {
  double sum = static_cast<double>(annotations.card(graph.root()));
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e == graph.root()) continue;
    sum += coverage.At(summary.representative[e], e);
  }
  return sum;
}

double SummaryCoverageRatio(const SchemaGraph& graph,
                            const Annotations& annotations,
                            const CoverageMatrix& coverage,
                            const SchemaSummary& summary) {
  double denom = annotations.TotalCard();
  if (denom <= 0) return 0;
  return SummaryCoverageValue(graph, annotations, coverage, summary) / denom;
}

double CoverageOfSet(const SchemaGraph& graph,
                     const AffinityMatrix& affinity,
                     const CoverageMatrix& coverage,
                     const std::vector<ElementId>& set) {
  double sum = 0;
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e == graph.root()) continue;
    ElementId best = kInvalidElement;
    double best_aff = 0.0;
    double best_cov = 0.0;
    bool is_member = false;
    for (ElementId s : set) {
      if (s == e) {
        is_member = true;
        break;
      }
      const double a = affinity.At(e, s);
      if (a > best_aff ||
          (a == best_aff && a > 0.0 && coverage.At(s, e) > best_cov)) {
        best = s;
        best_aff = a;
        best_cov = coverage.At(s, e);
      }
    }
    if (is_member) {
      sum += coverage.At(e, e);
    } else if (best != kInvalidElement) {
      sum += coverage.At(best, e);
    }
  }
  return sum;
}

}  // namespace ssum
