#pragma once

#include "common/parallel.h"
#include "common/result.h"
#include "core/path_engine.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

struct CoverageOptions {
  /// Walk-length bound for the max-product search (see path_engine.h).
  uint32_t max_steps = 16;
};

/// Dense all-pairs element coverage (paper Formula 3):
///
///   C(a->b) = Card_b * max over paths of
///               prod_j  A(e_{j-1} -> e_j) * W(e_j -> e_{j-1})
///   C(a->a) = Card_a
///
/// where each step multiplies the direct-edge affinity toward the next
/// element by the neighbor weight the next element gives back to the
/// previous one ("competition", Section 3.2).
class CoverageMatrix {
 public:
  /// C(by -> of): how much `by` covers `of`.
  double At(ElementId by, ElementId of) const { return m_.At(by, of); }

  size_t size() const { return m_.size(); }

  /// Underlying dense storage (for byte-level determinism checks).
  const SquareMatrix& matrix() const { return m_; }

  /// Rows (one MaxProductWalks per source) are computed in parallel per
  /// `parallel`; any thread count yields bit-identical matrices. An expired
  /// `parallel.deadline` aborts between row blocks with kDeadlineExceeded.
  static Result<CoverageMatrix> TryCompute(const SchemaGraph& graph,
                                           const Annotations& annotations,
                                           const EdgeMetrics& metrics,
                                           const CoverageOptions& options = {},
                                           const ParallelOptions& parallel = {});

  /// TryCompute for callers without a deadline; aborts on failure (the
  /// kernels themselves cannot fail).
  static CoverageMatrix Compute(const SchemaGraph& graph,
                                const Annotations& annotations,
                                const EdgeMetrics& metrics,
                                const CoverageOptions& options = {},
                                const ParallelOptions& parallel = {});

  /// Incremental recompute from a base matrix: rows inside the
  /// dirty-frontier closure of `dirty_elements` (DirtyMetricElements over
  /// old/new statistics — cardinality changes seed the set too, covering
  /// the card(t) column scaling and the card(s) diagonal) are re-walked
  /// against the *new* annotations/metrics; every other row is copied from
  /// `base`. Bit-identical to TryCompute; falls back to a full TryCompute
  /// past patch.max_dirty_fraction (reported via `stats`, which may be
  /// null). FailedPrecondition when `base` has the wrong order.
  static Result<CoverageMatrix> TryPatch(const SchemaGraph& graph,
                                         const Annotations& annotations,
                                         const EdgeMetrics& metrics,
                                         const CoverageMatrix& base,
                                         std::span<const ElementId> dirty_elements,
                                         const CoverageOptions& options = {},
                                         const ParallelOptions& parallel = {},
                                         const MatrixPatchOptions& patch = {},
                                         MatrixPatchStats* stats = nullptr);

  /// Wraps an externally produced matrix — the warm-start path of the
  /// snapshot store (src/store), which decodes the bit-identical matrix a
  /// previous Compute() persisted.
  static CoverageMatrix FromMatrix(SquareMatrix m) {
    CoverageMatrix c;
    c.m_ = std::move(m);
    return c;
  }

 private:
  SquareMatrix m_;
};

}  // namespace ssum
