#include "core/multilevel.h"

#include <algorithm>
#include <map>

namespace ssum {

Result<CollapsedSchema> CollapseSummary(const SchemaGraph& graph,
                                        const Annotations& annotations,
                                        const SchemaSummary& summary) {
  SSUM_RETURN_NOT_OK(ValidateSummary(summary));
  CollapsedSchema out{SchemaGraph(graph.label(graph.root())), Annotations(),
                      {}};

  // Structural parent group of each abstract element: walk the original
  // structural ancestry until hitting an element represented by a different
  // abstract element (or the root).
  auto parent_group = [&](ElementId rep) -> ElementId {
    for (ElementId cur = graph.parent(rep); cur != kInvalidElement;
         cur = graph.parent(cur)) {
      if (cur == graph.root()) return graph.root();
      if (summary.representative[cur] != rep) {
        return summary.representative[cur];
      }
    }
    return graph.root();
  };

  // Build elements in an order where parents precede children: repeatedly
  // emit abstract elements whose parent group is already emitted.
  std::map<ElementId, ElementId> emitted;  // original rep -> collapsed id
  emitted[graph.root()] = out.graph.root();
  out.origin.push_back(graph.root());
  std::vector<ElementId> pending = summary.abstract_elements;
  std::vector<ElementId> pgroup(graph.size(), kInvalidElement);
  for (ElementId rep : pending) pgroup[rep] = parent_group(rep);
  while (!emitted.empty() && emitted.size() < pending.size() + 1) {
    bool progress = false;
    for (ElementId rep : pending) {
      if (emitted.count(rep)) continue;
      auto it = emitted.find(pgroup[rep]);
      if (it == emitted.end()) continue;
      ElementType type = graph.type(rep);
      type.abstract_ = true;
      auto added = out.graph.AddElement(it->second, graph.label(rep), type);
      SSUM_RETURN_NOT_OK(added.status());
      emitted[rep] = *added;
      out.origin.push_back(rep);
      progress = true;
    }
    if (!progress) {
      // Parent-group cycle through value links; attach the remainder to the
      // root to keep the collapsed structure a tree.
      for (ElementId rep : pending) {
        if (emitted.count(rep)) continue;
        ElementType type = graph.type(rep);
        type.abstract_ = true;
        auto added =
            out.graph.AddElement(out.graph.root(), graph.label(rep), type);
        SSUM_RETURN_NOT_OK(added.status());
        emitted[rep] = *added;
        out.origin.push_back(rep);
      }
    }
  }

  // Value links: every abstract link that is not the structural-parent edge.
  std::map<std::pair<ElementId, ElementId>, uint64_t> vcounts;
  for (const AbstractLink& l : summary.links) {
    ElementId from = l.from;
    ElementId to = l.to;
    // Skip the edge realized as the collapsed structural parent.
    if (to != graph.root() && pgroup[to] == from && l.has_structural) continue;
    if (from == to) continue;
    vcounts[{from, to}] += l.source_links;
  }
  out.annotations = Annotations(out.graph);
  for (const auto& [key, count] : vcounts) {
    auto fit = emitted.find(key.first);
    auto tit = emitted.find(key.second);
    if (fit == emitted.end() || tit == emitted.end()) continue;
    if (fit->second == out.graph.root() || tit->second == out.graph.root()) {
      continue;  // value links may not touch the root
    }
    auto link = out.graph.AddValueLink(fit->second, tit->second);
    SSUM_RETURN_NOT_OK(link.status());
  }

  // Annotations sized for the final graph (links were added after the first
  // sizing, so rebuild).
  out.annotations = Annotations(out.graph);
  for (ElementId c = 0; c < out.graph.size(); ++c) {
    out.annotations.set_card(c, annotations.card(out.origin[c]));
  }
  for (LinkId l = 0; l < out.graph.structural_links().size(); ++l) {
    const StructuralLink& s = out.graph.structural_links()[l];
    out.annotations.set_structural_count(l, out.annotations.card(s.child));
  }
  {
    LinkId l = 0;
    for (const ValueLink& v : out.graph.value_links()) {
      auto key = std::make_pair(out.origin[v.referrer], out.origin[v.referee]);
      auto it = vcounts.find(key);
      uint64_t c = it == vcounts.end() ? 1 : it->second;
      // Scale the count to data terms: use the referrer cardinality as a
      // conservative per-instance estimate when no data count is available.
      out.annotations.set_value_count(
          l, std::max<uint64_t>(c, out.annotations.card(v.referrer) > 0
                                       ? out.annotations.card(v.referrer)
                                       : 1));
      ++l;
    }
  }
  return out;
}

Result<std::vector<SummaryLevel>> SummarizeMultiLevel(
    const SchemaGraph& graph, const Annotations& annotations,
    const std::vector<size_t>& sizes, Algorithm algorithm,
    const SummarizeOptions& options) {
  if (sizes.empty()) {
    return Status::InvalidArgument("SummarizeMultiLevel: no sizes");
  }
  for (size_t i = 1; i < sizes.size(); ++i) {
    if (sizes[i] >= sizes[i - 1]) {
      return Status::InvalidArgument(
          "SummarizeMultiLevel: sizes must strictly decrease");
    }
  }
  std::vector<SummaryLevel> levels;

  // Level 0 on the original schema.
  SchemaSummary base;
  {
    auto s = Summarize(graph, annotations, sizes[0], algorithm, options);
    SSUM_RETURN_NOT_OK(s.status());
    base = std::move(*s);
  }
  levels.push_back({base.abstract_elements, base.representative});

  // Subsequent levels on collapsed graphs, composing representatives.
  SchemaSummary current = base;
  const SchemaGraph* cur_graph = &graph;
  const Annotations* cur_ann = &annotations;
  CollapsedSchema collapsed;  // keeps the latest collapse alive
  std::vector<ElementId> to_original(graph.size());
  for (ElementId e = 0; e < graph.size(); ++e) to_original[e] = e;

  for (size_t li = 1; li < sizes.size(); ++li) {
    auto col = CollapseSummary(*cur_graph, *cur_ann, current);
    SSUM_RETURN_NOT_OK(col.status());
    // Compose: map collapsed ids back to original ids.
    std::vector<ElementId> col_to_original(col->graph.size());
    for (ElementId c = 0; c < col->graph.size(); ++c) {
      col_to_original[c] = to_original[col->origin[c]];
    }
    auto s = Summarize(col->graph, col->annotations, sizes[li], algorithm,
                       options);
    SSUM_RETURN_NOT_OK(s.status());

    SummaryLevel level;
    for (ElementId a : s->abstract_elements) {
      level.abstract_elements.push_back(col_to_original[a]);
    }
    // Original element -> previous-level rep -> collapsed id -> new rep.
    std::map<ElementId, ElementId> original_rep_to_collapsed;
    for (ElementId c = 0; c < col->graph.size(); ++c) {
      original_rep_to_collapsed[col_to_original[c]] = c;
    }
    const SummaryLevel& prev = levels.back();
    level.representative.resize(graph.size());
    for (ElementId e = 0; e < graph.size(); ++e) {
      ElementId prev_rep = prev.representative[e];
      auto it = original_rep_to_collapsed.find(prev_rep);
      ElementId collapsed_id =
          it == original_rep_to_collapsed.end() ? col->graph.root()
                                                : it->second;
      ElementId new_rep = s->representative[collapsed_id];
      level.representative[e] = col_to_original[new_rep];
    }
    levels.push_back(std::move(level));

    current = std::move(*s);
    collapsed = std::move(*col);
    // The summary's schema pointer tracked col->graph, which has just been
    // moved into `collapsed`; re-anchor it.
    current.schema = &collapsed.graph;
    cur_graph = &collapsed.graph;
    cur_ann = &collapsed.annotations;
    to_original = std::move(col_to_original);
  }
  return levels;
}

Result<ExpandedView> ExpandAbstractElement(const SchemaSummary& summary,
                                           ElementId abstract_rep) {
  if (!summary.IsAbstract(abstract_rep)) {
    return Status::InvalidArgument("element is not abstract in this summary");
  }
  ExpandedView view;
  view.expanded_members = summary.Group(abstract_rep);
  for (ElementId a : summary.abstract_elements) {
    if (a != abstract_rep) view.abstract_elements.push_back(a);
  }
  return view;
}

}  // namespace ssum
