#pragma once

#include <vector>

#include "core/coverage.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// A dominance fact: for any summary containing only `dominated`, replacing
/// it with `dominator` yields at least as much summary coverage (Theorem 1).
struct DominancePair {
  ElementId dominator;
  ElementId dominated;
};

struct DominanceResult {
  /// DS of Figure 6.
  std::vector<DominancePair> pairs;
  /// dominated[e] = true when some other element dominates e.
  std::vector<bool> dominated;
  /// CS of Figure 6: elements (excluding the root) not dominated by anyone.
  std::vector<ElementId> candidates;
};

/// Theorem 1 dominance test: does e1 dominate e2?
///
/// E  = elements (incl. e2) with higher coverage by e2 than by e1
/// C1 = sum over E of C(e1->e), C2 = sum over E of C(e2->e)
/// e_c = element != e1 with the highest coverage of e1
/// e1 dominates e2 iff  C2 - C1 <= Card(e1) - C(e2->e1)
///             and (if e_c != e2)  C2 - C1 <= Card(e1) - C(e_c->e1)
bool Dominates(const SchemaGraph& graph, const Annotations& annotations,
               const CoverageMatrix& coverage, ElementId e1, ElementId e2);

/// Figure 6 lines 2-12: evaluates Theorem 1 for every extended
/// ancestor/descendant pair (structural parents plus value-link referees
/// treated as parents, per the paper's footnote), the ancestor playing the
/// dominator role. Missing some dominance facts is harmless (the heuristic
/// only prunes); fabricating them would not be.
DominanceResult ComputeDominance(const SchemaGraph& graph,
                                 const Annotations& annotations,
                                 const CoverageMatrix& coverage);

/// Extended-ancestor reachability used by the pruning heuristic: ancestors
/// of `e` through structural-parent and referrer->referee edges. Does not
/// include `e` itself.
std::vector<ElementId> ExtendedAncestors(const SchemaGraph& graph,
                                         ElementId e);

}  // namespace ssum
