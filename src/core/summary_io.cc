#include "core/summary_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/status_builder.h"
#include "common/string_util.h"

namespace ssum {

std::string SerializeSummary(const SchemaSummary& summary) {
  std::ostringstream os;
  os << "ssum-summary v1\n";
  for (ElementId a : summary.abstract_elements) os << "a\t" << a << '\n';
  for (ElementId e = 0; e < summary.representative.size(); ++e) {
    os << "m\t" << e << '\t' << summary.representative[e] << '\n';
  }
  return os.str();
}

Result<SchemaSummary> ParseSummary(const SchemaGraph& schema,
                                   const std::string& text,
                                   const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(text.size(), limits, "summary text"));
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || TrimWhitespace(line) != "ssum-summary v1") {
    return ParseErrorAt(1, 0) << "missing 'ssum-summary v1' header";
  }
  SchemaSummary summary;
  summary.schema = &schema;
  summary.representative.assign(schema.size(), kInvalidElement);
  size_t line_no = 1;
  size_t line_offset = line.size() + 1;
  size_t records = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const size_t this_offset = line_offset;
    line_offset += line.size() + 1;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (++records > limits.max_items) {
      return ParseErrorAt(line_no, this_offset)
             << "summary exceeds the " << limits.max_items << "-record limit";
    }
    std::vector<std::string> f = SplitString(line, '\t');
    auto fail = [&](const std::string& why) {
      return Status(ParseErrorAt(line_no, this_offset) << why);
    };
    if (f[0] == "a") {
      if (f.size() != 2) return fail("abstract line needs 2 fields");
      int64_t id;
      SSUM_ASSIGN_OR_RETURN(id, ParseInt64(f[1]));
      if (id < 0 || static_cast<size_t>(id) >= schema.size()) {
        return fail("abstract element id out of range");
      }
      summary.abstract_elements.push_back(static_cast<ElementId>(id));
    } else if (f[0] == "m") {
      if (f.size() != 3) return fail("mapping line needs 3 fields");
      int64_t e, r;
      SSUM_ASSIGN_OR_RETURN(e, ParseInt64(f[1]));
      SSUM_ASSIGN_OR_RETURN(r, ParseInt64(f[2]));
      if (e < 0 || static_cast<size_t>(e) >= schema.size() || r < 0 ||
          static_cast<size_t>(r) >= schema.size()) {
        return fail("mapping id out of range");
      }
      summary.representative[static_cast<size_t>(e)] =
          static_cast<ElementId>(r);
    } else {
      return fail("unknown record type '" + f[0] + "'");
    }
  }
  // Rebuild the derived abstract links, then check Definition 2.
  std::map<std::pair<ElementId, ElementId>, AbstractLink> merged;
  auto add = [&](ElementId from, ElementId to, bool structural) {
    AbstractLink& l = merged[{from, to}];
    l.from = from;
    l.to = to;
    l.has_structural |= structural;
    l.has_value |= !structural;
    ++l.source_links;
  };
  for (const StructuralLink& s : schema.structural_links()) {
    ElementId a = summary.representative[s.parent];
    ElementId b = summary.representative[s.child];
    if (a == kInvalidElement || b == kInvalidElement) {
      return Status::ParseError("summary mapping is not total");
    }
    if (a != b) add(a, b, /*structural=*/true);
  }
  for (const ValueLink& v : schema.value_links()) {
    ElementId a = summary.representative[v.referrer];
    ElementId b = summary.representative[v.referee];
    if (a != b) add(a, b, /*structural=*/false);
  }
  for (auto& [key, link] : merged) summary.links.push_back(link);
  SSUM_RETURN_NOT_OK(ValidateSummary(summary));
  return summary;
}

Status WriteSummaryFile(const SchemaSummary& summary,
                        const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << SerializeSummary(summary);
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<SchemaSummary> ReadSummaryFile(const SchemaGraph& schema,
                                      const std::string& path,
                                      const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto summary = ParseSummary(schema, buf.str(), limits);
  if (!summary.ok()) return summary.status().WithContext(path);
  return summary;
}

std::string ExportSummaryDot(const SchemaSummary& summary,
                             const std::string& graph_name) {
  const SchemaGraph& schema = *summary.schema;
  auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::ostringstream os;
  os << "digraph \"" << escape(graph_name) << "\" {\n"
     << "  rankdir=TB;\n  node [shape=box, fontsize=11];\n";
  os << "  n" << schema.root() << " [label=\""
     << escape(schema.label(schema.root())) << "\"];\n";
  for (ElementId a : summary.abstract_elements) {
    std::string label = escape(schema.label(a));
    if (schema.type(a).set_of) label += "*";
    os << "  n" << a << " [label=\"" << label << "\\n("
       << summary.Group(a).size() << " elements)\", style=\"rounded\"];\n";
  }
  for (const AbstractLink& l : summary.links) {
    os << "  n" << l.from << " -> n" << l.to;
    if (l.has_value && !l.has_structural) {
      os << " [style=dashed]";
    } else if (l.has_value) {
      os << " [style=\"dashed\", color=\"black:black\"]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ssum
