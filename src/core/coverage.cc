#include "core/coverage.h"

#include "common/logging.h"

namespace ssum {

CoverageMatrix CoverageMatrix::Compute(const SchemaGraph& graph,
                                       const Annotations& annotations,
                                       const EdgeMetrics& metrics,
                                       const CoverageOptions& options,
                                       const ParallelOptions& parallel) {
  const size_t n = graph.size();
  // Step factor for u -> v (adjacency entry i at u):
  //   edge_affinity(u->v) * W(v->u)
  // where W(v->u) is read through the mirror index.
  EdgeFactors factors(n);
  for (ElementId u = 0; u < n; ++u) {
    const auto& nbrs = graph.neighbors(u);
    factors[u].resize(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const ElementId v = nbrs[i].other;
      const uint32_t j = metrics.mirror[u][i];
      factors[u][i] = metrics.edge_affinity[u][i] * metrics.w[v][j];
    }
  }
  CoverageMatrix out;
  out.m_ = SquareMatrix(n, 0.0);
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = false;
  Status st = ParallelFor(
      0, n, /*grain=*/4,
      [&](size_t src) {
        std::vector<double> row = MaxProductWalks(
            graph, factors, static_cast<ElementId>(src), walk);
        std::span<double> dst = out.m_.RowSpan(src);
        for (size_t t = 0; t < n; ++t) {
          dst[t] = row[t] * static_cast<double>(annotations.card(
                                static_cast<ElementId>(t)));
        }
        dst[src] = static_cast<double>(
            annotations.card(static_cast<ElementId>(src)));  // special case
      },
      parallel.threads);
  SSUM_CHECK(st.ok(), st.ToString());
  return out;
}

}  // namespace ssum
