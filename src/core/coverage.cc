#include "core/coverage.h"

#include "common/logging.h"

namespace ssum {

Result<CoverageMatrix> CoverageMatrix::TryCompute(
    const SchemaGraph& graph, const Annotations& annotations,
    const EdgeMetrics& metrics, const CoverageOptions& options,
    const ParallelOptions& parallel) {
  const size_t n = graph.size();
  // Step factor for u -> v (adjacency entry i at u):
  //   edge_affinity(u->v) * W(v->u)
  // where W(v->u) is read through the mirror index.
  EdgeFactors factors(n);
  for (ElementId u = 0; u < n; ++u) {
    const auto& nbrs = graph.neighbors(u);
    factors[u].resize(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const ElementId v = nbrs[i].other;
      const uint32_t j = metrics.mirror[u][i];
      factors[u][i] = metrics.edge_affinity[u][i] * metrics.w[v][j];
    }
  }
  CoverageMatrix out;
  out.m_ = SquareMatrix(n, 0.0);
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = false;
  // Batched engine writes straight into the matrix rows; the cardinality
  // scaling runs in place afterwards (same per-entry product as the scalar
  // path, so the matrix stays bit-identical).
  const WalkPlan plan = WalkPlan::Build(graph, factors);
  const size_t blocks = (n + kWalkLaneWidth - 1) / kWalkLaneWidth;
  Status st = ParallelFor(
      0, blocks, /*grain=*/1,
      [&](size_t block) {
        const size_t begin = block * kWalkLaneWidth;
        const size_t count = std::min(kWalkLaneWidth, n - begin);
        ElementId sources[kWalkLaneWidth];
        std::span<double> rows[kWalkLaneWidth];
        for (size_t i = 0; i < count; ++i) {
          sources[i] = static_cast<ElementId>(begin + i);
          rows[i] = out.m_.RowSpan(begin + i);
        }
        MaxProductWalksBatch(plan, {sources, count}, walk, {rows, count});
        for (size_t i = 0; i < count; ++i) {
          std::span<double> dst = rows[i];
          for (size_t t = 0; t < n; ++t) {
            dst[t] *= static_cast<double>(
                annotations.card(static_cast<ElementId>(t)));
          }
          dst[begin + i] = static_cast<double>(annotations.card(
              static_cast<ElementId>(begin + i)));  // special case
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  return out;
}

Result<CoverageMatrix> CoverageMatrix::TryPatch(
    const SchemaGraph& graph, const Annotations& annotations,
    const EdgeMetrics& metrics, const CoverageMatrix& base,
    std::span<const ElementId> dirty_elements, const CoverageOptions& options,
    const ParallelOptions& parallel, const MatrixPatchOptions& patch,
    MatrixPatchStats* stats) {
  const size_t n = graph.size();
  if (base.size() != n) {
    return Status::FailedPrecondition(
        "CoverageMatrix::TryPatch: base matrix order " +
        std::to_string(base.size()) + " does not match schema order " +
        std::to_string(n));
  }
  const std::vector<uint8_t> mask =
      DirtyFrontierClosure(graph, dirty_elements, options.max_steps);
  std::vector<ElementId> rows_to_walk;
  for (ElementId e = 0; e < n; ++e) {
    if (mask[e]) rows_to_walk.push_back(e);
  }
  if (stats != nullptr) {
    stats->dirty_rows = rows_to_walk.size();
    stats->total_rows = n;
    stats->patched = false;
  }
  if (static_cast<double>(rows_to_walk.size()) >
      patch.max_dirty_fraction * static_cast<double>(n)) {
    return TryCompute(graph, annotations, metrics, options, parallel);
  }
  // Same step-factor construction as TryCompute, over the *new* metrics.
  EdgeFactors factors(n);
  for (ElementId u = 0; u < n; ++u) {
    const auto& nbrs = graph.neighbors(u);
    factors[u].resize(nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      const ElementId v = nbrs[i].other;
      const uint32_t j = metrics.mirror[u][i];
      factors[u][i] = metrics.edge_affinity[u][i] * metrics.w[v][j];
    }
  }
  CoverageMatrix out;
  out.m_ = base.m_;  // rows outside the closure keep their base bytes
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = false;
  const WalkPlan plan = WalkPlan::Build(graph, factors);
  const size_t blocks =
      (rows_to_walk.size() + kWalkLaneWidth - 1) / kWalkLaneWidth;
  Status st = ParallelFor(
      0, blocks, /*grain=*/1,
      [&](size_t block) {
        const size_t begin = block * kWalkLaneWidth;
        const size_t count =
            std::min(kWalkLaneWidth, rows_to_walk.size() - begin);
        ElementId sources[kWalkLaneWidth];
        std::span<double> rows[kWalkLaneWidth];
        for (size_t i = 0; i < count; ++i) {
          sources[i] = rows_to_walk[begin + i];
          rows[i] = out.m_.RowSpan(sources[i]);
        }
        MaxProductWalksBatch(plan, {sources, count}, walk, {rows, count});
        for (size_t i = 0; i < count; ++i) {
          std::span<double> dst = rows[i];
          for (size_t t = 0; t < n; ++t) {
            dst[t] *= static_cast<double>(
                annotations.card(static_cast<ElementId>(t)));
          }
          dst[sources[i]] =
              static_cast<double>(annotations.card(sources[i]));  // special case
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  if (stats != nullptr) stats->patched = true;
  return out;
}

CoverageMatrix CoverageMatrix::Compute(const SchemaGraph& graph,
                                       const Annotations& annotations,
                                       const EdgeMetrics& metrics,
                                       const CoverageOptions& options,
                                       const ParallelOptions& parallel) {
  auto out = TryCompute(graph, annotations, metrics, options, parallel);
  SSUM_CHECK(out.ok(), out.status().ToString());
  return std::move(*out);
}

}  // namespace ssum
