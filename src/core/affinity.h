#pragma once

#include "common/parallel.h"
#include "common/result.h"
#include "core/path_engine.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

struct AffinityOptions {
  /// Walk-length bound for the max-product search (see path_engine.h).
  uint32_t max_steps = 16;
};

/// Dense all-pairs element affinity (paper Formula 2):
///
///   A(a->b) = max over paths of (1/steps) * prod 1/RC(e_{j-1} -> e_j)
///   A(a->a) = 1
///
/// Per-edge affinities are capped at 1 (DESIGN.md interpretation notes), the
/// division uses the number of *steps* (edges) on the path — the reading
/// consistent with the paper's bidder/open_auction worked example.
class AffinityMatrix {
 public:
  /// A(from -> to).
  double At(ElementId from, ElementId to) const { return m_.At(from, to); }

  size_t size() const { return m_.size(); }

  /// Underlying dense storage (for byte-level determinism checks).
  const SquareMatrix& matrix() const { return m_; }

  /// Each source row is an independent MaxProductWalks, so rows are computed
  /// in parallel per `parallel`; any thread count yields bit-identical
  /// matrices (each row has exactly one writer, no reduction). An expired
  /// `parallel.deadline` aborts between row blocks with kDeadlineExceeded.
  static Result<AffinityMatrix> TryCompute(const SchemaGraph& graph,
                                           const EdgeMetrics& metrics,
                                           const AffinityOptions& options = {},
                                           const ParallelOptions& parallel = {});

  /// TryCompute for callers without a deadline; aborts on failure (the
  /// kernels themselves cannot fail).
  static AffinityMatrix Compute(const SchemaGraph& graph,
                                const EdgeMetrics& metrics,
                                const AffinityOptions& options = {},
                                const ParallelOptions& parallel = {});

  /// Incremental recompute from a base matrix: only the rows inside the
  /// dirty-frontier closure of `dirty_elements` (DirtyMetricElements over
  /// the old/new statistics) are re-walked against the *new* metrics; every
  /// other row is copied from `base`. Bit-identical to TryCompute(graph,
  /// metrics, ...) — a row outside the closure cannot traverse a changed
  /// edge within max_steps, so its walk values are unchanged. Falls back to
  /// a full TryCompute past patch.max_dirty_fraction (reported via `stats`,
  /// which may be null). FailedPrecondition when `base` has the wrong order.
  static Result<AffinityMatrix> TryPatch(const SchemaGraph& graph,
                                         const EdgeMetrics& metrics,
                                         const AffinityMatrix& base,
                                         std::span<const ElementId> dirty_elements,
                                         const AffinityOptions& options = {},
                                         const ParallelOptions& parallel = {},
                                         const MatrixPatchOptions& patch = {},
                                         MatrixPatchStats* stats = nullptr);

  /// Wraps an externally produced matrix — the warm-start path of the
  /// snapshot store (src/store), which decodes the bit-identical matrix a
  /// previous Compute() persisted. Callers are responsible for the
  /// provenance; the cache keys it by schema/statistics/options.
  static AffinityMatrix FromMatrix(SquareMatrix m) {
    AffinityMatrix a;
    a.m_ = std::move(m);
    return a;
  }

 private:
  SquareMatrix m_;
};

}  // namespace ssum
