#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "core/coverage.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Approximate MaxCoverage engine (ROADMAP "Approximate summarization for
/// huge schemas", following the lazy-greedy/sketching direction of Beg et
/// al.'s scalable graph-summarization approximation).
///
/// The exact Figure 6 search enumerates C(|CS|, K) candidate sets — and even
/// its greedy fallback re-evaluates the full assignment objective
/// (O(n * |set|) per candidate per round). This engine replaces both with:
///
///   1. per-candidate *coverage sketches*: the dominant entries of the
///      candidate's coverage-matrix row, truncated to a (1 - epsilon)
///      fraction of the row's total coverage mass — marginal gains then cost
///      O(sketch) instead of O(n);
///   2. deterministic *near-duplicate pruning*: a candidate whose sketch is
///      entirely covered at least as well by a stronger candidate can never
///      contribute a better marginal gain, and is dropped before selection;
///   3. *lazy-greedy (CELF) selection*: submodularity of the sketched
///      objective makes cached marginal gains upper bounds, so each round
///      only re-evaluates candidates whose cached bound still beats the heap
///      top. Ties break toward the smaller element id.
///
/// The sketched objective F(S) = sum_e max_{s in S} sketch_s[e] is monotone
/// submodular; the selected set approximates the paper's assignment-based
/// summary coverage, and bench/approx_scaling gates the end-to-end quality
/// at >= 0.95x the exact selection on the paper's three datasets.
///
/// Determinism: sketch construction is parallel with one writer per
/// candidate, pruning and selection are serial — results are bit-identical
/// for every thread count and across repeated runs (gated in
/// bench/approx_scaling and replayed under TSAN).
struct ApproxCoverOptions {
  /// Sketch-truncation knob: each candidate's sketch keeps the smallest
  /// exponent-bucketed prefix of its coverage row whose mass is at least
  /// (1 - epsilon) of the row total. 0 keeps every positive entry (the
  /// sketch *is* the row); larger values trade selection quality for
  /// smaller sketches and faster marginal gains. Values are clamped to
  /// [0, 1). See docs/performance.md for guidance.
  double epsilon = 0.1;
  /// Thread count for the sketch-construction pass (the only parallel
  /// stage). Any value yields bit-identical selections.
  ParallelOptions parallel;
};

/// Compact representation of one candidate's coverage contributions:
/// the retained row entries, element-id ascending, plus their total mass.
struct CoverageSketch {
  ElementId candidate = kInvalidElement;
  std::vector<ElementId> elems;  ///< covered elements, ascending id
  std::vector<double> values;    ///< parallel to elems, all > 0
  double mass = 0.0;             ///< sum of values

  size_t width() const { return elems.size(); }
};

/// Builds one sketch per candidate from the coverage matrix rows. The kept
/// entry set is chosen by binary-exponent bucketing (O(n) per row, no sort):
/// scanning buckets from the largest magnitude down, the threshold bucket is
/// the first whose cumulative mass reaches (1 - epsilon) of the row total;
/// every entry at or above it is retained. Smaller epsilon therefore keeps a
/// superset of a larger epsilon's sketch. The root's entry is always
/// excluded (it represents itself in every summary).
std::vector<CoverageSketch> BuildCoverageSketches(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates,
    const ApproxCoverOptions& options = {});

/// BuildCoverageSketches that propagates instead of aborting — an expired
/// `options.parallel.deadline` surfaces as kDeadlineExceeded.
Result<std::vector<CoverageSketch>> TryBuildCoverageSketches(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates,
    const ApproxCoverOptions& options = {});

/// Deterministic near-duplicate pruning: processes sketches in (mass
/// descending, candidate id ascending) order and drops a sketch when one of
/// the first `kApproxPruneProbe` kept sketches covers every one of its
/// entries at least as well (and has at least its mass) — such a candidate
/// can never beat its dominator's marginal gain. Returns indices into
/// `sketches` of the kept candidates, in the kept order.
std::vector<uint32_t> PruneDominatedSketches(
    const std::vector<CoverageSketch>& sketches);

/// Bounded number of kept sketches each candidate is compared against in
/// PruneDominatedSketches (the strongest ones first) — keeps pruning
/// O(candidates * probe * width).
inline constexpr size_t kApproxPruneProbe = 24;

/// CELF lazy-greedy selection of up to k candidates maximizing the sketched
/// coverage objective. `num_elements` is the schema size (sketch entries
/// index into it). Returns the selected candidate ids in selection order;
/// fewer than k when the sketches run out of positive marginal gain.
std::vector<ElementId> SelectLazyGreedy(
    size_t num_elements, const std::vector<CoverageSketch>& sketches,
    const std::vector<uint32_t>& kept, size_t k);

/// One-call approximate MaxCoverage over an explicit candidate set:
/// sketches, pruning, then lazy-greedy selection. Candidates must exclude
/// the root. Returns fewer than k elements when the candidates (or their
/// positive gains) run out; callers top up (see SelectMaxCoverage).
std::vector<ElementId> ApproxMaxCoverage(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates, size_t k,
    const ApproxCoverOptions& options = {});

/// ApproxMaxCoverage that propagates instead of aborting — an expired
/// `options.parallel.deadline` surfaces as kDeadlineExceeded.
Result<std::vector<ElementId>> TryApproxMaxCoverage(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates, size_t k,
    const ApproxCoverOptions& options = {});

}  // namespace ssum
