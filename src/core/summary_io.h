#pragma once

#include <string>

#include "common/parse_limits.h"
#include "common/result.h"
#include "core/summary.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Line-oriented text format for summaries (companion to schema_io.h):
///
///   ssum-summary v1
///   a <tab> <representative element id>            (selection order)
///   m <tab> <element id> <tab> <representative id> (one per element)
///
/// Abstract links are not persisted — they are derived data and are
/// reconstructed on load. The summary references its schema by element ids;
/// the caller must supply the same schema on load (ids are validated).
std::string SerializeSummary(const SchemaSummary& summary);

/// Parses and revalidates against `schema` (Definition 2 invariants).
/// Abort-free: malformed lines yield a ParseError with line and byte-offset
/// context; input over `limits` (total bytes, records vs
/// `limits.max_items`) an OutOfRange status.
Result<SchemaSummary> ParseSummary(
    const SchemaGraph& schema, const std::string& text,
    const ParseLimits& limits = ParseLimits::Defaults());

Status WriteSummaryFile(const SchemaSummary& summary, const std::string& path);
Result<SchemaSummary> ReadSummaryFile(
    const SchemaGraph& schema, const std::string& path,
    const ParseLimits& limits = ParseLimits::Defaults());

/// Graphviz rendering of a summary in the paper's Figure 2 style: one box
/// per abstract element annotated with its group size, solid arrows for
/// abstract links that stand for structural links only, dashed arrows when
/// a value link is consolidated.
std::string ExportSummaryDot(const SchemaSummary& summary,
                             const std::string& graph_name = "summary");

}  // namespace ssum
