#include "core/approx_cover.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "common/logging.h"

namespace ssum {

namespace {

/// Binary-exponent bucket index of a positive double. ilogb ranges over
/// [-1074, 1023] for positive finite doubles (subnormals included), shifted
/// to [0, kNumExponentBuckets).
constexpr int kExponentBias = 1074;
constexpr int kNumExponentBuckets = 1024 + kExponentBias + 1;

int BucketOf(double v) { return std::ilogb(v) + kExponentBias; }

/// Builds the sketch of one coverage-matrix row. `bucket_mass` is caller
/// scratch of kNumExponentBuckets entries, zeroed on entry and re-zeroed
/// before returning (only touched buckets are cleared, so reuse is O(row)).
CoverageSketch SketchRow(const SchemaGraph& graph,
                         const CoverageMatrix& coverage, ElementId candidate,
                         double epsilon, std::vector<double>& bucket_mass) {
  const size_t n = graph.size();
  const ElementId root = graph.root();
  CoverageSketch sketch;
  sketch.candidate = candidate;

  double total = 0.0;
  int hi = -1, lo = kNumExponentBuckets;
  for (ElementId e = 0; e < n; ++e) {
    if (e == root) continue;
    const double v = coverage.At(candidate, e);
    if (!(v > 0.0)) continue;
    const int b = BucketOf(v);
    bucket_mass[b] += v;
    hi = std::max(hi, b);
    lo = std::min(lo, b);
    total += v;
  }
  if (hi < 0) return sketch;  // row is all zeros: empty sketch

  // Threshold bucket: the first (scanning from the largest magnitudes down)
  // at which the cumulative mass reaches (1 - epsilon) of the row total.
  // epsilon <= 0 keeps every positive entry.
  int threshold = lo;
  if (epsilon > 0.0) {
    const double want = (1.0 - std::min(epsilon, 1.0)) * total;
    double acc = 0.0;
    for (int b = hi; b >= lo; --b) {
      acc += bucket_mass[b];
      if (acc >= want) {
        threshold = b;
        break;
      }
    }
  }
  for (int b = lo; b <= hi; ++b) bucket_mass[b] = 0.0;

  for (ElementId e = 0; e < n; ++e) {
    if (e == root) continue;
    const double v = coverage.At(candidate, e);
    if (!(v > 0.0) || BucketOf(v) < threshold) continue;
    sketch.elems.push_back(e);
    sketch.values.push_back(v);
    sketch.mass += v;
  }
  return sketch;
}

/// True when sketch `a` covers every entry of sketch `c` at least as well.
/// Both entry lists are element-id ascending, so this is one merge scan.
bool SketchDominates(const CoverageSketch& a, const CoverageSketch& c) {
  size_t ia = 0;
  for (size_t ic = 0; ic < c.elems.size(); ++ic) {
    while (ia < a.elems.size() && a.elems[ia] < c.elems[ic]) ++ia;
    if (ia == a.elems.size() || a.elems[ia] != c.elems[ic] ||
        a.values[ia] < c.values[ic]) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<CoverageSketch>> TryBuildCoverageSketches(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates,
    const ApproxCoverOptions& options) {
  std::vector<CoverageSketch> sketches(candidates.size());
  // One writer per sketch; chunked so each worker allocates its exponent
  // scratch once per chunk, not once per row.
  Status st = ParallelForChunked(
      0, candidates.size(), /*grain=*/16,
      [&](size_t, size_t begin, size_t end) {
        std::vector<double> bucket_mass(kNumExponentBuckets, 0.0);
        for (size_t i = begin; i < end; ++i) {
          sketches[i] = SketchRow(graph, coverage, candidates[i],
                                  options.epsilon, bucket_mass);
        }
      },
      options.parallel);
  SSUM_RETURN_NOT_OK(st);
  return sketches;
}

std::vector<CoverageSketch> BuildCoverageSketches(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates,
    const ApproxCoverOptions& options) {
  auto sketches = TryBuildCoverageSketches(graph, coverage, candidates, options);
  SSUM_CHECK(sketches.ok(), sketches.status().ToString());
  return std::move(*sketches);
}

std::vector<uint32_t> PruneDominatedSketches(
    const std::vector<CoverageSketch>& sketches) {
  std::vector<uint32_t> order(sketches.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (sketches[a].mass != sketches[b].mass) {
      return sketches[a].mass > sketches[b].mass;
    }
    return sketches[a].candidate < sketches[b].candidate;
  });
  std::vector<uint32_t> kept;
  kept.reserve(order.size());
  for (uint32_t idx : order) {
    const CoverageSketch& c = sketches[idx];
    bool dominated = false;
    // Kept order is mass-descending, so every probe already has
    // mass >= c.mass; only the entrywise check remains.
    const size_t probes = std::min(kept.size(), kApproxPruneProbe);
    for (size_t p = 0; p < probes; ++p) {
      if (SketchDominates(sketches[kept[p]], c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) kept.push_back(idx);
  }
  return kept;
}

std::vector<ElementId> SelectLazyGreedy(
    size_t num_elements, const std::vector<CoverageSketch>& sketches,
    const std::vector<uint32_t>& kept, size_t k) {
  struct HeapEntry {
    double gain;
    ElementId candidate;  // deterministic tie-break key
    uint32_t sketch_idx;
    uint32_t stamp;  // number of selections when `gain` was computed
  };
  auto worse = [](const HeapEntry& a, const HeapEntry& b) {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.candidate > b.candidate;
  };
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, decltype(worse)> heap(
      worse);
  for (uint32_t idx : kept) {
    // The empty-set marginal gain of a sketch is exactly its mass.
    heap.push({sketches[idx].mass, sketches[idx].candidate, idx, 0});
  }

  std::vector<double> best(num_elements, 0.0);
  std::vector<ElementId> selected;
  selected.reserve(std::min(k, kept.size()));
  while (selected.size() < k && !heap.empty()) {
    HeapEntry top = heap.top();
    heap.pop();
    if (top.gain <= 0.0) break;  // nothing contributes anymore
    const CoverageSketch& s = sketches[top.sketch_idx];
    if (top.stamp == selected.size()) {
      // Fresh bound: submodularity makes it the true (maximal) gain.
      for (size_t i = 0; i < s.elems.size(); ++i) {
        double& b = best[s.elems[i]];
        b = std::max(b, s.values[i]);
      }
      selected.push_back(s.candidate);
      continue;
    }
    // Stale bound: recompute against the current best-values and re-insert.
    // Gains only shrink as `best` grows, so candidates whose stale bound
    // already loses to the heap top are never touched this round.
    double gain = 0.0;
    for (size_t i = 0; i < s.elems.size(); ++i) {
      const double d = s.values[i] - best[s.elems[i]];
      if (d > 0.0) gain += d;
    }
    heap.push({gain, top.candidate, top.sketch_idx,
               static_cast<uint32_t>(selected.size())});
  }
  return selected;
}

Result<std::vector<ElementId>> TryApproxMaxCoverage(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates, size_t k,
    const ApproxCoverOptions& options) {
  if (candidates.empty() || k == 0) return std::vector<ElementId>{};
  std::vector<CoverageSketch> sketches;
  SSUM_ASSIGN_OR_RETURN(
      sketches, TryBuildCoverageSketches(graph, coverage, candidates, options));
  const std::vector<uint32_t> kept = PruneDominatedSketches(sketches);
  return SelectLazyGreedy(graph.size(), sketches, kept, k);
}

std::vector<ElementId> ApproxMaxCoverage(
    const SchemaGraph& graph, const CoverageMatrix& coverage,
    const std::vector<ElementId>& candidates, size_t k,
    const ApproxCoverOptions& options) {
  auto out = TryApproxMaxCoverage(graph, coverage, candidates, k, options);
  SSUM_CHECK(out.ok(), out.status().ToString());
  return std::move(*out);
}

}  // namespace ssum
