#pragma once

#include <vector>

#include "core/coverage.h"
#include "core/summary.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// Summary importance R_SS (Definition 3): the fraction of total element
/// importance captured by the summary's elements (the root, always present
/// in a summary, is included).
double SummaryImportanceRatio(const SchemaGraph& graph,
                              const std::vector<double>& importance,
                              const SchemaSummary& summary);

/// Absolute summary coverage: sum over elements of C(representative -> e),
/// using the summary's group assignment (Definition 4 numerator). The root
/// covers itself with its own cardinality.
double SummaryCoverageValue(const SchemaGraph& graph,
                            const Annotations& annotations,
                            const CoverageMatrix& coverage,
                            const SchemaSummary& summary);

/// Summary coverage C_SS (Definition 4): the ratio of the absolute coverage
/// to the total cardinality of all schema elements.
double SummaryCoverageRatio(const SchemaGraph& graph,
                            const Annotations& annotations,
                            const CoverageMatrix& coverage,
                            const SchemaSummary& summary);

/// Coverage of an arbitrary candidate element set (used by MaxCoverage's
/// exact and greedy searches): every element is assigned to the set member
/// toward which it has the highest affinity, then member->element coverages
/// are summed. The root is excluded (it always represents itself).
double CoverageOfSet(const SchemaGraph& graph,
                     const AffinityMatrix& affinity,
                     const CoverageMatrix& coverage,
                     const std::vector<ElementId>& set);

}  // namespace ssum
