#pragma once

#include <vector>

#include "common/result.h"
#include "core/affinity.h"
#include "core/coverage.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Abstract link of a summary (Definition 2): a consolidated edge between
/// two summary elements standing for one or more original links crossing
/// their groups.
struct AbstractLink {
  ElementId from;
  ElementId to;
  bool has_structural = false;  ///< represents >=1 structural link
  bool has_value = false;       ///< represents >=1 value link (drawn dashed)
  uint32_t source_links = 0;    ///< number of original links consolidated
};

/// Full schema summary (Definition 2, full-summary case): every non-root
/// element is represented by exactly one abstract element; the root
/// represents itself.
///
/// The abstract-element set is stored as the ids of the *representative*
/// original elements ("the abstract element assumes the identity of the
/// representative element", Section 2); the correspondence set M is stored
/// densely as `representative[e]` for every original element e.
struct SchemaSummary {
  const SchemaGraph* schema = nullptr;

  /// Representative ids of the abstract elements, in selection order.
  std::vector<ElementId> abstract_elements;

  /// representative[e] = abstract element representing e; e itself when e is
  /// a representative; root() for the root.
  std::vector<ElementId> representative;

  /// Consolidated links between distinct groups (and the root).
  std::vector<AbstractLink> links;

  size_t size() const { return abstract_elements.size(); }

  /// True when `e` is one of the abstract-element representatives.
  bool IsAbstract(ElementId e) const;

  /// Original elements directly or indirectly represented by `abstract_rep`
  /// (includes the representative itself).
  std::vector<ElementId> Group(ElementId abstract_rep) const;
};

/// Builds the summary induced by a selected element set (Section 4 preamble):
/// assigns every remaining element to the selected element toward which it
/// has the highest affinity (ties broken by higher coverage, then lower id;
/// elements unreachable from every selected element inherit their structural
/// parent's group), then consolidates crossing links into abstract links.
///
/// `selected` must be non-empty, contain no duplicates, and not contain the
/// root.
Result<SchemaSummary> BuildSummary(const SchemaGraph& graph,
                                   const AffinityMatrix& affinity,
                                   const CoverageMatrix& coverage,
                                   std::vector<ElementId> selected);

/// Builds a summary from an externally-computed group assignment (used by
/// the ER-abstraction baselines, which cluster by their own rules rather
/// than by affinity). `representative[e]` must name a member of `selected`
/// for every non-root element (kInvalidElement entries fall back to the
/// structural-parent rule); representatives must map to themselves.
Result<SchemaSummary> BuildSummaryFromAssignment(
    const SchemaGraph& graph, std::vector<ElementId> selected,
    std::vector<ElementId> representative);

/// Verifies the Definition 2 invariants: total representation (every
/// element maps to an abstract element or the root maps to itself), group
/// representatives map to themselves, and every original link is either
/// internal to a group or consolidated by exactly one abstract link.
Status ValidateSummary(const SchemaSummary& summary);

}  // namespace ssum
