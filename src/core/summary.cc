#include "core/summary.h"

#include <algorithm>
#include <map>

namespace ssum {

bool SchemaSummary::IsAbstract(ElementId e) const {
  return std::find(abstract_elements.begin(), abstract_elements.end(), e) !=
         abstract_elements.end();
}

std::vector<ElementId> SchemaSummary::Group(ElementId abstract_rep) const {
  std::vector<ElementId> out;
  for (ElementId e = 0; e < representative.size(); ++e) {
    if (representative[e] == abstract_rep && e != schema->root()) {
      out.push_back(e);
    }
  }
  return out;
}

namespace {

Status CheckSelection(const SchemaGraph& graph,
                      const std::vector<ElementId>& selected) {
  if (selected.empty()) {
    return Status::InvalidArgument("BuildSummary: empty selection");
  }
  std::vector<bool> seen(graph.size(), false);
  for (ElementId e : selected) {
    if (e >= graph.size()) {
      return Status::InvalidArgument("BuildSummary: element out of range");
    }
    if (e == graph.root()) {
      return Status::InvalidArgument("BuildSummary: root cannot be abstract");
    }
    if (seen[e]) {
      return Status::InvalidArgument("BuildSummary: duplicate element '" +
                                     graph.label(e) + "'");
    }
    seen[e] = true;
  }
  return Status::OK();
}

/// Resolves kInvalidElement assignments via the structural-parent rule and
/// consolidates crossing links (shared by both summary builders).
void FinalizeSummary(const SchemaGraph& graph, SchemaSummary* summary) {
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (summary->representative[e] != kInvalidElement) continue;
    ElementId cur = graph.parent(e);
    while (cur != kInvalidElement &&
           (summary->representative[cur] == kInvalidElement ||
            summary->representative[cur] == graph.root())) {
      cur = graph.parent(cur);
    }
    summary->representative[e] =
        (cur == kInvalidElement) ? summary->abstract_elements.front()
                                 : summary->representative[cur];
  }
  std::map<std::pair<ElementId, ElementId>, AbstractLink> merged;
  auto add = [&](ElementId from, ElementId to, bool structural) {
    AbstractLink& l = merged[{from, to}];
    l.from = from;
    l.to = to;
    l.has_structural |= structural;
    l.has_value |= !structural;
    ++l.source_links;
  };
  for (const StructuralLink& s : graph.structural_links()) {
    ElementId a = summary->representative[s.parent];
    ElementId b = summary->representative[s.child];
    if (a != b) add(a, b, /*structural=*/true);
  }
  for (const ValueLink& v : graph.value_links()) {
    ElementId a = summary->representative[v.referrer];
    ElementId b = summary->representative[v.referee];
    if (a != b) add(a, b, /*structural=*/false);
  }
  summary->links.clear();
  summary->links.reserve(merged.size());
  for (auto& [key, link] : merged) summary->links.push_back(link);
}

}  // namespace

Result<SchemaSummary> BuildSummary(const SchemaGraph& graph,
                                   const AffinityMatrix& affinity,
                                   const CoverageMatrix& coverage,
                                   std::vector<ElementId> selected) {
  SSUM_RETURN_NOT_OK(CheckSelection(graph, selected));

  SchemaSummary summary;
  summary.schema = &graph;
  summary.abstract_elements = std::move(selected);
  summary.representative.assign(graph.size(), kInvalidElement);
  summary.representative[graph.root()] = graph.root();
  for (ElementId s : summary.abstract_elements) summary.representative[s] = s;

  // Assign every remaining element to the summary element toward which it
  // has the highest affinity (Section 3.2 / Definition 4 footnote).
  // Affinities below kAffinityFloor carry no semantic signal (they arise
  // from long multi-hop walks through unrelated regions) and are treated as
  // zero, leaving the element to the structural fallbacks below.
  constexpr double kAffinityFloor = 0.01;
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (summary.representative[e] != kInvalidElement) continue;
    ElementId best = kInvalidElement;
    double best_aff = 0.0;
    double best_cov = -1.0;
    for (ElementId s : summary.abstract_elements) {
      const double a = affinity.At(e, s);
      if (a < kAffinityFloor) continue;
      const double c = coverage.At(s, e);
      if (a > best_aff || (a == best_aff && c > best_cov) ||
          (a == best_aff && c == best_cov && best != kInvalidElement &&
           s < best)) {
        best = s;
        best_aff = a;
        best_cov = c;
      }
    }
    summary.representative[e] = best;  // may stay invalid; resolved below
  }
  // Containers with no meaningful affinity anywhere (e.g. top-level
  // organizational elements) belong with their content: assign them to the
  // group holding the bulk (by cardinality, read off the coverage
  // diagonal) of their structural subtree.
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (summary.representative[e] != kInvalidElement) continue;
    std::map<ElementId, double> votes;
    for (ElementId m : graph.Subtree(e)) {
      ElementId rep = summary.representative[m];
      if (rep == kInvalidElement || rep == graph.root()) continue;
      votes[rep] += coverage.At(m, m);  // C(m->m) = Card(m)
    }
    ElementId best = kInvalidElement;
    double best_votes = 0.0;
    for (const auto& [rep, weight] : votes) {
      if (weight > best_votes) {
        best = rep;
        best_votes = weight;
      }
    }
    summary.representative[e] = best;
  }
  // Remaining stragglers (e.g. lookup relations whose every affinity sits
  // under the floor) join the group of their closest assigned neighbor,
  // propagating until a fixpoint (chains: column -> relation -> ...).
  for (bool changed = true; changed;) {
    changed = false;
    for (ElementId e = 0; e < graph.size(); ++e) {
      if (summary.representative[e] != kInvalidElement) continue;
      ElementId best = kInvalidElement;
      double best_w = 0.0;
      for (const Neighbor& nbr : graph.neighbors(e)) {
        ElementId rep = summary.representative[nbr.other];
        if (rep == kInvalidElement || rep == graph.root()) continue;
        double w = affinity.At(e, nbr.other);
        if (w > best_w || (w == best_w && best != kInvalidElement &&
                           rep < best)) {
          best = rep;
          best_w = w;
        }
      }
      if (best != kInvalidElement) {
        summary.representative[e] = best;
        changed = true;
      }
    }
  }
  FinalizeSummary(graph, &summary);
  return summary;
}

Result<SchemaSummary> BuildSummaryFromAssignment(
    const SchemaGraph& graph, std::vector<ElementId> selected,
    std::vector<ElementId> representative) {
  SSUM_RETURN_NOT_OK(CheckSelection(graph, selected));
  if (representative.size() != graph.size()) {
    return Status::InvalidArgument(
        "BuildSummaryFromAssignment: representative map has wrong size");
  }
  std::vector<bool> is_selected(graph.size(), false);
  for (ElementId s : selected) is_selected[s] = true;
  SchemaSummary summary;
  summary.schema = &graph;
  summary.abstract_elements = std::move(selected);
  summary.representative = std::move(representative);
  summary.representative[graph.root()] = graph.root();
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e == graph.root()) continue;
    ElementId r = summary.representative[e];
    if (is_selected[e] && r != e) {
      return Status::InvalidArgument(
          "BuildSummaryFromAssignment: selected element '" + graph.label(e) +
          "' does not map to itself");
    }
    if (r != kInvalidElement && (r >= graph.size() || !is_selected[r])) {
      return Status::InvalidArgument(
          "BuildSummaryFromAssignment: element '" + graph.label(e) +
          "' assigned to a non-selected representative");
    }
  }
  FinalizeSummary(graph, &summary);
  return summary;
}

Status ValidateSummary(const SchemaSummary& summary) {
  const SchemaGraph& graph = *summary.schema;
  if (summary.representative.size() != graph.size()) {
    return Status::FailedPrecondition("representative map has wrong size");
  }
  if (summary.representative[graph.root()] != graph.root()) {
    return Status::FailedPrecondition("root must represent itself");
  }
  std::vector<bool> is_abstract(graph.size(), false);
  for (ElementId s : summary.abstract_elements) {
    if (s >= graph.size() || s == graph.root()) {
      return Status::FailedPrecondition("bad abstract element id");
    }
    if (summary.representative[s] != s) {
      return Status::FailedPrecondition(
          "abstract element '" + graph.label(s) + "' does not map to itself");
    }
    is_abstract[s] = true;
  }
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e == graph.root()) continue;
    ElementId r = summary.representative[e];
    if (r >= graph.size() || !is_abstract[r]) {
      return Status::FailedPrecondition(
          "element '" + graph.label(e) +
          "' is not represented by an abstract element (Definition 2)");
    }
  }
  // Every crossing link must appear in exactly one abstract link; internal
  // links must not.
  std::map<std::pair<ElementId, ElementId>, uint32_t> expected;
  for (const StructuralLink& s : graph.structural_links()) {
    ElementId a = summary.representative[s.parent];
    ElementId b = summary.representative[s.child];
    if (a != b) ++expected[{a, b}];
  }
  for (const ValueLink& v : graph.value_links()) {
    ElementId a = summary.representative[v.referrer];
    ElementId b = summary.representative[v.referee];
    if (a != b) ++expected[{a, b}];
  }
  if (expected.size() != summary.links.size()) {
    return Status::FailedPrecondition("abstract link set mismatch");
  }
  for (const AbstractLink& l : summary.links) {
    auto it = expected.find({l.from, l.to});
    if (it == expected.end() || it->second != l.source_links) {
      return Status::FailedPrecondition("abstract link count mismatch");
    }
  }
  return Status::OK();
}

}  // namespace ssum
