#include "core/summarize.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "core/approx_cover.h"
#include "core/metrics.h"
#include "store/artifact_cache.h"
#include "store/fingerprint.h"

namespace ssum {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kMaxImportance:
      return "MaxImportance";
    case Algorithm::kMaxCoverage:
      return "MaxCoverage";
    case Algorithm::kBalanceSummary:
      return "BalanceSummary";
  }
  return "?";
}

const char* SummaryModeName(SummaryMode m) {
  switch (m) {
    case SummaryMode::kExact:
      return "exact";
    case SummaryMode::kApprox:
      return "approx";
  }
  return "?";
}

SummarizerContext::SummarizerContext(const SchemaGraph& graph,
                                     const Annotations& annotations,
                                     const SummarizeOptions& options)
    : SummarizerContext(graph, annotations, options, nullptr) {}

SummarizerContext::SummarizerContext(const SchemaGraph& graph,
                                     const Annotations& annotations,
                                     const SummarizeOptions& options,
                                     ArtifactCache* cache) {
  Status st = Init(graph, annotations, options, cache);
  SSUM_CHECK(st.ok(), st.ToString());
}

Result<SummarizerContext> SummarizerContext::Make(
    const SchemaGraph& graph, const Annotations& annotations,
    const SummarizeOptions& options, ArtifactCache* cache) {
  SummarizerContext context;
  SSUM_RETURN_NOT_OK(context.Init(graph, annotations, options, cache));
  return context;
}

namespace {

/// Shared content key of the two matrix artifacts (the family tells them
/// apart). MakeIncremental must produce exactly the key Init would, or
/// patched installs would never be hit by later cold runs.
Fingerprint MatrixCacheKey(const SchemaGraph& graph,
                           const Annotations& annotations,
                           const SummarizeOptions& options) {
  return MixFingerprints(
      MixFingerprints(FingerprintSchema(graph),
                      FingerprintAnnotations(annotations)),
      FingerprintMatrixOptions(options.affinity, options.coverage));
}

void InstallMatrix(ArtifactCache* cache, const char* family,
                   const Fingerprint& key, const SquareMatrix& matrix,
                   const char* what) {
  if (cache == nullptr) return;
  if (Status stored = cache->StoreMatrix(family, key, matrix); !stored.ok()) {
    SSUM_LOG(kWarning) << "cache: " << what
                       << " install failed: " << stored.ToString();
  }
}

}  // namespace

Result<SummarizerContext> SummarizerContext::MakeIncremental(
    const SummarizerContext& base, const Annotations& annotations,
    ArtifactCache* cache, const MatrixPatchOptions& patch,
    MatrixPatchStats* affinity_stats, MatrixPatchStats* coverage_stats) {
  const SchemaGraph& graph = base.graph();
  const SummarizeOptions& options = base.options();
  SSUM_RETURN_NOT_OK(
      options.parallel.deadline.Check("incremental summarizer context build"));
  if (annotations.num_elements() != graph.size()) {
    return Status::FailedPrecondition(
        "incremental context: annotations describe " +
        std::to_string(annotations.num_elements()) + " elements, schema has " +
        std::to_string(graph.size()));
  }
  SummarizerContext context;
  context.graph_ = &graph;
  context.annotations_ = &annotations;
  context.options_ = options;
  context.metrics_ = EdgeMetrics::Compute(graph, annotations);
  // Seed set for the frontier closure: every element whose cardinality,
  // edge-affinity row, or neighbor-weight row moved between the versions.
  const std::vector<ElementId> dirty = DirtyMetricElements(
      base.annotations(), base.metrics(), annotations, context.metrics_);
  // Same 3-task shape as Init: importance has no incremental structure (the
  // iteration is global), so it recomputes; the two matrices patch. Each
  // task writes one member, so the concurrent build stays bit-identical.
  const ParallelOptions& parallel = options.parallel;
  Status task_status[3];
  Status st = ParallelFor(
      0, 3, /*grain=*/1,
      [&](size_t task) {
        switch (task) {
          case 0:
            context.importance_ = ComputeImportance(
                graph, annotations, context.metrics_, options.importance);
            break;
          case 1: {
            auto m = AffinityMatrix::TryPatch(
                graph, context.metrics_, base.affinity(), dirty,
                options.affinity, parallel, patch, affinity_stats);
            if (m.ok()) context.affinity_ = std::move(*m);
            task_status[task] = m.status();
            break;
          }
          case 2: {
            auto m = CoverageMatrix::TryPatch(
                graph, annotations, context.metrics_, base.coverage(), dirty,
                options.coverage, parallel, patch, coverage_stats);
            if (m.ok()) context.coverage_ = std::move(*m);
            task_status[task] = m.status();
            break;
          }
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  for (const Status& ts : task_status) SSUM_RETURN_NOT_OK(ts);
  // Patched matrices are bit-identical to computed ones, so installing them
  // under the new content key is indistinguishable from a cold install.
  if (cache != nullptr) {
    const Fingerprint key = MatrixCacheKey(graph, annotations, options);
    InstallMatrix(cache, ArtifactCache::kAffinityFamily, key,
                  context.affinity_.matrix(), "affinity");
    InstallMatrix(cache, ArtifactCache::kCoverageFamily, key,
                  context.coverage_.matrix(), "coverage");
  }
  context.dominance_ = ComputeDominance(graph, annotations, context.coverage_);
  return context;
}

Status SummarizerContext::Init(const SchemaGraph& graph,
                               const Annotations& annotations,
                               const SummarizeOptions& options,
                               ArtifactCache* cache) {
  SSUM_RETURN_NOT_OK(
      options.parallel.deadline.Check("summarizer context build"));
  graph_ = &graph;
  annotations_ = &annotations;
  options_ = options;
  metrics_ = EdgeMetrics::Compute(graph, annotations);
  // Warm-start lookup: both matrix artifacts share one content fingerprint
  // (schema + statistics + the option fields the matrices depend on); the
  // artifact family tells them apart. A hit replaces the all-pairs
  // computation with a decode of the bit-identical persisted matrix.
  bool have_affinity = false;
  bool have_coverage = false;
  Fingerprint key;
  if (cache != nullptr) {
    key = MatrixCacheKey(graph, annotations, options_);
    if (auto m = cache->LoadMatrix(ArtifactCache::kAffinityFamily, key,
                                   graph.size())) {
      affinity_ = AffinityMatrix::FromMatrix(std::move(*m));
      have_affinity = true;
    }
    if (auto m = cache->LoadMatrix(ArtifactCache::kCoverageFamily, key,
                                   graph.size())) {
      coverage_ = CoverageMatrix::FromMatrix(std::move(*m));
      have_coverage = true;
    }
    matrices_from_cache_ = (have_affinity ? 1 : 0) + (have_coverage ? 1 : 0);
  }
  // Importance, affinity, and coverage depend only on EdgeMetrics; with more
  // than one thread they build concurrently, each task writing one member
  // (and its status slot). Each computation is internally deterministic, so
  // the result is bit-identical to the serial order (and to any mix of
  // cached and computed matrices).
  const ParallelOptions& parallel = options_.parallel;
  Status task_status[3];
  Status st = ParallelFor(
      0, 3, /*grain=*/1,
      [&](size_t task) {
        switch (task) {
          case 0:
            importance_ = ComputeImportance(graph, annotations, metrics_,
                                            options_.importance);
            break;
          case 1: {
            if (have_affinity) break;
            auto m = AffinityMatrix::TryCompute(graph, metrics_,
                                                options_.affinity, parallel);
            if (m.ok()) affinity_ = std::move(*m);
            task_status[task] = m.status();
            break;
          }
          case 2: {
            if (have_coverage) break;
            auto m = CoverageMatrix::TryCompute(
                graph, annotations, metrics_, options_.coverage, parallel);
            if (m.ok()) coverage_ = std::move(*m);
            task_status[task] = m.status();
            break;
          }
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  for (const Status& ts : task_status) SSUM_RETURN_NOT_OK(ts);
  if (!have_affinity) {
    InstallMatrix(cache, ArtifactCache::kAffinityFamily, key,
                  affinity_.matrix(), "affinity");
  }
  if (!have_coverage) {
    InstallMatrix(cache, ArtifactCache::kCoverageFamily, key,
                  coverage_.matrix(), "coverage");
  }
  dominance_ = ComputeDominance(graph, annotations, coverage_);
  return Status::OK();
}

namespace {

Status CheckK(const SchemaGraph& graph, size_t k) {
  if (k == 0) return Status::InvalidArgument("summary size must be positive");
  if (k >= graph.size()) {
    return Status::InvalidArgument(
        "summary size " + std::to_string(k) +
        " is not smaller than the schema (" + std::to_string(graph.size()) +
        " elements)");
  }
  return Status::OK();
}

/// Advances a k-subset index vector over n candidates one step in
/// lexicographic order. Returns false at the last combination.
bool AdvanceCombination(std::vector<size_t>& idx, size_t n) {
  const size_t k = idx.size();
  size_t i = k;
  while (i > 0) {
    --i;
    if (idx[i] != i + n - k) {
      ++idx[i];
      for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

/// C(n, k) exactly. Callers only pass arguments whose result is bounded by
/// the enumeration budget, so the partial products (themselves binomials)
/// cannot overflow.
uint64_t Binomial(uint64_t n, uint64_t k) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) result = result * (n - k + i) / i;
  return result;
}

/// Index vector of the k-subset of n candidates with lexicographic rank
/// `rank` (combinatorial number system). This is what lets the exact
/// enumeration shard into contiguous rank ranges.
std::vector<size_t> UnrankCombination(size_t n, size_t k, uint64_t rank) {
  std::vector<size_t> idx(k);
  size_t next = 0;
  for (size_t i = 0; i < k; ++i) {
    size_t c = next;
    for (;;) {
      // Combinations that fix position i to candidate c.
      uint64_t with_c = Binomial(n - 1 - c, k - 1 - i);
      if (rank < with_c) break;
      rank -= with_c;
      ++c;
    }
    idx[i] = c;
    next = c + 1;
  }
  return idx;
}

struct ShardBest {
  double cov = -1.0;
  std::vector<size_t> idx;  // lexicographic tie-break key
};

/// Evaluates `count` combinations in lexicographic order starting at `idx`,
/// keeping the first maximum encountered (the serial rule). The deadline is
/// checked every 4096 combinations — a shard can hold the whole rank space
/// (serial scan), so the per-chunk check in ParallelForChunked is not
/// granular enough on its own. On expiry `*status` is set and the partial
/// best is returned (the caller discards it).
ShardBest ScanCombinations(const SummarizerContext& context,
                           const std::vector<ElementId>& cands,
                           std::vector<size_t> idx, uint64_t count,
                           Status* status) {
  const Deadline& deadline = context.options().parallel.deadline;
  const size_t k = idx.size();
  ShardBest best;
  std::vector<ElementId> cur(k);
  for (uint64_t it = 0; it < count; ++it) {
    if ((it & 0xFFFu) == 0u) {
      *status = deadline.Check("MaxCoverage enumeration");
      if (!status->ok()) return best;
    }
    for (size_t i = 0; i < k; ++i) cur[i] = cands[idx[i]];
    double cov = CoverageOfSet(context.graph(), context.affinity(),
                               context.coverage(), cur);
    if (cov > best.cov) {
      best.cov = cov;
      best.idx = idx;
    }
    if (!AdvanceCombination(idx, cands.size())) break;
  }
  return best;
}

/// Exact enumeration of all `total` k-subsets of `cands`, sharded into
/// contiguous lexicographic rank ranges scanned in parallel. Shard winners
/// are reduced in rank order with ties broken toward the lexicographically
/// smaller index vector — exactly the serial loop's "first maximum wins"
/// rule, so every thread count selects the same set.
Result<std::vector<ElementId>> ExactMaxCoverage(
    const SummarizerContext& context, const std::vector<ElementId>& cands,
    size_t k, uint64_t total) {
  const size_t n = cands.size();
  // Sharding only pays when each shard has its own core: requesting more
  // threads than the hardware offers just adds scheduling overhead on top of
  // an unchanged serial scan (a 0.58x slowdown at 4 requested threads on a
  // 1-core host, BENCH_parallel.json). Clamp the enumeration width to the
  // hardware, scan serially when the rank space is too small to amortize the
  // pool, and cut ~4 shards per thread otherwise. Shard boundaries depend
  // only on the total and the grain, and the reduction is order-independent,
  // so none of this affects the selected set.
  const uint64_t width =
      std::min<uint64_t>(ResolveThreadCount(context.options().parallel.threads),
                         HardwareThreadCount());
  constexpr uint64_t kSerialScanThreshold = 16384;
  const uint64_t grain = (width <= 1 || total < kSerialScanThreshold)
                             ? total
                             : total / (width * 4) + 1;
  std::vector<ShardBest> shards(ParallelNumChunks(0, total, grain));
  std::vector<Status> shard_status(shards.size());
  ParallelOptions shard_options = context.options().parallel;
  shard_options.threads = static_cast<uint32_t>(width);
  Status st = ParallelForChunked(
      0, static_cast<size_t>(total), static_cast<size_t>(grain),
      [&](size_t shard, size_t rank_begin, size_t rank_end) {
        shards[shard] =
            ScanCombinations(context, cands, UnrankCombination(n, k, rank_begin),
                             rank_end - rank_begin, &shard_status[shard]);
      },
      shard_options);
  SSUM_RETURN_NOT_OK(st);
  for (const Status& s : shard_status) SSUM_RETURN_NOT_OK(s);
  ShardBest best;
  for (const ShardBest& s : shards) {
    if (s.idx.empty()) continue;
    if (s.cov > best.cov ||
        (s.cov == best.cov && (best.idx.empty() || s.idx < best.idx))) {
      best = s;
    }
  }
  std::vector<ElementId> out(k);
  for (size_t i = 0; i < k; ++i) out[i] = cands[best.idx[i]];
  return out;
}

Result<std::vector<ElementId>> GreedyMaxCoverage(
    const SummarizerContext& context, const std::vector<ElementId>& cands,
    size_t k) {
  std::vector<ElementId> chosen;
  std::vector<bool> used(context.graph().size(), false);
  chosen.reserve(k);
  std::vector<double> cov(cands.size());
  for (size_t round = 0; round < k; ++round) {
    // Candidate insertions are independent within a round: evaluate them in
    // parallel into per-candidate slots, then reduce in candidate order
    // (identical to the serial loop's first-maximum rule).
    Status st = ParallelFor(
        0, cands.size(), /*grain=*/8,
        [&](size_t i) {
          if (used[cands[i]]) return;
          std::vector<ElementId> trial = chosen;
          trial.push_back(cands[i]);
          cov[i] = CoverageOfSet(context.graph(), context.affinity(),
                                 context.coverage(), trial);
        },
        context.options().parallel);
    SSUM_RETURN_NOT_OK(st);
    ElementId best = kInvalidElement;
    double best_cov = -1.0;
    for (size_t i = 0; i < cands.size(); ++i) {
      if (used[cands[i]]) continue;
      if (cov[i] > best_cov) {
        best_cov = cov[i];
        best = cands[i];
      }
    }
    if (best == kInvalidElement) break;
    chosen.push_back(best);
    used[best] = true;
  }
  return chosen;
}

/// C(n, k) with saturation.
uint64_t BinomialCapped(uint64_t n, uint64_t k, uint64_t cap) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, with overflow guard against the cap.
    if (result > cap) return cap + 1;
    result = result * (n - k + i) / i;
  }
  return std::min(result, cap + 1);
}

}  // namespace

Result<std::vector<ElementId>> SelectMaxImportance(
    const SummarizerContext& context, size_t k) {
  SSUM_RETURN_NOT_OK(CheckK(context.graph(), k));
  std::vector<ElementId> ranked = context.importance().Ranked();
  std::vector<ElementId> out;
  out.reserve(k);
  for (ElementId e : ranked) {
    if (e == context.graph().root()) continue;
    out.push_back(e);
    if (out.size() == k) break;
  }
  if (out.size() < k) {
    return Status::Internal("fewer elements than requested summary size");
  }
  return out;
}

Result<std::vector<ElementId>> SelectMaxCoverage(
    const SummarizerContext& context, size_t k) {
  SSUM_RETURN_NOT_OK(CheckK(context.graph(), k));
  const std::vector<ElementId>& cands = context.dominance().candidates;
  if (cands.size() <= k) {
    // Degenerate: everything non-dominated fits; top up with dominated
    // elements by coverage-of-self to reach k.
    std::vector<ElementId> out = cands;
    for (ElementId e = 0; e < context.graph().size() && out.size() < k; ++e) {
      if (e == context.graph().root()) continue;
      if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
    }
    return out;
  }
  if (context.options().mode == SummaryMode::kApprox) {
    ApproxCoverOptions approx;
    approx.epsilon = context.options().approx_epsilon;
    approx.parallel = context.options().parallel;
    std::vector<ElementId> out;
    SSUM_ASSIGN_OR_RETURN(out, TryApproxMaxCoverage(context.graph(),
                                                    context.coverage(), cands,
                                                    k, approx));
    // The sketches can run out of positive marginal gain before k; top up
    // the same way the degenerate branch does.
    for (ElementId e = 0; e < context.graph().size() && out.size() < k; ++e) {
      if (e == context.graph().root()) continue;
      if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
    }
    return out;
  }
  const uint64_t budget = context.options().max_coverage_enumeration_budget;
  uint64_t sets = BinomialCapped(cands.size(), k, budget);
  if (sets <= budget) {
    return ExactMaxCoverage(context, cands, k, sets);
  }
  SSUM_LOG(kInfo) << "MaxCoverage: C(" << cands.size() << "," << k
                  << ") exceeds enumeration budget; using greedy search";
  return GreedyMaxCoverage(context, cands, k);
}

Result<std::vector<ElementId>> SelectBalanced(const SummarizerContext& context,
                                              size_t k) {
  SSUM_RETURN_NOT_OK(CheckK(context.graph(), k));
  const SchemaGraph& graph = context.graph();
  const auto& importance = context.importance().importance;

  // Dominance lookup in both directions.
  const auto& pairs = context.dominance().pairs;
  auto dominates = [&](ElementId a, ElementId b) {
    for (const DominancePair& p : pairs) {
      if (p.dominator == a && p.dominated == b) return true;
    }
    return false;
  };

  // Max-heap over importance (ties by id for determinism).
  auto cmp = [&](ElementId a, ElementId b) {
    if (importance[a] != importance[b]) return importance[a] < importance[b];
    return a > b;
  };
  std::priority_queue<ElementId, std::vector<ElementId>, decltype(cmp)> heap(
      cmp);
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e != graph.root()) heap.push(e);
  }

  std::vector<ElementId> selected;
  // skipped_due_to[e'] = elements skipped because e' dominated them.
  std::vector<std::vector<ElementId>> skipped_due_to(graph.size());
  std::vector<bool> in_selected(graph.size(), false);
  size_t safety = graph.size() * graph.size() + 16;
  while (!heap.empty() && selected.size() < k) {
    SSUM_CHECK(safety-- > 0, "BalanceSummary failed to terminate");
    ElementId e = heap.top();
    heap.pop();
    if (in_selected[e]) continue;
    // Figure 7 line 6: skip elements dominated by a selected element.
    ElementId dominator_in_E = kInvalidElement;
    for (ElementId s : selected) {
      if (dominates(s, e)) {
        dominator_in_E = s;
        break;
      }
    }
    if (dominator_in_E != kInvalidElement) {
      skipped_due_to[dominator_in_E].push_back(e);
      continue;
    }
    // Figure 7 line 8: e may dominate already-selected elements; evict them
    // and resurrect everything they had suppressed.
    std::vector<ElementId> evicted;
    for (ElementId s : selected) {
      if (dominates(e, s)) evicted.push_back(s);
    }
    for (ElementId s : evicted) {
      selected.erase(std::find(selected.begin(), selected.end(), s));
      in_selected[s] = false;
      for (ElementId back : skipped_due_to[s]) heap.push(back);
      skipped_due_to[s].clear();
      heap.push(s);  // the evicted element may still qualify later
    }
    selected.push_back(e);
    in_selected[e] = true;
  }
  if (selected.size() < k) {
    // Requested size exceeds the number of mutually non-dominated elements
    // (possible for very large summaries): top up with the remaining
    // elements in importance order — Figure 7 leaves this case open, and
    // including dominated elements is the only way to reach the size.
    for (ElementId e : context.importance().Ranked()) {
      if (selected.size() == k) break;
      if (e == graph.root() || in_selected[e]) continue;
      selected.push_back(e);
      in_selected[e] = true;
    }
  }
  if (selected.size() < k) {
    return Status::Internal(
        "BalanceSummary could not fill the requested size");
  }
  return selected;
}

Result<SchemaSummary> Summarize(const SummarizerContext& context, size_t k,
                                Algorithm algorithm) {
  SSUM_RETURN_NOT_OK(context.options().parallel.deadline.Check("summarize"));
  std::vector<ElementId> selected;
  switch (algorithm) {
    case Algorithm::kMaxImportance:
      SSUM_ASSIGN_OR_RETURN(selected, SelectMaxImportance(context, k));
      break;
    case Algorithm::kMaxCoverage:
      SSUM_ASSIGN_OR_RETURN(selected, SelectMaxCoverage(context, k));
      break;
    case Algorithm::kBalanceSummary:
      SSUM_ASSIGN_OR_RETURN(selected, SelectBalanced(context, k));
      break;
  }
  return BuildSummary(context.graph(), context.affinity(), context.coverage(),
                      std::move(selected));
}

Result<SchemaSummary> Summarize(const SchemaGraph& graph,
                                const Annotations& annotations, size_t k,
                                Algorithm algorithm,
                                const SummarizeOptions& options) {
  auto context = SummarizerContext::Make(graph, annotations, options);
  SSUM_RETURN_NOT_OK(context.status());
  return Summarize(*context, k, algorithm);
}

Fingerprint SummaryFingerprint(const SchemaGraph& graph,
                               const Annotations& annotations,
                               const SummarizeOptions& options, size_t k,
                               Algorithm algorithm) {
  Fnv1a64 h;
  h.Update("ssum-summary-fp:");
  h.UpdateU64(static_cast<uint64_t>(k));
  h.UpdateU64(static_cast<uint64_t>(algorithm));
  h.UpdateDouble(options.importance.neighborhood_factor);
  h.UpdateDouble(options.importance.convergence_threshold);
  h.UpdateU64(static_cast<uint64_t>(options.importance.max_iterations));
  h.UpdateU64(options.importance.cardinality_init ? 1 : 0);
  h.UpdateU64(options.max_coverage_enumeration_budget);
  // Mode and epsilon keep approximate and exact summaries of the same schema
  // apart in the ArtifactCache (hashed unconditionally; pre-existing entries
  // just miss once).
  h.UpdateU64(static_cast<uint64_t>(options.mode));
  h.UpdateDouble(options.approx_epsilon);
  return MixFingerprints(
      MixFingerprints(FingerprintSchema(graph),
                      FingerprintAnnotations(annotations)),
      MixFingerprints(
          FingerprintMatrixOptions(options.affinity, options.coverage),
          Fingerprint{h.Digest()}));
}

Result<SchemaSummary> Summarize(const SchemaGraph& graph,
                                const Annotations& annotations, size_t k,
                                Algorithm algorithm,
                                const SummarizeOptions& options,
                                ArtifactCache* cache) {
  // Three cache layers, each a strict subset of the work below it: a summary
  // hit skips everything; otherwise the context constructor tries the two
  // matrices; whatever was computed is installed for the next invocation.
  SSUM_RETURN_NOT_OK(options.parallel.deadline.Check("summarize"));
  if (cache == nullptr) return Summarize(graph, annotations, k, algorithm, options);
  const Fingerprint key =
      SummaryFingerprint(graph, annotations, options, k, algorithm);
  if (auto hit = cache->LoadSummary(graph, key)) return std::move(*hit);
  auto context = SummarizerContext::Make(graph, annotations, options, cache);
  SSUM_RETURN_NOT_OK(context.status());
  SchemaSummary summary;
  SSUM_ASSIGN_OR_RETURN(summary, Summarize(*context, k, algorithm));
  if (Status s = cache->StoreSummary(key, summary); !s.ok()) {
    SSUM_LOG(kWarning) << "summary install failed: " << s.ToString();
  }
  return summary;
}

}  // namespace ssum
