#include "core/summarize.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"
#include "core/metrics.h"

namespace ssum {

const char* AlgorithmName(Algorithm a) {
  switch (a) {
    case Algorithm::kMaxImportance:
      return "MaxImportance";
    case Algorithm::kMaxCoverage:
      return "MaxCoverage";
    case Algorithm::kBalanceSummary:
      return "BalanceSummary";
  }
  return "?";
}

SummarizerContext::SummarizerContext(const SchemaGraph& graph,
                                     const Annotations& annotations,
                                     const SummarizeOptions& options)
    : graph_(&graph),
      annotations_(&annotations),
      options_(options),
      metrics_(EdgeMetrics::Compute(graph, annotations)),
      importance_(
          ComputeImportance(graph, annotations, metrics_, options.importance)),
      affinity_(AffinityMatrix::Compute(graph, metrics_, options.affinity)),
      coverage_(CoverageMatrix::Compute(graph, annotations, metrics_,
                                        options.coverage)),
      dominance_(ComputeDominance(graph, annotations, coverage_)) {}

namespace {

Status CheckK(const SchemaGraph& graph, size_t k) {
  if (k == 0) return Status::InvalidArgument("summary size must be positive");
  if (k >= graph.size()) {
    return Status::InvalidArgument(
        "summary size " + std::to_string(k) +
        " is not smaller than the schema (" + std::to_string(graph.size()) +
        " elements)");
  }
  return Status::OK();
}

/// Enumerates k-subsets of `candidates` via lexicographic index vectors,
/// tracking the best set under CoverageOfSet.
std::vector<ElementId> ExactMaxCoverage(const SummarizerContext& context,
                                        const std::vector<ElementId>& cands,
                                        size_t k) {
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  std::vector<ElementId> best_set;
  double best_cov = -1.0;
  std::vector<ElementId> cur(k);
  const size_t n = cands.size();
  for (;;) {
    for (size_t i = 0; i < k; ++i) cur[i] = cands[idx[i]];
    double cov = CoverageOfSet(context.graph(), context.affinity(),
                               context.coverage(), cur);
    if (cov > best_cov) {
      best_cov = cov;
      best_set = cur;
    }
    // Advance the combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return best_set;
    }
    if (idx[0] > n - k) break;
  }
  return best_set;
}

std::vector<ElementId> GreedyMaxCoverage(const SummarizerContext& context,
                                         const std::vector<ElementId>& cands,
                                         size_t k) {
  std::vector<ElementId> chosen;
  std::vector<bool> used(context.graph().size(), false);
  chosen.reserve(k);
  for (size_t round = 0; round < k; ++round) {
    ElementId best = kInvalidElement;
    double best_cov = -1.0;
    for (ElementId c : cands) {
      if (used[c]) continue;
      chosen.push_back(c);
      double cov = CoverageOfSet(context.graph(), context.affinity(),
                                 context.coverage(), chosen);
      chosen.pop_back();
      if (cov > best_cov) {
        best_cov = cov;
        best = c;
      }
    }
    if (best == kInvalidElement) break;
    chosen.push_back(best);
    used[best] = true;
  }
  return chosen;
}

/// C(n, k) with saturation.
uint64_t BinomialCapped(uint64_t n, uint64_t k, uint64_t cap) {
  if (k > n) return 0;
  k = std::min(k, n - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    // result *= (n - k + i) / i, with overflow guard against the cap.
    if (result > cap) return cap + 1;
    result = result * (n - k + i) / i;
  }
  return std::min(result, cap + 1);
}

}  // namespace

Result<std::vector<ElementId>> SelectMaxImportance(
    const SummarizerContext& context, size_t k) {
  SSUM_RETURN_NOT_OK(CheckK(context.graph(), k));
  std::vector<ElementId> ranked = context.importance().Ranked();
  std::vector<ElementId> out;
  out.reserve(k);
  for (ElementId e : ranked) {
    if (e == context.graph().root()) continue;
    out.push_back(e);
    if (out.size() == k) break;
  }
  if (out.size() < k) {
    return Status::Internal("fewer elements than requested summary size");
  }
  return out;
}

Result<std::vector<ElementId>> SelectMaxCoverage(
    const SummarizerContext& context, size_t k) {
  SSUM_RETURN_NOT_OK(CheckK(context.graph(), k));
  const std::vector<ElementId>& cands = context.dominance().candidates;
  if (cands.size() <= k) {
    // Degenerate: everything non-dominated fits; top up with dominated
    // elements by coverage-of-self to reach k.
    std::vector<ElementId> out = cands;
    for (ElementId e = 0; e < context.graph().size() && out.size() < k; ++e) {
      if (e == context.graph().root()) continue;
      if (std::find(out.begin(), out.end(), e) == out.end()) out.push_back(e);
    }
    return out;
  }
  const uint64_t budget = context.options().max_coverage_enumeration_budget;
  uint64_t sets = BinomialCapped(cands.size(), k, budget);
  if (sets <= budget) {
    return ExactMaxCoverage(context, cands, k);
  }
  SSUM_LOG(kInfo) << "MaxCoverage: C(" << cands.size() << "," << k
                  << ") exceeds enumeration budget; using greedy search";
  return GreedyMaxCoverage(context, cands, k);
}

Result<std::vector<ElementId>> SelectBalanced(const SummarizerContext& context,
                                              size_t k) {
  SSUM_RETURN_NOT_OK(CheckK(context.graph(), k));
  const SchemaGraph& graph = context.graph();
  const auto& importance = context.importance().importance;

  // Dominance lookup in both directions.
  const auto& pairs = context.dominance().pairs;
  auto dominates = [&](ElementId a, ElementId b) {
    for (const DominancePair& p : pairs) {
      if (p.dominator == a && p.dominated == b) return true;
    }
    return false;
  };

  // Max-heap over importance (ties by id for determinism).
  auto cmp = [&](ElementId a, ElementId b) {
    if (importance[a] != importance[b]) return importance[a] < importance[b];
    return a > b;
  };
  std::priority_queue<ElementId, std::vector<ElementId>, decltype(cmp)> heap(
      cmp);
  for (ElementId e = 0; e < graph.size(); ++e) {
    if (e != graph.root()) heap.push(e);
  }

  std::vector<ElementId> selected;
  // skipped_due_to[e'] = elements skipped because e' dominated them.
  std::vector<std::vector<ElementId>> skipped_due_to(graph.size());
  std::vector<bool> in_selected(graph.size(), false);
  size_t safety = graph.size() * graph.size() + 16;
  while (!heap.empty() && selected.size() < k) {
    SSUM_CHECK(safety-- > 0, "BalanceSummary failed to terminate");
    ElementId e = heap.top();
    heap.pop();
    if (in_selected[e]) continue;
    // Figure 7 line 6: skip elements dominated by a selected element.
    ElementId dominator_in_E = kInvalidElement;
    for (ElementId s : selected) {
      if (dominates(s, e)) {
        dominator_in_E = s;
        break;
      }
    }
    if (dominator_in_E != kInvalidElement) {
      skipped_due_to[dominator_in_E].push_back(e);
      continue;
    }
    // Figure 7 line 8: e may dominate already-selected elements; evict them
    // and resurrect everything they had suppressed.
    std::vector<ElementId> evicted;
    for (ElementId s : selected) {
      if (dominates(e, s)) evicted.push_back(s);
    }
    for (ElementId s : evicted) {
      selected.erase(std::find(selected.begin(), selected.end(), s));
      in_selected[s] = false;
      for (ElementId back : skipped_due_to[s]) heap.push(back);
      skipped_due_to[s].clear();
      heap.push(s);  // the evicted element may still qualify later
    }
    selected.push_back(e);
    in_selected[e] = true;
  }
  if (selected.size() < k) {
    // Requested size exceeds the number of mutually non-dominated elements
    // (possible for very large summaries): top up with the remaining
    // elements in importance order — Figure 7 leaves this case open, and
    // including dominated elements is the only way to reach the size.
    for (ElementId e : context.importance().Ranked()) {
      if (selected.size() == k) break;
      if (e == graph.root() || in_selected[e]) continue;
      selected.push_back(e);
      in_selected[e] = true;
    }
  }
  if (selected.size() < k) {
    return Status::Internal(
        "BalanceSummary could not fill the requested size");
  }
  return selected;
}

Result<SchemaSummary> Summarize(const SummarizerContext& context, size_t k,
                                Algorithm algorithm) {
  std::vector<ElementId> selected;
  switch (algorithm) {
    case Algorithm::kMaxImportance:
      SSUM_ASSIGN_OR_RETURN(selected, SelectMaxImportance(context, k));
      break;
    case Algorithm::kMaxCoverage:
      SSUM_ASSIGN_OR_RETURN(selected, SelectMaxCoverage(context, k));
      break;
    case Algorithm::kBalanceSummary:
      SSUM_ASSIGN_OR_RETURN(selected, SelectBalanced(context, k));
      break;
  }
  return BuildSummary(context.graph(), context.affinity(), context.coverage(),
                      std::move(selected));
}

Result<SchemaSummary> Summarize(const SchemaGraph& graph,
                                const Annotations& annotations, size_t k,
                                Algorithm algorithm,
                                const SummarizeOptions& options) {
  SummarizerContext context(graph, annotations, options);
  return Summarize(context, k, algorithm);
}

}  // namespace ssum
