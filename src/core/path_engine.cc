#include "core/path_engine.h"

#include <algorithm>

#include "common/logging.h"

namespace ssum {

std::vector<double> MaxProductWalks(const SchemaGraph& graph,
                                    const EdgeFactors& factors,
                                    ElementId source,
                                    const WalkSearchOptions& options) {
  const size_t n = graph.size();
  SSUM_CHECK(source < n, "MaxProductWalks: source out of range");
  SSUM_CHECK(factors.size() == n, "MaxProductWalks: factor shape mismatch");
  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> best(n, 0.0);
  cur[source] = 1.0;
  // Track the set of reachable-so-far elements to skip dead rows early on.
  for (uint32_t k = 1; k <= options.max_steps; ++k) {
    std::fill(next.begin(), next.end(), 0.0);
    bool any = false;
    for (ElementId u = 0; u < n; ++u) {
      const double base = cur[u];
      if (base <= 0.0) continue;
      const auto& nbrs = graph.neighbors(u);
      const auto& f = factors[u];
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const double v = base * f[i];
        if (v > next[nbrs[i].other]) {
          next[nbrs[i].other] = v;
          any = true;
        }
      }
    }
    const double scale = options.divide_by_steps ? 1.0 / k : 1.0;
    for (size_t t = 0; t < n; ++t) {
      const double scored = next[t] * scale;
      if (scored > best[t]) best[t] = scored;
    }
    if (!any) break;  // nothing reachable beyond k-1 steps
    cur.swap(next);
  }
  return best;
}

}  // namespace ssum
