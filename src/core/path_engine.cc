#include "core/path_engine.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace ssum {

std::vector<double> MaxProductWalks(const SchemaGraph& graph,
                                    const EdgeFactors& factors,
                                    ElementId source,
                                    const WalkSearchOptions& options) {
  const size_t n = graph.size();
  SSUM_CHECK(source < n, "MaxProductWalks: source out of range");
  SSUM_CHECK(factors.size() == n, "MaxProductWalks: factor shape mismatch");
  std::vector<double> cur(n, 0.0);
  std::vector<double> next(n, 0.0);
  std::vector<double> best(n, 0.0);
  cur[source] = 1.0;
  // Track the set of reachable-so-far elements to skip dead rows early on.
  for (uint32_t k = 1; k <= options.max_steps; ++k) {
    std::fill(next.begin(), next.end(), 0.0);
    bool any = false;
    for (ElementId u = 0; u < n; ++u) {
      const double base = cur[u];
      if (base <= 0.0) continue;
      const auto& nbrs = graph.neighbors(u);
      const auto& f = factors[u];
      for (size_t i = 0; i < nbrs.size(); ++i) {
        const double v = base * f[i];
        if (v > next[nbrs[i].other]) {
          next[nbrs[i].other] = v;
          any = true;
        }
      }
    }
    const double scale = options.divide_by_steps ? 1.0 / k : 1.0;
    for (size_t t = 0; t < n; ++t) {
      const double scored = next[t] * scale;
      if (scored > best[t]) best[t] = scored;
    }
    if (!any) break;  // nothing reachable beyond k-1 steps
    cur.swap(next);
  }
  return best;
}

WalkPlan WalkPlan::Build(const SchemaGraph& graph, const EdgeFactors& factors) {
  const size_t n = graph.size();
  SSUM_CHECK(factors.size() == n, "WalkPlan: factor shape mismatch");
  WalkPlan plan;
  plan.num_elements = n;
  plan.row_offsets.resize(n + 1);
  // Zero-factor entries are dropped from the snapshot: a zero product can
  // never win a max against best/next values that are always >= +0, so the
  // pruned plan walks to bit-identical results while skipping the dead
  // edges entirely (affinity factor sets are zero-heavy).
  size_t nnz = 0;
  for (ElementId u = 0; u < n; ++u) {
    const auto& f = factors[u];
    SSUM_CHECK(f.size() == graph.neighbors(u).size(),
               "WalkPlan: factor row shape mismatch");
    plan.row_offsets[u] = static_cast<uint32_t>(nnz);
    for (double v : f) nnz += v != 0.0;
  }
  SSUM_CHECK(nnz <= std::numeric_limits<uint32_t>::max(),
             "WalkPlan: adjacency too large for 32-bit offsets");
  plan.row_offsets[n] = static_cast<uint32_t>(nnz);
  plan.neighbor_ids.resize(nnz);
  plan.edge_factors.resize(nnz);
  for (ElementId u = 0; u < n; ++u) {
    const auto& nbrs = graph.neighbors(u);
    const auto& f = factors[u];
    uint32_t idx = plan.row_offsets[u];
    for (size_t i = 0; i < nbrs.size(); ++i) {
      if (f[i] == 0.0) continue;
      SSUM_CHECK(nbrs[i].other != u, "WalkPlan: self-edge");
      plan.neighbor_ids[idx] = nbrs[i].other;
      plan.edge_factors[idx] = f[i];
      ++idx;
    }
  }
  return plan;
}

namespace {

/// Lane-interleaved scratch reused across every lane block of one batch.
/// `cur`/`next` are never bulk-cleared: `next` lanes are fully written on
/// first touch each step (stamp-guarded), and `cur` is only ever read at
/// frontier vertices, which are always freshly written. Only `best` needs a
/// per-block zero fill. `stamp` uses monotonically increasing epochs so it
/// survives block reuse without a reset pass.
template <size_t kB>
struct BatchScratch {
  AlignedVector<double> cur;
  AlignedVector<double> next;
  AlignedVector<double> best;
  std::vector<uint64_t> stamp;
  std::vector<ElementId> frontier;
  std::vector<ElementId> touched;
  uint64_t epoch = 0;

  explicit BatchScratch(size_t n)
      : cur(n * kB), next(n * kB), best(n * kB), stamp(n, 0) {
    frontier.reserve(n);
    touched.reserve(n);
  }
};

inline double* AssumeLaneAligned(double* p) {
  // Every vertex's lane block is kB doubles = one or two whole 64-byte
  // lines into a 64-byte-aligned array (kB * 8 is a multiple of 64 for
  // both supported widths).
  return static_cast<double*>(__builtin_assume_aligned(p, 64));
}

/// One lane block: up to kB sources relaxed in lockstep. State arrays are
/// lane-interleaved (entry v*kB + lane) so each relaxation touches kB
/// contiguous doubles — whole cache lines, and a trivially vectorizable
/// multiply-max loop.
template <size_t kB>
void RunLaneBlock(const WalkPlan& plan, const ElementId* sources, size_t count,
                  const WalkSearchOptions& options, BatchScratch<kB>& scratch,
                  const std::span<double>* out_rows) {
  const size_t n = plan.num_elements;
  // Epoch layout per block: seed_epoch, then one epoch per step.
  const uint64_t seed_epoch = scratch.epoch + 1;
  scratch.epoch = seed_epoch + options.max_steps + 1;
  uint64_t* const stamp = scratch.stamp.data();
  double* const cur0 = scratch.cur.data();
  double* const next0 = scratch.next.data();
  double* const best0 = scratch.best.data();
  std::fill(scratch.best.begin(), scratch.best.end(), 0.0);
  scratch.frontier.clear();

  for (size_t lane = 0; lane < count; ++lane) {
    const ElementId s = sources[lane];
    if (stamp[s] != seed_epoch) {
      stamp[s] = seed_epoch;
      scratch.frontier.push_back(s);
      double* const cv = AssumeLaneAligned(cur0 + s * kB);
      for (size_t l = 0; l < kB; ++l) cv[l] = 0.0;
    }
    cur0[s * kB + lane] = 1.0;
  }

  std::vector<ElementId>& frontier = scratch.frontier;
  std::vector<ElementId>& touched = scratch.touched;
  double* cur = cur0;
  double* next = next0;
  for (uint32_t k = 1; k <= options.max_steps && !frontier.empty(); ++k) {
    const uint64_t step_epoch = seed_epoch + k;
    touched.clear();
    for (const ElementId u : frontier) {
      const double* __restrict base = AssumeLaneAligned(cur + u * kB);
      const uint32_t row_end = plan.row_offsets[u + 1];
      for (uint32_t idx = plan.row_offsets[u]; idx < row_end; ++idx) {
        const ElementId v = plan.neighbor_ids[idx];
        const double f = plan.edge_factors[idx];
        double* __restrict nv = AssumeLaneAligned(next + v * kB);
        if (stamp[v] != step_epoch) {
          stamp[v] = step_epoch;
          touched.push_back(v);
          for (size_t l = 0; l < kB; ++l) nv[l] = base[l] * f;
        } else {
          for (size_t l = 0; l < kB; ++l) nv[l] = std::max(nv[l], base[l] * f);
        }
      }
    }
    // Fold the k-step values into best and rebuild the frontier with only
    // the vertices some lane reached with a positive product — the batched
    // equivalent of the scalar kernel's `base <= 0` row skip and its `any`
    // early exit (an empty frontier ends the loop). All-zero lanes can
    // neither improve best nor seed a positive product downstream, so
    // dropping them never changes a result bit. std::max keeps the
    // incumbent on ties, exactly like the scalar kernel's strict `>`
    // update, so the fold is branch-free.
    const double scale = options.divide_by_steps ? 1.0 / k : 1.0;
    frontier.clear();
    for (const ElementId v : touched) {
      const double* __restrict nv = AssumeLaneAligned(next + v * kB);
      double vtop = 0.0;
      for (size_t l = 0; l < kB; ++l) vtop = std::max(vtop, nv[l]);
      if (vtop > 0.0) {
        double* __restrict bv = AssumeLaneAligned(best0 + v * kB);
        for (size_t l = 0; l < kB; ++l) bv[l] = std::max(bv[l], nv[l] * scale);
        frontier.push_back(v);
      }
    }
    std::swap(cur, next);
  }

  for (size_t lane = 0; lane < count; ++lane) {
    double* out = out_rows[lane].data();
    for (size_t t = 0; t < n; ++t) out[t] = best0[t * kB + lane];
  }
}

}  // namespace

template <size_t kLanes>
void MaxProductWalksBatchW(const WalkPlan& plan,
                           std::span<const ElementId> sources,
                           const WalkSearchOptions& options,
                           std::span<const std::span<double>> out_rows) {
  const size_t n = plan.num_elements;
  SSUM_CHECK(sources.size() == out_rows.size(),
             "MaxProductWalksBatch: sources/out_rows size mismatch");
  for (size_t i = 0; i < sources.size(); ++i) {
    SSUM_CHECK(sources[i] < n, "MaxProductWalksBatch: source out of range");
    SSUM_CHECK(out_rows[i].size() == n,
               "MaxProductWalksBatch: output row shape mismatch");
  }
  BatchScratch<kLanes> scratch(n);
  for (size_t b = 0; b < sources.size(); b += kLanes) {
    const size_t count = std::min(kLanes, sources.size() - b);
    RunLaneBlock<kLanes>(plan, sources.data() + b, count, options, scratch,
                         out_rows.data() + b);
  }
}

template void MaxProductWalksBatchW<8>(const WalkPlan&,
                                       std::span<const ElementId>,
                                       const WalkSearchOptions&,
                                       std::span<const std::span<double>>);
template void MaxProductWalksBatchW<16>(const WalkPlan&,
                                        std::span<const ElementId>,
                                        const WalkSearchOptions&,
                                        std::span<const std::span<double>>);

void MaxProductWalksBatch(const WalkPlan& plan,
                          std::span<const ElementId> sources,
                          const WalkSearchOptions& options,
                          std::span<const std::span<double>> out_rows) {
  MaxProductWalksBatchW<kWalkLaneWidth>(plan, sources, options, out_rows);
}

std::vector<uint8_t> DirtyFrontierClosure(const SchemaGraph& graph,
                                          std::span<const ElementId> dirty,
                                          uint32_t max_steps) {
  const size_t n = graph.size();
  std::vector<uint8_t> mask(n, 0);
  std::vector<ElementId> frontier;
  for (ElementId e : dirty) {
    SSUM_CHECK(e < n, "DirtyFrontierClosure: dirty element out of range");
    if (!mask[e]) {
      mask[e] = 1;
      frontier.push_back(e);
    }
  }
  std::vector<ElementId> next_frontier;
  for (uint32_t hop = 0; hop < max_steps && !frontier.empty(); ++hop) {
    next_frontier.clear();
    for (ElementId u : frontier) {
      for (const Neighbor& nbr : graph.neighbors(u)) {
        if (!mask[nbr.other]) {
          mask[nbr.other] = 1;
          next_frontier.push_back(nbr.other);
        }
      }
    }
    frontier.swap(next_frontier);
  }
  return mask;
}

}  // namespace ssum
