#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "core/affinity.h"
#include "core/coverage.h"
#include "core/dominance.h"
#include "core/importance.h"
#include "core/summary.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "store/fingerprint.h"

namespace ssum {

class ArtifactCache;  // store/artifact_cache.h — warm-start snapshot store

/// Selection algorithm (paper Section 4).
enum class Algorithm : unsigned char {
  kMaxImportance = 0,  ///< Figure 4
  kMaxCoverage,        ///< Figure 6
  kBalanceSummary,     ///< Figure 7
};

const char* AlgorithmName(Algorithm a);

/// MaxCoverage selection strategy: the paper-exact Figure 6 search (with its
/// budgeted greedy fallback) or the approximate lazy-greedy engine over
/// sketched coverage rows (core/approx_cover.h). Approximate selection is
/// near-linear and reaches schema sizes where the exact path is infeasible;
/// bench/approx_scaling gates its quality at >= 0.95x exact.
enum class SummaryMode : unsigned char {
  kExact = 0,
  kApprox,
};

const char* SummaryModeName(SummaryMode m);

struct SummarizeOptions {
  ImportanceOptions importance;
  AffinityOptions affinity;
  CoverageOptions coverage;
  /// MaxCoverage enumerates all C(|CS|, K) candidate sets exactly when the
  /// count is at most this budget; otherwise it falls back to a greedy
  /// marginal-coverage maximizer (DESIGN.md interpretation notes). The
  /// enumeration is sharded across threads (rank-range decomposition with a
  /// deterministic reduction), which is what makes a budget this size
  /// practical; it was 20000 when the scan was serial.
  uint64_t max_coverage_enumeration_budget = 200000;
  /// MaxCoverage strategy; kApprox routes SelectMaxCoverage through the
  /// sketched lazy-greedy engine instead of the enumeration above.
  SummaryMode mode = SummaryMode::kExact;
  /// Sketch-truncation knob for kApprox (see ApproxCoverOptions::epsilon):
  /// each candidate keeps the dominant coverage entries holding at least
  /// (1 - epsilon) of its row mass. Ignored in kExact mode.
  double approx_epsilon = 0.1;
  /// Thread count for the parallel kernels (matrix construction, MaxCoverage
  /// enumeration, concurrent context build). Results are bit-identical for
  /// every thread count; see docs/performance.md.
  ParallelOptions parallel;
};

/// Shared per-schema computation cache. All algorithm entry points accept a
/// prepared context so that repeated summarizations (size sweeps, parameter
/// studies) reuse the expensive matrices. With more than one thread the
/// importance iteration and the two all-pairs matrices are computed
/// concurrently once EdgeMetrics is ready (they only depend on it);
/// dominance follows after coverage.
class SummarizerContext {
 public:
  SummarizerContext(const SchemaGraph& graph, const Annotations& annotations,
                    const SummarizeOptions& options = {});

  /// Warm-start construction: consults `cache` (may be null) for the two
  /// all-pairs matrices — keyed by the schema, statistics, and
  /// matrix-relevant option fingerprints — before computing, and installs
  /// whatever it had to compute. Cache failures of any kind only cost the
  /// recompute; the result is bit-identical with and without a cache.
  SummarizerContext(const SchemaGraph& graph, const Annotations& annotations,
                    const SummarizeOptions& options, ArtifactCache* cache);

  /// Construction that propagates instead of aborting: an expired
  /// `options.parallel.deadline` surfaces as kDeadlineExceeded (checked on
  /// entry and between matrix row blocks). The legacy constructors wrap this
  /// and abort, matching their historical contract. `graph` and
  /// `annotations` must outlive the context.
  static Result<SummarizerContext> Make(const SchemaGraph& graph,
                                        const Annotations& annotations,
                                        const SummarizeOptions& options = {},
                                        ArtifactCache* cache = nullptr);

  /// Incremental construction from a prior version's context: instead of the
  /// all-pairs matrix computations, the base matrices are *patched* — only
  /// walk rows inside the dirty-frontier closure of the elements whose
  /// statistics changed (DirtyMetricElements) are re-walked against the new
  /// metrics (AffinityMatrix::TryPatch / CoverageMatrix::TryPatch). The
  /// result is bit-identical to Make(base.graph(), annotations, ...); past
  /// `patch.max_dirty_fraction` the patchers fall back to the full
  /// computation on their own. `annotations` must describe the same schema
  /// as `base` (FailedPrecondition otherwise — callers fall back to Make)
  /// and must outlive the context, as must `base`'s graph. Patched matrices
  /// are installed in `cache` (may be null) under the *new* content key, so
  /// later cold runs of the new version hit. `affinity_stats` /
  /// `coverage_stats` (each may be null) report rows patched vs re-walked.
  static Result<SummarizerContext> MakeIncremental(
      const SummarizerContext& base, const Annotations& annotations,
      ArtifactCache* cache = nullptr, const MatrixPatchOptions& patch = {},
      MatrixPatchStats* affinity_stats = nullptr,
      MatrixPatchStats* coverage_stats = nullptr);

  const SchemaGraph& graph() const { return *graph_; }
  const Annotations& annotations() const { return *annotations_; }
  const SummarizeOptions& options() const { return options_; }
  const EdgeMetrics& metrics() const { return metrics_; }
  const ImportanceResult& importance() const { return importance_; }
  const AffinityMatrix& affinity() const { return affinity_; }
  const CoverageMatrix& coverage() const { return coverage_; }
  const DominanceResult& dominance() const { return dominance_; }

  /// How many of the two matrices the constructor loaded from the cache
  /// (0 = cold, 2 = fully warm). Benches assert warm runs compute nothing.
  int matrices_loaded_from_cache() const { return matrices_from_cache_; }

  /// Clears the deadline captured at construction. A pooled context built
  /// under one request's budget (serve/server.cc) would otherwise poison
  /// every later selection with an expired deadline.
  void ResetDeadline() { options_.parallel.deadline = Deadline::Unlimited(); }

 private:
  SummarizerContext() = default;  // Make()/Init() fill every member
  Status Init(const SchemaGraph& graph, const Annotations& annotations,
              const SummarizeOptions& options, ArtifactCache* cache);

  const SchemaGraph* graph_ = nullptr;
  const Annotations* annotations_ = nullptr;
  SummarizeOptions options_;
  EdgeMetrics metrics_;
  ImportanceResult importance_;
  AffinityMatrix affinity_;
  CoverageMatrix coverage_;
  DominanceResult dominance_;
  int matrices_from_cache_ = 0;
};

/// Figure 4: the K elements with the highest importance (root excluded).
Result<std::vector<ElementId>> SelectMaxImportance(
    const SummarizerContext& context, size_t k);

/// Figure 6: the K-element set with the highest summary coverage among
/// mutually non-dominated candidates — exact enumeration within budget,
/// greedy otherwise.
Result<std::vector<ElementId>> SelectMaxCoverage(
    const SummarizerContext& context, size_t k);

/// Figure 7: important elements filtered by coverage dominance.
Result<std::vector<ElementId>> SelectBalanced(const SummarizerContext& context,
                                              size_t k);

/// Selects with the requested algorithm and assembles the full summary
/// (group assignment + abstract links).
Result<SchemaSummary> Summarize(const SummarizerContext& context, size_t k,
                                Algorithm algorithm = Algorithm::kBalanceSummary);

/// One-shot convenience: builds a context and summarizes.
Result<SchemaSummary> Summarize(const SchemaGraph& graph,
                                const Annotations& annotations, size_t k,
                                Algorithm algorithm = Algorithm::kBalanceSummary,
                                const SummarizeOptions& options = {});

/// Cache key of a finished summary: everything the selection depends on —
/// schema, statistics, matrix-relevant options, selection options, K and
/// the algorithm.
Fingerprint SummaryFingerprint(const SchemaGraph& graph,
                               const Annotations& annotations,
                               const SummarizeOptions& options, size_t k,
                               Algorithm algorithm);

/// Warm-start one-shot: a cached summary is returned without building a
/// context at all (zero annotation/matrix/selection computation); otherwise
/// the context warm-starts its matrices from `cache` and the computed
/// summary is installed for the next invocation. `cache` may be null.
Result<SchemaSummary> Summarize(const SchemaGraph& graph,
                                const Annotations& annotations, size_t k,
                                Algorithm algorithm,
                                const SummarizeOptions& options,
                                ArtifactCache* cache);

}  // namespace ssum
