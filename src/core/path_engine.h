#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "schema/schema_graph.h"

namespace ssum {

/// Per-adjacency multiplicative step factors: factors[e][i] applies when a
/// walk steps from `e` to `graph.neighbors(e)[i].other`.
using EdgeFactors = std::vector<std::vector<double>>;

/// Maximum-product walk search with a step bound.
///
/// Both Formula 2 (affinity) and Formula 3 (coverage) take a maximum over
/// all paths of a product of per-edge factors; affinity additionally divides
/// by the path's step count. Neither objective is prefix-optimal, so instead
/// of a shortest-path algorithm we run a dynamic program over bounded-length
/// walks:
///
///   best_k[v] = max over k-step walks source->v of the factor product
///
/// and reduce over k. All factors used by this library are in [0,1]
/// (edge affinities are capped at 1 and neighbor weights are normalized), so
/// optimal walks never repeat profitable cycles and the step bound only
/// needs to cover the graph diameter (see DESIGN.md interpretation notes).
struct WalkSearchOptions {
  /// Upper bound on walk steps. 16 exceeds the diameter of every evaluated
  /// schema; raise for unusually deep schemas.
  uint32_t max_steps = 16;
  /// Divide the k-step product by k before reducing (Formula 2 semantics).
  bool divide_by_steps = false;
};

/// Returns, for every target element, max over k in [1, max_steps] of
/// (product of the best k-step walk) / (divide_by_steps ? k : 1).
/// The source's own entry reports the best *cycle* value (callers overwrite
/// it with the formula's special case).
std::vector<double> MaxProductWalks(const SchemaGraph& graph,
                                    const EdgeFactors& factors,
                                    ElementId source,
                                    const WalkSearchOptions& options);

/// Dense square matrix helper used by the affinity/coverage caches. Rows are
/// the unit of parallel writing (one owner per row, see common/parallel.h);
/// the debug bounds assertions catch out-of-range accesses that would
/// otherwise silently alias a neighboring row.
class SquareMatrix {
 public:
  SquareMatrix() = default;
  SquareMatrix(size_t n, double fill) : n_(n), data_(n * n, fill) {}

  double At(size_t row, size_t col) const {
    assert(row < n_ && col < n_);
    return data_[row * n_ + col];
  }
  void Set(size_t row, size_t col, double v) {
    assert(row < n_ && col < n_);
    data_[row * n_ + col] = v;
  }
  double* Row(size_t row) {
    assert(row < n_);
    return data_.data() + row * n_;
  }
  const double* Row(size_t row) const {
    assert(row < n_);
    return data_.data() + row * n_;
  }
  /// Bounds-checked row view; the preferred handle for parallel row writers.
  std::span<double> RowSpan(size_t row) {
    assert(row < n_);
    return {data_.data() + row * n_, n_};
  }
  std::span<const double> RowSpan(size_t row) const {
    assert(row < n_);
    return {data_.data() + row * n_, n_};
  }
  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  size_t size() const { return n_; }
  /// Backing storage in row-major order (n*n entries) — byte-comparable for
  /// the determinism checks in tests and benches.
  const std::vector<double>& data() const { return data_; }

 private:
  size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace ssum
