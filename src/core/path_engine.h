#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

#include "schema/schema_graph.h"

namespace ssum {

/// Per-adjacency multiplicative step factors: factors[e][i] applies when a
/// walk steps from `e` to `graph.neighbors(e)[i].other`.
using EdgeFactors = std::vector<std::vector<double>>;

/// Minimal aligned allocator for the walk-engine arrays. 64-byte alignment
/// keeps every CSR row and lane block on its own cache line and satisfies
/// the widest vector loads the autovectorizer may emit.
template <typename T, std::size_t Alignment>
struct AlignedAllocator {
  using value_type = T;
  // The alignment parameter is a non-type, so the default allocator_traits
  // rebind cannot apply; spell it out.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t count) {
    return static_cast<T*>(
        ::operator new(count * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const {
    return true;
  }
};

template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

/// Lane width of the batched walk kernel: MaxProductWalksBatch advances this
/// many sources through each relaxation step simultaneously. 8 doubles fill
/// one cache line (and one AVX-512 register / two AVX ones); 16 spans two
/// lines and amortizes the per-edge gather further on wide cores. The width
/// is a configure-time choice (-DSSUM_WALK_LANE_WIDTH=8|16, CMake cache
/// variable of the same name); both kernels are always compiled, so
/// perf_microbench compares them head-to-head on any build. The last block
/// of a batch is padded with inactive lanes.
#ifndef SSUM_WALK_LANE_WIDTH
#define SSUM_WALK_LANE_WIDTH 8
#endif
inline constexpr size_t kWalkLaneWidth = SSUM_WALK_LANE_WIDTH;
static_assert(kWalkLaneWidth == 8 || kWalkLaneWidth == 16,
              "SSUM_WALK_LANE_WIDTH must be 8 or 16 (lane blocks must fill "
              "whole 64-byte cache lines)");

/// Immutable CSR snapshot of (graph, factors), built once per matrix and
/// shared by every walk from it. Replaces the pointer-chasing
/// vector<vector<…>> adjacency walk with contiguous row scans:
///
///   row_offsets[u] .. row_offsets[u+1]  indexes neighbor_ids/edge_factors,
///   flattened in the graph's adjacency order.
///
/// Zero-factor adjacency records are pruned from the snapshot: a zero
/// product can never win a max against values that are always >= +0, so
/// walks over the pruned plan produce bit-identical results while skipping
/// dead edges (affinity factor sets are zero-heavy). Build() rejects
/// self-edges (SchemaGraph cannot produce them; the batched kernel relies
/// on source != target to keep its input and output lanes non-aliasing).
struct WalkPlan {
  size_t num_elements = 0;
  AlignedVector<uint32_t> row_offsets;   ///< num_elements + 1 entries
  AlignedVector<uint32_t> neighbor_ids;  ///< one per adjacency record
  AlignedVector<double> edge_factors;    ///< parallel to neighbor_ids

  size_t size() const { return num_elements; }
  size_t num_edges() const { return neighbor_ids.size(); }

  static WalkPlan Build(const SchemaGraph& graph, const EdgeFactors& factors);
};

/// Maximum-product walk search with a step bound.
///
/// Both Formula 2 (affinity) and Formula 3 (coverage) take a maximum over
/// all paths of a product of per-edge factors; affinity additionally divides
/// by the path's step count. Neither objective is prefix-optimal, so instead
/// of a shortest-path algorithm we run a dynamic program over bounded-length
/// walks:
///
///   best_k[v] = max over k-step walks source->v of the factor product
///
/// and reduce over k. All factors used by this library are in [0,1]
/// (edge affinities are capped at 1 and neighbor weights are normalized), so
/// optimal walks never repeat profitable cycles and the step bound only
/// needs to cover the graph diameter (see DESIGN.md interpretation notes).
struct WalkSearchOptions {
  /// Upper bound on walk steps. 16 exceeds the diameter of every evaluated
  /// schema; raise for unusually deep schemas.
  uint32_t max_steps = 16;
  /// Divide the k-step product by k before reducing (Formula 2 semantics).
  bool divide_by_steps = false;
};

/// Returns, for every target element, max over k in [1, max_steps] of
/// (product of the best k-step walk) / (divide_by_steps ? k : 1).
/// The source's own entry reports the best *cycle* value (callers overwrite
/// it with the formula's special case).
std::vector<double> MaxProductWalks(const SchemaGraph& graph,
                                    const EdgeFactors& factors,
                                    ElementId source,
                                    const WalkSearchOptions& options);

/// Batched multi-source walk search over a WalkPlan. Bit-identical to running
/// the scalar MaxProductWalks per source (docs/performance.md "Walk engine"
/// explains why), but advances kWalkLaneWidth sources per relaxation step:
/// the inner loop is a dense gather of the block's `cur` lanes, a broadcast
/// multiply by the edge factor, and a vertical max into the `next` lanes —
/// with per-lane active flags replacing the scalar kernel's global `any`
/// scan and a touched-vertex list replacing its full-frontier clear.
///
/// `out_rows[i]` receives the result row for `sources[i]` and must view
/// plan.size() doubles (e.g. SquareMatrix::RowSpan). Sources may repeat.
/// Batches larger than kWalkLaneWidth are processed block by block; callers
/// wanting parallelism distribute lane blocks across a ParallelFor instead
/// of single rows.
void MaxProductWalksBatch(const WalkPlan& plan,
                          std::span<const ElementId> sources,
                          const WalkSearchOptions& options,
                          std::span<const std::span<double>> out_rows);

/// Width-explicit batched walk search: identical contract to
/// MaxProductWalksBatch but with the lane width as a template parameter.
/// Both widths are instantiated in every build (path_engine.cc), so the
/// lane-width microbench can compare 8 vs 16 without reconfiguring;
/// MaxProductWalksBatch itself forwards to the kWalkLaneWidth instance.
template <size_t kLanes>
void MaxProductWalksBatchW(const WalkPlan& plan,
                           std::span<const ElementId> sources,
                           const WalkSearchOptions& options,
                           std::span<const std::span<double>> out_rows);

extern template void MaxProductWalksBatchW<8>(
    const WalkPlan&, std::span<const ElementId>, const WalkSearchOptions&,
    std::span<const std::span<double>>);
extern template void MaxProductWalksBatchW<16>(
    const WalkPlan&, std::span<const ElementId>, const WalkSearchOptions&,
    std::span<const std::span<double>>);

/// Dirty-frontier closure for incremental matrix patching: the set of
/// elements (as an n-byte 0/1 mask) within `max_steps` hops of any element
/// in `dirty`, over the schema's full adjacency. A walk row outside the
/// closure cannot traverse an edge owned by a dirty element within the step
/// bound — schema adjacency is symmetric, so distance-to-dirty bounds
/// dirty-to-row reachability — which makes copying that row from the base
/// matrix bit-identical to recomputing it (see docs/incremental.md for the
/// argument covering both matrices).
std::vector<uint8_t> DirtyFrontierClosure(const SchemaGraph& graph,
                                          std::span<const ElementId> dirty,
                                          uint32_t max_steps);

/// Knobs for the incremental matrix patch (AffinityMatrix::TryPatch /
/// CoverageMatrix::TryPatch).
struct MatrixPatchOptions {
  /// When the dirty-frontier closure covers more than this fraction of the
  /// rows, patching recomputes almost everything anyway; fall back to a
  /// full TryCompute (which skips the closure bookkeeping and the base-copy
  /// write traffic).
  double max_dirty_fraction = 0.5;
};

/// What a TryPatch actually did — for logging, `cache lineage`, and the
/// bench gates.
struct MatrixPatchStats {
  size_t dirty_rows = 0;  ///< rows inside the closure (recomputed if patched)
  size_t total_rows = 0;
  bool patched = false;   ///< false = fell back to a full recompute
};

/// Dense square matrix helper used by the affinity/coverage caches. Rows are
/// the unit of parallel writing (one owner per row, see common/parallel.h);
/// the debug bounds assertions catch out-of-range accesses that would
/// otherwise silently alias a neighboring row.
class SquareMatrix {
 public:
  SquareMatrix() = default;
  SquareMatrix(size_t n, double fill) : n_(n), data_(n * n, fill) {}

  double At(size_t row, size_t col) const {
    assert(row < n_ && col < n_);
    return data_[row * n_ + col];
  }
  void Set(size_t row, size_t col, double v) {
    assert(row < n_ && col < n_);
    data_[row * n_ + col] = v;
  }
  double* Row(size_t row) {
    assert(row < n_);
    return data_.data() + row * n_;
  }
  const double* Row(size_t row) const {
    assert(row < n_);
    return data_.data() + row * n_;
  }
  /// Bounds-checked row view; the preferred handle for parallel row writers.
  std::span<double> RowSpan(size_t row) {
    assert(row < n_);
    return {data_.data() + row * n_, n_};
  }
  std::span<const double> RowSpan(size_t row) const {
    assert(row < n_);
    return {data_.data() + row * n_, n_};
  }
  void Fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  size_t size() const { return n_; }
  /// Backing storage in row-major order (n*n entries) — byte-comparable for
  /// the determinism checks in tests and benches.
  const std::vector<double>& data() const { return data_; }

 private:
  size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace ssum
