#include "core/importance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ssum {

std::vector<ElementId> ImportanceResult::Ranked() const {
  std::vector<ElementId> ids(importance.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<ElementId>(i);
  std::stable_sort(ids.begin(), ids.end(), [&](ElementId a, ElementId b) {
    if (importance[a] != importance[b]) return importance[a] > importance[b];
    return a < b;
  });
  return ids;
}

ImportanceResult ComputeImportance(const SchemaGraph& graph,
                                   const Annotations& annotations,
                                   const EdgeMetrics& metrics,
                                   const ImportanceOptions& options) {
  const size_t n = graph.size();
  SSUM_CHECK(options.neighborhood_factor >= 0.0 &&
                 options.neighborhood_factor <= 1.0,
             "neighborhood factor must lie in [0,1]");
  ImportanceResult result;
  result.importance.resize(n);
  std::vector<double>& cur = result.importance;
  for (ElementId e = 0; e < n; ++e) {
    cur[e] = options.cardinality_init
                 ? static_cast<double>(annotations.card(e))
                 : 1.0;
  }
  const double p = options.neighborhood_factor;
  if (p == 1.0) {
    // Fully data driven: the iteration is the identity.
    result.converged = true;
    return result;
  }
  std::vector<double> next(n, 0.0);
  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    // Scatter pass: each element keeps p of its value and distributes the
    // rest along its neighbor weights.
    std::fill(next.begin(), next.end(), 0.0);
    for (ElementId e = 0; e < n; ++e) {
      next[e] += p * cur[e];
      const auto& nbrs = graph.neighbors(e);
      const auto& w = metrics.w[e];
      const double share = (1.0 - p) * cur[e];
      if (nbrs.empty()) {
        next[e] += share;  // isolated element keeps everything
        continue;
      }
      for (size_t i = 0; i < nbrs.size(); ++i) {
        next[nbrs[i].other] += share * w[i];
      }
    }
    bool done = true;
    for (size_t e = 0; e < n; ++e) {
      double denom = std::max(std::abs(cur[e]), 1e-12);
      if (std::abs(next[e] - cur[e]) / denom > options.convergence_threshold) {
        done = false;
        break;
      }
    }
    cur.swap(next);
    result.iterations = iter;
    if (done) {
      result.converged = true;
      break;
    }
  }
  return result;
}

ImportanceResult ComputeImportance(const SchemaGraph& graph,
                                   const Annotations& annotations,
                                   const ImportanceOptions& options) {
  EdgeMetrics metrics = EdgeMetrics::Compute(graph, annotations);
  return ComputeImportance(graph, annotations, metrics, options);
}

}  // namespace ssum
