#include "core/affinity.h"

#include "common/logging.h"

namespace ssum {

Result<AffinityMatrix> AffinityMatrix::TryCompute(
    const SchemaGraph& graph, const EdgeMetrics& metrics,
    const AffinityOptions& options, const ParallelOptions& parallel) {
  const size_t n = graph.size();
  AffinityMatrix out;
  out.m_ = SquareMatrix(n, 0.0);
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = true;
  // One CSR snapshot shared by all rows; lane blocks of kWalkLaneWidth
  // sources are the parallel unit (each row still has exactly one writer).
  const WalkPlan plan = WalkPlan::Build(graph, metrics.edge_affinity);
  const size_t blocks = (n + kWalkLaneWidth - 1) / kWalkLaneWidth;
  Status st = ParallelFor(
      0, blocks, /*grain=*/1,
      [&](size_t block) {
        const size_t begin = block * kWalkLaneWidth;
        const size_t count = std::min(kWalkLaneWidth, n - begin);
        ElementId sources[kWalkLaneWidth];
        std::span<double> rows[kWalkLaneWidth];
        for (size_t i = 0; i < count; ++i) {
          sources[i] = static_cast<ElementId>(begin + i);
          rows[i] = out.m_.RowSpan(begin + i);
        }
        MaxProductWalksBatch(plan, {sources, count}, walk, {rows, count});
        for (size_t i = 0; i < count; ++i) {
          rows[i][begin + i] = 1.0;  // Formula 2 special case
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  return out;
}

Result<AffinityMatrix> AffinityMatrix::TryPatch(
    const SchemaGraph& graph, const EdgeMetrics& metrics,
    const AffinityMatrix& base, std::span<const ElementId> dirty_elements,
    const AffinityOptions& options, const ParallelOptions& parallel,
    const MatrixPatchOptions& patch, MatrixPatchStats* stats) {
  const size_t n = graph.size();
  if (base.size() != n) {
    return Status::FailedPrecondition(
        "AffinityMatrix::TryPatch: base matrix order " +
        std::to_string(base.size()) + " does not match schema order " +
        std::to_string(n));
  }
  const std::vector<uint8_t> mask =
      DirtyFrontierClosure(graph, dirty_elements, options.max_steps);
  std::vector<ElementId> rows_to_walk;
  for (ElementId e = 0; e < n; ++e) {
    if (mask[e]) rows_to_walk.push_back(e);
  }
  if (stats != nullptr) {
    stats->dirty_rows = rows_to_walk.size();
    stats->total_rows = n;
    stats->patched = false;
  }
  if (static_cast<double>(rows_to_walk.size()) >
      patch.max_dirty_fraction * static_cast<double>(n)) {
    return TryCompute(graph, metrics, options, parallel);
  }
  AffinityMatrix out;
  out.m_ = base.m_;  // rows outside the closure keep their base bytes
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = true;
  // The plan snapshots the *new* metrics, so a re-walked row is exactly the
  // row a full TryCompute would produce (the batch engine's results do not
  // depend on which sources share a lane block).
  const WalkPlan plan = WalkPlan::Build(graph, metrics.edge_affinity);
  const size_t blocks =
      (rows_to_walk.size() + kWalkLaneWidth - 1) / kWalkLaneWidth;
  Status st = ParallelFor(
      0, blocks, /*grain=*/1,
      [&](size_t block) {
        const size_t begin = block * kWalkLaneWidth;
        const size_t count =
            std::min(kWalkLaneWidth, rows_to_walk.size() - begin);
        ElementId sources[kWalkLaneWidth];
        std::span<double> rows[kWalkLaneWidth];
        for (size_t i = 0; i < count; ++i) {
          sources[i] = rows_to_walk[begin + i];
          rows[i] = out.m_.RowSpan(sources[i]);
        }
        MaxProductWalksBatch(plan, {sources, count}, walk, {rows, count});
        for (size_t i = 0; i < count; ++i) {
          rows[i][sources[i]] = 1.0;  // Formula 2 special case
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  if (stats != nullptr) stats->patched = true;
  return out;
}

AffinityMatrix AffinityMatrix::Compute(const SchemaGraph& graph,
                                       const EdgeMetrics& metrics,
                                       const AffinityOptions& options,
                                       const ParallelOptions& parallel) {
  auto out = TryCompute(graph, metrics, options, parallel);
  SSUM_CHECK(out.ok(), out.status().ToString());
  return std::move(*out);
}

}  // namespace ssum
