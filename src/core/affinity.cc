#include "core/affinity.h"

#include "common/logging.h"

namespace ssum {

AffinityMatrix AffinityMatrix::Compute(const SchemaGraph& graph,
                                       const EdgeMetrics& metrics,
                                       const AffinityOptions& options,
                                       const ParallelOptions& parallel) {
  const size_t n = graph.size();
  AffinityMatrix out;
  out.m_ = SquareMatrix(n, 0.0);
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = true;
  Status st = ParallelFor(
      0, n, /*grain=*/4,
      [&](size_t src) {
        std::vector<double> row = MaxProductWalks(
            graph, metrics.edge_affinity, static_cast<ElementId>(src), walk);
        std::span<double> dst = out.m_.RowSpan(src);
        for (size_t t = 0; t < n; ++t) dst[t] = row[t];
        dst[src] = 1.0;  // Formula 2 special case
      },
      parallel.threads);
  SSUM_CHECK(st.ok(), st.ToString());
  return out;
}

}  // namespace ssum
