#include "core/affinity.h"

#include "common/logging.h"

namespace ssum {

Result<AffinityMatrix> AffinityMatrix::TryCompute(
    const SchemaGraph& graph, const EdgeMetrics& metrics,
    const AffinityOptions& options, const ParallelOptions& parallel) {
  const size_t n = graph.size();
  AffinityMatrix out;
  out.m_ = SquareMatrix(n, 0.0);
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = true;
  // One CSR snapshot shared by all rows; lane blocks of kWalkLaneWidth
  // sources are the parallel unit (each row still has exactly one writer).
  const WalkPlan plan = WalkPlan::Build(graph, metrics.edge_affinity);
  const size_t blocks = (n + kWalkLaneWidth - 1) / kWalkLaneWidth;
  Status st = ParallelFor(
      0, blocks, /*grain=*/1,
      [&](size_t block) {
        const size_t begin = block * kWalkLaneWidth;
        const size_t count = std::min(kWalkLaneWidth, n - begin);
        ElementId sources[kWalkLaneWidth];
        std::span<double> rows[kWalkLaneWidth];
        for (size_t i = 0; i < count; ++i) {
          sources[i] = static_cast<ElementId>(begin + i);
          rows[i] = out.m_.RowSpan(begin + i);
        }
        MaxProductWalksBatch(plan, {sources, count}, walk, {rows, count});
        for (size_t i = 0; i < count; ++i) {
          rows[i][begin + i] = 1.0;  // Formula 2 special case
        }
      },
      parallel);
  SSUM_RETURN_NOT_OK(st);
  return out;
}

AffinityMatrix AffinityMatrix::Compute(const SchemaGraph& graph,
                                       const EdgeMetrics& metrics,
                                       const AffinityOptions& options,
                                       const ParallelOptions& parallel) {
  auto out = TryCompute(graph, metrics, options, parallel);
  SSUM_CHECK(out.ok(), out.status().ToString());
  return std::move(*out);
}

}  // namespace ssum
