#include "core/affinity.h"

namespace ssum {

AffinityMatrix AffinityMatrix::Compute(const SchemaGraph& graph,
                                       const EdgeMetrics& metrics,
                                       const AffinityOptions& options) {
  const size_t n = graph.size();
  AffinityMatrix out;
  out.m_ = SquareMatrix(n, 0.0);
  WalkSearchOptions walk;
  walk.max_steps = options.max_steps;
  walk.divide_by_steps = true;
  for (ElementId src = 0; src < n; ++src) {
    std::vector<double> row =
        MaxProductWalks(graph, metrics.edge_affinity, src, walk);
    double* dst = out.m_.Row(src);
    for (size_t t = 0; t < n; ++t) dst[t] = row[t];
    dst[src] = 1.0;  // Formula 2 special case
  }
  return out;
}

}  // namespace ssum
