#pragma once

#include <vector>

#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// Parameters of the importance iteration (paper Formula 1).
struct ImportanceOptions {
  /// Neighborhood factor p in [0,1]. p=1 keeps the initial (cardinality)
  /// distribution ("fully data driven", Section 5.4); small p propagates
  /// importance mostly through the link structure.
  double neighborhood_factor = 0.5;
  /// Convergence threshold c: iteration stops when every element's relative
  /// change falls below it. Paper default 0.1%.
  double convergence_threshold = 0.001;
  /// Hard iteration cap (the paper notes a cap "can also be set").
  int max_iterations = 2000;
  /// Initialize I^0 to element cardinalities (paper default). When false,
  /// every element starts at 1 — combined with Annotations::Uniform this is
  /// the "fully schema driven" mode of Section 5.4.
  bool cardinality_init = true;
};

struct ImportanceResult {
  /// Importance per element, same order as SchemaGraph ids.
  std::vector<double> importance;
  int iterations = 0;
  bool converged = false;

  /// Element ids sorted by descending importance (ties by ascending id);
  /// includes the root.
  std::vector<ElementId> Ranked() const;
};

/// Runs Formula 1 until convergence:
///
///   I_e^r = p * I_e^{r-1} + (1-p) * sum_j W_{e_j->e} * I_{e_j}^{r-1}
///
/// where W are the neighbor weights from `metrics` (each element's outgoing
/// weights sum to 1, so the total importance is invariant across
/// iterations — checked in tests).
ImportanceResult ComputeImportance(const SchemaGraph& graph,
                                   const Annotations& annotations,
                                   const EdgeMetrics& metrics,
                                   const ImportanceOptions& options = {});

/// Convenience overload computing EdgeMetrics internally.
ImportanceResult ComputeImportance(const SchemaGraph& graph,
                                   const Annotations& annotations,
                                   const ImportanceOptions& options = {});

}  // namespace ssum
