#include "instance/unit_digest.h"

#include "common/hash.h"
#include "instance/event_stream.h"

namespace ssum {

namespace {

/// Hashes one unit's event sequence. Event kinds are tagged so an enter of
/// element 3 can never alias a reference along link 3, and ids are hashed
/// fixed-width so adjacent events cannot alias across boundaries.
class UnitDigestVisitor : public InstanceVisitor {
 public:
  void OnEnter(ElementId e) override {
    hash_.Update("E", 1);
    hash_.UpdateU64(e);
  }
  void OnReference(LinkId vlink) override {
    hash_.Update("R", 1);
    hash_.UpdateU64(vlink);
  }
  void OnLeave(ElementId e) override {
    hash_.Update("L", 1);
    hash_.UpdateU64(e);
  }

  uint64_t digest() const { return hash_.Digest(); }

 private:
  Fnv1a64 hash_;
};

}  // namespace

Result<std::vector<uint64_t>> ComputeUnitDigests(
    const ShardedInstanceSource& source, const UnitDigestOptions& options) {
  SSUM_RETURN_NOT_OK(options.parallel.deadline.Check("unit digests"));
  const uint64_t units = source.NumUnits();
  std::vector<uint64_t> digests(units, 0);
  std::vector<Status> statuses(units, Status::OK());
  SSUM_RETURN_NOT_OK(ParallelFor(
      0, units, 16,
      [&](size_t u) {
        UnitDigestVisitor visitor;
        Status s = source.AcceptUnits(u, u + 1, &visitor);
        if (s.ok()) {
          digests[u] = visitor.digest();
        } else {
          statuses[u] = std::move(s);
        }
      },
      options.parallel));
  for (const Status& s : statuses) SSUM_RETURN_NOT_OK(s);
  return digests;
}

Result<std::vector<uint64_t>> DiffUnitDigests(
    const std::vector<uint64_t>& base, const std::vector<uint64_t>& next) {
  if (base.size() != next.size()) {
    return Status::FailedPrecondition(
        "unit digests: partition changed (" + std::to_string(base.size()) +
        " vs " + std::to_string(next.size()) +
        " units); per-unit identity does not hold");
  }
  std::vector<uint64_t> dirty;
  for (size_t u = 0; u < base.size(); ++u) {
    if (base[u] != next[u]) dirty.push_back(u);
  }
  return dirty;
}

}  // namespace ssum
