#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Dense data-node identifier within a DataTree.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// In-memory database instance: a tree of data nodes typed by schema
/// elements, plus value-link reference instances. Suitable for small
/// databases, parsed XML documents, and tests; the large synthetic datasets
/// use streaming generators instead.
///
/// Also a ShardedInstanceSource: one unit per child of the root node, so
/// annotation shards over the top-level subtrees.
class DataTree : public InstanceStream, public ShardedInstanceSource {
 public:
  /// Creates a tree containing a single root node typed by schema.root().
  /// `schema` must outlive the tree.
  explicit DataTree(const SchemaGraph* schema);

  /// Adds a data node of schema element `element` under `parent`. The
  /// element's schema parent must equal the parent node's element.
  Result<NodeId> AddNode(NodeId parent, ElementId element,
                         std::string value = {});

  /// Records one reference instance along value link `vlink`, originating at
  /// `referrer_node` (whose element must equal the link's referrer) and
  /// targeting `referee_node` (element must equal the link's referee).
  Status AddReference(LinkId vlink, NodeId referrer_node, NodeId referee_node);

  NodeId root() const { return 0; }
  size_t size() const { return elements_.size(); }

  ElementId element(NodeId n) const { return elements_[n]; }
  NodeId parent(NodeId n) const { return parents_[n]; }
  const std::string& value(NodeId n) const { return values_[n]; }
  const std::vector<NodeId>& children(NodeId n) const { return children_[n]; }

  struct Reference {
    LinkId vlink;
    NodeId referrer;
    NodeId referee;
  };
  const std::vector<Reference>& references() const { return references_; }

  /// Outgoing references of a node (indices into references()).
  const std::vector<uint32_t>& node_references(NodeId n) const {
    return node_refs_[n];
  }

  // InstanceStream:
  const SchemaGraph& schema() const override { return *schema_; }
  Status Accept(InstanceVisitor* visitor) const override;

  // ShardedInstanceSource:
  uint64_t NumUnits() const override { return children_[root()].size(); }
  Status AcceptSkeleton(InstanceVisitor* visitor) const override;
  Status AcceptUnits(uint64_t begin, uint64_t end,
                     InstanceVisitor* visitor) const override;

 private:
  /// Emits the complete subtree rooted at `start` (enter, refs, children,
  /// leave).
  void WalkSubtree(NodeId start, InstanceVisitor* visitor) const;

  const SchemaGraph* schema_;
  std::vector<ElementId> elements_;
  std::vector<NodeId> parents_;
  std::vector<std::string> values_;
  std::vector<std::vector<NodeId>> children_;
  std::vector<Reference> references_;
  std::vector<std::vector<uint32_t>> node_refs_;
};

}  // namespace ssum
