#pragma once

#include "common/random.h"
#include "common/result.h"
#include "instance/data_tree.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Random database synthesis for an arbitrary schema — conformance fuzzing,
/// property tests, and quick experiments on hand-written schemas ("what
/// would my schema's summary look like with plausible data?").
struct RandomInstanceOptions {
  uint64_t seed = 7;
  /// Mean occurrence count for SetOf elements (Poisson distributed).
  double setof_mean = 2.0;
  /// Presence probability for optional single-valued children.
  double presence = 0.8;
  /// Per value link: probability that a referrer node emits a reference
  /// (targets are sampled uniformly from the referee's nodes).
  double reference_prob = 0.9;
  /// Hard cap on generated nodes (guards against explosive schemas).
  size_t max_nodes = 200000;
};

/// Builds a DataTree conforming to `schema`: Rcd children are instantiated
/// with probability `presence` (SetOf children Poisson-many times), Choice
/// parents instantiate exactly one branch, and value-link references are
/// attached between existing nodes in a second pass (so CheckConformance
/// and AnnotateSchema both accept the result). Fails with OutOfRange when
/// max_nodes is exceeded.
Result<DataTree> GenerateRandomInstance(const SchemaGraph& schema,
                                        const RandomInstanceOptions& options = {});

}  // namespace ssum
