#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "instance/sharded_stream.h"

namespace ssum {

/// Options for the per-unit digest pass.
struct UnitDigestOptions {
  /// Worker threads hashing unit subtrees (ParallelFor); the digests are
  /// per-unit values written to disjoint slots, so the result is identical
  /// for any thread count.
  ParallelOptions parallel;
};

/// Per-unit content digests of a sharded instance source: digests[u] is a
/// 64-bit FNV-1a over the enter/reference/leave event sequence of unit u's
/// subtree. Two sources over the same schema with the same unit partition
/// produce equal digests exactly where the unit subtrees are identical, so
/// comparing digest vectors yields the changed-unit set for
/// delta-annotation without materializing either instance.
Result<std::vector<uint64_t>> ComputeUnitDigests(
    const ShardedInstanceSource& source, const UnitDigestOptions& options = {});

/// Indices (ascending) where `base` and `next` differ. Fails with
/// FailedPrecondition when the vectors have different lengths — a changed
/// unit partition invalidates per-unit identity, so the caller must fall
/// back to a full re-annotation.
Result<std::vector<uint64_t>> DiffUnitDigests(
    const std::vector<uint64_t>& base, const std::vector<uint64_t>& next);

}  // namespace ssum
