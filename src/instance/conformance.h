#pragma once

#include "common/status.h"
#include "instance/data_tree.h"

namespace ssum {

/// Conformance options; defaults match the paper's data model (Section 2).
struct ConformanceOptions {
  /// Require every Rcd child that is not SetOf to appear exactly once
  /// (false: at most once — tolerates optional elements, the common case in
  /// real XML data).
  bool require_all_rcd_children = false;
  /// Require Choice parents to instantiate exactly one child branch.
  bool enforce_choice = true;
};

/// Verifies that a DataTree conforms to its schema:
///  - every node's element has the node's parent's element as schema parent
///    (structurally guaranteed by DataTree, re-checked for completeness);
///  - non-SetOf children occur at most once (exactly once when
///    require_all_rcd_children) per parent node;
///  - Choice parents instantiate exactly one child element kind;
///  - Simple nodes are leaves.
Status CheckConformance(const DataTree& tree,
                        const ConformanceOptions& options = {});

}  // namespace ssum
