#pragma once

#include <cstdint>

#include "common/status.h"
#include "instance/event_stream.h"
#include "schema/schema_graph.h"

namespace ssum {

/// A database instance traversable as independent slices, the enabler for
/// sharding annotateSchema (paper Figure 3) over the instance stream.
///
/// The full pre-order traversal an InstanceStream emits is decomposed into
///   - a *skeleton*: the root and the section containers on the path from
///     the root down to the entity subtrees — every event of the serial
///     traversal that lies outside a unit subtree, emitted exactly once; and
///   - `NumUnits()` *units*: complete enter..leave subtree traversals, each
///     rooted at a non-root element directly under a skeleton node and
///     independent of every other unit.
///
/// Partitioning [0, NumUnits()) arbitrarily, annotating the skeleton plus
/// every part with its own private Annotations and summing the counters
/// (Annotations::Merge) yields exactly the counters of one serial pass:
/// annotation counting is additive over any partition of the event stream.
///
/// Concrete sources and their split points:
///   - XML documents: one unit per top-level child of the document root
///     (xml/instance_bridge.h);
///   - relational databases: one unit per row, tables concatenated in
///     catalog order (relational/bridge.h);
///   - generated datasets: one unit per top-level entity (item, person,
///     auction, molecule, table row, ...), generator sub-ranges re-seeded
///     per unit so any sub-range replays without the preceding events
///     (datasets/xmark.h, datasets/tpch.h, datasets/mimi.h);
///   - in-memory trees: one unit per child of the root node
///     (instance/data_tree.h).
class ShardedInstanceSource {
 public:
  virtual ~ShardedInstanceSource() = default;

  /// Schema the instance conforms to. Must outlive the source.
  virtual const SchemaGraph& schema() const = 0;

  /// Number of independently traversable unit subtrees.
  virtual uint64_t NumUnits() const = 0;

  /// Emits the skeleton as a well-formed root-anchored stream: every event
  /// of the full traversal outside the unit subtrees, exactly once.
  virtual Status AcceptSkeleton(InstanceVisitor* visitor) const = 0;

  /// Emits the unit subtrees with indices [begin, end) in index order. Each
  /// unit is a complete enter..leave sequence whose root is a non-root
  /// schema element; consecutive units need not share a parent. Fails with
  /// InvalidArgument when end > NumUnits() or begin > end. May be called
  /// concurrently from multiple threads on disjoint ranges.
  virtual Status AcceptUnits(uint64_t begin, uint64_t end,
                             InstanceVisitor* visitor) const = 0;
};

/// Half-open unit range of one shard.
struct UnitRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
};

/// Deterministic even split of [0, num_units) into num_shards contiguous
/// ranges (sizes differ by at most one). Depends only on its arguments —
/// never on thread counts — so per-shard results reduced in shard order are
/// identical for any execution schedule. `shard` must be < num_shards.
UnitRange ShardUnitRange(uint64_t num_units, uint64_t shard,
                         uint64_t num_shards);

/// Checks an AcceptUnits range against NumUnits(); shared by every source.
Status ValidateUnitRange(uint64_t begin, uint64_t end, uint64_t num_units);

}  // namespace ssum
