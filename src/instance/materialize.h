#pragma once

#include <memory>

#include "common/result.h"
#include "instance/data_tree.h"
#include "instance/event_stream.h"
#include "xml/parser.h"

namespace ssum {

/// Materializes an instance stream into an in-memory DataTree.
///
/// Reference instances are *not* materialized: a stream reports only that a
/// reference exists (which is all annotation needs), not which node it
/// targets, and DataTree references require concrete endpoints. Use
/// MaterializeToXml for a lossless-for-annotation round trip.
///
/// Intended for small instances (tests, examples); the benchmark-scale
/// generators should be annotated directly from the stream.
Result<DataTree> MaterializeToDataTree(const InstanceStream& stream);

/// Options for XML materialization.
struct XmlMaterializeOptions {
  /// Seed for the synthesized atomic values (deterministic).
  uint64_t value_seed = 1;
};

/// Materializes an instance stream into an XML document:
///  - elements labeled "@name" become attributes of their parent;
///  - Simple elements become childless elements;
///  - atomic values are synthesized deterministically by kind (so id/idref
///    carriers are non-empty, preserving value-link instance counts when
///    the document is re-annotated through XmlInstanceStream).
///
/// Together with xml/infer_schema.h this closes the loop:
///   generator -> XML -> parse -> infer/annotate  ==  generator -> annotate
Result<XmlDocument> MaterializeToXml(const InstanceStream& stream,
                                     const XmlMaterializeOptions& options = {});

}  // namespace ssum
