#include "instance/data_tree.h"

namespace ssum {

DataTree::DataTree(const SchemaGraph* schema) : schema_(schema) {
  elements_.push_back(schema_->root());
  parents_.push_back(kInvalidNode);
  values_.emplace_back();
  children_.emplace_back();
  node_refs_.emplace_back();
}

Result<NodeId> DataTree::AddNode(NodeId parent, ElementId element,
                                 std::string value) {
  if (parent >= size()) {
    return Status::InvalidArgument("AddNode: parent node out of range");
  }
  if (element >= schema_->size()) {
    return Status::InvalidArgument("AddNode: element out of range");
  }
  if (schema_->parent(element) != elements_[parent]) {
    return Status::InvalidArgument(
        "AddNode: schema parent of '" + schema_->label(element) +
        "' does not match parent node element '" +
        schema_->label(elements_[parent]) + "'");
  }
  NodeId id = static_cast<NodeId>(size());
  elements_.push_back(element);
  parents_.push_back(parent);
  values_.push_back(std::move(value));
  children_.emplace_back();
  node_refs_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

Status DataTree::AddReference(LinkId vlink, NodeId referrer_node,
                              NodeId referee_node) {
  if (vlink >= schema_->value_links().size()) {
    return Status::InvalidArgument("AddReference: vlink out of range");
  }
  if (referrer_node >= size() || referee_node >= size()) {
    return Status::InvalidArgument("AddReference: node out of range");
  }
  const ValueLink& link = schema_->value_links()[vlink];
  if (elements_[referrer_node] != link.referrer) {
    return Status::InvalidArgument("AddReference: referrer node element '" +
                                   schema_->label(elements_[referrer_node]) +
                                   "' does not match link referrer '" +
                                   schema_->label(link.referrer) + "'");
  }
  if (elements_[referee_node] != link.referee) {
    return Status::InvalidArgument("AddReference: referee node element '" +
                                   schema_->label(elements_[referee_node]) +
                                   "' does not match link referee '" +
                                   schema_->label(link.referee) + "'");
  }
  uint32_t idx = static_cast<uint32_t>(references_.size());
  references_.push_back({vlink, referrer_node, referee_node});
  node_refs_[referrer_node].push_back(idx);
  return Status::OK();
}

void DataTree::WalkSubtree(NodeId start, InstanceVisitor* visitor) const {
  // Iterative depth-first pre-order with explicit leave events.
  struct Frame {
    NodeId node;
    size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({start, 0});
  visitor->OnEnter(elements_[start]);
  for (uint32_t r : node_refs_[start]) {
    visitor->OnReference(references_[r].vlink);
  }
  while (!stack.empty()) {
    Frame& top = stack.back();
    const auto& kids = children_[top.node];
    if (top.next_child < kids.size()) {
      NodeId child = kids[top.next_child++];
      visitor->OnEnter(elements_[child]);
      for (uint32_t r : node_refs_[child]) {
        visitor->OnReference(references_[r].vlink);
      }
      stack.push_back({child, 0});
    } else {
      visitor->OnLeave(elements_[top.node]);
      stack.pop_back();
    }
  }
}

Status DataTree::Accept(InstanceVisitor* visitor) const {
  WalkSubtree(root(), visitor);
  return Status::OK();
}

Status DataTree::AcceptSkeleton(InstanceVisitor* visitor) const {
  visitor->OnEnter(elements_[root()]);
  for (uint32_t r : node_refs_[root()]) {
    visitor->OnReference(references_[r].vlink);
  }
  visitor->OnLeave(elements_[root()]);
  return Status::OK();
}

Status DataTree::AcceptUnits(uint64_t begin, uint64_t end,
                             InstanceVisitor* visitor) const {
  SSUM_RETURN_NOT_OK(ValidateUnitRange(begin, end, NumUnits()));
  const auto& kids = children_[root()];
  for (uint64_t u = begin; u < end; ++u) {
    WalkSubtree(kids[u], visitor);
  }
  return Status::OK();
}

}  // namespace ssum
