#include "instance/sharded_stream.h"

#include <string>

namespace ssum {

UnitRange ShardUnitRange(uint64_t num_units, uint64_t shard,
                         uint64_t num_shards) {
  if (num_shards == 0) return {0, num_units};
  // Bresenham split: boundary i = floor(i * num_units / num_shards). The
  // 128-bit intermediate keeps the product exact for any realistic unit
  // count (num_units and num_shards both fit in 64 bits).
  auto boundary = [&](uint64_t i) {
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(num_units) * i) / num_shards);
  };
  return {boundary(shard), boundary(shard + 1)};
}

Status ValidateUnitRange(uint64_t begin, uint64_t end, uint64_t num_units) {
  if (begin > end || end > num_units) {
    return Status::InvalidArgument(
        "AcceptUnits: range [" + std::to_string(begin) + ", " +
        std::to_string(end) + ") invalid for " + std::to_string(num_units) +
        " units");
  }
  return Status::OK();
}

}  // namespace ssum
