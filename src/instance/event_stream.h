#pragma once

#include <cstdint>

#include "common/status.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Visitor receiving a depth-first pre-order traversal of a database
/// instance — exactly the traversal annotateSchema (paper Figure 3)
/// performs. Implementations must be cheap: generators stream millions of
/// events without materializing the database.
class InstanceVisitor {
 public:
  virtual ~InstanceVisitor() = default;

  /// A data node of schema element `e` is entered. For every node except the
  /// root, the parent data node (whose schema element is `schema.parent(e)`)
  /// is the most recently entered unclosed node.
  virtual void OnEnter(ElementId e) = 0;

  /// The current (most recently entered, unclosed) data node emits one
  /// reference instance along value link `vlink`, acting as referrer.
  virtual void OnReference(LinkId vlink) = 0;

  /// The most recently entered unclosed node is closed.
  virtual void OnLeave(ElementId e) { (void)e; }
};

/// A database instance traversable in depth-first pre-order. Concrete
/// sources: in-memory DataTree, XML documents, relational tables, and the
/// synthetic dataset generators.
class InstanceStream {
 public:
  virtual ~InstanceStream() = default;

  /// Schema the instance conforms to. Must outlive the stream.
  virtual const SchemaGraph& schema() const = 0;

  /// Runs one full traversal, invoking the visitor for every node and
  /// reference. May be called multiple times; each call replays the same
  /// instance (generators re-seed internally).
  virtual Status Accept(InstanceVisitor* visitor) const = 0;
};

/// Counts nodes and references; useful for dataset statistics and tests.
class CountingVisitor : public InstanceVisitor {
 public:
  void OnEnter(ElementId) override { ++nodes_; }
  void OnReference(LinkId) override { ++references_; }

  uint64_t nodes() const { return nodes_; }
  uint64_t references() const { return references_; }

 private:
  uint64_t nodes_ = 0;
  uint64_t references_ = 0;
};

}  // namespace ssum
