#include "instance/conformance.h"

#include <unordered_map>

namespace ssum {

Status CheckConformance(const DataTree& tree,
                        const ConformanceOptions& options) {
  const SchemaGraph& schema = tree.schema();
  for (NodeId n = 0; n < tree.size(); ++n) {
    ElementId e = tree.element(n);
    const ElementType& t = schema.type(e);
    if (t.kind == TypeKind::kSimple && !tree.children(n).empty()) {
      return Status::FailedPrecondition("Simple node of element '" +
                                        schema.label(e) + "' has children");
    }
    if (n != tree.root() &&
        schema.parent(e) != tree.element(tree.parent(n))) {
      return Status::FailedPrecondition("node parentage mismatch at '" +
                                        schema.label(e) + "'");
    }
    // Per-parent occurrence counts by child element.
    std::unordered_map<ElementId, uint32_t> occur;
    for (NodeId c : tree.children(n)) {
      ++occur[tree.element(c)];
    }
    for (const auto& [child_elem, count] : occur) {
      if (!schema.type(child_elem).set_of && count > 1) {
        return Status::FailedPrecondition(
            "non-SetOf element '" + schema.label(child_elem) + "' occurs " +
            std::to_string(count) + " times under one '" + schema.label(e) +
            "' node");
      }
    }
    if (options.require_all_rcd_children && t.kind == TypeKind::kRcd) {
      for (ElementId child : schema.children(e)) {
        if (!schema.type(child).set_of && occur.find(child) == occur.end()) {
          return Status::FailedPrecondition(
              "Rcd child '" + schema.label(child) + "' missing under '" +
              schema.label(e) + "'");
        }
      }
    }
    if (options.enforce_choice && t.kind == TypeKind::kChoice &&
        !schema.children(e).empty()) {
      if (occur.size() != 1) {
        return Status::FailedPrecondition(
            "Choice node of '" + schema.label(e) + "' instantiates " +
            std::to_string(occur.size()) + " branches (expected 1)");
      }
    }
  }
  return Status::OK();
}

}  // namespace ssum
