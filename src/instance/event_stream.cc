#include "instance/event_stream.h"

// Interface-only translation unit: anchors the vtables of InstanceVisitor
// and InstanceStream so that every user does not emit its own copy.

namespace ssum {}  // namespace ssum
