#include "instance/materialize.h"

#include "common/random.h"
#include "common/string_util.h"

namespace ssum {

namespace {

class TreeBuilder : public InstanceVisitor {
 public:
  explicit TreeBuilder(const SchemaGraph& schema)
      : schema_(schema), tree_(&schema) {}

  void OnEnter(ElementId e) override {
    if (!status_.ok()) return;
    if (stack_.empty()) {
      if (e != schema_.root()) {
        status_ = Status::FailedPrecondition("stream does not start at root");
        return;
      }
      stack_.push_back(tree_.root());
      return;
    }
    auto node = tree_.AddNode(stack_.back(), e);
    if (!node.ok()) {
      status_ = node.status();
      return;
    }
    stack_.push_back(*node);
  }

  void OnReference(LinkId) override {
    // Dropped by design — see header comment.
  }

  void OnLeave(ElementId) override {
    if (!status_.ok()) return;
    if (stack_.empty()) {
      status_ = Status::FailedPrecondition("unbalanced leave event");
      return;
    }
    stack_.pop_back();
  }

  Result<DataTree> Take() {
    SSUM_RETURN_NOT_OK(status_);
    if (!stack_.empty()) {
      return Status::FailedPrecondition("stream left unclosed nodes");
    }
    return std::move(tree_);
  }

 private:
  const SchemaGraph& schema_;
  DataTree tree_;
  std::vector<NodeId> stack_;
  Status status_;
};

class XmlBuilder : public InstanceVisitor {
 public:
  XmlBuilder(const SchemaGraph& schema, uint64_t seed)
      : schema_(schema), rng_(seed) {}

  void OnEnter(ElementId e) override {
    if (!status_.ok()) return;
    const std::string& label = schema_.label(e);
    if (stack_.empty()) {
      doc_.root.name = label;
      stack_.push_back(&doc_.root);
      return;
    }
    if (!label.empty() && label[0] == '@') {
      stack_.back()->attributes.emplace_back(label.substr(1),
                                             SynthesizeValue(e));
      stack_.push_back(nullptr);  // matched by OnLeave
      return;
    }
    XmlElement child;
    child.name = label;
    if (schema_.type(e).kind == TypeKind::kSimple) {
      child.text = SynthesizeValue(e);
    }
    XmlElement* parent = stack_.back();
    parent->children.push_back(std::move(child));
    stack_.push_back(&parent->children.back());
  }

  void OnReference(LinkId) override {
    // Reference instances are carried by the idref attribute/element values
    // synthesized above; nothing further to record.
  }

  void OnLeave(ElementId) override {
    if (!status_.ok()) return;
    if (stack_.empty()) {
      status_ = Status::FailedPrecondition("unbalanced leave event");
      return;
    }
    stack_.pop_back();
  }

  Result<XmlDocument> Take() {
    SSUM_RETURN_NOT_OK(status_);
    if (!stack_.empty()) {
      return Status::FailedPrecondition("stream left unclosed nodes");
    }
    return std::move(doc_);
  }

 private:
  std::string SynthesizeValue(ElementId e) {
    ++serial_;
    switch (schema_.type(e).atomic) {
      case AtomicKind::kInt:
        return std::to_string(rng_.NextBounded(100000));
      case AtomicKind::kFloat:
        return FormatDouble(static_cast<double>(rng_.NextBounded(100000)) /
                                100.0,
                            2);
      case AtomicKind::kDate:
        return std::to_string(1998 + rng_.NextBounded(9)) + "-" +
               std::to_string(1 + rng_.NextBounded(12)) + "-" +
               std::to_string(1 + rng_.NextBounded(28));
      case AtomicKind::kId:
        return schema_.label(e) + std::to_string(serial_);
      case AtomicKind::kIdRef:
        return "ref" + std::to_string(1 + rng_.NextBounded(serial_));
      case AtomicKind::kString:
      case AtomicKind::kNone:
        break;
    }
    return "v" + std::to_string(serial_);
  }

  const SchemaGraph& schema_;
  Rng rng_;
  uint64_t serial_ = 0;
  XmlDocument doc_;
  std::vector<XmlElement*> stack_;
  Status status_;
};

}  // namespace

Result<DataTree> MaterializeToDataTree(const InstanceStream& stream) {
  TreeBuilder builder(stream.schema());
  SSUM_RETURN_NOT_OK(stream.Accept(&builder));
  return builder.Take();
}

Result<XmlDocument> MaterializeToXml(const InstanceStream& stream,
                                     const XmlMaterializeOptions& options) {
  XmlBuilder builder(stream.schema(), options.value_seed);
  SSUM_RETURN_NOT_OK(stream.Accept(&builder));
  return builder.Take();
}

}  // namespace ssum
