#include "instance/random_instance.h"

#include <vector>

namespace ssum {

namespace {

class Generator {
 public:
  Generator(const SchemaGraph& schema, const RandomInstanceOptions& options)
      : schema_(schema),
        options_(options),
        rng_(options.seed),
        tree_(&schema),
        nodes_of_(schema.size()) {}

  Result<DataTree> Run() {
    nodes_of_[schema_.root()].push_back(tree_.root());
    SSUM_RETURN_NOT_OK(Populate(tree_.root(), schema_.root()));
    SSUM_RETURN_NOT_OK(AttachReferences());
    return std::move(tree_);
  }

 private:
  Status Populate(NodeId node, ElementId element) {
    const ElementType& type = schema_.type(element);
    if (type.kind == TypeKind::kChoice && !schema_.children(element).empty()) {
      // Exactly one branch.
      const auto& kids = schema_.children(element);
      ElementId branch = kids[rng_.NextBounded(kids.size())];
      return Instantiate(node, branch,
                         schema_.type(branch).set_of
                             ? 1 + rng_.NextPoisson(options_.setof_mean - 1.0)
                             : 1);
    }
    for (ElementId child : schema_.children(element)) {
      uint64_t count;
      if (schema_.type(child).set_of) {
        count = rng_.NextPoisson(options_.setof_mean);
      } else {
        count = rng_.NextBool(options_.presence) ? 1 : 0;
      }
      SSUM_RETURN_NOT_OK(Instantiate(node, child, count));
    }
    return Status::OK();
  }

  Status Instantiate(NodeId parent, ElementId element, uint64_t count) {
    for (uint64_t i = 0; i < count; ++i) {
      if (tree_.size() >= options_.max_nodes) {
        return Status::OutOfRange("random instance exceeds max_nodes");
      }
      NodeId node;
      {
        auto added = tree_.AddNode(parent, element);
        SSUM_RETURN_NOT_OK(added.status());
        node = *added;
      }
      nodes_of_[element].push_back(node);
      SSUM_RETURN_NOT_OK(Populate(node, element));
    }
    return Status::OK();
  }

  Status AttachReferences() {
    for (LinkId l = 0; l < schema_.value_links().size(); ++l) {
      const ValueLink& link = schema_.value_links()[l];
      const auto& referees = nodes_of_[link.referee];
      if (referees.empty()) continue;
      for (NodeId referrer : nodes_of_[link.referrer]) {
        if (!rng_.NextBool(options_.reference_prob)) continue;
        NodeId target = referees[rng_.NextBounded(referees.size())];
        SSUM_RETURN_NOT_OK(tree_.AddReference(l, referrer, target));
      }
    }
    return Status::OK();
  }

  const SchemaGraph& schema_;
  const RandomInstanceOptions& options_;
  Rng rng_;
  DataTree tree_;
  std::vector<std::vector<NodeId>> nodes_of_;
};

}  // namespace

Result<DataTree> GenerateRandomInstance(const SchemaGraph& schema,
                                        const RandomInstanceOptions& options) {
  Generator generator(schema, options);
  return generator.Run();
}

}  // namespace ssum
