#include "stats/delta.h"

#include <algorithm>

#include "store/fingerprint.h"

namespace ssum {

namespace {

/// Signed difference with an overflow guard: annotation counters are
/// instance node counts, far below 2^63 in practice, but a delta built from
/// hostile inputs must not wrap silently.
Result<int64_t> SignedDiff(uint64_t child, uint64_t parent) {
  const uint64_t magnitude = child >= parent ? child - parent : parent - child;
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return Status::FailedPrecondition(
        "annotation delta: counter difference overflows int64");
  }
  return child >= parent ? static_cast<int64_t>(magnitude)
                         : -static_cast<int64_t>(magnitude);
}

/// parent + d with underflow detection; DataLoss because a bad sum means
/// the delta is not the one that was recorded for this parent.
Result<uint64_t> CheckedApply(uint64_t parent, int64_t d, const char* what) {
  if (d < 0) {
    const uint64_t mag = static_cast<uint64_t>(-(d + 1)) + 1;
    if (mag > parent) {
      return Status::DataLoss(std::string("annotation delta: ") + what +
                              " underflows its parent counter");
    }
    return parent - mag;
  }
  return parent + static_cast<uint64_t>(d);
}

}  // namespace

Result<AnnotationDelta> DiffAnnotations(const Annotations& parent,
                                        const Annotations& child) {
  if (parent.num_elements() != child.num_elements() ||
      parent.num_structural_links() != child.num_structural_links() ||
      parent.num_value_links() != child.num_value_links()) {
    return Status::FailedPrecondition(
        "DiffAnnotations: shape mismatch (annotations of different schemas)");
  }
  AnnotationDelta delta;
  delta.parent_fingerprint = FingerprintAnnotations(parent).value;
  delta.child_fingerprint = FingerprintAnnotations(child).value;
  delta.d_card.resize(parent.num_elements());
  delta.d_slink.resize(parent.num_structural_links());
  delta.d_vlink.resize(parent.num_value_links());
  for (size_t e = 0; e < parent.num_elements(); ++e) {
    SSUM_ASSIGN_OR_RETURN(delta.d_card[e],
                          SignedDiff(child.card(e), parent.card(e)));
  }
  for (size_t l = 0; l < parent.num_structural_links(); ++l) {
    SSUM_ASSIGN_OR_RETURN(
        delta.d_slink[l],
        SignedDiff(child.structural_count(l), parent.structural_count(l)));
  }
  for (size_t l = 0; l < parent.num_value_links(); ++l) {
    SSUM_ASSIGN_OR_RETURN(
        delta.d_vlink[l],
        SignedDiff(child.value_count(l), parent.value_count(l)));
  }
  return delta;
}

Result<Annotations> ApplyAnnotationDelta(const SchemaGraph& graph,
                                         const Annotations& parent,
                                         const AnnotationDelta& delta) {
  if (FingerprintAnnotations(parent).value != delta.parent_fingerprint) {
    return Status::FailedPrecondition(
        "annotation delta: parent fingerprint mismatch (delta recorded "
        "against a different base)");
  }
  Annotations child(graph);
  if (parent.num_elements() != child.num_elements() ||
      parent.num_structural_links() != child.num_structural_links() ||
      parent.num_value_links() != child.num_value_links()) {
    return Status::FailedPrecondition(
        "annotation delta: parent annotations do not match the schema");
  }
  if (delta.d_card.size() != child.num_elements() ||
      delta.d_slink.size() != child.num_structural_links() ||
      delta.d_vlink.size() != child.num_value_links()) {
    return Status::DataLoss(
        "annotation delta: delta arrays do not match the schema shape");
  }
  for (size_t e = 0; e < child.num_elements(); ++e) {
    uint64_t v;
    SSUM_ASSIGN_OR_RETURN(
        v, CheckedApply(parent.card(e), delta.d_card[e], "cardinality"));
    child.set_card(e, v);
  }
  for (size_t l = 0; l < child.num_structural_links(); ++l) {
    uint64_t v;
    SSUM_ASSIGN_OR_RETURN(v, CheckedApply(parent.structural_count(l),
                                          delta.d_slink[l],
                                          "structural count"));
    child.set_structural_count(l, v);
  }
  for (size_t l = 0; l < child.num_value_links(); ++l) {
    uint64_t v;
    SSUM_ASSIGN_OR_RETURN(
        v, CheckedApply(parent.value_count(l), delta.d_vlink[l],
                        "value count"));
    child.set_value_count(l, v);
  }
  if (FingerprintAnnotations(child).value != delta.child_fingerprint) {
    return Status::DataLoss(
        "annotation delta: reconstructed child fingerprint mismatch");
  }
  return child;
}

Result<Annotations> DeltaAnnotate(const ShardedInstanceSource& base,
                                  const ShardedInstanceSource& next,
                                  const Annotations& base_annotations,
                                  const std::vector<uint64_t>& dirty_units,
                                  const DeltaAnnotateOptions& options) {
  SSUM_RETURN_NOT_OK(options.parallel.deadline.Check("delta annotation"));
  const uint64_t units = next.NumUnits();
  if (base.NumUnits() != units) {
    return Status::FailedPrecondition(
        "DeltaAnnotate: unit partition changed (" +
        std::to_string(base.NumUnits()) + " vs " + std::to_string(units) +
        " units); fall back to a full pass");
  }
  for (uint64_t u : dirty_units) {
    if (u >= units) {
      return Status::FailedPrecondition(
          "DeltaAnnotate: dirty unit " + std::to_string(u) +
          " out of range (" + std::to_string(units) + " units)");
    }
  }

  // Shard the dirty list like AnnotateSchemaSharded shards the full unit
  // range: per-shard private partials, reduced in index order, so the
  // result is bit-identical for any thread count.
  uint64_t shards = static_cast<uint64_t>(
                        ResolveThreadCount(options.parallel.threads)) *
                    4;
  shards = std::max<uint64_t>(
      1, std::min(shards, std::max<uint64_t>(1, dirty_units.size())));
  std::vector<Annotations> old_parts(shards);
  std::vector<Annotations> new_parts(shards);
  std::vector<Status> statuses(shards, Status::OK());
  SSUM_RETURN_NOT_OK(ParallelFor(
      0, shards, 1,
      [&](size_t s) {
        UnitRange range = ShardUnitRange(dirty_units.size(), s, shards);
        Annotations old_sum(base.schema());
        Annotations new_sum(next.schema());
        for (uint64_t i = range.begin; i < range.end; ++i) {
          const uint64_t u = dirty_units[i];
          auto old_unit = AnnotateUnits(base, u, u + 1);
          if (!old_unit.ok()) {
            statuses[s] = old_unit.status();
            return;
          }
          auto new_unit = AnnotateUnits(next, u, u + 1);
          if (!new_unit.ok()) {
            statuses[s] = new_unit.status();
            return;
          }
          if (Status st = old_sum.Merge(*old_unit); !st.ok()) {
            statuses[s] = std::move(st);
            return;
          }
          if (Status st = new_sum.Merge(*new_unit); !st.ok()) {
            statuses[s] = std::move(st);
            return;
          }
        }
        old_parts[s] = std::move(old_sum);
        new_parts[s] = std::move(new_sum);
      },
      options.parallel));
  for (const Status& s : statuses) SSUM_RETURN_NOT_OK(s);

  Annotations result = base_annotations;
  for (Annotations& part : old_parts) SSUM_RETURN_NOT_OK(result.Subtract(part));
  for (Annotations& part : new_parts) SSUM_RETURN_NOT_OK(result.Merge(part));
  return result;
}

}  // namespace ssum
