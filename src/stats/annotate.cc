#include "stats/annotate.h"

#include <algorithm>

#include "common/logging.h"

namespace ssum {

Annotations::Annotations(const SchemaGraph& graph)
    : card_(graph.size(), 0),
      slink_count_(graph.structural_links().size(), 0),
      vlink_count_(graph.value_links().size(), 0) {}

Annotations Annotations::Uniform(const SchemaGraph& graph) {
  Annotations a(graph);
  std::fill(a.card_.begin(), a.card_.end(), 1);
  std::fill(a.slink_count_.begin(), a.slink_count_.end(), 1);
  std::fill(a.vlink_count_.begin(), a.vlink_count_.end(), 1);
  return a;
}

double Annotations::TotalCard() const {
  double total = 0;
  for (uint64_t c : card_) total += static_cast<double>(c);
  return total;
}

uint64_t Annotations::TotalNodes() const {
  uint64_t total = 0;
  for (uint64_t c : card_) total += c;
  return total;
}

Status Annotations::Merge(const Annotations& other) {
  if (card_.size() != other.card_.size() ||
      slink_count_.size() != other.slink_count_.size() ||
      vlink_count_.size() != other.vlink_count_.size()) {
    return Status::FailedPrecondition(
        "Annotations::Merge: shape mismatch (" +
        std::to_string(card_.size()) + "/" +
        std::to_string(slink_count_.size()) + "/" +
        std::to_string(vlink_count_.size()) + " vs " +
        std::to_string(other.card_.size()) + "/" +
        std::to_string(other.slink_count_.size()) + "/" +
        std::to_string(other.vlink_count_.size()) +
        " elements/structural/value entries)");
  }
  for (size_t e = 0; e < card_.size(); ++e) card_[e] += other.card_[e];
  for (size_t l = 0; l < slink_count_.size(); ++l) {
    slink_count_[l] += other.slink_count_[l];
  }
  for (size_t l = 0; l < vlink_count_.size(); ++l) {
    vlink_count_[l] += other.vlink_count_[l];
  }
  return Status::OK();
}

double Annotations::RelativeCardinality(const SchemaGraph& graph,
                                        ElementId owner,
                                        const Neighbor& nbr) const {
  (void)graph;
  uint64_t owner_card = card_[owner];
  if (owner_card == 0) return 0.0;
  uint64_t count =
      nbr.is_structural ? slink_count_[nbr.link] : vlink_count_[nbr.link];
  return static_cast<double>(count) / static_cast<double>(owner_card);
}

namespace {

/// Figure 3 visitor: counts element and link instances while checking the
/// stream is a well-formed pre-order traversal.
class AnnotateVisitor : public InstanceVisitor {
 public:
  explicit AnnotateVisitor(const SchemaGraph& schema)
      : schema_(schema), annotations_(schema) {}

  void OnEnter(ElementId e) override {
    if (!status_.ok()) return;
    if (e >= schema_.size()) {
      status_ = Status::FailedPrecondition("stream: element id out of range");
      return;
    }
    if (stack_.empty()) {
      if (e != schema_.root()) {
        status_ = Status::FailedPrecondition(
            "stream: first node is not the schema root");
        return;
      }
    } else {
      if (schema_.parent(e) != stack_.back()) {
        status_ = Status::FailedPrecondition(
            "stream: node '" + schema_.label(e) +
            "' entered under node of element '" +
            schema_.label(stack_.back()) + "' but its schema parent is '" +
            (schema_.parent(e) == kInvalidElement
                 ? std::string("<none>")
                 : schema_.label(schema_.parent(e))) +
            "'");
        return;
      }
      annotations_.increment_structural(schema_.parent_link(e));
    }
    annotations_.increment_card(e);
    stack_.push_back(e);
  }

  void OnReference(LinkId vlink) override {
    if (!status_.ok()) return;
    if (vlink >= schema_.value_links().size()) {
      status_ = Status::FailedPrecondition("stream: vlink id out of range");
      return;
    }
    if (stack_.empty()) {
      status_ = Status::FailedPrecondition("stream: reference outside a node");
      return;
    }
    if (schema_.value_links()[vlink].referrer != stack_.back()) {
      status_ = Status::FailedPrecondition(
          "stream: reference emitted by element '" +
          schema_.label(stack_.back()) + "' but link referrer is '" +
          schema_.label(schema_.value_links()[vlink].referrer) + "'");
      return;
    }
    annotations_.increment_value(vlink);
  }

  void OnLeave(ElementId e) override {
    if (!status_.ok()) return;
    if (stack_.empty() || stack_.back() != e) {
      status_ = Status::FailedPrecondition("stream: unbalanced leave event");
      return;
    }
    stack_.pop_back();
  }

  Status Finish() {
    if (!status_.ok()) return status_;
    if (!stack_.empty()) {
      return Status::FailedPrecondition("stream: unclosed nodes at end");
    }
    return Status::OK();
  }

  Annotations Take() { return std::move(annotations_); }

 private:
  const SchemaGraph& schema_;
  Annotations annotations_;
  std::vector<ElementId> stack_;
  Status status_;
};

}  // namespace

Result<Annotations> AnnotateSchema(const InstanceStream& stream) {
  AnnotateVisitor visitor(stream.schema());
  SSUM_RETURN_NOT_OK(stream.Accept(&visitor));
  SSUM_RETURN_NOT_OK(visitor.Finish());
  return visitor.Take();
}

EdgeMetrics EdgeMetrics::Compute(const SchemaGraph& graph,
                                 const Annotations& annotations) {
  const size_t n = graph.size();
  EdgeMetrics m;
  m.rc.resize(n);
  m.w.resize(n);
  m.edge_affinity.resize(n);
  m.mirror.resize(n);
  for (ElementId e = 0; e < n; ++e) {
    const auto& nbrs = graph.neighbors(e);
    auto& rc = m.rc[e];
    auto& w = m.w[e];
    auto& aff = m.edge_affinity[e];
    auto& mir = m.mirror[e];
    rc.resize(nbrs.size());
    w.resize(nbrs.size());
    aff.resize(nbrs.size());
    mir.resize(nbrs.size());
    double total_rc = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      rc[i] = annotations.RelativeCardinality(graph, e, nbrs[i]);
      total_rc += rc[i];
      aff[i] = rc[i] > 0 ? std::min(rc[i], 1.0 / rc[i]) : 0.0;
      // Locate the mirror adjacency record at the other endpoint: the entry
      // with the same link id and class, opposite direction.
      const auto& other_nbrs = graph.neighbors(nbrs[i].other);
      uint32_t found = 0;
      bool ok = false;
      for (size_t j = 0; j < other_nbrs.size(); ++j) {
        if (other_nbrs[j].link == nbrs[i].link &&
            other_nbrs[j].is_structural == nbrs[i].is_structural &&
            other_nbrs[j].forward != nbrs[i].forward) {
          found = static_cast<uint32_t>(j);
          ok = true;
          break;
        }
      }
      SSUM_CHECK(ok, "mirror adjacency entry not found");
      mir[i] = found;
    }
    if (total_rc > 0) {
      for (size_t i = 0; i < nbrs.size(); ++i) w[i] = rc[i] / total_rc;
    } else if (!nbrs.empty()) {
      // Zero-cardinality element: distribute uniformly so the importance
      // iteration still conserves total importance.
      double u = 1.0 / static_cast<double>(nbrs.size());
      std::fill(w.begin(), w.end(), u);
    }
  }
  return m;
}

}  // namespace ssum
