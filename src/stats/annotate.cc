#include "stats/annotate.h"

#include <algorithm>

#include "common/logging.h"

namespace ssum {

Annotations::Annotations(const SchemaGraph& graph)
    : card_(graph.size(), 0),
      slink_count_(graph.structural_links().size(), 0),
      vlink_count_(graph.value_links().size(), 0) {}

Annotations Annotations::Uniform(const SchemaGraph& graph) {
  Annotations a(graph);
  std::fill(a.card_.begin(), a.card_.end(), 1);
  std::fill(a.slink_count_.begin(), a.slink_count_.end(), 1);
  std::fill(a.vlink_count_.begin(), a.vlink_count_.end(), 1);
  return a;
}

double Annotations::TotalCard() const {
  double total = 0;
  for (uint64_t c : card_) total += static_cast<double>(c);
  return total;
}

uint64_t Annotations::TotalNodes() const {
  uint64_t total = 0;
  for (uint64_t c : card_) total += c;
  return total;
}

Status Annotations::Merge(const Annotations& other) {
  if (card_.size() != other.card_.size() ||
      slink_count_.size() != other.slink_count_.size() ||
      vlink_count_.size() != other.vlink_count_.size()) {
    return Status::FailedPrecondition(
        "Annotations::Merge: shape mismatch (" +
        std::to_string(card_.size()) + "/" +
        std::to_string(slink_count_.size()) + "/" +
        std::to_string(vlink_count_.size()) + " vs " +
        std::to_string(other.card_.size()) + "/" +
        std::to_string(other.slink_count_.size()) + "/" +
        std::to_string(other.vlink_count_.size()) +
        " elements/structural/value entries)");
  }
  for (size_t e = 0; e < card_.size(); ++e) card_[e] += other.card_[e];
  for (size_t l = 0; l < slink_count_.size(); ++l) {
    slink_count_[l] += other.slink_count_[l];
  }
  for (size_t l = 0; l < vlink_count_.size(); ++l) {
    vlink_count_[l] += other.vlink_count_[l];
  }
  return Status::OK();
}

Status Annotations::Subtract(const Annotations& other) {
  if (card_.size() != other.card_.size() ||
      slink_count_.size() != other.slink_count_.size() ||
      vlink_count_.size() != other.vlink_count_.size()) {
    return Status::FailedPrecondition(
        "Annotations::Subtract: shape mismatch (" +
        std::to_string(card_.size()) + "/" +
        std::to_string(slink_count_.size()) + "/" +
        std::to_string(vlink_count_.size()) + " vs " +
        std::to_string(other.card_.size()) + "/" +
        std::to_string(other.slink_count_.size()) + "/" +
        std::to_string(other.vlink_count_.size()) +
        " elements/structural/value entries)");
  }
  // Validate before mutating: a failed Subtract must leave this intact so
  // the caller can fall back to a cold pass on the unharmed base.
  for (size_t e = 0; e < card_.size(); ++e) {
    if (other.card_[e] > card_[e]) {
      return Status::FailedPrecondition(
          "Annotations::Subtract: cardinality underflow at element " +
          std::to_string(e));
    }
  }
  for (size_t l = 0; l < slink_count_.size(); ++l) {
    if (other.slink_count_[l] > slink_count_[l]) {
      return Status::FailedPrecondition(
          "Annotations::Subtract: structural-count underflow at link " +
          std::to_string(l));
    }
  }
  for (size_t l = 0; l < vlink_count_.size(); ++l) {
    if (other.vlink_count_[l] > vlink_count_[l]) {
      return Status::FailedPrecondition(
          "Annotations::Subtract: value-count underflow at link " +
          std::to_string(l));
    }
  }
  for (size_t e = 0; e < card_.size(); ++e) card_[e] -= other.card_[e];
  for (size_t l = 0; l < slink_count_.size(); ++l) {
    slink_count_[l] -= other.slink_count_[l];
  }
  for (size_t l = 0; l < vlink_count_.size(); ++l) {
    vlink_count_[l] -= other.vlink_count_[l];
  }
  return Status::OK();
}

double Annotations::RelativeCardinality(const SchemaGraph& graph,
                                        ElementId owner,
                                        const Neighbor& nbr) const {
  (void)graph;
  uint64_t owner_card = card_[owner];
  if (owner_card == 0) return 0.0;
  uint64_t count =
      nbr.is_structural ? slink_count_[nbr.link] : vlink_count_[nbr.link];
  return static_cast<double>(count) / static_cast<double>(owner_card);
}

namespace {

/// Figure 3 visitor: counts element and link instances while checking the
/// stream is a well-formed pre-order traversal.
///
/// Two anchoring modes:
///   - kRoot (AnnotateSchema): the stream is one full traversal — the first
///     node must be the schema root.
///   - kSubtrees (AnnotateUnits): the stream is a sequence of complete unit
///     subtrees rooted at non-root elements. Each unit root counts its
///     parent structural link exactly as the serial pass entering it under
///     its container does, so per-shard results merge to the serial counts.
class AnnotateVisitor : public InstanceVisitor {
 public:
  enum class Anchor { kRoot, kSubtrees };

  explicit AnnotateVisitor(const SchemaGraph& schema,
                           Anchor anchor = Anchor::kRoot)
      : schema_(schema), annotations_(schema), anchor_(anchor) {}

  void OnEnter(ElementId e) override {
    if (!status_.ok()) return;
    if (e >= schema_.size()) {
      status_ = Status::FailedPrecondition("stream: element id out of range");
      return;
    }
    if (stack_.empty()) {
      if (anchor_ == Anchor::kSubtrees) {
        if (e == schema_.root()) {
          status_ = Status::FailedPrecondition(
              "stream: unit subtree rooted at the schema root");
          return;
        }
        // The unit's container is not part of this shard's stream; count
        // the container -> unit-root link the serial pass would count.
        annotations_.increment_structural(schema_.parent_link(e));
      } else if (e != schema_.root()) {
        status_ = Status::FailedPrecondition(
            "stream: first node is not the schema root");
        return;
      }
    } else {
      if (schema_.parent(e) != stack_.back()) {
        status_ = Status::FailedPrecondition(
            "stream: node '" + schema_.label(e) +
            "' entered under node of element '" +
            schema_.label(stack_.back()) + "' but its schema parent is '" +
            (schema_.parent(e) == kInvalidElement
                 ? std::string("<none>")
                 : schema_.label(schema_.parent(e))) +
            "'");
        return;
      }
      annotations_.increment_structural(schema_.parent_link(e));
    }
    annotations_.increment_card(e);
    stack_.push_back(e);
  }

  void OnReference(LinkId vlink) override {
    if (!status_.ok()) return;
    if (vlink >= schema_.value_links().size()) {
      status_ = Status::FailedPrecondition("stream: vlink id out of range");
      return;
    }
    if (stack_.empty()) {
      status_ = Status::FailedPrecondition("stream: reference outside a node");
      return;
    }
    if (schema_.value_links()[vlink].referrer != stack_.back()) {
      status_ = Status::FailedPrecondition(
          "stream: reference emitted by element '" +
          schema_.label(stack_.back()) + "' but link referrer is '" +
          schema_.label(schema_.value_links()[vlink].referrer) + "'");
      return;
    }
    annotations_.increment_value(vlink);
  }

  void OnLeave(ElementId e) override {
    if (!status_.ok()) return;
    if (stack_.empty() || stack_.back() != e) {
      status_ = Status::FailedPrecondition("stream: unbalanced leave event");
      return;
    }
    stack_.pop_back();
  }

  Status Finish() {
    if (!status_.ok()) return status_;
    if (!stack_.empty()) {
      return Status::FailedPrecondition("stream: unclosed nodes at end");
    }
    return Status::OK();
  }

  Annotations Take() { return std::move(annotations_); }

 private:
  const SchemaGraph& schema_;
  Annotations annotations_;
  std::vector<ElementId> stack_;
  Status status_;
  Anchor anchor_;
};

/// Presents a sharded source's skeleton as a plain InstanceStream so the
/// root-anchored visitor path annotates it unchanged.
class SkeletonStream : public InstanceStream {
 public:
  explicit SkeletonStream(const ShardedInstanceSource& source)
      : source_(source) {}

  const SchemaGraph& schema() const override { return source_.schema(); }
  Status Accept(InstanceVisitor* visitor) const override {
    return source_.AcceptSkeleton(visitor);
  }

 private:
  const ShardedInstanceSource& source_;
};

}  // namespace

Result<Annotations> AnnotateSchema(const InstanceStream& stream) {
  AnnotateVisitor visitor(stream.schema());
  SSUM_RETURN_NOT_OK(stream.Accept(&visitor));
  SSUM_RETURN_NOT_OK(visitor.Finish());
  return visitor.Take();
}

Result<Annotations> AnnotateUnits(const ShardedInstanceSource& source,
                                  uint64_t begin, uint64_t end) {
  AnnotateVisitor visitor(source.schema(), AnnotateVisitor::Anchor::kSubtrees);
  SSUM_RETURN_NOT_OK(source.AcceptUnits(begin, end, &visitor));
  SSUM_RETURN_NOT_OK(visitor.Finish());
  return visitor.Take();
}

Result<Annotations> AnnotateSchemaSharded(const ShardedInstanceSource& source,
                                          const ShardedAnnotateOptions& options) {
  SSUM_RETURN_NOT_OK(options.parallel.deadline.Check("sharded annotation"));
  const uint64_t units = source.NumUnits();
  uint64_t shards = options.shards;
  if (shards == 0) {
    // Enough shards per thread that uneven unit subtrees still balance.
    shards = static_cast<uint64_t>(
                 ResolveThreadCount(options.parallel.threads)) *
             4;
  }
  shards = std::max<uint64_t>(1, std::min(shards, std::max<uint64_t>(1, units)));

  Annotations total;
  SSUM_ASSIGN_OR_RETURN(total, AnnotateSchema(SkeletonStream(source)));

  // One private Annotations per shard; ParallelFor's chunk schedule never
  // affects which shard writes which slot, so the reduction below is the
  // same for any thread count.
  // Passing the full ParallelOptions (not just the width) is what carries
  // the deadline to every shard claim: an expired budget fails the
  // remaining shards with kDeadlineExceeded instead of parsing them.
  std::vector<Annotations> parts(shards);
  std::vector<Status> statuses(shards, Status::OK());
  SSUM_RETURN_NOT_OK(ParallelFor(
      0, shards, 1,
      [&](size_t s) {
        UnitRange range = ShardUnitRange(units, s, shards);
        auto part = AnnotateUnits(source, range.begin, range.end);
        if (part.ok()) {
          parts[s] = std::move(*part);
        } else {
          statuses[s] = part.status();
        }
      },
      options.parallel));
  for (const Status& s : statuses) SSUM_RETURN_NOT_OK(s);
  // Counter addition is associative and commutative over uint64, but merge
  // in index order anyway: the reduction order is then a fixed, documented
  // property rather than an accident of scheduling.
  for (Annotations& part : parts) SSUM_RETURN_NOT_OK(total.Merge(part));
  return total;
}

std::vector<ElementId> DirtyMetricElements(const Annotations& base,
                                           const EdgeMetrics& base_metrics,
                                           const Annotations& next,
                                           const EdgeMetrics& next_metrics) {
  SSUM_CHECK(base.num_elements() == next.num_elements() &&
                 base_metrics.edge_affinity.size() ==
                     next_metrics.edge_affinity.size(),
             "DirtyMetricElements: annotations of different schemas");
  std::vector<ElementId> dirty;
  for (ElementId e = 0; e < base.num_elements(); ++e) {
    if (base.card(e) != next.card(e) ||
        base_metrics.edge_affinity[e] != next_metrics.edge_affinity[e] ||
        base_metrics.w[e] != next_metrics.w[e]) {
      dirty.push_back(e);
    }
  }
  return dirty;
}

EdgeMetrics EdgeMetrics::Compute(const SchemaGraph& graph,
                                 const Annotations& annotations) {
  const size_t n = graph.size();
  EdgeMetrics m;
  m.rc.resize(n);
  m.w.resize(n);
  m.edge_affinity.resize(n);
  m.mirror.resize(n);
  for (ElementId e = 0; e < n; ++e) {
    const auto& nbrs = graph.neighbors(e);
    auto& rc = m.rc[e];
    auto& w = m.w[e];
    auto& aff = m.edge_affinity[e];
    auto& mir = m.mirror[e];
    rc.resize(nbrs.size());
    w.resize(nbrs.size());
    aff.resize(nbrs.size());
    mir.resize(nbrs.size());
    double total_rc = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      rc[i] = annotations.RelativeCardinality(graph, e, nbrs[i]);
      total_rc += rc[i];
      aff[i] = rc[i] > 0 ? std::min(rc[i], 1.0 / rc[i]) : 0.0;
      // Locate the mirror adjacency record at the other endpoint: the entry
      // with the same link id and class, opposite direction.
      const auto& other_nbrs = graph.neighbors(nbrs[i].other);
      uint32_t found = 0;
      bool ok = false;
      for (size_t j = 0; j < other_nbrs.size(); ++j) {
        if (other_nbrs[j].link == nbrs[i].link &&
            other_nbrs[j].is_structural == nbrs[i].is_structural &&
            other_nbrs[j].forward != nbrs[i].forward) {
          found = static_cast<uint32_t>(j);
          ok = true;
          break;
        }
      }
      SSUM_CHECK(ok, "mirror adjacency entry not found");
      mir[i] = found;
    }
    if (total_rc > 0) {
      for (size_t i = 0; i < nbrs.size(); ++i) w[i] = rc[i] / total_rc;
    } else if (!nbrs.empty()) {
      // Zero-cardinality element: distribute uniformly so the importance
      // iteration still conserves total importance.
      double u = 1.0 / static_cast<double>(nbrs.size());
      std::fill(w.begin(), w.end(), u);
    }
  }
  return m;
}

}  // namespace ssum
