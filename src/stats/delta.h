#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "instance/sharded_stream.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// The difference between two Annotations of the same schema, as signed
/// per-counter deltas (child - parent). Because annotation counting is exact
/// uint64 arithmetic, parent + delta reproduces the child bit-identically —
/// the store persists a delta plus the parent's identity instead of the full
/// child arrays (snapshot lineage, store/artifact_cache.h).
///
/// The parent/child fields are content fingerprints of the annotation
/// *arrays* (store/fingerprint.h FingerprintAnnotations), not cache keys:
/// Apply checks them so a delta can never be applied to the wrong base
/// (clean miss) and a corrupted-but-CRC-colliding payload can never produce
/// a wrong child (DataLoss).
struct AnnotationDelta {
  uint64_t parent_fingerprint = 0;  ///< FingerprintAnnotations(parent).value
  uint64_t child_fingerprint = 0;   ///< FingerprintAnnotations(child).value
  std::vector<int64_t> d_card;      ///< child.card - parent.card
  std::vector<int64_t> d_slink;     ///< child structural counts - parent's
  std::vector<int64_t> d_vlink;     ///< child value counts - parent's
  /// Provenance stats (informational, carried for `cache lineage`).
  uint64_t dirty_units = 0;
  uint64_t total_units = 0;

  bool operator==(const AnnotationDelta&) const = default;
};

/// Builds the delta child - parent. Fails with FailedPrecondition when the
/// shapes differ (annotations of different schemas).
Result<AnnotationDelta> DiffAnnotations(const Annotations& parent,
                                        const Annotations& child);

/// Applies `delta` to `parent`, returning the reconstructed child.
///   - parent fingerprint mismatch -> FailedPrecondition (wrong base: a
///     clean miss for the lineage resolver, never an error surfaced to the
///     pipeline);
///   - shape mismatch vs `graph`, counter underflow, or a result whose
///     fingerprint differs from the recorded child -> DataLoss (the delta
///     bytes decoded but are not the delta that was stored).
Result<Annotations> ApplyAnnotationDelta(const SchemaGraph& graph,
                                         const Annotations& parent,
                                         const AnnotationDelta& delta);

/// Options for the delta-annotation pass.
struct DeltaAnnotateOptions {
  /// Worker threads re-walking the dirty units (ParallelFor). Per-shard
  /// partial annotations are reduced in index order, so the result is
  /// bit-identical for any thread count.
  ParallelOptions parallel;
};

/// Incremental annotateSchema: given the base instance, the next instance,
/// the base's full Annotations, and the set of units whose subtrees changed,
/// re-walks only the dirty units in both sources and returns
///
///   base_annotations - sum(dirty old units) + sum(dirty new units).
///
/// Counting is additive and exact, so this is bit-identical to a full
/// AnnotateSchemaSharded pass over `next` — provided the two sources share
/// the schema, the skeleton, and the unit partition, and `dirty_units`
/// covers every differing unit (ComputeUnitDigests/DiffUnitDigests, or an
/// analytic dirty set from a generator). Violations the pass can detect —
/// unit-count mismatch, shape mismatch, counter underflow — fail with
/// FailedPrecondition; the caller falls back to the cold path.
Result<Annotations> DeltaAnnotate(const ShardedInstanceSource& base,
                                  const ShardedInstanceSource& next,
                                  const Annotations& base_annotations,
                                  const std::vector<uint64_t>& dirty_units,
                                  const DeltaAnnotateOptions& options = {});

}  // namespace ssum
