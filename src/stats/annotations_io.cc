#include "stats/annotations_io.h"

#include <fstream>
#include <sstream>

#include "common/status_builder.h"
#include "common/string_util.h"

namespace ssum {

std::string SerializeAnnotations(const Annotations& annotations) {
  std::ostringstream os;
  os << "ssum-annotations v1\n";
  for (size_t e = 0; e < annotations.num_elements(); ++e) {
    uint64_t c = annotations.card(static_cast<ElementId>(e));
    if (c) os << "c\t" << e << '\t' << c << '\n';
  }
  for (size_t l = 0; l < annotations.num_structural_links(); ++l) {
    uint64_t c = annotations.structural_count(static_cast<LinkId>(l));
    if (c) os << "s\t" << l << '\t' << c << '\n';
  }
  for (size_t l = 0; l < annotations.num_value_links(); ++l) {
    uint64_t c = annotations.value_count(static_cast<LinkId>(l));
    if (c) os << "w\t" << l << '\t' << c << '\n';
  }
  return os.str();
}

Result<Annotations> ParseAnnotations(const SchemaGraph& graph,
                                     const std::string& text,
                                     const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(text.size(), limits, "annotations text"));
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) ||
      TrimWhitespace(line) != "ssum-annotations v1") {
    return ParseErrorAt(1, 0) << "missing 'ssum-annotations v1' header";
  }
  Annotations annotations(graph);
  size_t line_no = 1;
  size_t line_offset = line.size() + 1;
  size_t records = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const size_t this_offset = line_offset;
    line_offset += line.size() + 1;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    if (++records > limits.max_items) {
      return ParseErrorAt(line_no, this_offset)
             << "annotations exceed the " << limits.max_items
             << "-record limit";
    }
    std::vector<std::string> f = SplitString(line, '\t');
    auto fail = [&](const std::string& why) {
      return Status(ParseErrorAt(line_no, this_offset) << why);
    };
    if (f.size() != 3) return fail("expected 3 fields");
    int64_t id, count;
    SSUM_ASSIGN_OR_RETURN(id, ParseInt64(f[1]));
    SSUM_ASSIGN_OR_RETURN(count, ParseInt64(f[2]));
    if (id < 0 || count < 0) return fail("negative id or count");
    if (f[0] == "c") {
      if (static_cast<size_t>(id) >= graph.size())
        return fail("element id out of range");
      annotations.set_card(static_cast<ElementId>(id),
                           static_cast<uint64_t>(count));
    } else if (f[0] == "s") {
      if (static_cast<size_t>(id) >= graph.structural_links().size())
        return fail("structural link id out of range");
      annotations.set_structural_count(static_cast<LinkId>(id),
                                       static_cast<uint64_t>(count));
    } else if (f[0] == "w") {
      if (static_cast<size_t>(id) >= graph.value_links().size())
        return fail("value link id out of range");
      annotations.set_value_count(static_cast<LinkId>(id),
                                  static_cast<uint64_t>(count));
    } else {
      return fail("unknown record type '" + f[0] + "'");
    }
  }
  return annotations;
}

Status WriteAnnotationsFile(const Annotations& annotations,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << SerializeAnnotations(annotations);
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<Annotations> ReadAnnotationsFile(const SchemaGraph& graph,
                                        const std::string& path,
                                        const ParseLimits& limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto annotations = ParseAnnotations(graph, buf.str(), limits);
  if (!annotations.ok()) return annotations.status().WithContext(path);
  return annotations;
}

}  // namespace ssum
