#pragma once

#include <string>

#include "common/result.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// Text round-trip for annotations, so expensive annotation passes over
/// large databases can be cached next to the schema file. Format:
///
///   ssum-annotations v1
///   c <tab> <element id> <tab> <cardinality>
///   s <tab> <structural link id> <tab> <count>
///   w <tab> <value link id> <tab> <count>
///
/// Zero entries may be omitted.
std::string SerializeAnnotations(const Annotations& annotations);

/// Parses annotations shaped for `graph`; ids out of range fail.
Result<Annotations> ParseAnnotations(const SchemaGraph& graph,
                                     const std::string& text);

Status WriteAnnotationsFile(const Annotations& annotations,
                            const std::string& path);
Result<Annotations> ReadAnnotationsFile(const SchemaGraph& graph,
                                        const std::string& path);

}  // namespace ssum
