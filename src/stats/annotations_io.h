#pragma once

#include <string>

#include "common/parse_limits.h"
#include "common/result.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// Text round-trip for annotations, so expensive annotation passes over
/// large databases can be cached next to the schema file. Format:
///
///   ssum-annotations v1
///   c <tab> <element id> <tab> <cardinality>
///   s <tab> <structural link id> <tab> <count>
///   w <tab> <value link id> <tab> <count>
///
/// Zero entries may be omitted.
std::string SerializeAnnotations(const Annotations& annotations);

/// Parses annotations shaped for `graph`; ids out of range fail. Abort-free:
/// malformed lines yield a ParseError with line and byte-offset context,
/// over-limit input an OutOfRange status.
Result<Annotations> ParseAnnotations(
    const SchemaGraph& graph, const std::string& text,
    const ParseLimits& limits = ParseLimits::Defaults());

Status WriteAnnotationsFile(const Annotations& annotations,
                            const std::string& path);
Result<Annotations> ReadAnnotationsFile(
    const SchemaGraph& graph, const std::string& path,
    const ParseLimits& limits = ParseLimits::Defaults());

}  // namespace ssum
