#pragma once

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/result.h"
#include "instance/event_stream.h"
#include "instance/sharded_stream.h"
#include "schema/schema_graph.h"

namespace ssum {

/// Database-derived statistics of a schema graph (paper Figure 3):
/// element cardinalities and per-link instance counts, from which relative
/// cardinalities RC(e1 -> e2) are computed.
///
/// The paper increments a counter at both endpoints of a link for every link
/// instance; both counters are always equal, so a single per-link count is
/// stored and RC divides it by the cardinality of the queried endpoint:
///
///   RC(e1 -> e2) = link_count / card(e1)     (average #e2 per e1 node)
class Annotations {
 public:
  Annotations() = default;

  /// Zero-initialized annotations shaped for `graph`.
  explicit Annotations(const SchemaGraph& graph);

  /// "Schema-driven" annotations (paper Section 5.4): every element has
  /// cardinality 1 and every RC is exactly 1, erasing all data information.
  static Annotations Uniform(const SchemaGraph& graph);

  uint64_t card(ElementId e) const { return card_[e]; }
  uint64_t structural_count(LinkId l) const { return slink_count_[l]; }
  uint64_t value_count(LinkId l) const { return vlink_count_[l]; }

  void set_card(ElementId e, uint64_t v) { card_[e] = v; }
  void set_structural_count(LinkId l, uint64_t v) { slink_count_[l] = v; }
  void set_value_count(LinkId l, uint64_t v) { vlink_count_[l] = v; }

  void increment_card(ElementId e) { ++card_[e]; }
  void increment_structural(LinkId l) { ++slink_count_[l]; }
  void increment_value(LinkId l) { ++vlink_count_[l]; }

  /// Total cardinality over all elements — the paper's importance-sum
  /// invariant and the denominator of Definitions 3 and 4.
  double TotalCard() const;

  /// Exact integer total cardinality = the number of data nodes in the
  /// annotated instance (every node increments exactly one element's
  /// cardinality during annotateSchema).
  uint64_t TotalNodes() const;

  /// Element-wise sum of `other` into this. Counting is additive over any
  /// partition of the instance stream, so per-shard annotation passes merge
  /// into exactly the counters one full pass produces — the enabler for
  /// sharding AnnotateSchema over the instance stream and for merging
  /// per-shard snapshot containers. Fails with FailedPrecondition when the
  /// shapes differ (annotations of different schemas).
  Status Merge(const Annotations& other);

  /// Element-wise subtraction of `other` from this — the inverse of Merge,
  /// used by delta-annotation to retire the counts of units that changed
  /// before merging their re-walked replacements. Fails with
  /// FailedPrecondition on shape mismatch or when any counter would
  /// underflow (the subtrahend was not produced from a subset of this
  /// instance), leaving this unmodified in both cases.
  Status Subtract(const Annotations& other);

  /// RC along an adjacency record owned by `owner` (the average number of
  /// `nbr.other` data nodes connected to each `owner` node). Returns 0 when
  /// owner has no instances.
  double RelativeCardinality(const SchemaGraph& graph, ElementId owner,
                             const Neighbor& nbr) const;

  size_t num_elements() const { return card_.size(); }
  size_t num_structural_links() const { return slink_count_.size(); }
  size_t num_value_links() const { return vlink_count_.size(); }

  bool operator==(const Annotations&) const = default;

 private:
  std::vector<uint64_t> card_;
  std::vector<uint64_t> slink_count_;
  std::vector<uint64_t> vlink_count_;
};

/// Runs the annotateSchema pass (Figure 3) over one depth-first traversal of
/// the database. Verifies stream well-formedness (parentage, balanced
/// enter/leave) and fails with FailedPrecondition on violations.
Result<Annotations> AnnotateSchema(const InstanceStream& stream);

/// Options for the sharded annotation pass.
struct ShardedAnnotateOptions {
  /// Number of instance shards. 0 picks 4 * ResolveThreadCount(threads)
  /// (enough slack for the thread pool to balance uneven unit subtrees);
  /// always clamped to [1, NumUnits()]. The result is bit-identical for
  /// every shard count, so the automatic choice never changes outputs.
  uint64_t shards = 0;
  /// Worker threads running the shards (ParallelFor); inherits the
  /// process-wide default / SSUM_THREADS resolution.
  ParallelOptions parallel;
};

/// Sharded annotateSchema over a splittable instance source: every shard
/// runs the Figure 3 counting walk over its unit sub-range into a private
/// Annotations, then shard results are reduced in index order with
/// Annotations::Merge on top of the skeleton pass. Counting is additive
/// over any partition of the event stream, so the result is bit-identical
/// to AnnotateSchema over the equivalent serial traversal — for any shard
/// count and any thread count (see docs/performance.md).
Result<Annotations> AnnotateSchemaSharded(
    const ShardedInstanceSource& source,
    const ShardedAnnotateOptions& options = {});

/// Annotates the unit subtrees [begin, end) of `source` only — no skeleton
/// events. Verifies each unit is a balanced subtree whose nested structure
/// matches the schema; the unit root's parent structural link is counted
/// exactly as a serial pass entering it under its container would.
Result<Annotations> AnnotateUnits(const ShardedInstanceSource& source,
                                  uint64_t begin, uint64_t end);

/// Derived per-adjacency metrics used by every formula in Section 3.
/// All vectors are aligned with graph.neighbors(e).
struct EdgeMetrics {
  /// rc[e][i] = RC(e -> neighbors(e)[i].other).
  std::vector<std::vector<double>> rc;
  /// w[e][i] = neighbor weight W (Formula 1): rc normalized over e's
  /// adjacency; uniform fallback when all RCs are zero so that weights
  /// always sum to 1 (preserving the importance-sum invariant).
  std::vector<std::vector<double>> w;
  /// edge_affinity[e][i] = min(rc, 1/rc) — single-step affinity. 1/rc per
  /// Formula 2 for rc >= 1; links with rc < 1 (rare/partial connections)
  /// attenuate to rc rather than inflating past 1, keeping multi-step
  /// affinities bounded (see DESIGN.md interpretation notes); 0 when rc = 0.
  std::vector<std::vector<double>> edge_affinity;
  /// mirror[e][i] = index j such that graph.neighbors(other)[j] is the same
  /// physical link viewed from the other endpoint.
  std::vector<std::vector<uint32_t>> mirror;

  static EdgeMetrics Compute(const SchemaGraph& graph,
                             const Annotations& annotations);
};

/// Elements whose matrix-relevant statistics differ between two
/// (annotations, metrics) pairs over the same schema: cardinality, per-edge
/// affinity row, or neighbor-weight row. This is the seed set for the
/// dirty-frontier closure of incremental matrix patching
/// (AffinityMatrix::TryPatch / CoverageMatrix::TryPatch): a walk row can
/// only change if it traverses an edge owned by one of these elements or
/// scales by a changed cardinality. Both metrics must be computed over the
/// same graph (mirror indices are structural and always match).
std::vector<ElementId> DirtyMetricElements(const Annotations& base,
                                           const EdgeMetrics& base_metrics,
                                           const Annotations& next,
                                           const EdgeMetrics& next_metrics);

}  // namespace ssum
