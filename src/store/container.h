#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace ssum {

/// Versioned binary snapshot container — the on-disk envelope for every
/// artifact the warm-start store persists (annotations, affinity/coverage
/// matrices, summaries). The layout is deliberately SCR-checkpoint-shaped:
/// a self-describing header, length-prefixed sections each guarded by its
/// own CRC32C, and a trailer checksum over the whole file, so that *any*
/// single corrupted or truncated byte is detected and surfaces as a Status
/// (never a crash, honoring the abort-free ingestion contract):
///
///   header   (24 bytes)
///     [0..8)    magic "SSUMBIN\x1a"
///     [8..12)   u32 LE  format version (kContainerFormatVersion)
///     [12..16)  u32 LE  payload kind (PayloadKind, or foreign values)
///     [16..20)  u32 LE  section count
///     [20..24)  u32 LE  CRC32C of bytes [0..20)
///   sections (section count times)
///     u32 LE  section tag (artifact-defined)
///     u64 LE  payload size in bytes
///     payload
///     u32 LE  CRC32C of the payload
///   trailer  (12 bytes)
///     u64 LE  total container size in bytes (including this trailer)
///     u32 LE  CRC32C of every preceding byte of the container
///
/// Version/compat policy: readers of version N parse exactly version N.
/// A valid header with a different version (or an unknown payload kind) is
/// *not* corruption — PeekContainer succeeds and reports it, and cache
/// lookups treat it as a clean miss so one cache directory can be shared
/// across format generations. Anything failing a checksum or structurally
/// impossible is kDataLoss; anything cut short is kOutOfRange. Both carry
/// the byte offset of the first inconsistency.
inline constexpr uint32_t kContainerFormatVersion = 1;
inline constexpr size_t kContainerMagicSize = 8;
inline constexpr char kContainerMagic[kContainerMagicSize + 1] = "SSUMBIN\x1a";
inline constexpr size_t kContainerHeaderSize = 24;
inline constexpr size_t kContainerTrailerSize = 12;
inline constexpr size_t kContainerSectionOverhead = 4 + 8 + 4;

/// Payload kinds of the current format version. Stored as a raw u32 so
/// foreign (newer) kinds remain representable.
enum class PayloadKind : uint32_t {
  kAnnotations = 1,
  kSquareMatrix = 2,
  kSummary = 3,
  // Wire messages of the serving daemon (src/serve/wire.h). They share the
  // container envelope but never land in the artifact cache, whose
  // known-kind check deliberately excludes them.
  kServeRequest = 4,
  kServeResponse = 5,
  // Annotation delta between two snapshot versions (stats/delta.h), keyed
  // by the child annotations cache key and carrying its parent's key — the
  // lineage links of the incremental summarization store.
  kAnnotationDelta = 6,
};

const char* PayloadKindName(uint32_t kind);

/// Header fields recoverable without parsing the section list; what cache
/// lookups use to classify foreign-version files as clean misses.
struct ContainerInfo {
  uint32_t format_version = 0;
  uint32_t payload_kind = 0;
  uint32_t section_count = 0;
};

/// One decoded section: a view into the container's bytes (valid as long as
/// the parsed byte string outlives the Container).
struct ContainerSection {
  uint32_t tag = 0;
  std::string_view payload;
};

/// A fully verified container: every CRC checked, every length consistent.
struct Container {
  ContainerInfo info;
  std::vector<ContainerSection> sections;

  /// First section with `tag`, or NotFound.
  Result<std::string_view> Section(uint32_t tag) const;
};

/// Validates magic and header CRC only; succeeds for foreign versions.
/// Truncation -> OutOfRange, bad magic / bad header CRC -> DataLoss.
Result<ContainerInfo> PeekContainer(std::string_view bytes);

/// Fully parses and verifies a version-kContainerFormatVersion container.
/// Foreign versions -> FailedPrecondition (callers that tolerate skew call
/// PeekContainer first); corruption -> DataLoss; truncation -> OutOfRange.
/// All errors carry the byte offset of the first inconsistency.
Result<Container> ParseContainer(std::string_view bytes);

/// Builds containers. Sections are appended in order; Finish() seals the
/// container and returns the bytes.
class ContainerWriter {
 public:
  /// `format_version` is overridable only to fabricate version-skew
  /// fixtures in tests; production callers always write the current one.
  explicit ContainerWriter(uint32_t payload_kind,
                           uint32_t format_version = kContainerFormatVersion);
  explicit ContainerWriter(PayloadKind kind)
      : ContainerWriter(static_cast<uint32_t>(kind)) {}

  void AddSection(uint32_t tag, std::string_view payload);

  /// Seals and returns the container bytes. The writer is consumed.
  std::string Finish() &&;

 private:
  uint32_t payload_kind_;
  uint32_t format_version_;
  uint32_t section_count_ = 0;
  std::string body_;  // section stream, accumulated
};

/// Writes `bytes` to `path` atomically and durably through `env`: write to
/// "<path>.tmp.<unique>" in the same directory, flush, **fsync**, close,
/// rename over the target, then fsync the parent directory. The fsync
/// before the rename is the durability barrier: a crash at any step leaves
/// either the old file or the complete new file — never a renamed
/// half-write — and at worst a stale .tmp file, which cache maintenance
/// sweeps. A failed step after the tmp file exists unlinks it (best
/// effort).
Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view bytes);
/// Convenience over Env::Default().
Status AtomicWriteFile(const std::string& path, std::string_view bytes);

/// Reads a whole file; NotFound when it does not exist, IoError otherwise.
Result<std::string> ReadFileBytes(Env* env, const std::string& path);
Result<std::string> ReadFileBytes(const std::string& path);

}  // namespace ssum
