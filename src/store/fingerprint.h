#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/result.h"
#include "core/affinity.h"
#include "core/coverage.h"
#include "instance/event_stream.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"

namespace ssum {

/// Content fingerprint — the cache-key currency of the artifact store.
/// 64-bit FNV-1a over a canonical byte rendering of the fingerprinted
/// object. Equal fingerprints are presumed equal content (the store is a
/// cache: a collision re-serves a stale artifact for the colliding key, it
/// never corrupts data — and decoders still shape-check against the
/// caller's schema).
struct Fingerprint {
  uint64_t value = 0;

  std::string ToHex() const;
  bool operator==(const Fingerprint&) const = default;
};

/// Order-dependent combination of fingerprint parts.
Fingerprint MixFingerprints(Fingerprint a, Fingerprint b);

/// Fingerprint of raw bytes (file contents, serialized forms).
Fingerprint FingerprintBytes(std::string_view bytes);

/// Fingerprint of a file's contents, streamed in chunks (no whole-file
/// buffering). NotFound / IoError on unreadable paths.
Result<Fingerprint> FingerprintFile(const std::string& path);

/// Fingerprint of a schema graph: hashes the canonical text serialization
/// (schema_io.h), so graphs that serialize identically key identically.
Fingerprint FingerprintSchema(const SchemaGraph& graph);

/// Fingerprint of database statistics (the annotation arrays).
Fingerprint FingerprintAnnotations(const Annotations& annotations);

/// Fingerprint of the SummarizeOptions fields the matrix artifacts depend
/// on. Fields that only steer selection (importance options, enumeration
/// budget, thread counts) are deliberately excluded: they do not change the
/// matrices, and results are bit-identical across thread counts.
Fingerprint FingerprintMatrixOptions(const AffinityOptions& affinity,
                                     const CoverageOptions& coverage);

/// Streaming digest of an instance stream: one full traversal hashing every
/// enter/reference/leave event. This is the content-addressed identity of a
/// database instance when no cheaper identity (file bytes, generator
/// parameters) exists. Note the cost — one traversal, the same order of
/// work as AnnotateSchema itself — which is why the dataset registry keys
/// synthetic instances by generator identity instead (see
/// datasets/registry.h).
class DigestVisitor : public InstanceVisitor {
 public:
  void OnEnter(ElementId e) override;
  void OnReference(LinkId vlink) override;
  void OnLeave(ElementId e) override;

  Fingerprint digest() const;

 private:
  Fnv1a64 hash_;
};

Result<Fingerprint> DigestInstanceStream(const InstanceStream& stream);

}  // namespace ssum
