#pragma once

#include <string>
#include <string_view>

#include "common/result.h"
#include "core/path_engine.h"
#include "core/summary.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "stats/delta.h"
#include "store/fingerprint.h"

namespace ssum {

/// Binary codecs for the three expensive pipeline artifacts, layered on the
/// snapshot container (container.h). Encoders are infallible; decoders
/// verify every length against the section payload and the expected shape
/// before allocating, so a checksum-valid but hostile container still maps
/// to a Status instead of memory amplification or a crash.
///
/// Shape checking: annotations and summaries only make sense relative to a
/// schema, so their decoders take the schema the caller is about to use and
/// fail with FailedPrecondition on any mismatch (the cache treats that as a
/// miss — a fingerprint collision or a stale entry, not corruption of the
/// reader's data).

/// Annotations (PayloadKind::kAnnotations): three u64-array sections —
/// cardinalities, structural link counts, value link counts.
std::string EncodeAnnotations(const Annotations& annotations);
Result<Annotations> DecodeAnnotations(const SchemaGraph& graph,
                                      std::string_view container_bytes);

/// Dense square matrix (PayloadKind::kSquareMatrix): one section carrying
/// the order n followed by n*n IEEE-754 doubles, row-major. Shared by the
/// affinity and coverage caches (which matrix a container holds is part of
/// its cache key, not its encoding). `expected_n` guards against loading a
/// matrix for a different schema; pass 0 to accept any order.
std::string EncodeSquareMatrix(const SquareMatrix& matrix);
Result<SquareMatrix> DecodeSquareMatrix(std::string_view container_bytes,
                                        size_t expected_n);

/// Summary (PayloadKind::kSummary): the selected representatives and the
/// dense correspondence vector. Abstract links are derived data and are
/// rebuilt (and Definition 2 revalidated) on decode, mirroring the text
/// format in core/summary_io.h.
std::string EncodeSummary(const SchemaSummary& summary);
Result<SchemaSummary> DecodeSummary(const SchemaGraph& graph,
                                    std::string_view container_bytes);

/// Annotation delta (PayloadKind::kAnnotationDelta): one lineage link of
/// the incremental store (docs/incremental.md). Besides the content
/// fingerprints and signed per-counter diffs of stats/delta.h, the
/// container carries the *cache key* of the parent annotations artifact so
/// lineage resolution can chase the chain without recomputing keys.
struct DecodedAnnotationDelta {
  Fingerprint parent_key;
  AnnotationDelta delta;
};

std::string EncodeAnnotationDelta(const Fingerprint& parent_key,
                                  const AnnotationDelta& delta);
/// Shape-checks the diff arrays against `graph` (FailedPrecondition on any
/// mismatch, like the annotations decoder — the cache treats that as a
/// stale entry, not corruption).
Result<DecodedAnnotationDelta> DecodeAnnotationDelta(
    const SchemaGraph& graph, std::string_view container_bytes);
/// Lineage-only view of a delta container (no schema needed): decodes the
/// lineage section, leaves the diff arrays empty. What `ssum cache
/// lineage` lists.
Result<DecodedAnnotationDelta> PeekAnnotationDelta(
    std::string_view container_bytes);

}  // namespace ssum
