#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "common/retry.h"
#include "core/path_engine.h"
#include "core/summary.h"
#include "schema/schema_graph.h"
#include "stats/annotate.h"
#include "stats/delta.h"
#include "store/fingerprint.h"

namespace ssum {

/// Lookup/install counters. `misses` counts every failed lookup;
/// `corrupt` / `foreign` / `mismatch` break down *why* beyond plain
/// absence (corrupt = checksum/structure failure, foreign = other format
/// version or unknown payload kind — a clean miss by policy, mismatch =
/// decoded fine but shaped for a different schema). `quarantined` counts
/// corrupt containers moved aside to `.quarantine/`; `healed` counts
/// reinstalls over a previously quarantined key (the recover half of
/// quarantine-and-heal, docs/robustness.md).
struct CacheCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t installs = 0;
  uint64_t corrupt = 0;
  uint64_t foreign = 0;
  uint64_t mismatch = 0;
  uint64_t quarantined = 0;
  uint64_t healed = 0;

  CacheCounters& operator+=(const CacheCounters& other);
};

/// One cache file, as listed by `ssum cache ls`.
struct CacheEntry {
  std::string file;       ///< file name within the cache directory
  uint64_t bytes = 0;
  uint32_t format_version = 0;
  uint32_t payload_kind = 0;
  bool readable = false;  ///< header parsed (full verification is Verify())
};

/// Content-addressed warm-start store for the expensive pipeline artifacts.
/// Files are binary snapshot containers (container.h) named
/// "<family>-<fingerprint>.ssb"; the fingerprint is computed by the caller
/// from everything the artifact depends on (schema, statistics, options —
/// see fingerprint.h), so a changed input simply keys a different file.
///
/// Failure policy: a cache can only ever cost a recompute, never an error
/// or a crash. Every load failure — absent file, corrupt or truncated
/// container, foreign format version, shape mismatch — classifies, logs
/// once per file, and reports a miss; the caller recomputes and the next
/// install overwrites the bad file atomically. Store failures are returned
/// (callers typically log and continue).
///
/// Thread safety: safe for concurrent lookups/installs of distinct
/// artifacts (the summarizer context loads the two matrices from worker
/// threads); counters are internally synchronized.
class ArtifactCache {
 public:
  /// Artifact family names (file-name prefixes).
  static constexpr const char* kAnnotationsFamily = "annotations";
  static constexpr const char* kAffinityFamily = "affinity";
  static constexpr const char* kCoverageFamily = "coverage";
  static constexpr const char* kSummaryFamily = "summary";
  /// Lineage links: "delta-<child key>.ssb" rebuilds the child annotations
  /// from the parent artifact named inside the container.
  static constexpr const char* kDeltaFamily = "delta";

  /// Longest parent chain LoadAnnotationsLineage will chase. Past this the
  /// lookup is a clean miss — rebuilding through arbitrarily long chains
  /// costs more than recomputing, and a key cycle must terminate.
  static constexpr uint32_t kMaxLineageDepth = 8;

  explicit ArtifactCache(std::string dir);

  /// All IO goes through `env` (not owned; outlives the cache) and
  /// transient IoError failures are retried per `retry`. The default
  /// constructor uses Env::Default() and the default RetryPolicy; tests and
  /// the crash-consistency sweeps pass a FaultInjectingEnv.
  ArtifactCache(std::string dir, Env* env, RetryPolicy retry = {});

  const std::string& dir() const { return dir_; }
  Env* env() const { return env_; }

  /// Creates the cache directory (and parents) if absent.
  Status EnsureDir() const;

  std::optional<Annotations> LoadAnnotations(const SchemaGraph& graph,
                                             const Fingerprint& key);
  Status StoreAnnotations(const Fingerprint& key,
                          const Annotations& annotations);

  /// `family` distinguishes the affinity and coverage caches; both hold
  /// PayloadKind::kSquareMatrix containers.
  std::optional<SquareMatrix> LoadMatrix(const char* family,
                                         const Fingerprint& key,
                                         size_t expected_n);
  Status StoreMatrix(const char* family, const Fingerprint& key,
                     const SquareMatrix& matrix);

  std::optional<SchemaSummary> LoadSummary(const SchemaGraph& graph,
                                           const Fingerprint& key);
  Status StoreSummary(const Fingerprint& key, const SchemaSummary& summary);

  /// Installs the lineage link for the child annotations artifact keyed
  /// `child_key`: the delta that rebuilds it from the parent annotations
  /// artifact keyed `parent_key` (see stats/delta.h for the delta itself).
  Status StoreAnnotationsDelta(const Fingerprint& child_key,
                               const Fingerprint& parent_key,
                               const AnnotationDelta& delta);

  /// Annotations resolved through the lineage chain. `delta_hops` is how
  /// many deltas were applied on top of the nearest directly-present
  /// ancestor (0 = plain direct hit).
  struct LineageHit {
    Annotations annotations;
    uint32_t delta_hops = 0;
  };

  /// Lineage-aware annotations lookup: a direct hit on `key` wins; else
  /// the delta chain is chased parent-by-parent (up to `max_depth` hops)
  /// until a directly-present ancestor is found, and the deltas are
  /// replayed child-ward on top of it. Every delta application verifies
  /// the recorded parent and child content fingerprints, so a wrong or
  /// stale parent is a clean miss (mismatch) and mangled delta bytes are
  /// corruption (quarantined) — the result is never silently wrong, and
  /// any failure degrades to the cold recompute path exactly like a plain
  /// miss.
  std::optional<LineageHit> LoadAnnotationsLineage(
      const SchemaGraph& graph, const Fingerprint& key,
      uint32_t max_depth = kMaxLineageDepth);

  /// One delta container, as listed by `ssum cache lineage`. Key fields
  /// are hex renderings (the file-name currency of the cache).
  struct LineageEntry {
    std::string file;
    std::string child_key_hex;
    std::string parent_key_hex;
    uint64_t dirty_units = 0;
    uint64_t total_units = 0;
    /// Parent resolvable on disk — a full annotations snapshot or a further
    /// delta link continuing the chain.
    bool parent_present = false;
    bool readable = false;  ///< lineage section decoded
  };

  /// All delta containers in the directory, lineage-peeked (no schema
  /// needed; the diff arrays are not decoded).
  Result<std::vector<LineageEntry>> ListLineage() const;

  /// Counters accumulated by this instance since construction.
  CacheCounters session_counters() const;

  /// Merges the session counters into the persistent counter file
  /// ("cache-counters.v1.txt", atomic replace) and zeroes the session
  /// counters. The CLI flushes once per command, which is what makes
  /// `ssum cache stat` able to prove a later invocation recomputed nothing.
  Status FlushCounters();

  /// Lifetime counters from the persistent counter file (zeros when none).
  Result<CacheCounters> ReadPersistentCounters() const;

  /// All container files in the directory, header-peeked.
  Result<std::vector<CacheEntry>> List() const;

  struct VerifyReport {
    uint64_t ok = 0;
    uint64_t corrupt = 0;
    uint64_t foreign = 0;  ///< other format versions / unknown kinds: skipped
    uint64_t quarantined = 0;  ///< corrupt files moved to .quarantine/
    std::vector<std::string> corrupt_files;
  };

  /// Fully re-verifies every container (all checksums). Foreign-version
  /// files are skipped, not failed — a shared cache directory may legally
  /// hold containers written by other format generations. With
  /// `quarantine_corrupt`, every corrupt container is moved to
  /// `.quarantine/` so the next lookup is a clean miss (what `ssum cache
  /// verify` does).
  Result<VerifyReport> Verify(bool quarantine_corrupt = false);

  /// Removes every cache file (containers, counters, stray temp files,
  /// quarantined containers). Returns the number of files removed.
  Result<uint64_t> Clear();

 private:
  std::string PathFor(const char* family, const Fingerprint& key) const;
  /// Reads + verifies a container file, classifying failures into the
  /// counters. Returns the bytes only when fully parseable as the current
  /// format version and `kind`.
  std::optional<std::string> LoadVerified(const char* family,
                                          const Fingerprint& key,
                                          uint32_t kind);
  Status StoreBytes(const char* family, const Fingerprint& key,
                    std::string_view bytes);
  void CountMiss(const std::string& path, const Status& why, bool foreign);
  void LogOnce(const std::string& path, const std::string& message);
  /// Reads a file through env_, retrying transient IoErrors per retry_.
  Result<std::string> ReadWithRetry(const std::string& path) const;
  /// Best-effort advisory writer lock on the cache directory (".lock").
  /// nullptr when acquisition failed — logged once, and the caller
  /// proceeds unlocked: installs are atomic regardless, the lock only
  /// serializes concurrent writers' counter merges.
  std::unique_ptr<FileLock> AcquireWriterLock();
  /// Moves a corrupt container into `.quarantine/` (best effort) and
  /// remembers the path so its reinstall counts as a heal. True when the
  /// file was actually moved.
  bool Quarantine(const std::string& path);

  std::string dir_;
  Env* env_;
  RetryPolicy retry_;
  mutable std::mutex mutex_;
  CacheCounters counters_;
  std::unordered_set<std::string> logged_;
  /// Paths quarantined by this instance, pending a healing reinstall.
  std::unordered_set<std::string> quarantine_pending_;
};

}  // namespace ssum
