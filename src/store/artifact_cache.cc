#include "store/artifact_cache.h"

#include <algorithm>
#include <filesystem>
#include <system_error>

#include "common/logging.h"
#include "common/string_util.h"
#include "store/codec.h"
#include "store/container.h"

namespace ssum {
namespace {

namespace fs = std::filesystem;

constexpr const char* kCountersFile = "cache-counters.v1.txt";
constexpr const char* kCountersHeader = "ssum-cache-counters v1";
constexpr const char* kContainerSuffix = ".ssb";
constexpr const char* kLockFile = ".lock";

std::string RenderCounters(const CacheCounters& c) {
  std::string out(kCountersHeader);
  out += "\nhits\t" + std::to_string(c.hits);
  out += "\nmisses\t" + std::to_string(c.misses);
  out += "\ninstalls\t" + std::to_string(c.installs);
  out += "\ncorrupt\t" + std::to_string(c.corrupt);
  out += "\nforeign\t" + std::to_string(c.foreign);
  out += "\nmismatch\t" + std::to_string(c.mismatch);
  out += "\nquarantined\t" + std::to_string(c.quarantined);
  out += "\nhealed\t" + std::to_string(c.healed);
  out += "\n";
  return out;
}

/// Parses a counter file leniently: unknown lines are ignored, missing
/// counters stay zero. A corrupt counter file must never break the cache —
/// the worst case is a statistics reset.
CacheCounters ParseCounters(const std::string& text) {
  CacheCounters c;
  for (const std::string& line : SplitString(text, '\n')) {
    const std::vector<std::string> fields = SplitString(line, '\t');
    if (fields.size() != 2) continue;
    auto value = ParseInt64(fields[1]);
    if (!value.ok() || *value < 0) continue;
    const uint64_t v = static_cast<uint64_t>(*value);
    if (fields[0] == "hits") c.hits = v;
    else if (fields[0] == "misses") c.misses = v;
    else if (fields[0] == "installs") c.installs = v;
    else if (fields[0] == "corrupt") c.corrupt = v;
    else if (fields[0] == "foreign") c.foreign = v;
    else if (fields[0] == "mismatch") c.mismatch = v;
    else if (fields[0] == "quarantined") c.quarantined = v;
    else if (fields[0] == "healed") c.healed = v;
  }
  return c;
}

bool IsContainerFile(const fs::path& p) {
  return p.extension() == kContainerSuffix;
}

}  // namespace

CacheCounters& CacheCounters::operator+=(const CacheCounters& other) {
  hits += other.hits;
  misses += other.misses;
  installs += other.installs;
  corrupt += other.corrupt;
  foreign += other.foreign;
  mismatch += other.mismatch;
  quarantined += other.quarantined;
  healed += other.healed;
  return *this;
}

ArtifactCache::ArtifactCache(std::string dir)
    : ArtifactCache(std::move(dir), Env::Default()) {}

ArtifactCache::ArtifactCache(std::string dir, Env* env, RetryPolicy retry)
    : dir_(std::move(dir)), env_(env), retry_(std::move(retry)) {}

Status ArtifactCache::EnsureDir() const { return env_->CreateDirs(dir_); }

std::string ArtifactCache::PathFor(const char* family,
                                   const Fingerprint& key) const {
  return dir_ + "/" + family + "-" + key.ToHex() + kContainerSuffix;
}

void ArtifactCache::LogOnce(const std::string& path,
                            const std::string& message) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!logged_.insert(path).second) return;
  }
  SSUM_LOG(kWarning) << "cache: " << message;
}

void ArtifactCache::CountMiss(const std::string& path, const Status& why,
                              bool foreign) {
  bool corrupt = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.misses;
    if (foreign) {
      ++counters_.foreign;
    } else if (why.IsDataLoss() || why.IsOutOfRange()) {
      ++counters_.corrupt;
      corrupt = true;
    } else if (why.IsFailedPrecondition()) {
      ++counters_.mismatch;
    }
  }
  if (foreign) {
    LogOnce(path, "'" + path + "' has a foreign format version or payload "
                  "kind; treating as a miss");
  } else if (!why.IsNotFound()) {  // plain absence is not worth a log line
    LogOnce(path,
            "'" + path + "' failed verification (" + why.ToString() +
                "); treating as a miss, the artifact will be recomputed");
  }
  // Quarantine-and-heal: move the provably bad bytes aside so they cannot
  // fail another lookup, and let the caller's recompute reinstall over the
  // key. Wrong bytes (DataLoss/OutOfRange) are quarantined; absent files,
  // version skew, and shape mismatches are not — those bytes are fine.
  if (corrupt) Quarantine(path);
}

bool ArtifactCache::Quarantine(const std::string& path) {
  const std::string qdir = dir_ + "/.quarantine";
  if (!env_->CreateDirs(qdir).ok()) return false;
  const size_t slash = path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (!env_->RenameFile(path, qdir + "/" + name).ok()) return false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.quarantined;
    quarantine_pending_.insert(path);
  }
  LogOnce(path + "#quarantined",
          "'" + path + "' quarantined to " + qdir +
              "/; the next install of the key heals it");
  return true;
}

Result<std::string> ArtifactCache::ReadWithRetry(
    const std::string& path) const {
  std::string out;
  SSUM_RETURN_NOT_OK(RunWithRetry(retry_, "cache read", [&]() -> Status {
    auto bytes = env_->ReadFile(path);
    if (!bytes.ok()) return bytes.status();
    out = std::move(*bytes);
    return Status::OK();
  }));
  return out;
}

std::optional<std::string> ArtifactCache::LoadVerified(const char* family,
                                                       const Fingerprint& key,
                                                       uint32_t kind) {
  const std::string path = PathFor(family, key);
  auto bytes = ReadWithRetry(path);
  if (!bytes.ok()) {
    CountMiss(path, bytes.status(), /*foreign=*/false);
    return std::nullopt;
  }
  // Header peek first: foreign versions and kinds are clean misses by
  // policy, distinguishable from corruption only before the full parse.
  auto info = PeekContainer(*bytes);
  if (!info.ok()) {
    CountMiss(path, info.status(), /*foreign=*/false);
    return std::nullopt;
  }
  // Serve wire kinds (4/5) share the envelope but never belong in the
  // cache, so they stay foreign even though this reader knows their names.
  const bool known_kind =
      (info->payload_kind >= 1 &&
       info->payload_kind <= static_cast<uint32_t>(PayloadKind::kSummary)) ||
      info->payload_kind ==
          static_cast<uint32_t>(PayloadKind::kAnnotationDelta);
  if (info->format_version != kContainerFormatVersion || !known_kind) {
    CountMiss(path, Status::OK(), /*foreign=*/true);
    return std::nullopt;
  }
  if (info->payload_kind != kind) {
    // A different *known* kind under this family/fingerprint is a mangled
    // install, not version skew.
    CountMiss(path,
              Status::DataLoss("payload kind does not match the family"),
              /*foreign=*/false);
    return std::nullopt;
  }
  auto container = ParseContainer(*bytes);
  if (!container.ok()) {
    CountMiss(path, container.status(), /*foreign=*/false);
    return std::nullopt;
  }
  return std::move(*bytes);
}

std::unique_ptr<FileLock> ArtifactCache::AcquireWriterLock() {
  auto lock = env_->LockFile(dir_ + "/" + kLockFile);
  if (!lock.ok()) {
    LogOnce(dir_ + "#lock",
            "cannot take the writer lock on '" + dir_ + "' (" +
                lock.status().ToString() +
                "); proceeding unlocked — installs stay atomic, only "
                "concurrent counter merges may race");
    return nullptr;
  }
  return std::move(*lock);
}

Status ArtifactCache::StoreBytes(const char* family, const Fingerprint& key,
                                 std::string_view bytes) {
  SSUM_RETURN_NOT_OK(EnsureDir());
  // Advisory discipline for concurrent writers of the same directory.
  // Best-effort on purpose: a lock failure must never fail an install.
  std::unique_ptr<FileLock> writer_lock = AcquireWriterLock();
  const std::string path = PathFor(family, key);
  // Each retry attempt re-runs the whole atomic install (fresh tmp file);
  // a failed attempt already cleaned its staging file up best-effort.
  SSUM_RETURN_NOT_OK(RunWithRetry(retry_, "cache install", [&]() -> Status {
    return AtomicWriteFile(env_, path, bytes);
  }));
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.installs;
  if (quarantine_pending_.erase(path) > 0) ++counters_.healed;
  return Status::OK();
}

std::optional<Annotations> ArtifactCache::LoadAnnotations(
    const SchemaGraph& graph, const Fingerprint& key) {
  auto bytes = LoadVerified(
      kAnnotationsFamily, key,
      static_cast<uint32_t>(PayloadKind::kAnnotations));
  if (!bytes.has_value()) return std::nullopt;
  auto decoded = DecodeAnnotations(graph, *bytes);
  if (!decoded.ok()) {
    CountMiss(PathFor(kAnnotationsFamily, key), decoded.status(),
              /*foreign=*/false);
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits;
  return std::move(*decoded);
}

Status ArtifactCache::StoreAnnotations(const Fingerprint& key,
                                       const Annotations& annotations) {
  return StoreBytes(kAnnotationsFamily, key, EncodeAnnotations(annotations));
}

std::optional<SquareMatrix> ArtifactCache::LoadMatrix(const char* family,
                                                      const Fingerprint& key,
                                                      size_t expected_n) {
  auto bytes = LoadVerified(
      family, key, static_cast<uint32_t>(PayloadKind::kSquareMatrix));
  if (!bytes.has_value()) return std::nullopt;
  auto decoded = DecodeSquareMatrix(*bytes, expected_n);
  if (!decoded.ok()) {
    CountMiss(PathFor(family, key), decoded.status(), /*foreign=*/false);
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits;
  return std::move(*decoded);
}

Status ArtifactCache::StoreMatrix(const char* family, const Fingerprint& key,
                                  const SquareMatrix& matrix) {
  return StoreBytes(family, key, EncodeSquareMatrix(matrix));
}

std::optional<SchemaSummary> ArtifactCache::LoadSummary(
    const SchemaGraph& graph, const Fingerprint& key) {
  auto bytes = LoadVerified(kSummaryFamily, key,
                            static_cast<uint32_t>(PayloadKind::kSummary));
  if (!bytes.has_value()) return std::nullopt;
  auto decoded = DecodeSummary(graph, *bytes);
  if (!decoded.ok()) {
    CountMiss(PathFor(kSummaryFamily, key), decoded.status(),
              /*foreign=*/false);
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.hits;
  return std::move(*decoded);
}

Status ArtifactCache::StoreSummary(const Fingerprint& key,
                                   const SchemaSummary& summary) {
  return StoreBytes(kSummaryFamily, key, EncodeSummary(summary));
}

Status ArtifactCache::StoreAnnotationsDelta(const Fingerprint& child_key,
                                            const Fingerprint& parent_key,
                                            const AnnotationDelta& delta) {
  return StoreBytes(kDeltaFamily, child_key,
                    EncodeAnnotationDelta(parent_key, delta));
}

std::optional<ArtifactCache::LineageHit> ArtifactCache::LoadAnnotationsLineage(
    const SchemaGraph& graph, const Fingerprint& key, uint32_t max_depth) {
  auto direct = LoadAnnotations(graph, key);
  if (direct.has_value()) {
    return LineageHit{std::move(*direct), /*delta_hops=*/0};
  }
  // Chase the delta chain parent-ward until an ancestor is directly
  // present. Each link remembers the key it was loaded under so a failing
  // application can point at (and quarantine) the right file.
  struct Link {
    Fingerprint child_key;
    DecodedAnnotationDelta decoded;
  };
  std::vector<Link> chain;
  Fingerprint cur = key;
  std::optional<Annotations> ancestor;
  for (uint32_t depth = 0; depth < max_depth && !ancestor.has_value();
       ++depth) {
    auto bytes =
        LoadVerified(kDeltaFamily, cur,
                     static_cast<uint32_t>(PayloadKind::kAnnotationDelta));
    if (!bytes.has_value()) return std::nullopt;  // miss already counted
    auto decoded = DecodeAnnotationDelta(graph, *bytes);
    if (!decoded.ok()) {
      CountMiss(PathFor(kDeltaFamily, cur), decoded.status(),
                /*foreign=*/false);
      return std::nullopt;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++counters_.hits;  // the delta artifact itself
    }
    const Fingerprint parent = decoded->parent_key;
    chain.push_back(Link{cur, std::move(*decoded)});
    cur = parent;
    ancestor = LoadAnnotations(graph, cur);
  }
  if (!ancestor.has_value()) {
    // Depth cap reached with the chain still dangling: a clean miss by
    // policy (also what breaks key cycles).
    LogOnce(PathFor(kDeltaFamily, key) + "#depth",
            "lineage of '" + PathFor(kDeltaFamily, key) + "' exceeds " +
                std::to_string(max_depth) +
                " hops without a present ancestor; treating as a miss");
    return std::nullopt;
  }
  // Replay the deltas child-ward. ApplyAnnotationDelta verifies the parent
  // fingerprint before touching anything and the child fingerprint after,
  // so a failure here can only yield "no result", never a wrong one.
  Annotations annotations = std::move(*ancestor);
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    auto child = ApplyAnnotationDelta(graph, annotations, it->decoded.delta);
    if (!child.ok()) {
      // FailedPrecondition = stale/foreign parent (mismatch, bytes are
      // fine); DataLoss = the delta lies about itself (quarantined).
      CountMiss(PathFor(kDeltaFamily, it->child_key), child.status(),
                /*foreign=*/false);
      return std::nullopt;
    }
    annotations = std::move(*child);
  }
  return LineageHit{std::move(annotations),
                    static_cast<uint32_t>(chain.size())};
}

Result<std::vector<ArtifactCache::LineageEntry>> ArtifactCache::ListLineage()
    const {
  std::vector<LineageEntry> out;
  std::vector<CacheEntry> entries;
  SSUM_ASSIGN_OR_RETURN(entries, List());
  const std::string prefix = std::string(kDeltaFamily) + "-";
  const size_t suffix_len = std::string(kContainerSuffix).size();
  for (const CacheEntry& entry : entries) {
    if (entry.file.rfind(prefix, 0) != 0) continue;
    LineageEntry le;
    le.file = entry.file;
    le.child_key_hex = entry.file.substr(
        prefix.size(), entry.file.size() - prefix.size() - suffix_len);
    auto bytes = ReadFileBytes(env_, dir_ + "/" + entry.file);
    if (bytes.ok()) {
      auto peek = PeekAnnotationDelta(*bytes);
      if (peek.ok()) {
        le.readable = true;
        le.parent_key_hex = peek->parent_key.ToHex();
        le.dirty_units = peek->delta.dirty_units;
        le.total_units = peek->delta.total_units;
        // The parent is resolvable either as a full annotations snapshot or
        // as another delta link (the chain continues parent-ward).
        auto full = env_->FileExists(dir_ + "/" + kAnnotationsFamily + "-" +
                                     le.parent_key_hex + kContainerSuffix);
        auto link = env_->FileExists(dir_ + "/" + prefix +
                                     le.parent_key_hex + kContainerSuffix);
        le.parent_present =
            (full.ok() && *full) || (link.ok() && *link);
      }
    }
    out.push_back(std::move(le));
  }
  return out;
}

CacheCounters ArtifactCache::session_counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

Status ArtifactCache::FlushCounters() {
  CacheCounters session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    session = counters_;
  }
  if (session.hits == 0 && session.misses == 0 && session.installs == 0 &&
      session.quarantined == 0 && session.healed == 0) {
    return Status::OK();
  }
  SSUM_RETURN_NOT_OK(EnsureDir());
  // The lock makes the read-merge-write below atomic across processes;
  // without it a concurrent flush could lose one side's increments (never
  // anything worse — the write itself is still atomic).
  std::unique_ptr<FileLock> writer_lock = AcquireWriterLock();
  CacheCounters total;
  auto persisted = ReadPersistentCounters();
  if (persisted.ok()) total = *persisted;
  total += session;
  SSUM_RETURN_NOT_OK(AtomicWriteFile(env_, dir_ + "/" + kCountersFile,
                                     RenderCounters(total)));
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = CacheCounters{};
  return Status::OK();
}

Result<CacheCounters> ArtifactCache::ReadPersistentCounters() const {
  auto bytes = ReadWithRetry(dir_ + "/" + kCountersFile);
  if (!bytes.ok()) {
    if (bytes.status().IsNotFound()) return CacheCounters{};
    return bytes.status();
  }
  return ParseCounters(*bytes);
}

Result<std::vector<CacheEntry>> ArtifactCache::List() const {
  std::vector<CacheEntry> entries;
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return entries;
  for (const auto& dirent : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!dirent.is_regular_file(ec) || !IsContainerFile(dirent.path())) {
      continue;
    }
    CacheEntry entry;
    entry.file = dirent.path().filename().string();
    entry.bytes = dirent.file_size(ec);
    auto bytes = ReadFileBytes(env_, dirent.path().string());
    if (bytes.ok()) {
      auto info = PeekContainer(*bytes);
      if (info.ok()) {
        entry.readable = true;
        entry.format_version = info->format_version;
        entry.payload_kind = info->payload_kind;
      }
    }
    entries.push_back(std::move(entry));
  }
  if (ec) {
    return Status::IoError("cannot list cache directory '" + dir_ +
                           "': " + ec.message());
  }
  std::sort(entries.begin(), entries.end(),
            [](const CacheEntry& a, const CacheEntry& b) {
              return a.file < b.file;
            });
  return entries;
}

Result<ArtifactCache::VerifyReport> ArtifactCache::Verify(
    bool quarantine_corrupt) {
  VerifyReport report;
  std::vector<CacheEntry> entries;
  SSUM_ASSIGN_OR_RETURN(entries, List());
  for (const CacheEntry& entry : entries) {
    const std::string path = dir_ + "/" + entry.file;
    bool corrupt = false;
    auto bytes = ReadFileBytes(env_, path);
    if (!bytes.ok()) {
      corrupt = true;
    } else {
      auto info = PeekContainer(*bytes);
      if (info.ok() && info->format_version != kContainerFormatVersion) {
        ++report.foreign;  // other generations are not ours to judge
        continue;
      }
      corrupt = !(info.ok() && ParseContainer(*bytes).ok());
    }
    if (!corrupt) {
      ++report.ok;
      continue;
    }
    ++report.corrupt;
    report.corrupt_files.push_back(entry.file);
    if (quarantine_corrupt && Quarantine(path)) ++report.quarantined;
  }
  return report;
}

Result<uint64_t> ArtifactCache::Clear() {
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return uint64_t{0};
  uint64_t removed = 0;
  for (const auto& dirent : fs::directory_iterator(dir_, ec)) {
    if (ec) break;
    if (!dirent.is_regular_file(ec)) continue;
    const fs::path p = dirent.path();
    const std::string name = p.filename().string();
    const bool ours = IsContainerFile(p) || name == kCountersFile ||
                      name.find(".tmp.") != std::string::npos;
    if (!ours) continue;
    if (fs::remove(p, ec)) ++removed;
  }
  if (ec) {
    return Status::IoError("cannot clear cache directory '" + dir_ +
                           "': " + ec.message());
  }
  // Quarantined containers are cache files too.
  const fs::path qdir = fs::path(dir_) / ".quarantine";
  std::error_code qec;
  if (fs::exists(qdir, qec)) {
    for (const auto& dirent : fs::directory_iterator(qdir, qec)) {
      if (qec) break;
      if (!dirent.is_regular_file(qec)) continue;
      if (fs::remove(dirent.path(), qec)) ++removed;
    }
    fs::remove(qdir, qec);  // the now-empty directory itself
  }
  return removed;
}

}  // namespace ssum
