#include "store/fingerprint.h"

#include <fstream>

#include "schema/schema_io.h"

namespace ssum {
namespace {

// Event tags for the stream digest; distinct from any id byte stream
// because each event hashes tag + fixed-width id.
constexpr uint64_t kEnterTag = 0x45;      // 'E'
constexpr uint64_t kReferenceTag = 0x52;  // 'R'
constexpr uint64_t kLeaveTag = 0x4c;      // 'L'

}  // namespace

std::string Fingerprint::ToHex() const { return HashToHex(value); }

Fingerprint MixFingerprints(Fingerprint a, Fingerprint b) {
  return Fingerprint{HashCombine(a.value, b.value)};
}

Fingerprint FingerprintBytes(std::string_view bytes) {
  return Fingerprint{HashBytes(bytes)};
}

Result<Fingerprint> FingerprintFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  Fnv1a64 hash;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    hash.Update(buf, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) return Status::IoError("read failed for '" + path + "'");
  return Fingerprint{hash.Digest()};
}

Fingerprint FingerprintSchema(const SchemaGraph& graph) {
  Fnv1a64 hash;
  hash.Update("ssum-schema-fp:");
  hash.Update(SerializeSchema(graph));
  return Fingerprint{hash.Digest()};
}

Fingerprint FingerprintAnnotations(const Annotations& annotations) {
  Fnv1a64 hash;
  hash.Update("ssum-annotations-fp:");
  hash.UpdateU64(annotations.num_elements());
  for (size_t e = 0; e < annotations.num_elements(); ++e) {
    hash.UpdateU64(annotations.card(static_cast<ElementId>(e)));
  }
  hash.UpdateU64(annotations.num_structural_links());
  for (size_t l = 0; l < annotations.num_structural_links(); ++l) {
    hash.UpdateU64(annotations.structural_count(static_cast<LinkId>(l)));
  }
  hash.UpdateU64(annotations.num_value_links());
  for (size_t l = 0; l < annotations.num_value_links(); ++l) {
    hash.UpdateU64(annotations.value_count(static_cast<LinkId>(l)));
  }
  return Fingerprint{hash.Digest()};
}

Fingerprint FingerprintMatrixOptions(const AffinityOptions& affinity,
                                     const CoverageOptions& coverage) {
  Fnv1a64 hash;
  hash.Update("ssum-matrix-options-fp:");
  hash.UpdateU64(affinity.max_steps);
  hash.UpdateU64(coverage.max_steps);
  return Fingerprint{hash.Digest()};
}

void DigestVisitor::OnEnter(ElementId e) {
  hash_.UpdateU64(kEnterTag);
  hash_.UpdateU64(e);
}

void DigestVisitor::OnReference(LinkId vlink) {
  hash_.UpdateU64(kReferenceTag);
  hash_.UpdateU64(vlink);
}

void DigestVisitor::OnLeave(ElementId e) {
  hash_.UpdateU64(kLeaveTag);
  hash_.UpdateU64(e);
}

Fingerprint DigestVisitor::digest() const {
  return Fingerprint{hash_.Digest()};
}

Result<Fingerprint> DigestInstanceStream(const InstanceStream& stream) {
  DigestVisitor digest;
  SSUM_RETURN_NOT_OK(stream.Accept(&digest));
  return digest.digest();
}

}  // namespace ssum
