#include "store/codec.h"

#include <bit>
#include <cstring>

#include "store/container.h"

namespace ssum {
namespace {

// Section tags. Tags are scoped to a payload kind; reusing small integers
// across kinds is fine because the kind is in the container header.
constexpr uint32_t kSecCards = 1;
constexpr uint32_t kSecStructuralCounts = 2;
constexpr uint32_t kSecValueCounts = 3;
constexpr uint32_t kSecMatrix = 1;
constexpr uint32_t kSecAbstract = 1;
constexpr uint32_t kSecRepresentative = 2;
constexpr uint32_t kSecDeltaLineage = 1;
constexpr uint32_t kSecDeltaCards = 2;
constexpr uint32_t kSecDeltaStructural = 3;
constexpr uint32_t kSecDeltaValue = 4;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

/// Bounds-checked little-endian cursor over one section payload. Decoders
/// pre-validate the total size, so reads here failing is a codec bug — but
/// the reader still refuses to run past the end (returns false) so that a
/// missed validation cannot become an out-of-bounds read.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view payload) : p_(payload) {}

  bool ReadU32(uint32_t* v) {
    if (p_.size() - at_ < 4) return false;
    *v = 0;
    for (int i = 3; i >= 0; --i) {
      *v = (*v << 8) | static_cast<unsigned char>(p_[at_ + i]);
    }
    at_ += 4;
    return true;
  }
  bool ReadU64(uint64_t* v) {
    if (p_.size() - at_ < 8) return false;
    *v = 0;
    for (int i = 7; i >= 0; --i) {
      *v = (*v << 8) | static_cast<unsigned char>(p_[at_ + i]);
    }
    at_ += 8;
    return true;
  }
  bool ReadDouble(double* v) {
    uint64_t bits;
    if (!ReadU64(&bits)) return false;
    *v = std::bit_cast<double>(bits);
    return true;
  }
  size_t remaining() const { return p_.size() - at_; }

 private:
  std::string_view p_;
  size_t at_ = 0;
};

std::string EncodeU64Array(const std::vector<uint64_t>& values) {
  std::string out;
  out.reserve(8 + 8 * values.size());
  AppendU64(out, values.size());
  for (uint64_t v : values) AppendU64(out, v);
  return out;
}

std::string EncodeU32Array(const std::vector<uint32_t>& values) {
  std::string out;
  out.reserve(8 + 4 * values.size());
  AppendU64(out, values.size());
  for (uint32_t v : values) AppendU32(out, v);
  return out;
}

/// Decodes a `count` + values section whose count must equal `expected`
/// (the shape the caller's schema implies).
Status DecodeU64Array(std::string_view payload, const char* what,
                      size_t expected, std::vector<uint64_t>* out) {
  PayloadReader r(payload);
  uint64_t count = 0;
  if (!r.ReadU64(&count)) {
    return Status::DataLoss(std::string(what) +
                            " section too small for its count field");
  }
  if (count > r.remaining() || count * 8 != r.remaining()) {
    return Status::DataLoss(std::string(what) + " section declares " +
                            std::to_string(count) + " entries but carries " +
                            std::to_string(r.remaining()) + " bytes");
  }
  if (count != expected) {
    return Status::FailedPrecondition(
        std::string(what) + " count " + std::to_string(count) +
        " does not match the schema (expected " + std::to_string(expected) +
        ")");
  }
  out->resize(count);
  for (uint64_t& v : *out) r.ReadU64(&v);
  return Status::OK();
}

Status DecodeU32Array(std::string_view payload, const char* what,
                      std::vector<uint32_t>* out, uint64_t max_count) {
  PayloadReader r(payload);
  uint64_t count = 0;
  if (!r.ReadU64(&count)) {
    return Status::DataLoss(std::string(what) +
                            " section too small for its count field");
  }
  if (count > r.remaining() || count * 4 != r.remaining()) {
    return Status::DataLoss(std::string(what) + " section declares " +
                            std::to_string(count) + " entries but carries " +
                            std::to_string(r.remaining()) + " bytes");
  }
  if (count > max_count) {
    return Status::FailedPrecondition(
        std::string(what) + " count " + std::to_string(count) +
        " exceeds the schema size " + std::to_string(max_count));
  }
  out->resize(count);
  for (uint32_t& v : *out) r.ReadU32(&v);
  return Status::OK();
}

Result<std::string_view> RequireSection(const Container& container,
                                        uint32_t tag, const char* what) {
  auto section = container.Section(tag);
  if (!section.ok()) {
    return Status::DataLoss(std::string("container is missing the ") + what +
                            " section");
  }
  return *section;
}

Status CheckKind(const Container& container, PayloadKind kind) {
  if (container.info.payload_kind != static_cast<uint32_t>(kind)) {
    return Status::FailedPrecondition(
        std::string("container holds a '") +
        PayloadKindName(container.info.payload_kind) + "' payload, not '" +
        PayloadKindName(static_cast<uint32_t>(kind)) + "'");
  }
  return Status::OK();
}

}  // namespace

std::string EncodeAnnotations(const Annotations& annotations) {
  std::vector<uint64_t> cards(annotations.num_elements());
  for (size_t e = 0; e < cards.size(); ++e) {
    cards[e] = annotations.card(static_cast<ElementId>(e));
  }
  std::vector<uint64_t> slinks(annotations.num_structural_links());
  for (size_t l = 0; l < slinks.size(); ++l) {
    slinks[l] = annotations.structural_count(static_cast<LinkId>(l));
  }
  std::vector<uint64_t> vlinks(annotations.num_value_links());
  for (size_t l = 0; l < vlinks.size(); ++l) {
    vlinks[l] = annotations.value_count(static_cast<LinkId>(l));
  }
  ContainerWriter writer(PayloadKind::kAnnotations);
  writer.AddSection(kSecCards, EncodeU64Array(cards));
  writer.AddSection(kSecStructuralCounts, EncodeU64Array(slinks));
  writer.AddSection(kSecValueCounts, EncodeU64Array(vlinks));
  return std::move(writer).Finish();
}

Result<Annotations> DecodeAnnotations(const SchemaGraph& graph,
                                      std::string_view container_bytes) {
  Container container;
  SSUM_ASSIGN_OR_RETURN(container, ParseContainer(container_bytes));
  SSUM_RETURN_NOT_OK(CheckKind(container, PayloadKind::kAnnotations));

  std::string_view sec;
  std::vector<uint64_t> cards, slinks, vlinks;
  SSUM_ASSIGN_OR_RETURN(sec,
                        RequireSection(container, kSecCards, "cardinality"));
  SSUM_RETURN_NOT_OK(
      DecodeU64Array(sec, "cardinality", graph.size(), &cards));
  SSUM_ASSIGN_OR_RETURN(
      sec,
      RequireSection(container, kSecStructuralCounts, "structural-count"));
  SSUM_RETURN_NOT_OK(DecodeU64Array(
      sec, "structural-count", graph.structural_links().size(), &slinks));
  SSUM_ASSIGN_OR_RETURN(
      sec, RequireSection(container, kSecValueCounts, "value-count"));
  SSUM_RETURN_NOT_OK(DecodeU64Array(sec, "value-count",
                                    graph.value_links().size(), &vlinks));

  Annotations annotations(graph);
  for (size_t e = 0; e < cards.size(); ++e) {
    annotations.set_card(static_cast<ElementId>(e), cards[e]);
  }
  for (size_t l = 0; l < slinks.size(); ++l) {
    annotations.set_structural_count(static_cast<LinkId>(l), slinks[l]);
  }
  for (size_t l = 0; l < vlinks.size(); ++l) {
    annotations.set_value_count(static_cast<LinkId>(l), vlinks[l]);
  }
  return annotations;
}

std::string EncodeSquareMatrix(const SquareMatrix& matrix) {
  std::string payload;
  const size_t n = matrix.size();
  payload.reserve(8 + 8 * n * n);
  AppendU64(payload, n);
  for (double v : matrix.data()) {
    AppendU64(payload, std::bit_cast<uint64_t>(v));
  }
  ContainerWriter writer(PayloadKind::kSquareMatrix);
  writer.AddSection(kSecMatrix, payload);
  return std::move(writer).Finish();
}

Result<SquareMatrix> DecodeSquareMatrix(std::string_view container_bytes,
                                        size_t expected_n) {
  Container container;
  SSUM_ASSIGN_OR_RETURN(container, ParseContainer(container_bytes));
  SSUM_RETURN_NOT_OK(CheckKind(container, PayloadKind::kSquareMatrix));
  std::string_view sec;
  SSUM_ASSIGN_OR_RETURN(sec, RequireSection(container, kSecMatrix, "matrix"));

  PayloadReader r(sec);
  uint64_t n = 0;
  if (!r.ReadU64(&n)) {
    return Status::DataLoss("matrix section too small for its order field");
  }
  // The order is bounded by the actual payload before any allocation: a
  // fabricated huge n cannot ask for more memory than the container itself
  // occupies.
  if (n > (1u << 20) || n * n * 8 != r.remaining()) {
    return Status::DataLoss("matrix section declares order " +
                            std::to_string(n) + " but carries " +
                            std::to_string(r.remaining()) + " bytes");
  }
  if (expected_n != 0 && n != expected_n) {
    return Status::FailedPrecondition(
        "matrix order " + std::to_string(n) +
        " does not match the schema (expected " +
        std::to_string(expected_n) + ")");
  }
  SquareMatrix matrix(static_cast<size_t>(n), 0.0);
  for (size_t row = 0; row < n; ++row) {
    for (double& v : matrix.RowSpan(row)) r.ReadDouble(&v);
  }
  return matrix;
}

std::string EncodeSummary(const SchemaSummary& summary) {
  ContainerWriter writer(PayloadKind::kSummary);
  writer.AddSection(kSecAbstract, EncodeU32Array(summary.abstract_elements));
  writer.AddSection(kSecRepresentative,
                    EncodeU32Array(summary.representative));
  return std::move(writer).Finish();
}

Result<SchemaSummary> DecodeSummary(const SchemaGraph& graph,
                                    std::string_view container_bytes) {
  Container container;
  SSUM_ASSIGN_OR_RETURN(container, ParseContainer(container_bytes));
  SSUM_RETURN_NOT_OK(CheckKind(container, PayloadKind::kSummary));
  std::string_view sec;
  std::vector<uint32_t> abstract, representative;
  SSUM_ASSIGN_OR_RETURN(
      sec, RequireSection(container, kSecAbstract, "abstract-element"));
  SSUM_RETURN_NOT_OK(
      DecodeU32Array(sec, "abstract-element", &abstract, graph.size()));
  SSUM_ASSIGN_OR_RETURN(
      sec, RequireSection(container, kSecRepresentative, "representative"));
  SSUM_RETURN_NOT_OK(DecodeU32Array(sec, "representative", &representative,
                                    graph.size()));
  // BuildSummaryFromAssignment revalidates every Definition 2 invariant and
  // reconstructs the derived abstract links, exactly like the text loader.
  return BuildSummaryFromAssignment(graph, std::move(abstract),
                                    std::move(representative));
}

namespace {

/// Signed diffs travel as the two's-complement bit pattern in a u64 array,
/// so the delta sections reuse the annotations array codec byte-for-byte.
std::string EncodeI64Array(const std::vector<int64_t>& values) {
  std::vector<uint64_t> bits(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    bits[i] = std::bit_cast<uint64_t>(values[i]);
  }
  return EncodeU64Array(bits);
}

Status DecodeI64Array(std::string_view payload, const char* what,
                      size_t expected, std::vector<int64_t>* out) {
  std::vector<uint64_t> bits;
  SSUM_RETURN_NOT_OK(DecodeU64Array(payload, what, expected, &bits));
  out->resize(bits.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    (*out)[i] = std::bit_cast<int64_t>(bits[i]);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeAnnotationDelta(const Fingerprint& parent_key,
                                  const AnnotationDelta& delta) {
  std::string lineage;
  lineage.reserve(5 * 8);
  AppendU64(lineage, parent_key.value);
  AppendU64(lineage, delta.parent_fingerprint);
  AppendU64(lineage, delta.child_fingerprint);
  AppendU64(lineage, delta.dirty_units);
  AppendU64(lineage, delta.total_units);
  ContainerWriter writer(PayloadKind::kAnnotationDelta);
  writer.AddSection(kSecDeltaLineage, lineage);
  writer.AddSection(kSecDeltaCards, EncodeI64Array(delta.d_card));
  writer.AddSection(kSecDeltaStructural, EncodeI64Array(delta.d_slink));
  writer.AddSection(kSecDeltaValue, EncodeI64Array(delta.d_vlink));
  return std::move(writer).Finish();
}

namespace {

/// Parses + kind-checks the container and decodes the lineage section into
/// `decoded`; shared by the full decoder and the schema-free peek.
Result<Container> DecodeDeltaLineage(std::string_view container_bytes,
                                     DecodedAnnotationDelta* decoded) {
  Container container;
  SSUM_ASSIGN_OR_RETURN(container, ParseContainer(container_bytes));
  SSUM_RETURN_NOT_OK(CheckKind(container, PayloadKind::kAnnotationDelta));
  std::string_view sec;
  SSUM_ASSIGN_OR_RETURN(sec,
                        RequireSection(container, kSecDeltaLineage, "lineage"));
  PayloadReader r(sec);
  if (sec.size() != 5 * 8 || !r.ReadU64(&decoded->parent_key.value) ||
      !r.ReadU64(&decoded->delta.parent_fingerprint) ||
      !r.ReadU64(&decoded->delta.child_fingerprint) ||
      !r.ReadU64(&decoded->delta.dirty_units) ||
      !r.ReadU64(&decoded->delta.total_units)) {
    return Status::DataLoss("lineage section carries " +
                            std::to_string(sec.size()) +
                            " bytes, expected 40");
  }
  return container;
}

}  // namespace

Result<DecodedAnnotationDelta> DecodeAnnotationDelta(
    const SchemaGraph& graph, std::string_view container_bytes) {
  DecodedAnnotationDelta decoded;
  Container container;
  SSUM_ASSIGN_OR_RETURN(container,
                        DecodeDeltaLineage(container_bytes, &decoded));
  std::string_view sec;
  SSUM_ASSIGN_OR_RETURN(
      sec, RequireSection(container, kSecDeltaCards, "cardinality-delta"));
  SSUM_RETURN_NOT_OK(DecodeI64Array(sec, "cardinality-delta", graph.size(),
                                    &decoded.delta.d_card));
  SSUM_ASSIGN_OR_RETURN(
      sec, RequireSection(container, kSecDeltaStructural,
                          "structural-count-delta"));
  SSUM_RETURN_NOT_OK(DecodeI64Array(sec, "structural-count-delta",
                                    graph.structural_links().size(),
                                    &decoded.delta.d_slink));
  SSUM_ASSIGN_OR_RETURN(
      sec, RequireSection(container, kSecDeltaValue, "value-count-delta"));
  SSUM_RETURN_NOT_OK(DecodeI64Array(sec, "value-count-delta",
                                    graph.value_links().size(),
                                    &decoded.delta.d_vlink));
  return decoded;
}

Result<DecodedAnnotationDelta> PeekAnnotationDelta(
    std::string_view container_bytes) {
  DecodedAnnotationDelta decoded;
  auto container = DecodeDeltaLineage(container_bytes, &decoded);
  if (!container.ok()) return container.status();
  return decoded;
}

}  // namespace ssum
