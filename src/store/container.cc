#include "store/container.h"

#include <unistd.h>

#include <cstring>
#include <memory>

#include "common/hash.h"
#include "common/status_builder.h"

namespace ssum {
namespace {

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t LoadU32(std::string_view bytes, size_t at) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

uint64_t LoadU64(std::string_view bytes, size_t at) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(bytes[at + i]);
  }
  return v;
}

Status Truncated(size_t offset, const char* what, uint64_t need,
                 uint64_t have) {
  StatusBuilder b(StatusCode::kOutOfRange);
  b.ByteOffset(offset);
  b << "container truncated in " << what << ": need " << need
    << " more bytes, have " << have;
  return b;
}

}  // namespace

const char* PayloadKindName(uint32_t kind) {
  switch (static_cast<PayloadKind>(kind)) {
    case PayloadKind::kAnnotations:
      return "annotations";
    case PayloadKind::kSquareMatrix:
      return "matrix";
    case PayloadKind::kSummary:
      return "summary";
    case PayloadKind::kServeRequest:
      return "serve-request";
    case PayloadKind::kServeResponse:
      return "serve-response";
    case PayloadKind::kAnnotationDelta:
      return "annotation-delta";
  }
  return "unknown";
}

Result<std::string_view> Container::Section(uint32_t tag) const {
  for (const ContainerSection& s : sections) {
    if (s.tag == tag) return s.payload;
  }
  return Status::NotFound("container has no section with tag " +
                          std::to_string(tag));
}

Result<ContainerInfo> PeekContainer(std::string_view bytes) {
  if (bytes.size() < kContainerHeaderSize) {
    return Truncated(bytes.size(), "header", kContainerHeaderSize,
                     bytes.size());
  }
  if (std::memcmp(bytes.data(), kContainerMagic, kContainerMagicSize) != 0) {
    return DataLossAt(0) << "bad container magic";
  }
  const uint32_t stored_crc = LoadU32(bytes, 20);
  const uint32_t actual_crc = Crc32c(bytes.substr(0, 20));
  if (stored_crc != actual_crc) {
    return DataLossAt(20) << "header checksum mismatch";
  }
  ContainerInfo info;
  info.format_version = LoadU32(bytes, 8);
  info.payload_kind = LoadU32(bytes, 12);
  info.section_count = LoadU32(bytes, 16);
  return info;
}

Result<Container> ParseContainer(std::string_view bytes) {
  ContainerInfo info;
  SSUM_ASSIGN_OR_RETURN(info, PeekContainer(bytes));
  if (info.format_version != kContainerFormatVersion) {
    return Status::FailedPrecondition(
        "unsupported container format version " +
        std::to_string(info.format_version) + " (reader speaks version " +
        std::to_string(kContainerFormatVersion) + ")");
  }

  // Trailer first: it pins the intended total size, so truncation is
  // reported as truncation instead of as a mangled section stream.
  if (bytes.size() < kContainerHeaderSize + kContainerTrailerSize) {
    return Truncated(bytes.size(), "trailer",
                     kContainerHeaderSize + kContainerTrailerSize,
                     bytes.size());
  }
  const size_t trailer_at = bytes.size() - kContainerTrailerSize;
  const uint64_t declared_size = LoadU64(bytes, trailer_at);
  if (declared_size != bytes.size()) {
    if (declared_size > bytes.size()) {
      return Truncated(trailer_at, "body", declared_size, bytes.size());
    }
    return DataLossAt(trailer_at)
           << "trailer declares " << declared_size << " bytes but container"
           << " has " << bytes.size();
  }
  const uint32_t trailer_crc = LoadU32(bytes, trailer_at + 8);
  if (trailer_crc != Crc32c(bytes.substr(0, trailer_at + 8))) {
    return DataLossAt(trailer_at + 8) << "trailer checksum mismatch";
  }

  Container container;
  container.info = info;
  container.sections.reserve(info.section_count);
  size_t at = kContainerHeaderSize;
  for (uint32_t s = 0; s < info.section_count; ++s) {
    if (trailer_at - at < kContainerSectionOverhead) {
      return DataLossAt(at) << "section " << s
                            << " header overruns the trailer";
    }
    const uint32_t tag = LoadU32(bytes, at);
    const uint64_t size = LoadU64(bytes, at + 4);
    const size_t payload_at = at + 12;
    if (size > trailer_at - payload_at ||
        trailer_at - payload_at - size < 4) {
      return DataLossAt(at + 4)
             << "section " << s << " payload (" << size
             << " bytes) overruns the trailer";
    }
    const std::string_view payload = bytes.substr(payload_at, size);
    const uint32_t stored_crc = LoadU32(bytes, payload_at + size);
    if (stored_crc != Crc32c(payload)) {
      return DataLossAt(payload_at)
             << "section " << s << " (tag " << tag << ") checksum mismatch";
    }
    container.sections.push_back(ContainerSection{tag, payload});
    at = payload_at + size + 4;
  }
  if (at != trailer_at) {
    return DataLossAt(at) << (trailer_at - at)
                          << " undeclared bytes between the last section and"
                          << " the trailer";
  }
  return container;
}

ContainerWriter::ContainerWriter(uint32_t payload_kind,
                                 uint32_t format_version)
    : payload_kind_(payload_kind), format_version_(format_version) {}

void ContainerWriter::AddSection(uint32_t tag, std::string_view payload) {
  AppendU32(body_, tag);
  AppendU64(body_, payload.size());
  body_.append(payload);
  AppendU32(body_, Crc32c(payload));
  ++section_count_;
}

std::string ContainerWriter::Finish() && {
  std::string out;
  out.reserve(kContainerHeaderSize + body_.size() + kContainerTrailerSize);
  out.append(kContainerMagic, kContainerMagicSize);
  AppendU32(out, format_version_);
  AppendU32(out, payload_kind_);
  AppendU32(out, section_count_);
  AppendU32(out, Crc32c(out));
  out.append(body_);
  AppendU64(out, out.size() + kContainerTrailerSize);
  AppendU32(out, Crc32c(out));
  return out;
}

Status AtomicWriteFile(Env* env, const std::string& path,
                       std::string_view bytes) {
  // Unique-enough temp name: pid + address entropy keeps concurrent
  // installers of the same artifact from clobbering each other's staging
  // file; the final rename is last-writer-wins either way.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<unsigned long>(getpid())) +
      "." + HashToHex(reinterpret_cast<uintptr_t>(&path) ^
                      HashBytes(path));
  Status st = [&]() -> Status {
    std::unique_ptr<WritableFile> out;
    SSUM_ASSIGN_OR_RETURN(out, env->NewWritableFile(tmp));
    SSUM_RETURN_NOT_OK(out->Append(bytes));
    SSUM_RETURN_NOT_OK(out->Flush());
    // Durability barrier: the tmp file's bytes must be on media *before*
    // the rename publishes them, or a crash could expose a renamed
    // half-write as the current artifact.
    SSUM_RETURN_NOT_OK(out->Sync());
    SSUM_RETURN_NOT_OK(out->Close());
    SSUM_RETURN_NOT_OK(env->RenameFile(tmp, path));
    // And the rename itself: fsync the directory so the publish survives a
    // crash too (the file was durable; the directory entry must be).
    const size_t slash = path.find_last_of('/');
    const std::string parent =
        slash == std::string::npos ? std::string(".") : path.substr(0, slash);
    return env->SyncDir(parent);
  }();
  if (!st.ok()) (void)env->RemoveFile(tmp);  // best-effort staging cleanup
  return st;
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes) {
  return AtomicWriteFile(Env::Default(), path, bytes);
}

Result<std::string> ReadFileBytes(Env* env, const std::string& path) {
  return env->ReadFile(path);
}

Result<std::string> ReadFileBytes(const std::string& path) {
  return Env::Default()->ReadFile(path);
}

}  // namespace ssum
