#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

namespace ssum {

namespace {

/// splitmix64: the standard 64-bit finalizer — cheap, stateless, and good
/// enough to decorrelate per-attempt jitter.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool IsRetriableIo(const Status& status) { return status.IsIoError(); }

uint64_t BackoffDelayMs(const RetryPolicy& policy, uint32_t attempt) {
  if (attempt == 0) return 0;
  double nominal = static_cast<double>(policy.initial_backoff_ms);
  for (uint32_t i = 1; i < attempt; ++i) {
    nominal *= policy.multiplier;
    if (nominal >= static_cast<double>(policy.max_backoff_ms)) break;
  }
  nominal = std::min(nominal, static_cast<double>(policy.max_backoff_ms));
  // Deterministic jitter in [1/2, 1): top 53 bits of the hash as a fraction.
  const uint64_t h = Mix64(policy.seed ^ (uint64_t{attempt} << 32));
  const double fraction =
      static_cast<double>(h >> 11) / 9007199254740992.0;  // [0, 1)
  return static_cast<uint64_t>(nominal * (0.5 + fraction / 2.0));
}

Status RunWithRetry(const RetryPolicy& policy, const char* what,
                    const std::function<Status()>& op) {
  const uint32_t attempts = std::max<uint32_t>(policy.max_attempts, 1);
  Status last;
  for (uint32_t attempt = 1; attempt <= attempts; ++attempt) {
    last = op();
    if (last.ok() || !IsRetriableIo(last)) return last;
    if (attempt == attempts) break;
    const uint64_t delay = BackoffDelayMs(policy, attempt);
    if (policy.sleeper) {
      policy.sleeper(delay);
    } else if (delay > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
  return last.WithContext(std::string(what) + " failed after " +
                          std::to_string(attempts) + " attempts");
}

}  // namespace ssum
