#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ssum {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// True when `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Joins the items with `sep` between them.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep);

/// Strict integer / double parsing (whole string must be consumed).
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Lower-cases ASCII characters.
std::string AsciiToLower(std::string_view s);

/// Formats a double with fixed precision (no locale surprises).
std::string FormatDouble(double v, int precision);

/// Formats an integer with thousands separators ("12,550").
std::string FormatWithCommas(int64_t v);

}  // namespace ssum
