#include "common/status_builder.h"

namespace ssum {

namespace {

Status MakeStatus(StatusCode code, std::string msg) {
  switch (code) {
    case StatusCode::kOk:
      break;  // a builder for OK is a programming error; degrade to Internal
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(msg));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(msg));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(msg));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(msg));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(msg));
    case StatusCode::kParseError:
      return Status::ParseError(std::move(msg));
    case StatusCode::kIoError:
      return Status::IoError(std::move(msg));
    case StatusCode::kDataLoss:
      return Status::DataLoss(std::move(msg));
    case StatusCode::kNotImplemented:
      return Status::NotImplemented(std::move(msg));
    case StatusCode::kInternal:
      return Status::Internal(std::move(msg));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(msg));
    case StatusCode::kUnavailable:
      return Status::Unavailable(std::move(msg));
  }
  return Status::Internal("StatusBuilder built with OK code: " +
                          std::move(msg));
}

}  // namespace

Status StatusBuilder::Build() const {
  std::string msg = message_.str();
  std::string where;
  if (!source_.empty()) {
    where += source_;
    if (line_ > 0) where += ":" + std::to_string(line_);
  } else if (line_ > 0) {
    where += "line " + std::to_string(line_);
  }
  if (byte_offset_ >= 0) {
    if (!where.empty()) where += ", ";
    where += "byte " + std::to_string(byte_offset_);
  }
  if (!where.empty()) msg += " (" + where + ")";
  return MakeStatus(code_, std::move(msg));
}

}  // namespace ssum
