#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/status.h"

namespace ssum {

/// Thread-count knob shared by every parallel kernel. Plumbed through
/// SummarizeOptions and the `--threads` flag of the CLIs and benches.
/// (Still an aggregate: `ParallelOptions{1}` keeps meaning one thread.)
struct ParallelOptions {
  /// Worker threads for parallel kernels. 0 resolves via SSUM_THREADS, then
  /// SetDefaultThreadCount, then the hardware concurrency; 1 always takes
  /// the serial path. Every kernel guarantees bit-identical results across
  /// thread counts (see docs/performance.md).
  uint32_t threads = 0;
  /// Cooperative time budget / cancellation, checked before every chunk a
  /// worker claims; an expired deadline surfaces as kDeadlineExceeded from
  /// ParallelFor. Defaults to unlimited (a two-load no-op per chunk).
  Deadline deadline;
};

/// std::thread::hardware_concurrency(), never 0.
uint32_t HardwareThreadCount();

/// Sets the process-wide default used when ParallelOptions::threads == 0.
/// Passing 0 reverts to the hardware concurrency. The `--threads` flag of
/// the CLIs and benches lands here.
void SetDefaultThreadCount(uint32_t threads);
uint32_t DefaultThreadCount();

/// Effective thread count for one kernel invocation:
///   1. SSUM_THREADS (if set to a positive integer) overrides everything —
///      SSUM_THREADS=1 forces the serial path process-wide;
///   2. otherwise an explicit `requested` > 0 wins;
///   3. otherwise the process default (SetDefaultThreadCount / hardware).
uint32_t ResolveThreadCount(uint32_t requested);

/// Parses and removes "--threads N" / "--threads=N" from an argv vector
/// (before e.g. benchmark::Initialize consumes it) and applies the value via
/// SetDefaultThreadCount. Returns the parsed count, 0 when absent.
uint32_t ConsumeThreadsFlag(int* argc, char** argv);

/// Fixed-size thread pool with a FIFO work queue. One shared instance backs
/// every ParallelFor call (ThreadPool::Shared()); standalone pools are for
/// tests and special-purpose callers.
///
/// Waiting callers participate in execution (RunOnePendingTask), so nested
/// ParallelFor calls issued from inside pool tasks cannot deadlock.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(uint32_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Enqueues a task. After Shutdown the task runs inline on the caller.
  void Submit(std::function<void()> task);

  /// Pops and runs one queued task on the calling thread. Returns false when
  /// the queue is empty.
  bool RunOnePendingTask();

  /// Drains the queue, joins all workers. Idempotent; implied by ~ThreadPool.
  void Shutdown();

  /// Process-wide pool backing ParallelFor. Created on first use with
  /// max(DefaultThreadCount(), 8) - 1 workers (the caller thread is the
  /// extra lane); never destroyed.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  bool shutting_down_ = false;
};

/// Number of chunks ParallelForChunked cuts [begin, end) into with the given
/// grain — use it to size per-chunk output arrays.
size_t ParallelNumChunks(size_t begin, size_t end, size_t grain);

/// Runs fn(chunk, chunk_begin, chunk_end) for every grain-sized contiguous
/// chunk of [begin, end). Chunk boundaries depend only on (begin, end,
/// grain) — never on the thread count — so per-chunk partial results reduced
/// in chunk order are bit-identical to a serial evaluation. At most
/// ResolveThreadCount(threads) chunks run concurrently; the serial path is
/// taken for threads == 1 or a single chunk.
///
/// Error contract: the first failing chunk *in chunk order* determines the
/// returned Status, independent of scheduling — exceptions escaping fn are
/// captured and converted to Status::Internal (Arrow idiom), and an expired
/// options.deadline fails every not-yet-started chunk with
/// kDeadlineExceeded. Nothing terminates the process; callers propagate.
Status ParallelForChunked(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t chunk, size_t chunk_begin,
                             size_t chunk_end)>& fn,
    const ParallelOptions& options = {});
/// Thread-count-only overload kept for callers without a deadline.
Status ParallelForChunked(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t chunk, size_t chunk_begin,
                             size_t chunk_end)>& fn,
    uint32_t threads);

/// Per-index convenience over ParallelForChunked: runs fn(i) for i in
/// [begin, end). Same determinism and error contract.
Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn,
                   const ParallelOptions& options = {});
Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn, uint32_t threads);

}  // namespace ssum
