#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ssum {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  SSUM_CHECK(bound > 0, "NextBounded requires bound > 0");
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  SSUM_CHECK(lo <= hi, "NextInRange requires lo <= hi");
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0) u1 = 1e-12;
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double v = mean + std::sqrt(mean) * z + 0.5;
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += std::max(0.0, w);
  if (total <= 0) return weights.size();
  double r = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += std::max(0.0, weights[i]);
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream_id) {
  // Mix the child stream id into fresh state derived from this generator.
  uint64_t base = Next() ^ (stream_id * 0x9e3779b97f4a7c15ULL);
  return Rng(base);
}

ZipfTable::ZipfTable(size_t n, double s) {
  SSUM_CHECK(n > 0, "ZipfTable requires n > 0");
  cdf_.resize(n);
  double acc = 0;
  for (size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

size_t ZipfTable::Sample(Rng* rng) const {
  double r = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), r);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace ssum
