#include "common/status.h"

namespace ssum {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message_;
  return Status(code_, std::move(msg));
}

}  // namespace ssum
