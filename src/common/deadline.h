#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace ssum {

/// Cooperative cancellation signal. A token is shared (by pointer) between
/// the party that may cancel and the kernels doing the work; kernels observe
/// it through Deadline::Check() at chunk and instance-batch boundaries.
/// Cancellation is sticky: once set it never clears.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A copyable time budget + optional cancellation handle, carried by value
/// inside ParallelOptions (and therefore SummarizeOptions /
/// ShardedAnnotateOptions). The default-constructed Deadline is unlimited
/// and Check() is a two-load fast path, so plumbing it everywhere costs
/// nothing on the common path.
///
/// The contract is cooperative, not preemptive: kernels call Check() at
/// their natural grain boundaries (a ParallelFor chunk claim, an instance
/// shard, a combination-scan stride) and propagate kDeadlineExceeded
/// upward as an ordinary Status. Work already done is discarded; nothing
/// half-written ever becomes visible because the store only installs
/// complete artifacts (see docs/robustness.md).
class Deadline {
 public:
  /// Unlimited: Check() always passes.
  Deadline() = default;

  static Deadline Unlimited() { return Deadline(); }

  /// Expires `ms` milliseconds from now (0 = already expired, which makes
  /// deadline handling deterministic to test).
  static Deadline After(int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// Attaches a cancellation token; Check() fails once it is cancelled.
  /// A Deadline may carry a token with or without a time budget.
  void AttachCancel(std::shared_ptr<const CancelToken> token) {
    cancel_ = std::move(token);
  }

  bool unlimited() const { return !has_deadline_ && cancel_ == nullptr; }

  /// True when the time budget ran out or the token was cancelled.
  bool expired() const {
    if (cancel_ != nullptr && cancel_->cancelled()) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }

  /// OK while alive; kDeadlineExceeded (naming `what`) once expired or
  /// cancelled. This is the one call kernels make at their boundaries.
  Status Check(const char* what = "operation") const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Status::DeadlineExceeded(std::string(what) + " was cancelled");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= at_) {
      return Status::DeadlineExceeded(std::string(what) +
                                      " exceeded its deadline");
    }
    return Status::OK();
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
  std::shared_ptr<const CancelToken> cancel_;
};

}  // namespace ssum
