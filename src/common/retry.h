#pragma once

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace ssum {

/// Bounded exponential backoff for *transient* IO failures (the kind a
/// FaultInjectingEnv schedules with '~', or a real blip under load). The
/// jitter is deterministic — a hash of (seed, attempt) scales each delay
/// into [1/2, 1) of its nominal value — so retry timing is replayable and
/// tests never sleep an unpredictable amount. Delays are milliseconds:
/// attempt n waits jitter * min(initial * multiplier^(n-1), max).
///
/// Only Status::IoError is retried. DataLoss/OutOfRange mean the bytes are
/// wrong, not the disk — retrying cannot help; the quarantine-and-heal path
/// of the ArtifactCache owns those (docs/robustness.md).
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  uint32_t max_attempts = 3;
  uint64_t initial_backoff_ms = 1;
  uint64_t max_backoff_ms = 100;
  double multiplier = 4.0;
  /// Jitter seed; same seed + attempt => same delay, always.
  uint64_t seed = 0x5353554d;  // "SSUM"
  /// Test hook: receives each computed delay instead of sleeping. Null
  /// sleeps for real (std::this_thread::sleep_for).
  std::function<void(uint64_t delay_ms)> sleeper;
};

/// True for the status codes RunWithRetry considers transient.
bool IsRetriableIo(const Status& status);

/// Backoff before retry `attempt` (1-based: the delay after the attempt-th
/// failure). Deterministic in (policy.seed, attempt).
uint64_t BackoffDelayMs(const RetryPolicy& policy, uint32_t attempt);

/// Runs `op` up to policy.max_attempts times, sleeping the backoff between
/// attempts. Returns the first success, the first non-retriable failure
/// immediately, or the last failure when attempts run out (with the attempt
/// count appended to the message).
Status RunWithRetry(const RetryPolicy& policy, const char* what,
                    const std::function<Status()>& op);

}  // namespace ssum
