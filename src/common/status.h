#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace ssum {

/// Error categories used across the library. Mirrors the coarse-grained
/// code sets used by Arrow / RocksDB style status objects.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kParseError,
  kIoError,
  kDataLoss,
  kNotImplemented,
  kInternal,
  kDeadlineExceeded,
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "ParseError", ...).
std::string_view StatusCodeName(StatusCode code);

/// Lightweight success-or-error value. The library does not use exceptions;
/// every fallible operation returns `Status` (or `Result<T>`, see result.h).
///
/// The OK status carries no allocation; error statuses own a message string.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  /// Stored bytes fail integrity verification (bad magic, checksum
  /// mismatch, impossible structure) — the snapshot-store analogue of
  /// ParseError: the data existed once but cannot be trusted now.
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The request ran out of time (or was cancelled) before the work
  /// completed. Cooperative: kernels check at chunk/batch boundaries, so the
  /// partial work is simply discarded — nothing aborts (see
  /// common/deadline.h and docs/robustness.md).
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  /// The service cannot take the request *right now* — admission control
  /// shed it (full queue, connection cap). Retrying later is expected to
  /// succeed; nothing about the request itself is wrong. This is the code
  /// the serving layer returns at the wire on overload (docs/serving.md).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }
  bool IsDataLoss() const { return code_ == StatusCode::kDataLoss; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Prefixes the error message with `context` ("ctx: old message").
  /// No-op on OK statuses. Useful when propagating errors upward.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK status to the caller.
#define SSUM_RETURN_NOT_OK(expr)                  \
  do {                                            \
    ::ssum::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace ssum
