#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace ssum {

/// Sequential write handle returned by Env::NewWritableFile. The durability
/// split follows the LevelDB/RocksDB contract:
///   Append  — bytes into the file (user-space buffered),
///   Flush   — user-space buffers to the OS,
///   Sync    — OS buffers to durable media (fsync),
///   Close   — releases the handle (idempotent; flushes first).
/// Every call returns Status; nothing throws.
class WritableFile {
 public:
  virtual ~WritableFile();

  virtual Status Append(std::string_view data) = 0;
  virtual Status Flush() = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Advisory inter-process lock handle returned by Env::LockFile. The lock
/// is held until Release() or destruction (whichever comes first; both are
/// idempotent). Advisory means cooperating writers only — it serializes
/// ArtifactCache counter merges across processes, it does not protect the
/// files from non-ssum writers.
class FileLock {
 public:
  virtual ~FileLock();

  virtual Status Release() = 0;
};

/// One byte stream between a client and the serving daemon (src/serve).
/// Implementations must tolerate Read and WriteAll being issued from
/// different threads than the one that created the connection (but not
/// concurrent calls to the same method).
class Connection {
 public:
  virtual ~Connection();

  /// Reads up to `max` bytes into `buf`. Returns the byte count actually
  /// read; 0 means the peer closed the stream cleanly (EOF). Transport
  /// failures are IoError.
  virtual Result<size_t> Read(void* buf, size_t max) = 0;

  /// Waits up to `timeout_ms` for the stream to become readable (data or
  /// EOF). False on timeout. Lets a server poll a connection without
  /// parking a thread in an unbounded Read — the stop flag stays checkable.
  /// Default: immediately readable (suits in-memory test doubles).
  virtual Result<bool> Readable(int timeout_ms) {
    (void)timeout_ms;
    return true;
  }

  /// Writes all of `data`, looping over partial sends. A peer that went
  /// away mid-write is IoError, never a signal or a crash.
  virtual Status WriteAll(std::string_view data) = 0;

  /// Closes the stream (idempotent).
  virtual Status Close() = 0;
};

/// A listening server endpoint, produced by Env::NewListener.
class Listener {
 public:
  virtual ~Listener();

  /// Waits up to `timeout_ms` for an inbound connection. A timeout is
  /// NotFound (the accept loop's idle tick, not an error); a closed
  /// listener is IoError.
  virtual Result<std::unique_ptr<Connection>> Accept(int timeout_ms) = 0;

  /// The port actually bound — resolves ":0" (ephemeral) requests.
  virtual int port() const = 0;

  /// Stops accepting (idempotent). In-flight connections are unaffected.
  virtual Status Close() = 0;
};

/// Filesystem + socket abstraction the snapshot store and the serving
/// daemon do all of their IO through (store/container.cc,
/// store/artifact_cache.cc, serve/server.cc). Production code uses the
/// process-wide PosixEnv behind Env::Default(); tests and the
/// crash-consistency sweeps substitute a FaultInjectingEnv to make every IO
/// step — disk *and* network — fail deterministically. Implementations must
/// be safe for concurrent use from multiple threads.
class Env {
 public:
  virtual ~Env();

  /// Opens (creates/truncates) `path` for sequential writing.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) = 0;

  /// Reads the whole file. NotFound when it does not exist, IoError for
  /// anything else.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  /// Removes a file. NotFound when absent.
  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates a directory and any missing parents (no error when present).
  virtual Status CreateDirs(const std::string& path) = 0;

  /// fsyncs a directory so a preceding rename/create within it is durable.
  virtual Status SyncDir(const std::string& path) = 0;

  virtual Result<bool> FileExists(const std::string& path) = 0;

  /// Takes an advisory exclusive lock on `path` (created if absent),
  /// blocking until granted. Default implementation: a no-op lock that
  /// always succeeds, so filesystem doubles without locking support keep
  /// working — callers must treat the lock as best-effort coordination,
  /// never as a correctness requirement (the cache's atomic installs are
  /// safe without it).
  virtual Result<std::unique_ptr<FileLock>> LockFile(const std::string& path);

  /// Binds and listens on `addr` ("host:port"; host defaults to 127.0.0.1
  /// when empty, port 0 picks an ephemeral port — read it back from
  /// Listener::port()). Default implementation: NotImplemented, so
  /// filesystem-only Env substitutes keep working unchanged.
  virtual Result<std::unique_ptr<Listener>> NewListener(
      const std::string& addr);

  /// Connects to a listening `addr` ("host:port"). NotImplemented by
  /// default, like NewListener.
  virtual Result<std::unique_ptr<Connection>> Connect(const std::string& addr);

  /// Process-wide PosixEnv (never destroyed).
  static Env* Default();
};

/// POSIX implementation: stdio writes, fsync-backed Sync, std::filesystem
/// metadata operations, loopback-friendly TCP sockets for the serving layer.
class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  /// flock(2)-backed exclusive lock; blocks until the holder releases.
  Result<std::unique_ptr<FileLock>> LockFile(const std::string& path) override;
  Result<std::unique_ptr<Listener>> NewListener(
      const std::string& addr) override;
  Result<std::unique_ptr<Connection>> Connect(const std::string& addr) override;
};

/// IO operation kinds a fault can target. Close is deliberately not a fault
/// point: a failing close is indistinguishable from a failing flush, which
/// is already enumerable.
enum class FaultOp : uint8_t {
  kOpen = 0,
  kWrite,
  kFlush,
  kSync,
  kRename,
  kUnlink,
  kRead,
  kMkdir,
  kSyncDir,
  // Network operations of the serving layer; faultable like disk IO so the
  // request boundary's failure handling is deterministic to test too.
  kListen,
  kConnect,
  kAccept,
  kSend,
  kRecv,
  /// Advisory lock acquisition (Env::LockFile). Faultable so tests can
  /// prove lock-acquisition failure degrades to lock-free operation
  /// instead of failing the caller's install.
  kLock,
};
inline constexpr size_t kNumFaultOps = 15;

const char* FaultOpName(FaultOp op);

/// What an injected fault does to the matched operation.
enum class FaultKind : uint8_t {
  kEio = 0,    ///< generic IO error; the operation has no effect
  kEnospc,     ///< "no space" flavor of the same
  kTorn,       ///< writes only the first `torn_bytes` bytes, then fails
};

/// One scheduled fault: the Nth operation of kind `op` (1-based, counted
/// per kind across the env's lifetime) fails with `kind`. A *transient*
/// fault fires exactly once — the retried operation succeeds (a blip). A
/// *permanent* fault also fails every later operation of that kind (a dead
/// disk), which is what exhausts RetryPolicy in tests.
struct Fault {
  FaultOp op = FaultOp::kWrite;
  uint64_t nth = 1;
  FaultKind kind = FaultKind::kEio;
  uint64_t torn_bytes = 0;  ///< kTorn: bytes actually written before failing
  bool transient = false;
};

/// Deterministic fault injection around a base Env. Faults are scheduled
/// either individually (ScheduleFault / FailAtOpIndex) or from a compact
/// schedule string (LoadSchedule):
///
///   schedule  := entry (';' entry)*
///   entry     := op '#' N '=' kind [':' K] ['~']
///   op        := open|write|flush|sync|rename|unlink|read|mkdir|syncdir
///              | listen|connect|accept|send|recv|lock
///   kind      := eio | enospc | torn        (torn requires ':K')
///
/// "write#2=torn:17~;sync#1=enospc" truncates the 2nd write after 17 bytes
/// (transient, '~'), and makes every sync from the 1st on fail with ENOSPC
/// (permanent, the default). Matching is purely count-based — no wall
/// clock, no randomness — so a schedule replays identically every run.
///
/// The env also records every operation it sees (history()), which is what
/// lets the crash-consistency sweep in tests/test_cache.cc first trace a
/// clean install and then re-run it once per recorded op with that op
/// failing.
class FaultInjectingEnv : public Env {
 public:
  /// Does not take ownership of `base`; pass Env::Default() normally.
  explicit FaultInjectingEnv(Env* base);

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<bool> FileExists(const std::string& path) override;
  /// Counts a kLock fault point, then delegates to the base Env.
  Result<std::unique_ptr<FileLock>> LockFile(const std::string& path) override;
  /// Network ops delegate to the base Env with kListen / kConnect /
  /// kAccept / kSend / kRecv fault points wrapped around them, so a serve
  /// test can kill exactly the Nth recv without touching real sockets' luck.
  Result<std::unique_ptr<Listener>> NewListener(
      const std::string& addr) override;
  Result<std::unique_ptr<Connection>> Connect(const std::string& addr) override;

  void ScheduleFault(const Fault& fault);

  /// Fails the operation with global index `index` (0-based position in
  /// history()) regardless of kind — the sweep-friendly addressing mode.
  void FailAtOpIndex(uint64_t index, FaultKind kind, uint64_t torn_bytes = 0,
                     bool transient = false);

  /// Parses the schedule grammar above and schedules every entry.
  Status LoadSchedule(std::string_view spec);

  /// Operations observed so far, in order (faulted attempts included).
  std::vector<FaultOp> history() const;
  uint64_t total_ops() const;
  uint64_t faults_injected() const;
  uint64_t ops(FaultOp op) const;

  /// Drops pending faults / zeroes counters and history.
  void ClearSchedule();
  void ResetCounters();

 private:
  friend class FaultInjectingWritableFile;
  friend class FaultInjectingConnection;
  friend class FaultInjectingListener;

  struct Injection {
    bool fire = false;
    FaultKind kind = FaultKind::kEio;
    uint64_t torn_bytes = 0;
  };

  /// Counts one operation of `op` and reports whether it must fail.
  Injection Observe(FaultOp op);
  static Status FaultStatus(FaultKind kind, FaultOp op,
                            const std::string& path);

  Env* base_;
  mutable std::mutex mutex_;
  uint64_t per_op_count_[kNumFaultOps] = {};
  uint64_t global_count_ = 0;
  uint64_t injected_ = 0;
  /// Permanent fault armed for an op kind (dead-disk mode).
  bool permanent_[kNumFaultOps] = {};
  FaultKind permanent_kind_[kNumFaultOps] = {};
  std::vector<Fault> faults_;                  // per-kind (op, nth) faults
  struct GlobalFault {
    uint64_t index;
    FaultKind kind;
    uint64_t torn_bytes;
    bool transient;
  };
  std::vector<GlobalFault> global_faults_;
  std::vector<FaultOp> history_;
};

}  // namespace ssum
