#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace ssum {

/// Value-or-error wrapper in the style of arrow::Result. A `Result<T>` holds
/// either a `T` or a non-OK `Status`; constructing one from an OK status is a
/// programming error (asserted in debug builds, degraded to Internal error in
/// release builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result<T> must not be built from an OK status");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error status; OK when a value is held.
  const Status& status() const { return status_; }

  /// Access to the held value. Caller must check ok() first; accessing an
  /// error Result aborts with the carried status message in every build
  /// mode (a plain release-mode assert would compile to unchecked UB).
  const T& ValueOrDie() const& {
    SSUM_CHECK(ok(), status_.ToString());
    return *value_;
  }
  T& ValueOrDie() & {
    SSUM_CHECK(ok(), status_.ToString());
    return *value_;
  }
  T&& ValueOrDie() && {
    SSUM_CHECK(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value
};

/// Evaluates `expr` (a Result<T>); on error returns the status, otherwise
/// assigns the value into `lhs` (which must already be declared).
#define SSUM_ASSIGN_OR_RETURN(lhs, expr)            \
  do {                                              \
    auto _res = (expr);                             \
    if (!_res.ok()) return _res.status();           \
    lhs = std::move(_res).ValueOrDie();             \
  } while (false)

}  // namespace ssum
