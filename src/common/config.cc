#include "common/config.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/status_builder.h"
#include "common/string_util.h"

namespace ssum {
namespace {

bool IsKeyChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

bool IsValidKey(std::string_view key) {
  if (key.empty()) return false;
  for (char c : key) {
    if (!IsKeyChar(c)) return false;
  }
  return true;
}

/// Quoted input text in parse errors: clipped and with non-printable bytes
/// replaced, so a Status message never carries a raw dump of the file it
/// failed on (parse errors can travel over the serve wire).
std::string Preview(std::string_view text) {
  constexpr size_t kMaxPreviewBytes = 48;
  const bool clipped = text.size() > kMaxPreviewBytes;
  if (clipped) text = text.substr(0, kMaxPreviewBytes);
  std::string out;
  out.reserve(text.size() + 3);
  for (char c : text) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back((b < 0x20 || b == 0x7f) ? '?' : c);
  }
  if (clipped) out += "...";
  return out;
}

}  // namespace

Result<ConfigMap> ConfigMap::Parse(std::string_view text,
                                   std::string_view source,
                                   const ParseLimits& limits) {
  SSUM_RETURN_NOT_OK(CheckInputSize(text.size(), limits, "config"));

  ConfigMap config;
  config.source_ = std::string(source);

  size_t line_number = 0;
  size_t pos = 0;
  size_t order = 0;
  while (pos < text.size()) {
    size_t line_start = pos;
    size_t eol = text.find('\n', pos);
    std::string_view raw = (eol == std::string_view::npos)
                               ? text.substr(pos)
                               : text.substr(pos, eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() : eol + 1;
    ++line_number;

    if (raw.size() > limits.max_token_bytes) {
      return ParseErrorAt(line_number, line_start).Source(source)
             << "config line exceeds max_token_bytes ("
             << limits.max_token_bytes << ")";
    }

    std::string_view line = TrimWhitespace(raw);
    if (line.empty() || line.front() == '#') continue;

    size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return ParseErrorAt(line_number, line_start).Source(source)
             << "expected 'key: value', got '" << Preview(line) << "'";
    }
    std::string_view key = TrimWhitespace(line.substr(0, colon));
    std::string_view value = TrimWhitespace(line.substr(colon + 1));
    if (!IsValidKey(key)) {
      return ParseErrorAt(line_number, line_start).Source(source)
             << "invalid config key '" << Preview(key)
             << "' (allowed: [A-Za-z0-9_.-]+)";
    }
    auto it = config.entries_.find(key);
    if (it != config.entries_.end()) {
      return ParseErrorAt(line_number, line_start).Source(source)
             << "duplicate config key '" << key << "' (first defined on line "
             << it->second.line << ")";
    }
    if (config.entries_.size() >= limits.max_items) {
      return ParseErrorAt(line_number, line_start).Source(source)
             << "config exceeds max_items (" << limits.max_items << ")";
    }
    Entry entry;
    entry.value = std::string(value);
    entry.line = line_number;
    entry.order = order++;
    config.entries_.emplace(std::string(key), std::move(entry));
  }
  return config;
}

Result<ConfigMap> ConfigMap::ParseFile(const std::string& path,
                                       const ParseLimits& limits) {
  std::unique_ptr<FILE, int (*)(FILE*)> file(std::fopen(path.c_str(), "rb"),
                                             &std::fclose);
  if (file == nullptr) {
    return Status::NotFound("cannot open config file '" + path + "'");
  }
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    text.append(buffer, got);
    if (text.size() > limits.max_input_bytes) {
      return Status::OutOfRange("config file '" + path +
                             "' exceeds max_input_bytes");
    }
  }
  if (std::ferror(file.get())) {
    return Status::Unavailable("error reading config file '" + path + "'");
  }
  return Parse(text, path, limits);
}

bool ConfigMap::Has(std::string_view key) const {
  return entries_.find(key) != entries_.end();
}

Result<std::string> ConfigMap::GetString(std::string_view key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("missing config key '" + std::string(key) + "' in " +
                         source_);
  }
  read_.insert(std::string(key));
  return it->second.value;
}

std::string ConfigMap::GetString(std::string_view key,
                                 std::string_view default_value) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) return std::string(default_value);
  read_.insert(std::string(key));
  return it->second.value;
}

Status ConfigMap::TypedError(std::string_view key, const char* type,
                             std::string_view value) const {
  auto it = entries_.find(key);
  size_t line = (it == entries_.end()) ? 0 : it->second.line;
  return StatusBuilder(StatusCode::kInvalidArgument)
             .Source(source_)
             .Line(line)
         << "config key '" << key << "': '" << Preview(value)
         << "' is not a valid " << type;
}

Result<int64_t> ConfigMap::GetInt(std::string_view key) const {
  auto value = GetString(key);
  SSUM_RETURN_NOT_OK(value.status());
  auto parsed = ParseInt64(*value);
  if (!parsed.ok()) return TypedError(key, "integer", *value);
  return *parsed;
}

int64_t ConfigMap::GetInt(std::string_view key, int64_t default_value) const {
  if (!Has(key)) return default_value;
  auto parsed = GetInt(key);
  return parsed.ok() ? *parsed : default_value;
}

Result<double> ConfigMap::GetDouble(std::string_view key) const {
  auto value = GetString(key);
  SSUM_RETURN_NOT_OK(value.status());
  auto parsed = ParseDouble(*value);
  if (!parsed.ok()) return TypedError(key, "number", *value);
  return *parsed;
}

double ConfigMap::GetDouble(std::string_view key, double default_value) const {
  if (!Has(key)) return default_value;
  auto parsed = GetDouble(key);
  return parsed.ok() ? *parsed : default_value;
}

Result<bool> ConfigMap::GetBool(std::string_view key) const {
  auto value = GetString(key);
  SSUM_RETURN_NOT_OK(value.status());
  std::string lower = AsciiToLower(*value);
  if (lower == "true" || lower == "yes" || lower == "on" || lower == "1") {
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "off" || lower == "0") {
    return false;
  }
  return TypedError(key, "boolean", *value);
}

bool ConfigMap::GetBool(std::string_view key, bool default_value) const {
  if (!Has(key)) return default_value;
  auto parsed = GetBool(key);
  return parsed.ok() ? *parsed : default_value;
}

std::vector<std::string> ConfigMap::UnreadKeys() const {
  std::vector<std::pair<size_t, std::string>> unread;
  for (const auto& [key, entry] : entries_) {
    if (read_.find(key) == read_.end()) unread.emplace_back(entry.order, key);
  }
  std::sort(unread.begin(), unread.end());
  std::vector<std::string> keys;
  keys.reserve(unread.size());
  for (auto& [order, key] : unread) keys.push_back(std::move(key));
  return keys;
}

Status ConfigMap::CheckAllKeysRead() const {
  auto unread = UnreadKeys();
  if (unread.empty()) return Status::OK();
  return StatusBuilder(StatusCode::kInvalidArgument)
             .Source(source_)
             .Line(LineOf(unread.front()))
         << "unknown config key '" << unread.front() << "'"
         << (unread.size() > 1
                 ? " (and " + std::to_string(unread.size() - 1) + " more)"
                 : "");
}

std::vector<std::string> ConfigMap::Keys() const {
  std::vector<std::pair<size_t, std::string>> ordered;
  for (const auto& [key, entry] : entries_) {
    ordered.emplace_back(entry.order, key);
  }
  std::sort(ordered.begin(), ordered.end());
  std::vector<std::string> keys;
  keys.reserve(ordered.size());
  for (auto& [order, key] : ordered) keys.push_back(std::move(key));
  return keys;
}

size_t ConfigMap::LineOf(std::string_view key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.line;
}

}  // namespace ssum
