#pragma once

#include <sstream>
#include <string>

namespace ssum {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: `LogMessage(kInfo) << "x=" << x;` emits on
/// destruction. Kept deliberately tiny — the library logs sparingly.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal

#define SSUM_LOG(level) ::ssum::internal::LogMessage(::ssum::LogLevel::level)

/// Fatal invariant check: prints the message and aborts. Used for internal
/// invariants that indicate programming errors, never for user input.
[[noreturn]] void FatalError(const std::string& message);

#define SSUM_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) ::ssum::FatalError(std::string("check failed: ") + \
                                    #cond + " — " + (msg));          \
  } while (false)

}  // namespace ssum
