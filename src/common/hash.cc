#include "common/hash.h"

#include <array>
#include <bit>

namespace ssum {
namespace {

/// CRC32C lookup table for the reflected polynomial 0x82F63B78, built once.
const std::array<uint32_t, 256>& Crc32cTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

void Fnv1a64::UpdateDouble(double v) {
  // Canonicalize -0.0 so numerically-equal payloads fingerprint equally;
  // NaNs keep their bit pattern (any NaN in an artifact is a distinct state).
  if (v == 0.0) v = 0.0;
  UpdateU64(std::bit_cast<uint64_t>(v));
}

uint64_t HashBytes(std::string_view bytes) {
  Fnv1a64 h;
  h.Update(bytes);
  return h.Digest();
}

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  Fnv1a64 h;
  h.UpdateU64(seed);
  h.UpdateU64(value);
  return h.Digest();
}

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

uint32_t Crc32c(std::string_view bytes, uint32_t seed) {
  return Crc32c(bytes.data(), bytes.size(), seed);
}

std::string HashToHex(uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = digits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace ssum
