#pragma once

namespace ssum {

/// The CMAKE_BUILD_TYPE this library was compiled with ("Release",
/// "RelWithDebInfo", "Debug", ...); "unknown" when the build system did not
/// provide one. Benches embed this in every emitted JSON record so a perf
/// trajectory can never silently mix debug and release numbers.
const char* BuildType();

/// True for optimized build types (Release / RelWithDebInfo / MinSizeRel)
/// compiled with NDEBUG. Gated benches refuse (exit 2) to emit their JSON
/// records when this is false — debug numbers must never enter the
/// checked-in perf trajectory (bench/run_bench.sh builds a dedicated
/// Release tree for exactly this reason).
bool IsReleaseBuild();

}  // namespace ssum
