#include "common/string_util.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ssum {

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r' || s[b] == '\n'))
    ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r' ||
                   s[e - 1] == '\n'))
    --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out += sep;
    out += items[i];
  }
  return out;
}

Result<int64_t> ParseInt64(std::string_view s) {
  std::string buf(TrimWhitespace(s));
  if (buf.empty()) return Status::ParseError("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return Status::ParseError("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::ParseError("trailing characters in integer: " + buf);
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  std::string buf(TrimWhitespace(s));
  if (buf.empty()) return Status::ParseError("empty double");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::ParseError("double out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::ParseError("trailing characters in double: " + buf);
  return v;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatWithCommas(int64_t v) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld", static_cast<long long>(v < 0 ? -v : v));
  std::string body(digits);
  std::string out;
  int count = 0;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (v < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace ssum
