#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ssum {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level)
    : level_(level),
      enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[ssum %s] %s\n", LevelTag(level_),
               stream_.str().c_str());
}

}  // namespace internal

void FatalError(const std::string& message) {
  std::fprintf(stderr, "[ssum FATAL] %s\n", message.c_str());
  std::abort();
}

}  // namespace ssum
