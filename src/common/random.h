#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ssum {

/// Deterministic 64-bit PRNG (xoshiro256** core with splitmix64 seeding).
///
/// Every stochastic component in the library (data generators, workload
/// samplers, simulated expert panels) takes an explicit `Rng` so that
/// experiments are exactly reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability `p` of true.
  bool NextBool(double p);

  /// Poisson-ish integer draw with the given mean, clamped to >= 0.
  /// Uses inversion for small means and a normal approximation for large
  /// means; exactness is unnecessary for workload synthesis, determinism is.
  uint64_t NextPoisson(double mean);

  /// Zipf-distributed value in [0, n) with exponent `s` (s > 0). Values near
  /// zero are most likely. Uses a precomputed CDF supplied by ZipfTable.
  /// (Free-standing helper class below keeps Rng allocation-free.)

  /// Samples an index from unnormalized non-negative weights. Returns
  /// weights.size() when the total weight is zero.
  size_t NextWeighted(const std::vector<double>& weights);

  /// In-place Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator (stable under call order).
  Rng Fork(uint64_t stream_id);

 private:
  uint64_t s_[4];
};

/// Precomputed Zipf CDF over [0, n) with exponent s.
class ZipfTable {
 public:
  ZipfTable(size_t n, double s);

  /// Draws one value using the supplied generator.
  size_t Sample(Rng* rng) const;

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ssum
