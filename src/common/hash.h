#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace ssum {

/// Streaming FNV-1a 64-bit hasher — the content-fingerprint primitive of the
/// snapshot store (src/store). Not cryptographic: fingerprints defend against
/// accidental key collisions and stale cache entries, not adversaries; the
/// container CRCs (below) defend against corruption.
class Fnv1a64 {
 public:
  static constexpr uint64_t kOffsetBasis = 1469598103934665603ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void Update(const void* data, size_t size) {
    const unsigned char* p = static_cast<const unsigned char*>(data);
    uint64_t h = hash_;
    for (size_t i = 0; i < size; ++i) {
      h ^= p[i];
      h *= kPrime;
    }
    hash_ = h;
  }
  void Update(std::string_view s) { Update(s.data(), s.size()); }
  /// Hashes the value as 8 little-endian bytes (fixed width, so adjacent
  /// variable-length fields cannot alias each other's byte streams).
  void UpdateU64(uint64_t v) {
    unsigned char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
    Update(b, 8);
  }
  void UpdateDouble(double v);

  uint64_t Digest() const { return hash_; }

 private:
  uint64_t hash_ = kOffsetBasis;
};

/// One-shot FNV-1a 64 of a byte string.
uint64_t HashBytes(std::string_view bytes);

/// Order-dependent combiner for composing fingerprints from parts.
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// CRC32C (Castagnoli, the iSCSI/ext4 polynomial) over `bytes`, software
/// table implementation. Used as the per-section and trailer checksum of the
/// binary snapshot containers (src/store/container.h). `seed` allows
/// incremental computation: pass a previous return value to continue.
uint32_t Crc32c(std::string_view bytes, uint32_t seed = 0);
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

/// Fixed-width lowercase hex rendering of a 64-bit hash ("16 nibbles"), the
/// form used in cache file names.
std::string HashToHex(uint64_t value);

}  // namespace ssum
