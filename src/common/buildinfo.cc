#include "common/buildinfo.h"

#include <string_view>

namespace ssum {

namespace {

constexpr const char* kBuildType =
#ifdef SSUM_BUILD_TYPE
    SSUM_BUILD_TYPE;
#else
    "unknown";
#endif

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] + 32 : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] + 32 : b[i];
    if (ca != cb) return false;
  }
  return true;
}

}  // namespace

const char* BuildType() {
  return kBuildType[0] == '\0' ? "unknown" : kBuildType;
}

bool IsReleaseBuild() {
#ifndef NDEBUG
  // Assertions enabled: whatever the build type string claims, these are
  // not numbers worth recording.
  return false;
#else
  const std::string_view type = BuildType();
  return EqualsIgnoreCase(type, "Release") ||
         EqualsIgnoreCase(type, "RelWithDebInfo") ||
         EqualsIgnoreCase(type, "MinSizeRel");
#endif
}

}  // namespace ssum
