#include "common/parse_limits.h"

#include <limits>
#include <string>

namespace ssum {

const ParseLimits& ParseLimits::Defaults() {
  static const ParseLimits kDefaults;
  return kDefaults;
}

ParseLimits ParseLimits::Unbounded() {
  ParseLimits l;
  l.max_input_bytes = std::numeric_limits<size_t>::max();
  l.max_depth = std::numeric_limits<size_t>::max();
  l.max_token_bytes = std::numeric_limits<size_t>::max();
  l.max_items = std::numeric_limits<size_t>::max();
  return l;
}

Status CheckInputSize(size_t size, const ParseLimits& limits,
                      const char* what) {
  if (size <= limits.max_input_bytes) return Status::OK();
  return Status::OutOfRange(
      std::string(what) + " is " + std::to_string(size) +
      " bytes, over the " + std::to_string(limits.max_input_bytes) +
      "-byte limit (raise ParseLimits::max_input_bytes to accept it)");
}

}  // namespace ssum
