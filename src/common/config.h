#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/parse_limits.h"
#include "common/result.h"
#include "common/status.h"

namespace ssum {

/// A minimal line-oriented `key: value` configuration format — the scenario
/// case files under bench/scenarios/ and anything else that wants a human
/// editable config without a YAML dependency:
///
///   # comment
///   name: stress_skew
///   schema.elements: 600
///   instance.unit_skew: zipf
///
/// Rules: one `key: value` pair per line; `#` starts a comment (whole line
/// only); blank lines are ignored; keys are `[A-Za-z0-9_.-]+`; values are
/// trimmed raw text (no quoting, no escapes, no continuation). Duplicate
/// keys are a parse error — a config where a later line silently wins is a
/// config that lies to its reader.
///
/// Errors follow the ingestion discipline (common/status_builder.h): every
/// diagnostic carries the source name, 1-based line and byte offset, and
/// ParseLimits bound input size, line length (max_token_bytes) and entry
/// count (max_items).
class ConfigMap {
 public:
  /// Parses `text`. `source` names the input in diagnostics (a path,
  /// "<inline>", ...).
  static Result<ConfigMap> Parse(std::string_view text, std::string_view source,
                                 const ParseLimits& limits);
  static Result<ConfigMap> Parse(std::string_view text,
                                 std::string_view source) {
    return Parse(text, source, ParseLimits::Defaults());
  }

  /// Reads and parses a file (through stdio; callers wanting fault injection
  /// read the bytes themselves and call Parse).
  static Result<ConfigMap> ParseFile(const std::string& path,
                                     const ParseLimits& limits);

  bool Has(std::string_view key) const;

  /// Typed getters. The non-default forms fail with NotFound when the key
  /// is absent; every form fails with InvalidArgument (naming key, line and
  /// source) when the value does not parse as the requested type. All
  /// getters mark the key as read — see UnreadKeys().
  Result<std::string> GetString(std::string_view key) const;
  std::string GetString(std::string_view key,
                        std::string_view default_value) const;
  Result<int64_t> GetInt(std::string_view key) const;
  int64_t GetInt(std::string_view key, int64_t default_value) const;
  Result<double> GetDouble(std::string_view key) const;
  double GetDouble(std::string_view key, double default_value) const;
  Result<bool> GetBool(std::string_view key) const;
  bool GetBool(std::string_view key, bool default_value) const;

  /// Keys present in the config that no getter has touched, in line order.
  /// Spec loaders call this after reading every field they know to reject
  /// misspelled keys:
  ///
  ///   auto unread = config.UnreadKeys();
  ///   if (!unread.empty()) return InvalidArgumentError(...);
  std::vector<std::string> UnreadKeys() const;

  /// Status naming the first unread key with its line, or OK when every key
  /// was consumed. The one-call form of the check above.
  Status CheckAllKeysRead() const;

  /// All keys in line order (for serialization / debugging).
  std::vector<std::string> Keys() const;

  /// 1-based line a key was defined on (0 when absent).
  size_t LineOf(std::string_view key) const;

  const std::string& source() const { return source_; }

 private:
  struct Entry {
    std::string value;
    size_t line = 0;
    size_t order = 0;
  };

  Status TypedError(std::string_view key, const char* type,
                    std::string_view value) const;

  std::string source_;
  std::map<std::string, Entry, std::less<>> entries_;
  mutable std::set<std::string, std::less<>> read_;
};

}  // namespace ssum
