#include "common/env.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <sys/file.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "common/string_util.h"

namespace ssum {

namespace fs = std::filesystem;

WritableFile::~WritableFile() = default;
FileLock::~FileLock() = default;
Connection::~Connection() = default;
Listener::~Listener() = default;
Env::~Env() = default;

namespace {

/// The no-lock lock behind Env's default LockFile: Envs without locking
/// support coordinate nothing, and callers already treat the lock as
/// best-effort.
class NoopFileLock : public FileLock {
 public:
  Status Release() override { return Status::OK(); }
};

}  // namespace

Result<std::unique_ptr<FileLock>> Env::LockFile(const std::string& path) {
  (void)path;
  return std::unique_ptr<FileLock>(std::make_unique<NoopFileLock>());
}

Result<std::unique_ptr<Listener>> Env::NewListener(const std::string& addr) {
  return Status::NotImplemented("this Env has no listener support (addr '" +
                                addr + "')");
}

Result<std::unique_ptr<Connection>> Env::Connect(const std::string& addr) {
  return Status::NotImplemented("this Env has no connect support (addr '" +
                                addr + "')");
}

namespace {

/// stdio-buffered sequential writer; Sync() fsyncs the descriptor.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(std::FILE* file, std::string path)
      : file_(file), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  Status Append(std::string_view data) override {
    if (file_ == nullptr) {
      return Status::IoError("'" + path_ + "' is closed");
    }
    if (data.empty()) return Status::OK();
    const size_t written = std::fwrite(data.data(), 1, data.size(), file_);
    if (written != data.size()) {
      return Status::IoError("write failed for '" + path_ + "': " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Flush() override {
    if (file_ == nullptr) {
      return Status::IoError("'" + path_ + "' is closed");
    }
    if (std::fflush(file_) != 0) {
      return Status::IoError("flush failed for '" + path_ + "': " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Sync() override {
    SSUM_RETURN_NOT_OK(Flush());
    if (::fsync(fileno(file_)) != 0) {
      return Status::IoError("fsync failed for '" + path_ + "': " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Close() override {
    if (file_ == nullptr) return Status::OK();
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      return Status::IoError("close failed for '" + path_ + "': " +
                             std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  std::FILE* file_;
  std::string path_;
};

/// flock(2)-backed advisory lock. The descriptor stays open for the lock's
/// lifetime; closing it drops the lock even without an explicit LOCK_UN,
/// so a crashed holder never wedges other writers.
class PosixFileLock : public FileLock {
 public:
  PosixFileLock(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFileLock() override { (void)Release(); }

  Status Release() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    ::flock(fd, LOCK_UN);  // best effort; close releases regardless
    if (::close(fd) != 0) {
      return Status::IoError("cannot close lock file '" + path_ +
                             "': " + std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

/// Splits "host:port" (host may be empty → loopback). Port is required.
Status ParseHostPort(const std::string& addr, std::string* host, int* port) {
  const size_t colon = addr.rfind(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("address '" + addr +
                                   "' is not host:port");
  }
  *host = addr.substr(0, colon);
  if (host->empty()) *host = "127.0.0.1";
  auto parsed = ParseInt64(addr.substr(colon + 1));
  if (!parsed.ok() || *parsed < 0 || *parsed > 65535) {
    return Status::InvalidArgument("address '" + addr +
                                   "' has a malformed port");
  }
  *port = static_cast<int>(*parsed);
  return Status::OK();
}

Status FillSockAddr(const std::string& host, int port, sockaddr_in* out) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &out->sin_addr) != 1) {
    return Status::InvalidArgument("address host '" + host +
                                   "' is not a dotted IPv4 literal");
  }
  return Status::OK();
}

class PosixConnection : public Connection {
 public:
  explicit PosixConnection(int fd) : fd_(fd) {}
  ~PosixConnection() override { (void)Close(); }

  Result<size_t> Read(void* buf, size_t max) override {
    if (fd_ < 0) return Status::IoError("connection is closed");
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, max, 0);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
  }

  Result<bool> Readable(int timeout_ms) override {
    if (fd_ < 0) return Status::IoError("connection is closed");
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc >= 0) return rc > 0;
      if (errno == EINTR) continue;
      return Status::IoError(std::string("poll failed: ") +
                             std::strerror(errno));
    }
  }

  Status WriteAll(std::string_view data) override {
    if (fd_ < 0) return Status::IoError("connection is closed");
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      // MSG_NOSIGNAL: a peer that went away yields EPIPE, not SIGPIPE.
      const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("send failed: ") +
                               std::strerror(errno));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IoError(std::string("close failed: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixListener : public Listener {
 public:
  PosixListener(int fd, int port) : fd_(fd), port_(port) {}
  ~PosixListener() override { (void)Close(); }

  Result<std::unique_ptr<Connection>> Accept(int timeout_ms) override {
    if (fd_ < 0) return Status::IoError("listener is closed");
    pollfd pfd{fd_, POLLIN, 0};
    for (;;) {
      const int rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("poll failed: ") +
                               std::strerror(errno));
      }
      if (rc == 0) return Status::NotFound("accept timed out");
      break;
    }
    for (;;) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client >= 0) {
        int one = 1;
        ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        return std::unique_ptr<Connection>(
            std::make_unique<PosixConnection>(client));
      }
      if (errno == EINTR) continue;
      return Status::IoError(std::string("accept failed: ") +
                             std::strerror(errno));
    }
  }

  int port() const override { return port_; }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::IoError(std::string("close failed: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
  int port_;
};

}  // namespace

Result<std::unique_ptr<WritableFile>> PosixEnv::NewWritableFile(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot open '" + path + "' for writing: " +
                           std::strerror(errno));
  }
  return std::unique_ptr<WritableFile>(
      std::make_unique<PosixWritableFile>(file, path));
}

Result<std::string> PosixEnv::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::error_code ec;
    if (!fs::exists(path, ec)) {
      return Status::NotFound("'" + path + "' does not exist");
    }
    return Status::IoError("cannot open '" + path + "'");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed for '" + path + "'");
  return bytes;
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("rename '" + from + "' -> '" + to +
                           "' failed: " + ec.message());
  }
  return Status::OK();
}

Status PosixEnv::RemoveFile(const std::string& path) {
  std::error_code ec;
  const bool removed = fs::remove(path, ec);
  if (ec) {
    return Status::IoError("cannot remove '" + path + "': " + ec.message());
  }
  if (!removed) return Status::NotFound("'" + path + "' does not exist");
  return Status::OK();
}

Status PosixEnv::CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status PosixEnv::SyncDir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open directory '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("fsync failed for directory '" + path +
                           "': " + std::strerror(saved_errno));
  }
  return Status::OK();
}

Result<bool> PosixEnv::FileExists(const std::string& path) {
  std::error_code ec;
  const bool exists = fs::exists(path, ec);
  if (ec) {
    return Status::IoError("cannot stat '" + path + "': " + ec.message());
  }
  return exists;
}

Result<std::unique_ptr<FileLock>> PosixEnv::LockFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open lock file '" + path +
                           "': " + std::strerror(errno));
  }
  for (;;) {
    if (::flock(fd, LOCK_EX) == 0) break;
    if (errno == EINTR) continue;
    const int saved_errno = errno;
    ::close(fd);
    return Status::IoError("cannot lock '" + path +
                           "': " + std::strerror(saved_errno));
  }
  return std::unique_ptr<FileLock>(
      std::make_unique<PosixFileLock>(fd, path));
}

Result<std::unique_ptr<Listener>> PosixEnv::NewListener(
    const std::string& addr) {
  std::string host;
  int port = 0;
  SSUM_RETURN_NOT_OK(ParseHostPort(addr, &host, &port));
  sockaddr_in sa;
  SSUM_RETURN_NOT_OK(FillSockAddr(host, port, &sa));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IoError("cannot bind '" + addr +
                           "': " + std::strerror(saved_errno));
  }
  if (::listen(fd, 128) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IoError("cannot listen on '" + addr +
                           "': " + std::strerror(saved_errno));
  }
  // Resolve the ephemeral port a ":0" bind actually got.
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    return Status::IoError(std::string("getsockname failed: ") +
                           std::strerror(saved_errno));
  }
  return std::unique_ptr<Listener>(
      std::make_unique<PosixListener>(fd, ntohs(bound.sin_port)));
}

Result<std::unique_ptr<Connection>> PosixEnv::Connect(
    const std::string& addr) {
  std::string host;
  int port = 0;
  SSUM_RETURN_NOT_OK(ParseHostPort(addr, &host, &port));
  sockaddr_in sa;
  SSUM_RETURN_NOT_OK(FillSockAddr(host, port, &sa));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
      break;
    }
    if (errno == EINTR) continue;
    const int saved_errno = errno;
    ::close(fd);
    return Status::IoError("cannot connect to '" + addr +
                           "': " + std::strerror(saved_errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Connection>(std::make_unique<PosixConnection>(fd));
}

Env* Env::Default() {
  // Leaked on purpose, mirroring ThreadPool::Shared(): destroying it during
  // static teardown would race with other translation units.
  static PosixEnv* env = new PosixEnv();
  return env;
}

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kOpen:
      return "open";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kFlush:
      return "flush";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kRename:
      return "rename";
    case FaultOp::kUnlink:
      return "unlink";
    case FaultOp::kRead:
      return "read";
    case FaultOp::kMkdir:
      return "mkdir";
    case FaultOp::kSyncDir:
      return "syncdir";
    case FaultOp::kListen:
      return "listen";
    case FaultOp::kConnect:
      return "connect";
    case FaultOp::kAccept:
      return "accept";
    case FaultOp::kSend:
      return "send";
    case FaultOp::kRecv:
      return "recv";
    case FaultOp::kLock:
      return "lock";
  }
  return "?";
}

/// Wraps a base WritableFile, routing write/flush/sync through the env's
/// fault schedule. A torn write appends only the scheduled prefix before
/// failing — exactly the on-disk state a crash mid-write leaves behind.
/// (Namespace-scope, not anonymous: it is a friend of FaultInjectingEnv.)
class FaultInjectingWritableFile : public WritableFile {
 public:
  FaultInjectingWritableFile(FaultInjectingEnv* env,
                             std::unique_ptr<WritableFile> base,
                             std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override;
  Status Flush() override;
  Status Sync() override;
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

/// Wraps a base Connection, counting each recv/send as a fault point. A
/// kTorn send writes only the scheduled prefix before failing — the peer
/// sees a half frame, exactly what a connection cut mid-message leaves.
class FaultInjectingConnection : public Connection {
 public:
  FaultInjectingConnection(FaultInjectingEnv* env,
                           std::unique_ptr<Connection> base, std::string peer)
      : env_(env), base_(std::move(base)), peer_(std::move(peer)) {}

  Result<size_t> Read(void* buf, size_t max) override {
    const FaultInjectingEnv::Injection inj = env_->Observe(FaultOp::kRecv);
    if (inj.fire) {
      return FaultInjectingEnv::FaultStatus(inj.kind, FaultOp::kRecv, peer_);
    }
    return base_->Read(buf, max);
  }

  // Readability probes are metadata-only, like FileExists; not a fault point.
  Result<bool> Readable(int timeout_ms) override {
    return base_->Readable(timeout_ms);
  }

  Status WriteAll(std::string_view data) override {
    const FaultInjectingEnv::Injection inj = env_->Observe(FaultOp::kSend);
    if (!inj.fire) return base_->WriteAll(data);
    if (inj.kind == FaultKind::kTorn) {
      const size_t keep =
          static_cast<size_t>(std::min<uint64_t>(inj.torn_bytes, data.size()));
      (void)base_->WriteAll(data.substr(0, keep));
    }
    return FaultInjectingEnv::FaultStatus(inj.kind, FaultOp::kSend, peer_);
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<Connection> base_;
  std::string peer_;
};

class FaultInjectingListener : public Listener {
 public:
  FaultInjectingListener(FaultInjectingEnv* env, std::unique_ptr<Listener> base,
                         std::string addr)
      : env_(env), base_(std::move(base)), addr_(std::move(addr)) {}

  Result<std::unique_ptr<Connection>> Accept(int timeout_ms) override {
    const FaultInjectingEnv::Injection inj = env_->Observe(FaultOp::kAccept);
    if (inj.fire) {
      return FaultInjectingEnv::FaultStatus(inj.kind, FaultOp::kAccept, addr_);
    }
    std::unique_ptr<Connection> conn;
    SSUM_ASSIGN_OR_RETURN(conn, base_->Accept(timeout_ms));
    return std::unique_ptr<Connection>(std::make_unique<FaultInjectingConnection>(
        env_, std::move(conn), addr_));
  }

  int port() const override { return base_->port(); }
  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingEnv* env_;
  std::unique_ptr<Listener> base_;
  std::string addr_;
};

FaultInjectingEnv::FaultInjectingEnv(Env* base) : base_(base) {}

FaultInjectingEnv::Injection FaultInjectingEnv::Observe(FaultOp op) {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t o = static_cast<size_t>(op);
  const uint64_t global_index = global_count_++;
  const uint64_t per_op = ++per_op_count_[o];
  history_.push_back(op);

  Injection inj;
  // Dead-disk mode armed earlier by a permanent fault of this kind.
  if (permanent_[o]) {
    inj.fire = true;
    inj.kind = permanent_kind_[o];
  }
  for (auto it = global_faults_.begin(); it != global_faults_.end(); ++it) {
    if (global_index < it->index) continue;
    if (global_index == it->index) {
      inj.fire = true;
      inj.kind = it->kind;
      inj.torn_bytes = it->torn_bytes;
      if (it->transient) global_faults_.erase(it);
      break;
    }
    // Past a permanent global fault: the "process" is dead — every later
    // operation fails too, so crash residue (a stale tmp file) survives
    // cleanup exactly as it would a real crash.
    if (!it->transient) {
      inj.fire = true;
      inj.kind = FaultKind::kEio;
      break;
    }
  }
  for (auto it = faults_.begin(); it != faults_.end(); ++it) {
    if (it->op != op || per_op != it->nth) continue;
    inj.fire = true;
    inj.kind = it->kind;
    inj.torn_bytes = it->torn_bytes;
    if (it->transient) {
      faults_.erase(it);
    } else {
      permanent_[o] = true;
      permanent_kind_[o] = it->kind;
    }
    break;
  }
  if (inj.fire) ++injected_;
  return inj;
}

Status FaultInjectingEnv::FaultStatus(FaultKind kind, FaultOp op,
                                      const std::string& path) {
  std::string msg = std::string("injected ") + FaultOpName(op) +
                    " fault on '" + path + "'";
  switch (kind) {
    case FaultKind::kEnospc:
      return Status::IoError(msg + ": no space left on device");
    case FaultKind::kTorn:
      return Status::IoError(msg + ": torn write");
    case FaultKind::kEio:
      break;
  }
  return Status::IoError(msg + ": input/output error");
}

Status FaultInjectingWritableFile::Append(std::string_view data) {
  const FaultInjectingEnv::Injection inj = env_->Observe(FaultOp::kWrite);
  if (!inj.fire) return base_->Append(data);
  if (inj.kind == FaultKind::kTorn) {
    const size_t keep =
        static_cast<size_t>(std::min<uint64_t>(inj.torn_bytes, data.size()));
    // Best-effort prefix write + flush: the torn bytes must actually land so
    // a reopened reader sees the truncated state, not an empty file.
    (void)base_->Append(data.substr(0, keep));
    (void)base_->Flush();
  }
  return FaultInjectingEnv::FaultStatus(inj.kind, FaultOp::kWrite, path_);
}

Status FaultInjectingWritableFile::Flush() {
  const FaultInjectingEnv::Injection inj = env_->Observe(FaultOp::kFlush);
  if (!inj.fire) return base_->Flush();
  return FaultInjectingEnv::FaultStatus(inj.kind, FaultOp::kFlush, path_);
}

Status FaultInjectingWritableFile::Sync() {
  const FaultInjectingEnv::Injection inj = env_->Observe(FaultOp::kSync);
  if (!inj.fire) return base_->Sync();
  // A failed fsync still leaves the flushed bytes in the file — only the
  // durability promise is broken — so the base file is left as-is.
  return FaultInjectingEnv::FaultStatus(inj.kind, FaultOp::kSync, path_);
}

Result<std::unique_ptr<WritableFile>> FaultInjectingEnv::NewWritableFile(
    const std::string& path) {
  const Injection inj = Observe(FaultOp::kOpen);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kOpen, path);
  std::unique_ptr<WritableFile> base;
  SSUM_ASSIGN_OR_RETURN(base, base_->NewWritableFile(path));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectingWritableFile>(this, std::move(base),
                                                   path));
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  const Injection inj = Observe(FaultOp::kRead);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kRead, path);
  return base_->ReadFile(path);
}

Status FaultInjectingEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  const Injection inj = Observe(FaultOp::kRename);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kRename, from);
  return base_->RenameFile(from, to);
}

Status FaultInjectingEnv::RemoveFile(const std::string& path) {
  const Injection inj = Observe(FaultOp::kUnlink);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kUnlink, path);
  return base_->RemoveFile(path);
}

Status FaultInjectingEnv::CreateDirs(const std::string& path) {
  const Injection inj = Observe(FaultOp::kMkdir);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kMkdir, path);
  return base_->CreateDirs(path);
}

Status FaultInjectingEnv::SyncDir(const std::string& path) {
  const Injection inj = Observe(FaultOp::kSyncDir);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kSyncDir, path);
  return base_->SyncDir(path);
}

Result<bool> FaultInjectingEnv::FileExists(const std::string& path) {
  // Existence probes are metadata-only; not a fault point.
  return base_->FileExists(path);
}

Result<std::unique_ptr<FileLock>> FaultInjectingEnv::LockFile(
    const std::string& path) {
  const Injection inj = Observe(FaultOp::kLock);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kLock, path);
  return base_->LockFile(path);
}

Result<std::unique_ptr<Listener>> FaultInjectingEnv::NewListener(
    const std::string& addr) {
  const Injection inj = Observe(FaultOp::kListen);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kListen, addr);
  std::unique_ptr<Listener> base;
  SSUM_ASSIGN_OR_RETURN(base, base_->NewListener(addr));
  return std::unique_ptr<Listener>(
      std::make_unique<FaultInjectingListener>(this, std::move(base), addr));
}

Result<std::unique_ptr<Connection>> FaultInjectingEnv::Connect(
    const std::string& addr) {
  const Injection inj = Observe(FaultOp::kConnect);
  if (inj.fire) return FaultStatus(inj.kind, FaultOp::kConnect, addr);
  std::unique_ptr<Connection> base;
  SSUM_ASSIGN_OR_RETURN(base, base_->Connect(addr));
  return std::unique_ptr<Connection>(
      std::make_unique<FaultInjectingConnection>(this, std::move(base), addr));
}

void FaultInjectingEnv::ScheduleFault(const Fault& fault) {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.push_back(fault);
}

void FaultInjectingEnv::FailAtOpIndex(uint64_t index, FaultKind kind,
                                      uint64_t torn_bytes, bool transient) {
  std::lock_guard<std::mutex> lock(mutex_);
  global_faults_.push_back(GlobalFault{index, kind, torn_bytes, transient});
}

Status FaultInjectingEnv::LoadSchedule(std::string_view spec) {
  std::vector<Fault> parsed;
  for (const std::string& raw : SplitString(std::string(spec), ';')) {
    std::string entry = raw;
    if (entry.empty()) continue;
    Fault f;
    if (!entry.empty() && entry.back() == '~') {
      f.transient = true;
      entry.pop_back();
    }
    const size_t hash = entry.find('#');
    const size_t eq = entry.find('=', hash == std::string::npos ? 0 : hash);
    if (hash == std::string::npos || eq == std::string::npos || eq < hash) {
      return Status::InvalidArgument(
          "fault entry '" + raw + "' is not op#N=kind[:K][~]");
    }
    const std::string op = entry.substr(0, hash);
    bool known_op = false;
    for (size_t o = 0; o < kNumFaultOps; ++o) {
      if (op == FaultOpName(static_cast<FaultOp>(o))) {
        f.op = static_cast<FaultOp>(o);
        known_op = true;
        break;
      }
    }
    if (!known_op) {
      return Status::InvalidArgument("unknown fault op '" + op + "'");
    }
    auto nth = ParseInt64(entry.substr(hash + 1, eq - hash - 1));
    if (!nth.ok() || *nth <= 0) {
      return Status::InvalidArgument(
          "fault entry '" + raw + "' needs a positive occurrence number");
    }
    f.nth = static_cast<uint64_t>(*nth);
    std::string kind = entry.substr(eq + 1);
    const size_t colon = kind.find(':');
    if (colon != std::string::npos) {
      auto k = ParseInt64(kind.substr(colon + 1));
      if (!k.ok() || *k < 0) {
        return Status::InvalidArgument(
            "fault entry '" + raw + "' has a malformed torn byte count");
      }
      f.torn_bytes = static_cast<uint64_t>(*k);
      kind = kind.substr(0, colon);
    }
    if (kind == "eio") {
      f.kind = FaultKind::kEio;
    } else if (kind == "enospc") {
      f.kind = FaultKind::kEnospc;
    } else if (kind == "torn") {
      if (colon == std::string::npos) {
        return Status::InvalidArgument(
            "fault entry '" + raw + "': torn needs ':K' (bytes kept)");
      }
      f.kind = FaultKind::kTorn;
    } else {
      return Status::InvalidArgument("unknown fault kind '" + kind + "'");
    }
    parsed.push_back(f);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const Fault& f : parsed) faults_.push_back(f);
  return Status::OK();
}

std::vector<FaultOp> FaultInjectingEnv::history() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

uint64_t FaultInjectingEnv::total_ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_count_;
}

uint64_t FaultInjectingEnv::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return injected_;
}

uint64_t FaultInjectingEnv::ops(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return per_op_count_[static_cast<size_t>(op)];
}

void FaultInjectingEnv::ClearSchedule() {
  std::lock_guard<std::mutex> lock(mutex_);
  faults_.clear();
  global_faults_.clear();
  for (size_t o = 0; o < kNumFaultOps; ++o) permanent_[o] = false;
}

void FaultInjectingEnv::ResetCounters() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t o = 0; o < kNumFaultOps; ++o) per_op_count_[o] = 0;
  global_count_ = 0;
  injected_ = 0;
  history_.clear();
}

}  // namespace ssum
