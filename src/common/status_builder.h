#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace ssum {

/// Stream-style builder for statuses carrying parse-location context. A
/// failure deep inside a 100MB document is only diagnosable if the error
/// says *where*; every ingestion parser stamps its errors with the source
/// name (usually a file path), line number and byte offset through this
/// helper:
///
///   return StatusBuilder(StatusCode::kParseError)
///       .Source(path).Line(line).ByteOffset(pos)
///       << "unterminated entity '&" << ent << "'";
///
/// Renders as "unterminated entity '&...' (file.xml:12, byte 3456)".
/// Unset fields are omitted. Converts implicitly to Status and Result<T>.
class StatusBuilder {
 public:
  explicit StatusBuilder(StatusCode code) : code_(code) {}

  StatusBuilder& Source(std::string_view source) & {
    source_ = source;
    return *this;
  }
  StatusBuilder&& Source(std::string_view source) && {
    source_ = source;
    return std::move(*this);
  }

  /// 1-based line number; 0 means "unknown" and is omitted.
  StatusBuilder& Line(size_t line) & {
    line_ = line;
    return *this;
  }
  StatusBuilder&& Line(size_t line) && {
    line_ = line;
    return std::move(*this);
  }

  StatusBuilder& ByteOffset(size_t offset) & {
    byte_offset_ = static_cast<long long>(offset);
    return *this;
  }
  StatusBuilder&& ByteOffset(size_t offset) && {
    byte_offset_ = static_cast<long long>(offset);
    return std::move(*this);
  }

  template <typename T>
  StatusBuilder& operator<<(const T& v) & {
    message_ << v;
    return *this;
  }
  template <typename T>
  StatusBuilder&& operator<<(const T& v) && {
    message_ << v;
    return std::move(*this);
  }

  /// "<message> (<source>:<line>, byte <offset>)" with unset parts omitted.
  Status Build() const;

  // NOLINTNEXTLINE(google-explicit-constructor)
  operator Status() const { return Build(); }

  template <typename T>
  // NOLINTNEXTLINE(google-explicit-constructor)
  operator Result<T>() const {
    return Result<T>(Build());
  }

 private:
  StatusCode code_;
  std::ostringstream message_;
  std::string source_;
  size_t line_ = 0;
  long long byte_offset_ = -1;
};

/// Parse-error builder pre-stamped with line/offset — the common case.
inline StatusBuilder ParseErrorAt(size_t line, size_t byte_offset) {
  StatusBuilder b(StatusCode::kParseError);
  b.Line(line).ByteOffset(byte_offset);
  return b;
}

/// Integrity-failure builder pre-stamped with a byte offset — the common
/// case in the binary snapshot store (src/store/container.h), where every
/// corruption diagnostic names the offending container offset.
inline StatusBuilder DataLossAt(size_t byte_offset) {
  StatusBuilder b(StatusCode::kDataLoss);
  b.ByteOffset(byte_offset);
  return b;
}

}  // namespace ssum
