#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace ssum {

namespace {

std::atomic<uint32_t> g_default_threads{0};

/// SSUM_THREADS, parsed fresh on every call (cheap, and keeps tests able to
/// flip the variable at runtime). 0 when unset or unparsable.
uint32_t EnvThreadOverride() {
  const char* env = std::getenv("SSUM_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  long v = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || v <= 0) return 0;
  return static_cast<uint32_t>(v);
}

}  // namespace

uint32_t HardwareThreadCount() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

void SetDefaultThreadCount(uint32_t threads) {
  g_default_threads.store(threads, std::memory_order_relaxed);
}

uint32_t DefaultThreadCount() {
  uint32_t t = g_default_threads.load(std::memory_order_relaxed);
  return t > 0 ? t : HardwareThreadCount();
}

uint32_t ResolveThreadCount(uint32_t requested) {
  if (uint32_t env = EnvThreadOverride()) return env;
  if (requested > 0) return requested;
  return DefaultThreadCount();
}

uint32_t ConsumeThreadsFlag(int* argc, char** argv) {
  uint32_t parsed = 0;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    bool matched = false;
    if (arg == "--threads" && i + 1 < *argc) {
      value = argv[++i];
      matched = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(10);
      matched = true;
    }
    if (matched) {
      char* end = nullptr;
      long v = std::strtol(value.c_str(), &end, 10);
      if (end != value.c_str() && *end == '\0' && v > 0) {
        parsed = static_cast<uint32_t>(v);
      }
      continue;
    }
    argv[out++] = argv[i];
  }
  *argc = out;
  argv[*argc] = nullptr;
  if (parsed > 0) SetDefaultThreadCount(parsed);
  return parsed;
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  const uint32_t n = std::max<uint32_t>(num_threads, 1);
  workers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutting_down_) {
      queue_.push_back(std::move(task));
      work_cv_.notify_one();
      return;
    }
  }
  task();  // pool already shut down: degrade to inline execution
}

bool ThreadPool::RunOnePendingTask() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: joining workers during static destruction would race
  // with other translation units' teardown.
  static ThreadPool* pool = new ThreadPool(
      std::max<uint32_t>(DefaultThreadCount(), 8) - 1);
  return *pool;
}

size_t ParallelNumChunks(size_t begin, size_t end, size_t grain) {
  if (begin >= end) return 0;
  const size_t g = std::max<size_t>(grain, 1);
  return (end - begin + g - 1) / g;
}

Status ParallelForChunked(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn,
    const ParallelOptions& options) {
  const size_t chunks = ParallelNumChunks(begin, end, grain);
  if (chunks == 0) return Status::OK();
  const size_t g = std::max<size_t>(grain, 1);
  auto run_chunk = [&](size_t c) -> Status {
    // Cooperative deadline/cancellation check at every chunk claim: once the
    // budget is gone each remaining chunk fails fast, and the reduction
    // below surfaces kDeadlineExceeded like any other per-chunk failure.
    SSUM_RETURN_NOT_OK(options.deadline.Check("parallel task"));
    const size_t chunk_begin = begin + c * g;
    const size_t chunk_end = std::min(end, chunk_begin + g);
    try {
      fn(c, chunk_begin, chunk_end);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("parallel task failed: ") +
                              e.what());
    } catch (...) {
      return Status::Internal("parallel task failed with unknown exception");
    }
    return Status::OK();
  };

  const uint32_t width = static_cast<uint32_t>(std::min<size_t>(
      ResolveThreadCount(options.threads), chunks));
  if (width <= 1) {
    for (size_t c = 0; c < chunks; ++c) SSUM_RETURN_NOT_OK(run_chunk(c));
    return Status::OK();
  }

  // Chunk indices are claimed dynamically, but every chunk writes only its
  // own status slot and callers reduce in chunk order, so results do not
  // depend on the claim order.
  std::vector<Status> statuses(chunks);
  std::atomic<size_t> next{0};
  auto drain = [&] {
    for (size_t c; (c = next.fetch_add(1, std::memory_order_relaxed)) < chunks;) {
      statuses[c] = run_chunk(c);
    }
  };

  ThreadPool& pool = ThreadPool::Shared();
  struct Join {
    std::mutex mu;
    std::condition_variable cv;
    uint32_t remaining;
  } join;
  join.remaining = width - 1;
  for (uint32_t i = 0; i + 1 < width; ++i) {
    pool.Submit([&drain, &join] {
      drain();
      std::lock_guard<std::mutex> lock(join.mu);
      if (--join.remaining == 0) join.cv.notify_all();
    });
  }
  drain();
  // Help execute other queued work while waiting: a helper task of ours may
  // sit behind tasks of a concurrent (possibly nested) ParallelFor, and
  // every waiting caller draining the shared queue guarantees progress.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(join.mu);
      if (join.remaining == 0) break;
    }
    if (!pool.RunOnePendingTask()) {
      std::unique_lock<std::mutex> lock(join.mu);
      join.cv.wait_for(lock, std::chrono::milliseconds(1),
                       [&join] { return join.remaining == 0; });
      if (join.remaining == 0) break;
    }
  }
  for (size_t c = 0; c < chunks; ++c) {
    if (!statuses[c].ok()) return statuses[c];
  }
  return Status::OK();
}

Status ParallelForChunked(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t, size_t)>& fn, uint32_t threads) {
  ParallelOptions options;
  options.threads = threads;
  return ParallelForChunked(begin, end, grain, fn, options);
}

Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn,
                   const ParallelOptions& options) {
  return ParallelForChunked(
      begin, end, grain,
      [&fn](size_t, size_t chunk_begin, size_t chunk_end) {
        for (size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
      },
      options);
}

Status ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn, uint32_t threads) {
  ParallelOptions options;
  options.threads = threads;
  return ParallelFor(begin, end, grain, fn, options);
}

}  // namespace ssum
