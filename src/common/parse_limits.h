#pragma once

#include <cstddef>

#include "common/status.h"

namespace ssum {

/// Resource ceilings enforced by every ingestion-path parser (XML, DDL, CSV,
/// and the ssum text formats). The library's invariant is "bad bytes in =>
/// Status out, never a crash": limits bound memory, recursion depth and
/// quadratic blowups so a hostile 100MB document fails with a diagnosable
/// error instead of exhausting the process.
///
/// All limits are inclusive ("at most"). The defaults are generous for the
/// paper's datasets (XMark sf 1 is ~100MB); callers handling untrusted
/// traffic should tighten them, callers ingesting trusted bulk data may
/// raise them. See docs/FORMATS.md ("Error model & resource limits").
struct ParseLimits {
  /// Total input size accepted by a single parse call.
  size_t max_input_bytes = 512ull << 20;  // 512 MiB
  /// Element/record nesting depth (XML element stack, DOCTYPE bracket
  /// depth). Parsers use explicit stacks, so this bounds heap, not the
  /// machine stack — but unbounded depth is still a memory-amplification
  /// vector.
  size_t max_depth = 256;
  /// Longest single token: an XML name, attribute value or text run, a DDL
  /// identifier, a CSV field, or one line of an ssum text format.
  size_t max_token_bytes = 4u << 20;  // 4 MiB
  /// Total parsed items: XML elements + attributes, DDL columns + tables,
  /// CSV rows, or record lines of an ssum text format.
  size_t max_items = 50'000'000;

  /// The process-wide defaults (a default-constructed ParseLimits).
  static const ParseLimits& Defaults();

  /// Effectively unlimited (for trusted, generated inputs in tests/benches).
  static ParseLimits Unbounded();
};

/// Checks `size <= limits.max_input_bytes`, returning an OutOfRange status
/// naming `what` ("XML document", "DDL script", ...) on violation.
Status CheckInputSize(size_t size, const ParseLimits& limits,
                      const char* what);

}  // namespace ssum
