file(REMOVE_RECURSE
  "CMakeFiles/test_relational.dir/test_relational.cc.o"
  "CMakeFiles/test_relational.dir/test_relational.cc.o.d"
  "test_relational"
  "test_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
