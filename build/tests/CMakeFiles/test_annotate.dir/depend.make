# Empty dependencies file for test_annotate.
# This may be replaced when dependencies are built.
