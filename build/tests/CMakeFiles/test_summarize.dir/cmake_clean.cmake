file(REMOVE_RECURSE
  "CMakeFiles/test_summarize.dir/test_summarize.cc.o"
  "CMakeFiles/test_summarize.dir/test_summarize.cc.o.d"
  "test_summarize"
  "test_summarize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summarize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
