# Empty compiler generated dependencies file for test_summarize.
# This may be replaced when dependencies are built.
