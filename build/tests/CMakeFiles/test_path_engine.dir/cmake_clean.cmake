file(REMOVE_RECURSE
  "CMakeFiles/test_path_engine.dir/test_path_engine.cc.o"
  "CMakeFiles/test_path_engine.dir/test_path_engine.cc.o.d"
  "test_path_engine"
  "test_path_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
