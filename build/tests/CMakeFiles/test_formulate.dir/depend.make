# Empty dependencies file for test_formulate.
# This may be replaced when dependencies are built.
