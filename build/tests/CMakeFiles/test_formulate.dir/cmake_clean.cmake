file(REMOVE_RECURSE
  "CMakeFiles/test_formulate.dir/test_formulate.cc.o"
  "CMakeFiles/test_formulate.dir/test_formulate.cc.o.d"
  "test_formulate"
  "test_formulate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_formulate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
