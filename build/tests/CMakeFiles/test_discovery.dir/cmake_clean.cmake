file(REMOVE_RECURSE
  "CMakeFiles/test_discovery.dir/test_discovery.cc.o"
  "CMakeFiles/test_discovery.dir/test_discovery.cc.o.d"
  "test_discovery"
  "test_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
