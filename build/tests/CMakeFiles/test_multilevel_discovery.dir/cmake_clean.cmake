file(REMOVE_RECURSE
  "CMakeFiles/test_multilevel_discovery.dir/test_multilevel_discovery.cc.o"
  "CMakeFiles/test_multilevel_discovery.dir/test_multilevel_discovery.cc.o.d"
  "test_multilevel_discovery"
  "test_multilevel_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilevel_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
