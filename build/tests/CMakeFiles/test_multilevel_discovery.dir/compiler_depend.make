# Empty compiler generated dependencies file for test_multilevel_discovery.
# This may be replaced when dependencies are built.
