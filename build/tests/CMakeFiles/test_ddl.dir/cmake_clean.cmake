file(REMOVE_RECURSE
  "CMakeFiles/test_ddl.dir/test_ddl.cc.o"
  "CMakeFiles/test_ddl.dir/test_ddl.cc.o.d"
  "test_ddl"
  "test_ddl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
