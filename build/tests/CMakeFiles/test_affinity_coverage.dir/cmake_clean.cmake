file(REMOVE_RECURSE
  "CMakeFiles/test_affinity_coverage.dir/test_affinity_coverage.cc.o"
  "CMakeFiles/test_affinity_coverage.dir/test_affinity_coverage.cc.o.d"
  "test_affinity_coverage"
  "test_affinity_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_affinity_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
