# Empty compiler generated dependencies file for test_affinity_coverage.
# This may be replaced when dependencies are built.
