
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cafp.cc" "src/CMakeFiles/ssum.dir/baselines/cafp.cc.o" "gcc" "src/CMakeFiles/ssum.dir/baselines/cafp.cc.o.d"
  "/root/repo/src/baselines/semantic_labels.cc" "src/CMakeFiles/ssum.dir/baselines/semantic_labels.cc.o" "gcc" "src/CMakeFiles/ssum.dir/baselines/semantic_labels.cc.o.d"
  "/root/repo/src/baselines/twbk.cc" "src/CMakeFiles/ssum.dir/baselines/twbk.cc.o" "gcc" "src/CMakeFiles/ssum.dir/baselines/twbk.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ssum.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ssum.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/ssum.dir/common/random.cc.o" "gcc" "src/CMakeFiles/ssum.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ssum.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ssum.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/ssum.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/ssum.dir/common/string_util.cc.o.d"
  "/root/repo/src/core/affinity.cc" "src/CMakeFiles/ssum.dir/core/affinity.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/affinity.cc.o.d"
  "/root/repo/src/core/coverage.cc" "src/CMakeFiles/ssum.dir/core/coverage.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/coverage.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/CMakeFiles/ssum.dir/core/dominance.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/dominance.cc.o.d"
  "/root/repo/src/core/importance.cc" "src/CMakeFiles/ssum.dir/core/importance.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/importance.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/ssum.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/multilevel.cc" "src/CMakeFiles/ssum.dir/core/multilevel.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/multilevel.cc.o.d"
  "/root/repo/src/core/path_engine.cc" "src/CMakeFiles/ssum.dir/core/path_engine.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/path_engine.cc.o.d"
  "/root/repo/src/core/summarize.cc" "src/CMakeFiles/ssum.dir/core/summarize.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/summarize.cc.o.d"
  "/root/repo/src/core/summary.cc" "src/CMakeFiles/ssum.dir/core/summary.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/summary.cc.o.d"
  "/root/repo/src/core/summary_io.cc" "src/CMakeFiles/ssum.dir/core/summary_io.cc.o" "gcc" "src/CMakeFiles/ssum.dir/core/summary_io.cc.o.d"
  "/root/repo/src/datasets/experts.cc" "src/CMakeFiles/ssum.dir/datasets/experts.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/experts.cc.o.d"
  "/root/repo/src/datasets/mimi.cc" "src/CMakeFiles/ssum.dir/datasets/mimi.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/mimi.cc.o.d"
  "/root/repo/src/datasets/mimi_queries.cc" "src/CMakeFiles/ssum.dir/datasets/mimi_queries.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/mimi_queries.cc.o.d"
  "/root/repo/src/datasets/registry.cc" "src/CMakeFiles/ssum.dir/datasets/registry.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/registry.cc.o.d"
  "/root/repo/src/datasets/tpch.cc" "src/CMakeFiles/ssum.dir/datasets/tpch.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/tpch.cc.o.d"
  "/root/repo/src/datasets/tpch_queries.cc" "src/CMakeFiles/ssum.dir/datasets/tpch_queries.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/tpch_queries.cc.o.d"
  "/root/repo/src/datasets/xmark.cc" "src/CMakeFiles/ssum.dir/datasets/xmark.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/xmark.cc.o.d"
  "/root/repo/src/datasets/xmark_queries.cc" "src/CMakeFiles/ssum.dir/datasets/xmark_queries.cc.o" "gcc" "src/CMakeFiles/ssum.dir/datasets/xmark_queries.cc.o.d"
  "/root/repo/src/eval/agreement.cc" "src/CMakeFiles/ssum.dir/eval/agreement.cc.o" "gcc" "src/CMakeFiles/ssum.dir/eval/agreement.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/ssum.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/ssum.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/summary_diff.cc" "src/CMakeFiles/ssum.dir/eval/summary_diff.cc.o" "gcc" "src/CMakeFiles/ssum.dir/eval/summary_diff.cc.o.d"
  "/root/repo/src/eval/table_printer.cc" "src/CMakeFiles/ssum.dir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/ssum.dir/eval/table_printer.cc.o.d"
  "/root/repo/src/instance/conformance.cc" "src/CMakeFiles/ssum.dir/instance/conformance.cc.o" "gcc" "src/CMakeFiles/ssum.dir/instance/conformance.cc.o.d"
  "/root/repo/src/instance/data_tree.cc" "src/CMakeFiles/ssum.dir/instance/data_tree.cc.o" "gcc" "src/CMakeFiles/ssum.dir/instance/data_tree.cc.o.d"
  "/root/repo/src/instance/event_stream.cc" "src/CMakeFiles/ssum.dir/instance/event_stream.cc.o" "gcc" "src/CMakeFiles/ssum.dir/instance/event_stream.cc.o.d"
  "/root/repo/src/instance/materialize.cc" "src/CMakeFiles/ssum.dir/instance/materialize.cc.o" "gcc" "src/CMakeFiles/ssum.dir/instance/materialize.cc.o.d"
  "/root/repo/src/instance/random_instance.cc" "src/CMakeFiles/ssum.dir/instance/random_instance.cc.o" "gcc" "src/CMakeFiles/ssum.dir/instance/random_instance.cc.o.d"
  "/root/repo/src/query/discovery.cc" "src/CMakeFiles/ssum.dir/query/discovery.cc.o" "gcc" "src/CMakeFiles/ssum.dir/query/discovery.cc.o.d"
  "/root/repo/src/query/exploration.cc" "src/CMakeFiles/ssum.dir/query/exploration.cc.o" "gcc" "src/CMakeFiles/ssum.dir/query/exploration.cc.o.d"
  "/root/repo/src/query/formulate.cc" "src/CMakeFiles/ssum.dir/query/formulate.cc.o" "gcc" "src/CMakeFiles/ssum.dir/query/formulate.cc.o.d"
  "/root/repo/src/query/generate_workload.cc" "src/CMakeFiles/ssum.dir/query/generate_workload.cc.o" "gcc" "src/CMakeFiles/ssum.dir/query/generate_workload.cc.o.d"
  "/root/repo/src/query/intention.cc" "src/CMakeFiles/ssum.dir/query/intention.cc.o" "gcc" "src/CMakeFiles/ssum.dir/query/intention.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/CMakeFiles/ssum.dir/query/workload.cc.o" "gcc" "src/CMakeFiles/ssum.dir/query/workload.cc.o.d"
  "/root/repo/src/relational/bridge.cc" "src/CMakeFiles/ssum.dir/relational/bridge.cc.o" "gcc" "src/CMakeFiles/ssum.dir/relational/bridge.cc.o.d"
  "/root/repo/src/relational/catalog.cc" "src/CMakeFiles/ssum.dir/relational/catalog.cc.o" "gcc" "src/CMakeFiles/ssum.dir/relational/catalog.cc.o.d"
  "/root/repo/src/relational/csv.cc" "src/CMakeFiles/ssum.dir/relational/csv.cc.o" "gcc" "src/CMakeFiles/ssum.dir/relational/csv.cc.o.d"
  "/root/repo/src/relational/ddl.cc" "src/CMakeFiles/ssum.dir/relational/ddl.cc.o" "gcc" "src/CMakeFiles/ssum.dir/relational/ddl.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/CMakeFiles/ssum.dir/relational/table.cc.o" "gcc" "src/CMakeFiles/ssum.dir/relational/table.cc.o.d"
  "/root/repo/src/schema/dot_export.cc" "src/CMakeFiles/ssum.dir/schema/dot_export.cc.o" "gcc" "src/CMakeFiles/ssum.dir/schema/dot_export.cc.o.d"
  "/root/repo/src/schema/schema_builder.cc" "src/CMakeFiles/ssum.dir/schema/schema_builder.cc.o" "gcc" "src/CMakeFiles/ssum.dir/schema/schema_builder.cc.o.d"
  "/root/repo/src/schema/schema_graph.cc" "src/CMakeFiles/ssum.dir/schema/schema_graph.cc.o" "gcc" "src/CMakeFiles/ssum.dir/schema/schema_graph.cc.o.d"
  "/root/repo/src/schema/schema_io.cc" "src/CMakeFiles/ssum.dir/schema/schema_io.cc.o" "gcc" "src/CMakeFiles/ssum.dir/schema/schema_io.cc.o.d"
  "/root/repo/src/schema/type.cc" "src/CMakeFiles/ssum.dir/schema/type.cc.o" "gcc" "src/CMakeFiles/ssum.dir/schema/type.cc.o.d"
  "/root/repo/src/schema/validate.cc" "src/CMakeFiles/ssum.dir/schema/validate.cc.o" "gcc" "src/CMakeFiles/ssum.dir/schema/validate.cc.o.d"
  "/root/repo/src/stats/annotate.cc" "src/CMakeFiles/ssum.dir/stats/annotate.cc.o" "gcc" "src/CMakeFiles/ssum.dir/stats/annotate.cc.o.d"
  "/root/repo/src/stats/annotations_io.cc" "src/CMakeFiles/ssum.dir/stats/annotations_io.cc.o" "gcc" "src/CMakeFiles/ssum.dir/stats/annotations_io.cc.o.d"
  "/root/repo/src/xml/infer_schema.cc" "src/CMakeFiles/ssum.dir/xml/infer_schema.cc.o" "gcc" "src/CMakeFiles/ssum.dir/xml/infer_schema.cc.o.d"
  "/root/repo/src/xml/instance_bridge.cc" "src/CMakeFiles/ssum.dir/xml/instance_bridge.cc.o" "gcc" "src/CMakeFiles/ssum.dir/xml/instance_bridge.cc.o.d"
  "/root/repo/src/xml/lexer.cc" "src/CMakeFiles/ssum.dir/xml/lexer.cc.o" "gcc" "src/CMakeFiles/ssum.dir/xml/lexer.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/ssum.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/ssum.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/writer.cc" "src/CMakeFiles/ssum.dir/xml/writer.cc.o" "gcc" "src/CMakeFiles/ssum.dir/xml/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
