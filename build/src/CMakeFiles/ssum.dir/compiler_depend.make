# Empty compiler generated dependencies file for ssum.
# This may be replaced when dependencies are built.
