file(REMOVE_RECURSE
  "libssum.a"
)
