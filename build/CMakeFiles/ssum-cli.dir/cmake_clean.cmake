file(REMOVE_RECURSE
  "CMakeFiles/ssum-cli.dir/tools/ssum_cli.cpp.o"
  "CMakeFiles/ssum-cli.dir/tools/ssum_cli.cpp.o.d"
  "ssum"
  "ssum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssum-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
