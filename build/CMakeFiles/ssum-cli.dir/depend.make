# Empty dependencies file for ssum-cli.
# This may be replaced when dependencies are built.
