# Empty compiler generated dependencies file for table5_evolution.
# This may be replaced when dependencies are built.
