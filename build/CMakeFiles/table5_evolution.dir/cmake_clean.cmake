file(REMOVE_RECURSE
  "CMakeFiles/table5_evolution.dir/bench/table5_evolution.cpp.o"
  "CMakeFiles/table5_evolution.dir/bench/table5_evolution.cpp.o.d"
  "bench/table5_evolution"
  "bench/table5_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
