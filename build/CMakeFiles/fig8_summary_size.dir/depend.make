# Empty dependencies file for fig8_summary_size.
# This may be replaced when dependencies are built.
