file(REMOVE_RECURSE
  "CMakeFiles/fig8_summary_size.dir/bench/fig8_summary_size.cpp.o"
  "CMakeFiles/fig8_summary_size.dir/bench/fig8_summary_size.cpp.o.d"
  "bench/fig8_summary_size"
  "bench/fig8_summary_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_summary_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
