file(REMOVE_RECURSE
  "CMakeFiles/table3_query_discovery.dir/bench/table3_query_discovery.cpp.o"
  "CMakeFiles/table3_query_discovery.dir/bench/table3_query_discovery.cpp.o.d"
  "bench/table3_query_discovery"
  "bench/table3_query_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_query_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
