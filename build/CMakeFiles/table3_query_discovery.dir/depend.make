# Empty dependencies file for table3_query_discovery.
# This may be replaced when dependencies are built.
