file(REMOVE_RECURSE
  "CMakeFiles/extension_multilevel.dir/bench/extension_multilevel.cpp.o"
  "CMakeFiles/extension_multilevel.dir/bench/extension_multilevel.cpp.o.d"
  "bench/extension_multilevel"
  "bench/extension_multilevel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_multilevel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
