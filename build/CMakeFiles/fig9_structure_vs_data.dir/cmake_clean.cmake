file(REMOVE_RECURSE
  "CMakeFiles/fig9_structure_vs_data.dir/bench/fig9_structure_vs_data.cpp.o"
  "CMakeFiles/fig9_structure_vs_data.dir/bench/fig9_structure_vs_data.cpp.o.d"
  "bench/fig9_structure_vs_data"
  "bench/fig9_structure_vs_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_structure_vs_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
