# Empty compiler generated dependencies file for fig9_structure_vs_data.
# This may be replaced when dependencies are built.
