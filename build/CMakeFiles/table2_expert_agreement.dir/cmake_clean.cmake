file(REMOVE_RECURSE
  "CMakeFiles/table2_expert_agreement.dir/bench/table2_expert_agreement.cpp.o"
  "CMakeFiles/table2_expert_agreement.dir/bench/table2_expert_agreement.cpp.o.d"
  "bench/table2_expert_agreement"
  "bench/table2_expert_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_expert_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
