# Empty dependencies file for table2_expert_agreement.
# This may be replaced when dependencies are built.
