# Empty dependencies file for conjecture_workload_focus.
# This may be replaced when dependencies are built.
