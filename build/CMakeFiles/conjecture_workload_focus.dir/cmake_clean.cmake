file(REMOVE_RECURSE
  "CMakeFiles/conjecture_workload_focus.dir/bench/conjecture_workload_focus.cpp.o"
  "CMakeFiles/conjecture_workload_focus.dir/bench/conjecture_workload_focus.cpp.o.d"
  "bench/conjecture_workload_focus"
  "bench/conjecture_workload_focus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conjecture_workload_focus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
