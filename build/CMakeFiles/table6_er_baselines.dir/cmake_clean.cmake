file(REMOVE_RECURSE
  "CMakeFiles/table6_er_baselines.dir/bench/table6_er_baselines.cpp.o"
  "CMakeFiles/table6_er_baselines.dir/bench/table6_er_baselines.cpp.o.d"
  "bench/table6_er_baselines"
  "bench/table6_er_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_er_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
