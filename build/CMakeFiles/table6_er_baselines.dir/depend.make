# Empty dependencies file for table6_er_baselines.
# This may be replaced when dependencies are built.
