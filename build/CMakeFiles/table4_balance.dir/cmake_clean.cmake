file(REMOVE_RECURSE
  "CMakeFiles/table4_balance.dir/bench/table4_balance.cpp.o"
  "CMakeFiles/table4_balance.dir/bench/table4_balance.cpp.o.d"
  "bench/table4_balance"
  "bench/table4_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
