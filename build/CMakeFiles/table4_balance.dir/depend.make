# Empty dependencies file for table4_balance.
# This may be replaced when dependencies are built.
