# Empty compiler generated dependencies file for tpch_relational.
# This may be replaced when dependencies are built.
