file(REMOVE_RECURSE
  "CMakeFiles/tpch_relational.dir/tpch_relational.cpp.o"
  "CMakeFiles/tpch_relational.dir/tpch_relational.cpp.o.d"
  "tpch_relational"
  "tpch_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
