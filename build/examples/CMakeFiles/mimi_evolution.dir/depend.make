# Empty dependencies file for mimi_evolution.
# This may be replaced when dependencies are built.
