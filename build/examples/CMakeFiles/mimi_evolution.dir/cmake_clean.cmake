file(REMOVE_RECURSE
  "CMakeFiles/mimi_evolution.dir/mimi_evolution.cpp.o"
  "CMakeFiles/mimi_evolution.dir/mimi_evolution.cpp.o.d"
  "mimi_evolution"
  "mimi_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mimi_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
