#include <gtest/gtest.h>

#include "datasets/tpch.h"
#include "datasets/xmark.h"
#include "query/formulate.h"

namespace ssum {
namespace {

TEST(FormulateXQueryTest, PaperExample) {
  // The paper's Section 5.3 example: {person, name, id} — one iteration
  // entity (person) with two leaves.
  XMarkDataset ds;
  auto q = MakeIntention(ds.schema(), "paper",
                         {"people/person", "people/person/name",
                          "people/person/@id"});
  ASSERT_TRUE(q.ok());
  auto skeleton = FormulateXQuerySkeleton(ds.schema(), *q);
  ASSERT_TRUE(skeleton.ok()) << skeleton.status().ToString();
  EXPECT_NE(skeleton->find("for $a in /site/people/person"),
            std::string::npos)
      << *skeleton;
  EXPECT_NE(skeleton->find("$a/name"), std::string::npos);
  EXPECT_NE(skeleton->find("$a/@id"), std::string::npos);
  EXPECT_NE(skeleton->find("return"), std::string::npos);
}

TEST(FormulateXQueryTest, NestedEntitiesShareOuterVariable) {
  // bidder is SetOf inside open_auction (also SetOf): the inner `for`
  // binds relative to the outer variable.
  XMarkDataset ds;
  auto q = MakeIntention(
      ds.schema(), "nested",
      {"open_auctions/open_auction/reserve",
       "open_auctions/open_auction/bidder/increase"});
  ASSERT_TRUE(q.ok());
  auto skeleton = FormulateXQuerySkeleton(ds.schema(), *q);
  ASSERT_TRUE(skeleton.ok());
  EXPECT_NE(skeleton->find("for $a in /site/open_auctions/open_auction"),
            std::string::npos)
      << *skeleton;
  EXPECT_NE(skeleton->find("for $b in $a/bidder"), std::string::npos)
      << *skeleton;
  EXPECT_NE(skeleton->find("$b/increase"), std::string::npos);
}

TEST(FormulateXQueryTest, ErrorCases) {
  XMarkDataset ds;
  QueryIntention empty{"empty", {}};
  EXPECT_FALSE(FormulateXQuerySkeleton(ds.schema(), empty).ok());
  QueryIntention bogus{"bogus", {999999}};
  EXPECT_FALSE(FormulateXQuerySkeleton(ds.schema(), bogus).ok());
}

TEST(FormulateSqlTest, SingleTableProjection) {
  TpchDataset ds;
  auto q = MakeIntention(ds.schema(), "q",
                         {"lineitem/l_quantity", "lineitem/l_shipdate"});
  ASSERT_TRUE(q.ok());
  auto sql = FormulateSqlSkeleton(ds.schema(), *q);
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql->find("SELECT lineitem.l_quantity, lineitem.l_shipdate"),
            std::string::npos)
      << *sql;
  EXPECT_NE(sql->find("FROM lineitem"), std::string::npos);
}

TEST(FormulateSqlTest, JoinsFollowForeignKeys) {
  TpchDataset ds;
  auto q = MakeIntention(ds.schema(), "q",
                         {"orders", "customer/c_name", "orders/o_orderdate"});
  ASSERT_TRUE(q.ok());
  auto sql = FormulateSqlSkeleton(ds.schema(), *q);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("FROM customer, orders"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("orders.o_custkey = customer.c_custkey"),
            std::string::npos)
      << *sql;
}

TEST(FormulateSqlTest, BareRelationSelectsStar) {
  TpchDataset ds;
  auto q = MakeIntention(ds.schema(), "q", {"region"});
  ASSERT_TRUE(q.ok());
  auto sql = FormulateSqlSkeleton(ds.schema(), *q);
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("SELECT *"), std::string::npos);
  EXPECT_NE(sql->find("FROM region"), std::string::npos);
}

TEST(FormulateSqlTest, ErrorCases) {
  TpchDataset ds;
  QueryIntention empty{"empty", {}};
  EXPECT_FALSE(FormulateSqlSkeleton(ds.schema(), empty).ok());
  QueryIntention root_only{"root", {ds.schema().root()}};
  EXPECT_FALSE(FormulateSqlSkeleton(ds.schema(), root_only).ok());
}

TEST(FormulateSqlTest, WorksForEveryTpchQuery) {
  TpchDataset ds;
  const Workload workload = *ds.Queries();
  for (const QueryIntention& q : workload.queries) {
    auto sql = FormulateSqlSkeleton(ds.schema(), q);
    EXPECT_TRUE(sql.ok()) << q.name << ": " << sql.status().ToString();
  }
}

TEST(FormulateXQueryTest, WorksForEveryXMarkQuery) {
  XMarkDataset ds;
  const Workload workload = *ds.Queries();
  for (const QueryIntention& q : workload.queries) {
    auto xq = FormulateXQuerySkeleton(ds.schema(), q);
    EXPECT_TRUE(xq.ok()) << q.name << ": " << xq.status().ToString();
  }
}

}  // namespace
}  // namespace ssum
