// Snapshot lineage in the artifact cache: delta links resolving through
// parent chains, every failure degrading to a clean miss (wrong parent,
// missing ancestor, depth cap, cycles), corruption quarantined, and the
// delta install crash-swept for the {old | new | clean miss} invariant.

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "common/env.h"
#include "common/retry.h"
#include "instance/data_tree.h"
#include "schema/schema_builder.h"
#include "stats/annotate.h"
#include "stats/delta.h"
#include "store/artifact_cache.h"
#include "store/codec.h"
#include "store/container.h"
#include "store/fingerprint.h"

namespace ssum {
namespace {

struct Fixture {
  SchemaGraph schema;
  ElementId auctions, auction, bidder, persons, person;
  LinkId bids;

  Fixture() : schema(Build(this)) {}

  static SchemaGraph Build(Fixture* f) {
    SchemaBuilder b("db");
    f->auctions = b.Rcd(b.Root(), "auctions");
    f->auction = b.SetRcd(f->auctions, "auction");
    f->bidder = b.SetRcd(f->auction, "bidder");
    f->persons = b.Rcd(b.Root(), "persons");
    f->person = b.SetRcd(f->persons, "person");
    f->bids = b.Link(f->bidder, f->person);
    return std::move(b).Build();
  }

  Annotations MakeAnnotations() const {
    DataTree t(&schema);
    NodeId a_parent = *t.AddNode(t.root(), auctions);
    NodeId p_parent = *t.AddNode(t.root(), persons);
    NodeId p0 = *t.AddNode(p_parent, person);
    NodeId p1 = *t.AddNode(p_parent, person);
    NodeId a0 = *t.AddNode(a_parent, auction);
    for (int i = 0; i < 3; ++i) {
      NodeId bd = *t.AddNode(a0, bidder);
      EXPECT_TRUE(t.AddReference(bids, bd, i % 2 ? p1 : p0).ok());
    }
    auto ann = AnnotateSchema(t);
    EXPECT_TRUE(ann.ok()) << ann.status().ToString();
    return std::move(*ann);
  }

  /// A new "version" of `base`: the same shape with one counter moved.
  Annotations Bump(const Annotations& base, uint64_t by) const {
    Annotations next = base;
    next.set_card(bidder, base.card(bidder) + by);
    return next;
  }

  AnnotationDelta Delta(const Annotations& parent,
                        const Annotations& child) const {
    auto delta = DiffAnnotations(parent, child);
    EXPECT_TRUE(delta.ok()) << delta.status().ToString();
    return std::move(*delta);
  }
};

std::string MakeCacheDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/ssum_lineage_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ContainerPath(const ArtifactCache& cache, const char* family,
                          const Fingerprint& key) {
  return cache.dir() + "/" + family + "-" + key.ToHex() + ".ssb";
}

TEST(LineageTest, DirectHitResolvesWithZeroHops) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("direct"));
  Annotations ann = f.MakeAnnotations();
  Fingerprint key{0xA1};
  ASSERT_TRUE(cache.StoreAnnotations(key, ann).ok());
  auto hit = cache.LoadAnnotationsLineage(f.schema, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, ann);
  EXPECT_EQ(hit->delta_hops, 0u);
}

TEST(LineageTest, OneHopResolvesThroughTheDelta) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("onehop"));
  Annotations parent = f.MakeAnnotations();
  Annotations child = f.Bump(parent, 5);
  Fingerprint parent_key{0xB1}, child_key{0xB2};
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, parent).ok());
  ASSERT_TRUE(cache
                  .StoreAnnotationsDelta(child_key, parent_key,
                                         f.Delta(parent, child))
                  .ok());

  auto hit = cache.LoadAnnotationsLineage(f.schema, child_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, child);
  EXPECT_EQ(hit->delta_hops, 1u);
  // The full child arrays were never stored — only the link.
  EXPECT_FALSE(std::filesystem::exists(
      ContainerPath(cache, ArtifactCache::kAnnotationsFamily, child_key)));
}

TEST(LineageTest, ChainsReplayChildWardInOrder) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("chain"));
  Annotations v0 = f.MakeAnnotations();
  Annotations v1 = f.Bump(v0, 3);
  Annotations v2 = f.Bump(v1, 9);
  Fingerprint k0{0xC0}, k1{0xC1}, k2{0xC2};
  ASSERT_TRUE(cache.StoreAnnotations(k0, v0).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k1, k0, f.Delta(v0, v1)).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k2, k1, f.Delta(v1, v2)).ok());

  auto hit = cache.LoadAnnotationsLineage(f.schema, k2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, v2);
  EXPECT_EQ(hit->delta_hops, 2u);
  // The middle version resolves through its own (shorter) chain too.
  auto mid = cache.LoadAnnotationsLineage(f.schema, k1);
  ASSERT_TRUE(mid.has_value());
  EXPECT_EQ(mid->annotations, v1);
  EXPECT_EQ(mid->delta_hops, 1u);
}

TEST(LineageTest, MissingAncestorIsACleanMiss) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("dangling"));
  Annotations parent = f.MakeAnnotations();
  Annotations child = f.Bump(parent, 2);
  Fingerprint parent_key{0xD1}, child_key{0xD2};
  // Link installed, parent never stored: the chain dead-ends.
  ASSERT_TRUE(cache
                  .StoreAnnotationsDelta(child_key, parent_key,
                                         f.Delta(parent, child))
                  .ok());
  EXPECT_FALSE(cache.LoadAnnotationsLineage(f.schema, child_key).has_value());
  EXPECT_EQ(cache.session_counters().quarantined, 0u);
  // The link survives — installing the parent later completes the chain.
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, parent).ok());
  auto hit = cache.LoadAnnotationsLineage(f.schema, child_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, child);
}

TEST(LineageTest, WrongParentContentIsACleanMissNotCorruption) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("wrongparent"));
  Annotations real_parent = f.MakeAnnotations();
  Annotations child = f.Bump(real_parent, 4);
  Annotations impostor = f.Bump(real_parent, 100);  // different content
  Fingerprint parent_key{0xE1}, child_key{0xE2};
  // The key holds annotations that are NOT the ones the delta was diffed
  // against (a stale or recycled parent entry).
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, impostor).ok());
  ASSERT_TRUE(cache
                  .StoreAnnotationsDelta(child_key, parent_key,
                                         f.Delta(real_parent, child))
                  .ok());

  EXPECT_FALSE(cache.LoadAnnotationsLineage(f.schema, child_key).has_value());
  EXPECT_GE(cache.session_counters().mismatch, 1u);
  EXPECT_EQ(cache.session_counters().quarantined, 0u);
  // Neither file was destroyed: the parent entry is valid for its own key
  // and the delta is valid evidence, just not applicable.
  EXPECT_TRUE(std::filesystem::exists(
      ContainerPath(cache, ArtifactCache::kDeltaFamily, child_key)));
  EXPECT_TRUE(std::filesystem::exists(
      ContainerPath(cache, ArtifactCache::kAnnotationsFamily, parent_key)));
}

TEST(LineageTest, DepthCapBoundsTheChase) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("depth"));
  Annotations v0 = f.MakeAnnotations();
  Annotations v1 = f.Bump(v0, 1);
  Annotations v2 = f.Bump(v1, 1);
  Annotations v3 = f.Bump(v2, 1);
  Fingerprint k0{0xF0}, k1{0xF1}, k2{0xF2}, k3{0xF3};
  ASSERT_TRUE(cache.StoreAnnotations(k0, v0).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k1, k0, f.Delta(v0, v1)).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k2, k1, f.Delta(v1, v2)).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k3, k2, f.Delta(v2, v3)).ok());

  // Three hops needed; a two-hop budget is a clean miss, three resolves.
  EXPECT_FALSE(
      cache.LoadAnnotationsLineage(f.schema, k3, /*max_depth=*/2).has_value());
  auto hit = cache.LoadAnnotationsLineage(f.schema, k3, /*max_depth=*/3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, v3);
  EXPECT_EQ(hit->delta_hops, 3u);
}

TEST(LineageTest, KeyCyclesTerminateAsACleanMiss) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("cycle"));
  Annotations a = f.MakeAnnotations();
  Annotations b = f.Bump(a, 6);
  Fingerprint ka{0xAB}, kb{0xBA};
  // a <- b and b <- a: a lineage loop with no full snapshot anywhere.
  ASSERT_TRUE(cache.StoreAnnotationsDelta(ka, kb, f.Delta(b, a)).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(kb, ka, f.Delta(a, b)).ok());
  EXPECT_FALSE(cache.LoadAnnotationsLineage(f.schema, ka).has_value());
  EXPECT_FALSE(cache.LoadAnnotationsLineage(f.schema, kb).has_value());
}

TEST(LineageTest, TamperedDeltaIsQuarantinedAndHeals) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("tampered"));
  Annotations parent = f.MakeAnnotations();
  Annotations child = f.Bump(parent, 7);
  Fingerprint parent_key{0x71}, child_key{0x72};
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, parent).ok());
  AnnotationDelta delta = f.Delta(parent, child);
  ASSERT_TRUE(cache.StoreAnnotationsDelta(child_key, parent_key, delta).ok());

  std::string path =
      ContainerPath(cache, ArtifactCache::kDeltaFamily, child_key);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string bad = *bytes;
  bad[kContainerHeaderSize + 8] ^= 0x10;
  ASSERT_TRUE(AtomicWriteFile(path, bad).ok());

  // Corrupt link: clean miss, evidence moved aside.
  EXPECT_FALSE(cache.LoadAnnotationsLineage(f.schema, child_key).has_value());
  EXPECT_GE(cache.session_counters().corrupt, 1u);
  EXPECT_GE(cache.session_counters().quarantined, 1u);
  EXPECT_FALSE(std::filesystem::exists(path));

  // Reinstalling the link is the heal.
  ASSERT_TRUE(cache.StoreAnnotationsDelta(child_key, parent_key, delta).ok());
  auto hit = cache.LoadAnnotationsLineage(f.schema, child_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, child);
}

TEST(LineageTest, CorruptParentDegradesToACleanMiss) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("badparent"));
  Annotations parent = f.MakeAnnotations();
  Annotations child = f.Bump(parent, 8);
  Fingerprint parent_key{0x81}, child_key{0x82};
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, parent).ok());
  ASSERT_TRUE(cache
                  .StoreAnnotationsDelta(child_key, parent_key,
                                         f.Delta(parent, child))
                  .ok());
  std::string path =
      ContainerPath(cache, ArtifactCache::kAnnotationsFamily, parent_key);
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string bad = *bytes;
  bad[kContainerHeaderSize + 8] ^= 0x10;
  ASSERT_TRUE(AtomicWriteFile(path, bad).ok());

  EXPECT_FALSE(cache.LoadAnnotationsLineage(f.schema, child_key).has_value());
  EXPECT_GE(cache.session_counters().quarantined, 1u);
  // The cold recompute path reinstalls the parent; the chain works again.
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, parent).ok());
  auto hit = cache.LoadAnnotationsLineage(f.schema, child_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, child);
}

TEST(LineageTest, ListLineageDescribesTheChain) {
  Fixture f;
  ArtifactCache cache(MakeCacheDir("list"));
  Annotations v0 = f.MakeAnnotations();
  Annotations v1 = f.Bump(v0, 2);
  Annotations v2 = f.Bump(v1, 2);
  Fingerprint k0{0x90}, k1{0x91}, k2{0x92}, dangling_parent{0x99},
      orphan{0x9A};
  ASSERT_TRUE(cache.StoreAnnotations(k0, v0).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k1, k0, f.Delta(v0, v1)).ok());
  ASSERT_TRUE(cache.StoreAnnotationsDelta(k2, k1, f.Delta(v1, v2)).ok());
  ASSERT_TRUE(
      cache.StoreAnnotationsDelta(orphan, dangling_parent, f.Delta(v0, v1))
          .ok());

  auto entries = cache.ListLineage();
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  for (const ArtifactCache::LineageEntry& e : *entries) {
    EXPECT_TRUE(e.readable) << e.file;
    if (e.child_key_hex == k1.ToHex()) {
      EXPECT_EQ(e.parent_key_hex, k0.ToHex());
      EXPECT_TRUE(e.parent_present);  // full snapshot on disk
    } else if (e.child_key_hex == k2.ToHex()) {
      EXPECT_EQ(e.parent_key_hex, k1.ToHex());
      EXPECT_TRUE(e.parent_present);  // resolvable via k1's own delta link
    } else {
      EXPECT_EQ(e.child_key_hex, orphan.ToHex());
      EXPECT_FALSE(e.parent_present);
    }
  }
}

TEST(LineageTest, LockAcquisitionFailureNeverFailsTheInstall) {
  Fixture f;
  // Every LockFile call fails permanently: installs must degrade to
  // lock-free operation, not error out.
  FaultInjectingEnv env(Env::Default());
  ASSERT_TRUE(env.LoadSchedule("lock#1=eio").ok());
  RetryPolicy policy;
  policy.sleeper = [](uint64_t) {};
  ArtifactCache cache(MakeCacheDir("lockfault"), &env, policy);
  Annotations parent = f.MakeAnnotations();
  Annotations child = f.Bump(parent, 3);
  Fingerprint parent_key{0x61}, child_key{0x62};
  ASSERT_TRUE(cache.StoreAnnotations(parent_key, parent).ok());
  ASSERT_TRUE(cache
                  .StoreAnnotationsDelta(child_key, parent_key,
                                         f.Delta(parent, child))
                  .ok());
  EXPECT_GE(env.faults_injected(), 1u);
  auto hit = cache.LoadAnnotationsLineage(f.schema, child_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->annotations, child);
}

// ---------------------------------------------------------------------------
// Crash consistency: kill the delta install at every IO step. After
// recovery the child lookup must yield the true child annotations or a
// clean miss — never bytes that decode to something else (ISSUE acceptance:
// {old | new | clean cold fallback}, nothing corrupt).
// ---------------------------------------------------------------------------

TEST(LineageCrashTest, CrashAtEveryDeltaInstallStepNeverCorruptsAHit) {
  Fixture f;
  Annotations parent = f.MakeAnnotations();
  Annotations child = f.Bump(parent, 5);
  Fingerprint parent_key{0x41}, child_key{0x42};
  AnnotationDelta delta = f.Delta(parent, child);

  // Trace one clean install (parent snapshot pre-seeded so only the delta's
  // ops are counted).
  size_t fault_points;
  {
    std::string dir = MakeCacheDir("crash_probe");
    {
      ArtifactCache seed(dir);
      ASSERT_TRUE(seed.StoreAnnotations(parent_key, parent).ok());
    }
    FaultInjectingEnv probe(Env::Default());
    ArtifactCache probe_cache(dir, &probe);
    ASSERT_TRUE(
        probe_cache.StoreAnnotationsDelta(child_key, parent_key, delta).ok());
    fault_points = probe.total_ops();
  }
  ASSERT_GE(fault_points, 4u);

  for (size_t crash_at = 0; crash_at < fault_points; ++crash_at) {
    std::string dir = MakeCacheDir("crash_" + std::to_string(crash_at));
    {
      ArtifactCache seed(dir);
      ASSERT_TRUE(seed.StoreAnnotations(parent_key, parent).ok());
    }
    {
      // Permanent fault: every env op from `crash_at` on fails — a power
      // cut mid-install with no cleanup.
      FaultInjectingEnv env(Env::Default());
      env.FailAtOpIndex(crash_at, FaultKind::kEio);
      ArtifactCache dying(dir, &env);
      EXPECT_FALSE(
          dying.StoreAnnotationsDelta(child_key, parent_key, delta).ok())
          << "crash_at=" << crash_at;
    }
    // Recovery: a fresh process over the same directory.
    ArtifactCache cache(dir);
    auto hit = cache.LoadAnnotationsLineage(f.schema, child_key);
    if (hit.has_value()) {
      EXPECT_EQ(hit->annotations, child)
          << "crash_at=" << crash_at << ": hit is not the true child";
    }
    // Either way, reinstalling the link recovers completely.
    ASSERT_TRUE(cache.StoreAnnotationsDelta(child_key, parent_key, delta).ok())
        << "crash_at=" << crash_at;
    auto healed = cache.LoadAnnotationsLineage(f.schema, child_key);
    ASSERT_TRUE(healed.has_value()) << "crash_at=" << crash_at;
    EXPECT_EQ(healed->annotations, child) << "crash_at=" << crash_at;
    EXPECT_EQ(healed->delta_hops, 1u) << "crash_at=" << crash_at;
  }
}

}  // namespace
}  // namespace ssum
