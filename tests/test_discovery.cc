#include <gtest/gtest.h>

#include "core/summarize.h"
#include "query/discovery.h"
#include "schema/schema_builder.h"
#include "stats/annotate.h"

namespace ssum {
namespace {

/// A small fixed tree where traversal costs can be counted by hand:
///
///   root
///   ├── a        (children in schema order: a1, a2)
///   │   ├── a1
///   │   └── a2
///   ├── b
///   │   ├── b1
///   │   └── b2
///   └── c
struct Tree {
  // Ids precede `schema`: Make() fills them during schema construction.
  ElementId a = 0, a1 = 0, a2 = 0, b = 0, b1 = 0, b2 = 0, c = 0;
  SchemaGraph schema;

  Tree() : schema(Make(this)) {}

  static SchemaGraph Make(Tree* t) {
    SchemaBuilder builder("root");
    t->a = builder.SetRcd(builder.Root(), "a");
    t->a1 = builder.Simple(t->a, "a1");
    t->a2 = builder.Simple(t->a, "a2");
    t->b = builder.SetRcd(builder.Root(), "b");
    t->b1 = builder.Simple(t->b, "b1");
    t->b2 = builder.Simple(t->b, "b2");
    t->c = builder.SetRcd(builder.Root(), "c");
    return std::move(builder).Build();
  }
};

QueryIntention Q(std::vector<ElementId> elems) {
  return {"q", std::move(elems)};
}

TEST(DiscoveryTest, DepthFirstHandCounted) {
  Tree t;
  DiscoveryOracle oracle(t.schema);
  // DFS pre-order after root: a, a1, a2, b, b1, b2, c.
  // Looking for b1: visits a(1) a1(2) a2(3) b(4) then b1 (free).
  DiscoveryResult r =
      Discover(oracle, Q({t.b1}), TraversalStrategy::kDepthFirst);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cost, 4u);
  EXPECT_EQ(r.visited, 5u);
  // Looking for a1 stops immediately after a.
  r = Discover(oracle, Q({t.a1}), TraversalStrategy::kDepthFirst);
  EXPECT_EQ(r.cost, 1u);
}

TEST(DiscoveryTest, BreadthFirstHandCounted) {
  Tree t;
  DiscoveryOracle oracle(t.schema);
  // BFS order: a, b, c, a1, a2, b1, b2.
  DiscoveryResult r =
      Discover(oracle, Q({t.b1}), TraversalStrategy::kBreadthFirst);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cost, 5u);  // a b c a1 a2 charged, b1 free
  r = Discover(oracle, Q({t.c}), TraversalStrategy::kBreadthFirst);
  EXPECT_EQ(r.cost, 2u);  // a, b charged
}

TEST(DiscoveryTest, BestFirstSkipsIrrelevantSubtrees) {
  Tree t;
  DiscoveryOracle oracle(t.schema);
  // Looking for b1: root's children examined in order: a (charged, oracle
  // says no), b (charged, descend), then b's children: b1 found (free).
  DiscoveryResult r =
      Discover(oracle, Q({t.b1}), TraversalStrategy::kBestFirst);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cost, 2u);
  // Looking for {a2, c}: a charged, a1 charged, a2 free; b charged (no
  // interest); c free. Total 3.
  r = Discover(oracle, Q({t.a2, t.c}), TraversalStrategy::kBestFirst);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.cost, 3u);
}

TEST(DiscoveryTest, IntentionElementOnPathIsFree) {
  Tree t;
  DiscoveryOracle oracle(t.schema);
  // Looking for {a, a2}: a free (in intention), a1 charged, a2 free.
  DiscoveryResult r =
      Discover(oracle, Q({t.a, t.a2}), TraversalStrategy::kBestFirst);
  EXPECT_EQ(r.cost, 1u);
}

TEST(DiscoveryTest, BestFirstNeverWorseThanScans) {
  Tree t;
  DiscoveryOracle oracle(t.schema);
  for (ElementId target = 1; target < t.schema.size(); ++target) {
    uint64_t best =
        Discover(oracle, Q({target}), TraversalStrategy::kBestFirst).cost;
    uint64_t df =
        Discover(oracle, Q({target}), TraversalStrategy::kDepthFirst).cost;
    uint64_t bf =
        Discover(oracle, Q({target}), TraversalStrategy::kBreadthFirst).cost;
    EXPECT_LE(best, df);
    EXPECT_LE(best, bf);
  }
}

TEST(DiscoveryTest, ValueLinksEnableRelationalTraversal) {
  // Relational shape: root -> {t1, t2}, t1 --V--> t2; columns below each.
  SchemaBuilder b("cat");
  ElementId t1 = b.SetRcd(b.Root(), "t1");
  ElementId c1 = b.Simple(t1, "c1");
  ElementId t2 = b.SetRcd(b.Root(), "t2");
  ElementId c2 = b.Simple(t2, "c2");
  b.Link(t1, t2);
  SchemaGraph schema = std::move(b).Build();
  DiscoveryOracle oracle(schema);
  // Successors of t1 include t2 through the value link.
  const auto& succ = oracle.successors(t1);
  EXPECT_NE(std::find(succ.begin(), succ.end(), t2), succ.end());
  EXPECT_TRUE(oracle.Reaches(t1, c2));
  DiscoveryResult r = Discover(oracle, Q({c1, c2}),
                               TraversalStrategy::kBestFirst);
  EXPECT_TRUE(r.complete);
}

TEST(DiscoveryTest, CyclicValueLinksTerminate) {
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  ElementId leaf = b.Simple(y, "leaf");
  b.Link(x, y);
  b.Link(y, x);
  SchemaGraph schema = std::move(b).Build();
  DiscoveryOracle oracle(schema);
  for (TraversalStrategy s :
       {TraversalStrategy::kDepthFirst, TraversalStrategy::kBreadthFirst,
        TraversalStrategy::kBestFirst}) {
    DiscoveryResult r = Discover(oracle, Q({leaf}), s);
    EXPECT_TRUE(r.complete) << TraversalStrategyName(s);
  }
}

// --- with summary -----------------------------------------------------------

struct Wide {
  // Id vectors precede `schema`: Make() fills them during construction.
  std::vector<ElementId> entities;  // 6 entities, 3 leaves each
  std::vector<ElementId> leaves;
  SchemaGraph schema;
  Annotations ann;

  Wide() : schema(Make(this)), ann(schema) {
    ann.set_card(schema.root(), 1);
    for (ElementId e = 1; e < schema.size(); ++e) {
      ann.set_card(e, 100);
      ann.set_structural_count(schema.parent_link(e), 100);
    }
  }

  static SchemaGraph Make(Wide* w) {
    SchemaBuilder b("db");
    for (int i = 0; i < 6; ++i) {
      ElementId e = b.SetRcd(b.Root(), "ent" + std::to_string(i));
      w->entities.push_back(e);
      for (int j = 0; j < 3; ++j) {
        w->leaves.push_back(
            b.Simple(e, "leaf" + std::to_string(i) + std::to_string(j)));
      }
    }
    return std::move(b).Build();
  }
};

TEST(DiscoveryWithSummaryTest, FindsAllIntentionElements) {
  Wide w;
  SchemaSummary summary = *Summarize(w.schema, w.ann, 3);
  DiscoveryOracle oracle(w.schema);
  for (ElementId target : w.leaves) {
    DiscoveryResult r = DiscoverWithSummary(oracle, summary, Q({target}));
    EXPECT_TRUE(r.complete) << w.schema.PathOf(target);
  }
  // Multi-element intention spanning groups.
  DiscoveryResult r = DiscoverWithSummary(
      oracle, summary, Q({w.leaves[0], w.leaves[8], w.leaves[16]}));
  EXPECT_TRUE(r.complete);
}

TEST(DiscoveryWithSummaryTest, AbstractVisitsAreCharged) {
  Wide w;
  SchemaSummary summary = *Summarize(w.schema, w.ann, 3);
  DiscoveryOracle oracle(w.schema);
  DiscoveryResult r = DiscoverWithSummary(oracle, summary, Q({w.leaves[0]}));
  // At least one abstract element must be visited (cost >= 1).
  EXPECT_GE(r.cost, 1u);
}

TEST(DiscoveryWithSummaryTest, MismatchedSchemaFailsFast) {
  Wide w;
  Tree t;
  SchemaSummary summary = *Summarize(w.schema, w.ann, 3);
  DiscoveryOracle oracle(w.schema);
  (void)t;
  // Average helpers with an empty workload return 0.
  Workload empty;
  EXPECT_DOUBLE_EQ(AverageDiscoveryCost(oracle, empty,
                                        TraversalStrategy::kBestFirst),
                   0.0);
  EXPECT_DOUBLE_EQ(AverageDiscoveryCostWithSummary(oracle, summary, empty),
                   0.0);
}

TEST(DiscoveryWithSummaryTest, BoundedOverheadOnUniformWorkloads) {
  // This workload is deliberately anti-focused (uniform over all entities,
  // which are symmetric), so the summary cannot exploit importance skew —
  // the paper's savings come from real queries concentrating on important
  // elements. The summary must still stay within a small constant factor.
  Wide w;
  SchemaSummary summary = *Summarize(w.schema, w.ann, 3);
  DiscoveryOracle oracle(w.schema);
  Workload load;
  load.name = "leaves";
  for (size_t i = 0; i < w.leaves.size(); i += 2) {
    load.queries.push_back(Q({w.leaves[i], w.leaves[(i + 1) % w.leaves.size()]}));
  }
  double without =
      AverageDiscoveryCost(oracle, load, TraversalStrategy::kBestFirst);
  double with = AverageDiscoveryCostWithSummary(oracle, summary, load);
  EXPECT_LE(with, without * 2.0);
}

}  // namespace
}  // namespace ssum
