// Dedicated tests for the bounded-walk max-product engine underlying
// Formula 2 (affinity) and Formula 3 (coverage) — the scalar reference
// (MaxProductWalks) and the batched CSR engine (MaxProductWalksBatch),
// which must agree bit for bit.

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "core/path_engine.h"
#include "schema/schema_builder.h"

namespace ssum {
namespace {

/// Builds uniform factors of `value` for every adjacency record.
EdgeFactors UniformFactors(const SchemaGraph& graph, double value) {
  EdgeFactors f(graph.size());
  for (ElementId e = 0; e < graph.size(); ++e) {
    f[e].assign(graph.neighbors(e).size(), value);
  }
  return f;
}

/// How a parameterized test evaluates a walk.
enum class WalkEngine {
  kScalar,        // the reference MaxProductWalks
  kBatchedSingle, // MaxProductWalksBatch with a single-source batch
  kBatchedFull,   // one all-sources batch; the requested row is extracted
};

const char* EngineName(WalkEngine e) {
  switch (e) {
    case WalkEngine::kScalar: return "Scalar";
    case WalkEngine::kBatchedSingle: return "BatchedSingle";
    case WalkEngine::kBatchedFull: return "BatchedFull";
  }
  return "?";
}

/// Runs one source row through the engine under test.
std::vector<double> RunWalk(WalkEngine engine, const SchemaGraph& graph,
                            const EdgeFactors& factors, ElementId source,
                            const WalkSearchOptions& opts) {
  if (engine == WalkEngine::kScalar) {
    return MaxProductWalks(graph, factors, source, opts);
  }
  const size_t n = graph.size();
  const WalkPlan plan = WalkPlan::Build(graph, factors);
  if (engine == WalkEngine::kBatchedSingle) {
    std::vector<double> row(n, -1.0);  // poison: the kernel must overwrite
    std::span<double> row_span(row);
    MaxProductWalksBatch(plan, {&source, 1}, opts, {&row_span, 1});
    return row;
  }
  // kBatchedFull: every element is a source in one batch, so the requested
  // row shares lane blocks with unrelated sources.
  std::vector<double> all(n * n, -1.0);
  std::vector<ElementId> sources(n);
  std::vector<std::span<double>> rows(n);
  for (ElementId s = 0; s < n; ++s) {
    sources[s] = s;
    rows[s] = {all.data() + s * n, n};
  }
  MaxProductWalksBatch(plan, sources, opts, rows);
  return {all.begin() + source * n, all.begin() + (source + 1) * n};
}

class WalkEngineTest : public ::testing::TestWithParam<WalkEngine> {
 protected:
  std::vector<double> Run(const SchemaGraph& graph, const EdgeFactors& factors,
                          ElementId source, const WalkSearchOptions& opts) {
    return RunWalk(GetParam(), graph, factors, source, opts);
  }
};

TEST_P(WalkEngineTest, RootOnlyGraphHasNoWalks) {
  SchemaBuilder b("r");
  SchemaGraph g = std::move(b).Build();
  ASSERT_EQ(g.size(), 1u);
  EdgeFactors f = UniformFactors(g, 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 8;
  auto best = Run(g, f, g.root(), opts);
  ASSERT_EQ(best.size(), 1u);
  EXPECT_DOUBLE_EQ(best[0], 0.0);  // no walk of length >= 1 exists
}

TEST_P(WalkEngineTest, IsolatedSourceReachesNothing) {
  // All factors incident to the source are zero: the frontier dies on the
  // first step and every entry (including the source's own) stays 0.
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 1.0);
  f[a].assign(g.neighbors(a).size(), 0.0);
  WalkSearchOptions opts;
  opts.max_steps = 16;
  auto best = Run(g, f, a, opts);
  for (ElementId t = 0; t < g.size(); ++t) {
    EXPECT_DOUBLE_EQ(best[t], 0.0) << "target " << t;
  }
  EXPECT_DOUBLE_EQ(Run(g, f, g.root(), opts)[c], 0.0);  // blocked at a
}

TEST_P(WalkEngineTest, StepBudgetSmallerThanDiameter) {
  // Chain r-a-c-d; with max_steps=2 the 3-hop target d is unreachable.
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  ElementId d = b.SetRcd(c, "d");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.5);
  WalkSearchOptions opts;
  opts.max_steps = 2;
  auto best = Run(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[a], 0.5);
  EXPECT_DOUBLE_EQ(best[c], 0.25);
  EXPECT_DOUBLE_EQ(best[d], 0.0);  // beyond the budget
}

TEST_P(WalkEngineTest, ZeroStepBudgetYieldsAllZeros) {
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 0;
  auto best = Run(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[g.root()], 0.0);
  EXPECT_DOUBLE_EQ(best[a], 0.0);
}

TEST_P(WalkEngineTest, DivideByStepsTieBreaksMatchScalar) {
  // Direct route 0.5/1 ties the two-hop route 1.0/2; both engines must
  // resolve the tie to exactly the same double.
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  b.Link(y, x);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  f[g.root()] = {0.5, 1.0};
  f[x].assign(g.neighbors(x).size(), 1.0);
  f[y].assign(g.neighbors(y).size(), 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 4;
  opts.divide_by_steps = true;
  auto best = Run(g, f, g.root(), opts);
  auto ref = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[x], 0.5);
  ASSERT_EQ(best.size(), ref.size());
  EXPECT_EQ(0, std::memcmp(best.data(), ref.data(),
                           ref.size() * sizeof(double)));
}

TEST_P(WalkEngineTest, SourceCycleDoesNotInflate) {
  // root <-> a <-> c plus a c->a link: walks can revisit the source, but
  // sub-unit factors mean longer walks only lose value.
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  b.Link(c, a);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.9);
  WalkSearchOptions opts;
  opts.max_steps = 64;
  auto best = Run(g, f, a, opts);
  EXPECT_DOUBLE_EQ(best[g.root()], 0.9);
  EXPECT_DOUBLE_EQ(best[c], 0.9);
  EXPECT_DOUBLE_EQ(best[a], 0.81);  // a->c->a round trip
}

TEST_P(WalkEngineTest, BitIdenticalToScalarOnEveryRow) {
  // A graph with cycles, asymmetric factors, and a dead edge; every source
  // row of the engine under test must equal the scalar walk byte for byte.
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  ElementId z = b.SetRcd(x, "z");
  b.Link(y, x);
  b.Link(z, y);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  for (ElementId e = 0; e < g.size(); ++e) {
    f[e].resize(g.neighbors(e).size());
    for (size_t i = 0; i < f[e].size(); ++i) {
      f[e][i] = (e + 1) * 0.13 + i * 0.07;  // asymmetric, some > 1
      if (e == y && i == 0) f[e][i] = 0.0;  // dead edge
    }
  }
  for (bool divide : {false, true}) {
    WalkSearchOptions opts;
    opts.max_steps = 12;
    opts.divide_by_steps = divide;
    for (ElementId s = 0; s < g.size(); ++s) {
      auto got = Run(g, f, s, opts);
      auto ref = MaxProductWalks(g, f, s, opts);
      ASSERT_EQ(got.size(), ref.size());
      EXPECT_EQ(0, std::memcmp(got.data(), ref.data(),
                               ref.size() * sizeof(double)))
          << "source " << s << " divide_by_steps " << divide;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(WalkEngines, WalkEngineTest,
                         ::testing::Values(WalkEngine::kScalar,
                                           WalkEngine::kBatchedSingle,
                                           WalkEngine::kBatchedFull),
                         [](const auto& info) {
                           return EngineName(info.param);
                         });

// Both lane-width instantiations ship in every build regardless of the
// configured kWalkLaneWidth (docs/performance.md "SSUM_WALK_LANE_WIDTH"),
// so both must hold the scalar bit-identity invariant — including on
// batches that leave the last lane block partially filled for each width.
TEST(WalkLaneWidthTest, BothWidthsBitIdenticalToScalar) {
  SchemaBuilder b("r");
  std::vector<ElementId> kids;
  for (int i = 0; i < 21; ++i) {  // 22 elements: partial tail at 8 and 16
    kids.push_back(b.SetRcd(i < 3 ? b.Root() : kids[i - 3], "k"));
  }
  b.Link(kids[20], kids[0]);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  for (ElementId e = 0; e < g.size(); ++e) {
    f[e].resize(g.neighbors(e).size());
    for (size_t i = 0; i < f[e].size(); ++i) {
      f[e][i] = 0.2 + 0.11 * ((e + i) % 9);  // asymmetric, some > 1
    }
  }
  WalkSearchOptions opts;
  opts.max_steps = 10;
  const size_t n = g.size();
  const WalkPlan plan = WalkPlan::Build(g, f);
  std::vector<ElementId> sources(n);
  std::vector<std::span<double>> rows(n);
  auto run_all = [&](auto width_tag, std::vector<double>& out) {
    out.assign(n * n, -1.0);  // poison: the kernel must overwrite
    for (ElementId s = 0; s < n; ++s) {
      sources[s] = s;
      rows[s] = {out.data() + s * n, n};
    }
    MaxProductWalksBatchW<decltype(width_tag)::value>(plan, sources, opts,
                                                      rows);
  };
  std::vector<double> w8, w16;
  run_all(std::integral_constant<size_t, 8>{}, w8);
  run_all(std::integral_constant<size_t, 16>{}, w16);
  for (ElementId s = 0; s < n; ++s) {
    auto ref = MaxProductWalks(g, f, s, opts);
    EXPECT_EQ(0, std::memcmp(w8.data() + s * n, ref.data(),
                             n * sizeof(double)))
        << "width 8, source " << s;
    EXPECT_EQ(0, std::memcmp(w16.data() + s * n, ref.data(),
                             n * sizeof(double)))
        << "width 16, source " << s;
  }
}

TEST(WalkPlanTest, CsrLayoutMatchesAdjacency) {
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.25);
  const WalkPlan plan = WalkPlan::Build(g, f);
  ASSERT_EQ(plan.size(), g.size());
  ASSERT_EQ(plan.row_offsets.size(), g.size() + 1);
  size_t edges = 0;
  for (ElementId u = 0; u < g.size(); ++u) {
    const auto& nbrs = g.neighbors(u);
    ASSERT_EQ(plan.row_offsets[u + 1] - plan.row_offsets[u], nbrs.size());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(plan.neighbor_ids[plan.row_offsets[u] + i], nbrs[i].other);
      EXPECT_DOUBLE_EQ(plan.edge_factors[plan.row_offsets[u] + i], 0.25);
    }
    edges += nbrs.size();
  }
  EXPECT_EQ(plan.num_edges(), edges);
  // The CSR arrays honor the cache-line alignment the kernel assumes.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(plan.edge_factors.data()) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(plan.neighbor_ids.data()) % 64, 0u);

  // Zero-factor records are pruned from the snapshot (value-preserving:
  // zero products never win the max; see the WalkPlan contract).
  f[a].assign(g.neighbors(a).size(), 0.0);
  const WalkPlan pruned = WalkPlan::Build(g, f);
  EXPECT_EQ(pruned.row_offsets[a + 1], pruned.row_offsets[a]);
  EXPECT_LT(pruned.num_edges(), edges);
  (void)c;
}

TEST(PathEngineTest, ProductsMultiplyAlongChains) {
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  ElementId d = b.SetRcd(c, "d");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.5);
  WalkSearchOptions opts;
  opts.max_steps = 8;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[a], 0.5);
  EXPECT_DOUBLE_EQ(best[c], 0.25);
  EXPECT_DOUBLE_EQ(best[d], 0.125);
}

TEST(PathEngineTest, ChoosesTheHeavierRoute) {
  // Two routes root->x: direct (weak) and via y (two strong hops).
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  b.Link(y, x);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  // root's adjacency: [x (child), y (child)].
  f[g.root()] = {0.1, 0.9};
  f[x].assign(g.neighbors(x).size(), 0.9);
  f[y].assign(g.neighbors(y).size(), 0.9);
  WalkSearchOptions opts;
  opts.max_steps = 4;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  // Direct: 0.1. Via y: 0.9 * 0.9 = 0.81.
  EXPECT_DOUBLE_EQ(best[x], 0.81);
}

TEST(PathEngineTest, DivideByStepsPrefersShortRoutes) {
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  b.Link(y, x);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  f[g.root()] = {0.5, 1.0};
  f[x].assign(g.neighbors(x).size(), 1.0);
  f[y].assign(g.neighbors(y).size(), 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 4;
  opts.divide_by_steps = true;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  // Direct: 0.5/1 = 0.5. Via y: 1.0/2 = 0.5. Max = 0.5 either way.
  EXPECT_DOUBLE_EQ(best[x], 0.5);
  opts.divide_by_steps = false;
  best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[x], 1.0);  // undivided prefers the 2-hop route
}

TEST(PathEngineTest, ZeroFactorBlocksTraversal) {
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 1.0);
  // Kill the a->c edge (both directions to be thorough).
  const auto& nbrs = g.neighbors(a);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i].other == c) f[a][i] = 0.0;
  }
  WalkSearchOptions opts;
  opts.max_steps = 8;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[c], 0.0);
  EXPECT_DOUBLE_EQ(best[a], 1.0);
}

TEST(PathEngineTest, EarlyExitOnExhaustedFrontier) {
  // Isolated root (no neighbors beyond one leaf): the search must stop
  // without consuming the full step budget (observable via correctness —
  // best stays 0 beyond reach).
  SchemaBuilder b("r");
  ElementId leaf = b.Simple(b.Root(), "leaf");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 1000000;  // would take forever without the early exit
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[leaf], 1.0);
}

TEST(PathEngineTest, CyclesDoNotInflateWithSubUnitFactors) {
  // root <-> a <-> c with all factors < 1: longer walks only lose value.
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  b.Link(c, a);  // extra cycle edge
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.9);
  WalkSearchOptions opts;
  opts.max_steps = 64;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[a], 0.9);
  EXPECT_DOUBLE_EQ(best[c], 0.81);
}

TEST(SquareMatrixTest, RowAccess) {
  SquareMatrix m(3, 0.0);
  m.Set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 0.0);
  m.Row(0)[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 0), 7.0);
  EXPECT_EQ(m.size(), 3u);
}

}  // namespace
}  // namespace ssum
