// Dedicated tests for the bounded-walk max-product engine underlying
// Formula 2 (affinity) and Formula 3 (coverage).

#include <gtest/gtest.h>

#include "core/path_engine.h"
#include "schema/schema_builder.h"

namespace ssum {
namespace {

/// Builds uniform factors of `value` for every adjacency record.
EdgeFactors UniformFactors(const SchemaGraph& graph, double value) {
  EdgeFactors f(graph.size());
  for (ElementId e = 0; e < graph.size(); ++e) {
    f[e].assign(graph.neighbors(e).size(), value);
  }
  return f;
}

TEST(PathEngineTest, ProductsMultiplyAlongChains) {
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  ElementId d = b.SetRcd(c, "d");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.5);
  WalkSearchOptions opts;
  opts.max_steps = 8;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[a], 0.5);
  EXPECT_DOUBLE_EQ(best[c], 0.25);
  EXPECT_DOUBLE_EQ(best[d], 0.125);
}

TEST(PathEngineTest, ChoosesTheHeavierRoute) {
  // Two routes root->x: direct (weak) and via y (two strong hops).
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  b.Link(y, x);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  // root's adjacency: [x (child), y (child)].
  f[g.root()] = {0.1, 0.9};
  f[x].assign(g.neighbors(x).size(), 0.9);
  f[y].assign(g.neighbors(y).size(), 0.9);
  WalkSearchOptions opts;
  opts.max_steps = 4;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  // Direct: 0.1. Via y: 0.9 * 0.9 = 0.81.
  EXPECT_DOUBLE_EQ(best[x], 0.81);
}

TEST(PathEngineTest, DivideByStepsPrefersShortRoutes) {
  SchemaBuilder b("r");
  ElementId x = b.SetRcd(b.Root(), "x");
  ElementId y = b.SetRcd(b.Root(), "y");
  b.Link(y, x);
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f(g.size());
  f[g.root()] = {0.5, 1.0};
  f[x].assign(g.neighbors(x).size(), 1.0);
  f[y].assign(g.neighbors(y).size(), 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 4;
  opts.divide_by_steps = true;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  // Direct: 0.5/1 = 0.5. Via y: 1.0/2 = 0.5. Max = 0.5 either way.
  EXPECT_DOUBLE_EQ(best[x], 0.5);
  opts.divide_by_steps = false;
  best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[x], 1.0);  // undivided prefers the 2-hop route
}

TEST(PathEngineTest, ZeroFactorBlocksTraversal) {
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 1.0);
  // Kill the a->c edge (both directions to be thorough).
  const auto& nbrs = g.neighbors(a);
  for (size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i].other == c) f[a][i] = 0.0;
  }
  WalkSearchOptions opts;
  opts.max_steps = 8;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[c], 0.0);
  EXPECT_DOUBLE_EQ(best[a], 1.0);
}

TEST(PathEngineTest, EarlyExitOnExhaustedFrontier) {
  // Isolated root (no neighbors beyond one leaf): the search must stop
  // without consuming the full step budget (observable via correctness —
  // best stays 0 beyond reach).
  SchemaBuilder b("r");
  ElementId leaf = b.Simple(b.Root(), "leaf");
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 1.0);
  WalkSearchOptions opts;
  opts.max_steps = 1000000;  // would take forever without the early exit
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[leaf], 1.0);
}

TEST(PathEngineTest, CyclesDoNotInflateWithSubUnitFactors) {
  // root <-> a <-> c with all factors < 1: longer walks only lose value.
  SchemaBuilder b("r");
  ElementId a = b.SetRcd(b.Root(), "a");
  ElementId c = b.SetRcd(a, "c");
  b.Link(c, a);  // extra cycle edge
  SchemaGraph g = std::move(b).Build();
  EdgeFactors f = UniformFactors(g, 0.9);
  WalkSearchOptions opts;
  opts.max_steps = 64;
  auto best = MaxProductWalks(g, f, g.root(), opts);
  EXPECT_DOUBLE_EQ(best[a], 0.9);
  EXPECT_DOUBLE_EQ(best[c], 0.81);
}

TEST(SquareMatrixTest, RowAccess) {
  SquareMatrix m(3, 0.0);
  m.Set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.At(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(m.At(2, 1), 0.0);
  m.Row(0)[0] = 7.0;
  EXPECT_DOUBLE_EQ(m.At(0, 0), 7.0);
  EXPECT_EQ(m.size(), 3u);
}

}  // namespace
}  // namespace ssum
