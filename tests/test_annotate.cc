#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "datasets/mimi.h"
#include "datasets/tpch.h"
#include "datasets/xmark.h"
#include "instance/data_tree.h"
#include "relational/bridge.h"
#include "schema/schema_builder.h"
#include "stats/annotate.h"
#include "stats/annotations_io.h"
#include "xml/infer_schema.h"
#include "xml/instance_bridge.h"
#include "xml/parser.h"

namespace ssum {
namespace {

// Schema:   db -> auctions -> auction* -> bidder*
//           db -> persons -> person*
//           bidder --V--> person
struct Fixture {
  SchemaGraph schema;
  ElementId auctions, auction, bidder, persons, person;
  LinkId bids;

  Fixture() : schema(Build(this)) {}

  static SchemaGraph Build(Fixture* f) {
    SchemaBuilder b("db");
    f->auctions = b.Rcd(b.Root(), "auctions");
    f->auction = b.SetRcd(f->auctions, "auction");
    f->bidder = b.SetRcd(f->auction, "bidder");
    f->persons = b.Rcd(b.Root(), "persons");
    f->person = b.SetRcd(f->persons, "person");
    f->bids = b.Link(f->bidder, f->person);
    return std::move(b).Build();
  }

  /// 2 auctions with 3 and 1 bidders; 2 persons; every bidder references a
  /// person.
  DataTree MakeData() const {
    DataTree t(&schema);
    NodeId a_parent = *t.AddNode(t.root(), auctions);
    NodeId p_parent = *t.AddNode(t.root(), persons);
    NodeId p0 = *t.AddNode(p_parent, person);
    NodeId p1 = *t.AddNode(p_parent, person);
    NodeId a0 = *t.AddNode(a_parent, auction);
    NodeId a1 = *t.AddNode(a_parent, auction);
    for (int i = 0; i < 3; ++i) {
      NodeId bd = *t.AddNode(a0, bidder);
      EXPECT_TRUE(t.AddReference(bids, bd, i % 2 ? p1 : p0).ok());
    }
    NodeId bd = *t.AddNode(a1, bidder);
    EXPECT_TRUE(t.AddReference(bids, bd, p1).ok());
    return t;
  }
};

TEST(AnnotateTest, CardinalitiesMatchHandCount) {
  Fixture f;
  DataTree data = f.MakeData();
  auto ann = AnnotateSchema(data);
  ASSERT_TRUE(ann.ok()) << ann.status().ToString();
  EXPECT_EQ(ann->card(f.schema.root()), 1u);
  EXPECT_EQ(ann->card(f.auctions), 1u);
  EXPECT_EQ(ann->card(f.auction), 2u);
  EXPECT_EQ(ann->card(f.bidder), 4u);
  EXPECT_EQ(ann->card(f.person), 2u);
  EXPECT_EQ(ann->value_count(f.bids), 4u);
  EXPECT_DOUBLE_EQ(ann->TotalCard(), 1 + 1 + 2 + 4 + 1 + 2);
}

TEST(AnnotateTest, RelativeCardinalitiesBothDirections) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations ann = *AnnotateSchema(data);
  // RC(auction -> bidder) = 4/2 = 2; RC(bidder -> auction) = 4/4 = 1.
  const auto& nbrs = f.schema.neighbors(f.auction);
  double rc_fwd = -1, rc_bwd = -1;
  for (const Neighbor& n : nbrs) {
    if (n.other == f.bidder) rc_fwd = ann.RelativeCardinality(f.schema, f.auction, n);
  }
  for (const Neighbor& n : f.schema.neighbors(f.bidder)) {
    if (n.other == f.auction) rc_bwd = ann.RelativeCardinality(f.schema, f.bidder, n);
    if (n.other == f.person) {
      // RC(bidder -> person) = 4 refs / 4 bidders = 1.
      EXPECT_DOUBLE_EQ(ann.RelativeCardinality(f.schema, f.bidder, n), 1.0);
    }
  }
  EXPECT_DOUBLE_EQ(rc_fwd, 2.0);
  EXPECT_DOUBLE_EQ(rc_bwd, 1.0);
  // RC(person -> bidder) = 4 refs / 2 persons = 2.
  for (const Neighbor& n : f.schema.neighbors(f.person)) {
    if (n.other == f.bidder) {
      EXPECT_DOUBLE_EQ(ann.RelativeCardinality(f.schema, f.person, n), 2.0);
    }
  }
}

TEST(AnnotateTest, ZeroCardinalityElementHasZeroRc) {
  Fixture f;
  DataTree t(&f.schema);  // empty database: only the root node
  Annotations ann = *AnnotateSchema(t);
  EXPECT_EQ(ann.card(f.auction), 0u);
  const Neighbor& n = f.schema.neighbors(f.auction)[0];
  EXPECT_DOUBLE_EQ(ann.RelativeCardinality(f.schema, f.auction, n), 0.0);
}

// --- stream well-formedness (failure injection) ---------------------------

class ScriptedStream : public InstanceStream {
 public:
  using Event = std::pair<char, uint32_t>;  // '+', '-', 'r'
  ScriptedStream(const SchemaGraph* schema, std::vector<Event> events)
      : schema_(schema), events_(std::move(events)) {}
  const SchemaGraph& schema() const override { return *schema_; }
  Status Accept(InstanceVisitor* v) const override {
    for (auto [kind, id] : events_) {
      if (kind == '+') v->OnEnter(id);
      else if (kind == '-') v->OnLeave(id);
      else v->OnReference(id);
    }
    return Status::OK();
  }

 private:
  const SchemaGraph* schema_;
  std::vector<Event> events_;
};

TEST(AnnotateTest, RejectsNonRootStart) {
  Fixture f;
  ScriptedStream s(&f.schema, {{'+', f.auctions}});
  EXPECT_TRUE(AnnotateSchema(s).status().IsFailedPrecondition());
}

TEST(AnnotateTest, RejectsParentageViolation) {
  Fixture f;
  ScriptedStream s(&f.schema, {{'+', f.schema.root()}, {'+', f.auction}});
  EXPECT_TRUE(AnnotateSchema(s).status().IsFailedPrecondition());
}

TEST(AnnotateTest, RejectsUnbalancedLeave) {
  Fixture f;
  ScriptedStream s(&f.schema,
                   {{'+', f.schema.root()}, {'-', f.auctions}});
  EXPECT_TRUE(AnnotateSchema(s).status().IsFailedPrecondition());
}

TEST(AnnotateTest, RejectsUnclosedNodes) {
  Fixture f;
  ScriptedStream s(&f.schema, {{'+', f.schema.root()}});
  EXPECT_TRUE(AnnotateSchema(s).status().IsFailedPrecondition());
}

TEST(AnnotateTest, RejectsReferenceFromWrongElement) {
  Fixture f;
  ScriptedStream s(&f.schema, {{'+', f.schema.root()}, {'r', f.bids}});
  EXPECT_TRUE(AnnotateSchema(s).status().IsFailedPrecondition());
}

TEST(AnnotateTest, RejectsOutOfRangeIds) {
  Fixture f;
  ScriptedStream bad_elem(&f.schema, {{'+', 9999}});
  EXPECT_FALSE(AnnotateSchema(bad_elem).ok());
  ScriptedStream bad_ref(&f.schema, {{'+', f.schema.root()}, {'r', 9999}});
  EXPECT_FALSE(AnnotateSchema(bad_ref).ok());
}

// --- Uniform annotations ----------------------------------------------------

TEST(AnnotateTest, UniformGivesUnitRc) {
  Fixture f;
  Annotations uniform = Annotations::Uniform(f.schema);
  for (ElementId e = 0; e < f.schema.size(); ++e) {
    EXPECT_EQ(uniform.card(e), 1u);
    for (const Neighbor& n : f.schema.neighbors(e)) {
      EXPECT_DOUBLE_EQ(uniform.RelativeCardinality(f.schema, e, n), 1.0);
    }
  }
}

// --- EdgeMetrics -------------------------------------------------------------

TEST(EdgeMetricsTest, WeightsNormalizeAndMirror) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations ann = *AnnotateSchema(data);
  EdgeMetrics m = EdgeMetrics::Compute(f.schema, ann);
  for (ElementId e = 0; e < f.schema.size(); ++e) {
    const auto& nbrs = f.schema.neighbors(e);
    double total = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      total += m.w[e][i];
      // Mirror round-trips.
      uint32_t j = m.mirror[e][i];
      EXPECT_EQ(f.schema.neighbors(nbrs[i].other)[j].other, e);
      EXPECT_EQ(m.mirror[nbrs[i].other][j], i);
      // Edge affinity is capped at 1.
      EXPECT_LE(m.edge_affinity[e][i], 1.0);
      EXPECT_GE(m.edge_affinity[e][i], 0.0);
    }
    if (!nbrs.empty()) {
      EXPECT_NEAR(total, 1.0, 1e-9);
    }
  }
}

TEST(EdgeMetricsTest, ZeroCardFallsBackToUniformWeights) {
  Fixture f;
  DataTree t(&f.schema);
  Annotations ann = *AnnotateSchema(t);
  EdgeMetrics m = EdgeMetrics::Compute(f.schema, ann);
  const auto& nbrs = f.schema.neighbors(f.auction);
  ASSERT_FALSE(nbrs.empty());
  double expected = 1.0 / static_cast<double>(nbrs.size());
  for (size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_DOUBLE_EQ(m.w[f.auction][i], expected);
  }
}

// --- merge --------------------------------------------------------------------

TEST(AnnotateTest, MergeSumsElementWise) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations full = *AnnotateSchema(data);

  // Merging the full pass into a zeroed shape reproduces it; merging it
  // twice doubles every counter — counting is additive over stream shards.
  Annotations acc(f.schema);
  ASSERT_TRUE(acc.Merge(full).ok());
  EXPECT_EQ(acc, full);
  ASSERT_TRUE(acc.Merge(full).ok());
  EXPECT_EQ(acc.card(f.bidder), 2 * full.card(f.bidder));
  EXPECT_EQ(acc.structural_count(f.schema.parent_link(f.bidder)),
            2 * full.structural_count(f.schema.parent_link(f.bidder)));
  EXPECT_EQ(acc.value_count(f.bids), 2 * full.value_count(f.bids));
  EXPECT_EQ(acc.TotalNodes(), 2 * full.TotalNodes());
}

TEST(AnnotateTest, MergeRejectsShapeMismatch) {
  Fixture f;
  Annotations ann(f.schema);
  SchemaBuilder b("other");
  b.Rcd(b.Root(), "child");
  SchemaGraph other = std::move(b).Build();
  Annotations foreign(other);
  auto status = ann.Merge(foreign);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsFailedPrecondition()) << status.ToString();
}

TEST(AnnotateTest, TotalNodesMatchesCountingVisitor) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations ann = *AnnotateSchema(data);
  CountingVisitor counter;
  ASSERT_TRUE(data.Accept(&counter).ok());
  EXPECT_EQ(ann.TotalNodes(), counter.nodes());
}

// --- sharded annotation -------------------------------------------------------

/// The sharded pass must be bit-identical to the serial one for ANY shard
/// count — including counts that don't divide the units evenly (7), exceed
/// them (64 on small instances), or degenerate to serial (1) — and for the
/// auto shard count, with the reduction running on worker threads.
void ExpectShardInvariance(const ShardedInstanceSource& source,
                           const Annotations& serial) {
  for (uint64_t shards : {uint64_t{1}, uint64_t{2}, uint64_t{7}, uint64_t{64}}) {
    ShardedAnnotateOptions opts;
    opts.shards = shards;
    opts.parallel.threads = 4;
    auto sharded = AnnotateSchemaSharded(source, opts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ(*sharded, serial) << "shards=" << shards;
  }
  auto auto_sharded = AnnotateSchemaSharded(source);
  ASSERT_TRUE(auto_sharded.ok()) << auto_sharded.status().ToString();
  EXPECT_EQ(*auto_sharded, serial);
}

TEST(ShardedAnnotateTest, DataTreeMatchesSerial) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations serial = *AnnotateSchema(data);
  ExpectShardInvariance(data, serial);
}

TEST(ShardedAnnotateTest, EmptyTreeMatchesSerial) {
  Fixture f;
  DataTree data(&f.schema);  // zero units: skeleton only
  Annotations serial = *AnnotateSchema(data);
  ExpectShardInvariance(data, serial);
}

TEST(ShardedAnnotateTest, HandBuiltXmlWithUnevenFanoutMatchesSerial) {
  // One huge top-level subtree followed by many tiny ones: shard boundaries
  // land mid-document and units differ wildly in size.
  std::string xml = "<db><big>";
  for (int i = 0; i < 200; ++i) xml += "<x><y/></x>";
  xml += "</big>";
  for (int i = 0; i < 17; ++i) xml += "<small/>";
  xml += "</db>";
  auto doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  auto schema = InferSchema(*doc);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  XmlInstanceStream stream(&*schema, &*doc);
  EXPECT_EQ(stream.NumUnits(), 18u);  // 1 big + 17 small top-level children
  Annotations serial = *AnnotateSchema(stream);
  ExpectShardInvariance(stream, serial);
  // The document-level entry point routes through the sharded pass.
  auto via_doc = AnnotateXmlDocument(*schema, *doc);
  ASSERT_TRUE(via_doc.ok());
  EXPECT_EQ(*via_doc, serial);
}

TEST(ShardedAnnotateTest, XMarkMatchesSerial) {
  XMarkParams params;
  params.sf = 0.02;
  XMarkDataset ds(params);
  Annotations serial = *AnnotateSchema(*ds.MakeStream());
  ExpectShardInvariance(*ds.MakeShardedSource(), serial);
}

TEST(ShardedAnnotateTest, TpchMatchesSerial) {
  TpchParams params;
  params.sf = 0.002;
  TpchDataset ds(params);
  Annotations serial = *AnnotateSchema(*ds.MakeStream());
  ExpectShardInvariance(*ds.MakeShardedSource(), serial);
}

TEST(ShardedAnnotateTest, MimiMatchesSerial) {
  for (MimiVersion version :
       {MimiVersion::kApr2004, MimiVersion::kJan2006}) {
    MimiParams params;
    params.version = version;
    params.scale = 0.01;
    MimiDataset ds(params);
    Annotations serial = *AnnotateSchema(*ds.MakeStream());
    ExpectShardInvariance(*ds.MakeShardedSource(), serial);
  }
}

TEST(ShardedAnnotateTest, RelationalDatabaseMatchesSerial) {
  TpchParams params;
  params.sf = 0.001;
  TpchDataset ds(params);
  auto db = ds.GenerateDatabase();
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  RelationalInstanceStream stream(&ds.mapping(), &*db);
  Annotations serial = *AnnotateSchema(stream);
  ExpectShardInvariance(stream, serial);
}

TEST(ShardedAnnotateTest, AnnotateUnitsSumsToSerial) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations serial = *AnnotateSchema(data);
  // Skeleton + manually merged unit sub-ranges reproduce the serial pass.
  Annotations total = *AnnotateSchemaSharded(
      data, ShardedAnnotateOptions{/*shards=*/1, ParallelOptions{1}});
  EXPECT_EQ(total, serial);
  const uint64_t units = data.NumUnits();
  ASSERT_EQ(units, 2u);
  Annotations first = *AnnotateUnits(data, 0, 1);
  Annotations second = *AnnotateUnits(data, 1, 2);
  ASSERT_TRUE(first.Merge(second).ok());
  // Units alone = serial minus the skeleton (here: the root's counters).
  EXPECT_EQ(first.card(f.auctions), serial.card(f.auctions));
  EXPECT_EQ(first.card(f.bidder), serial.card(f.bidder));
  EXPECT_EQ(first.value_count(f.bids), serial.value_count(f.bids));
  EXPECT_EQ(first.card(f.schema.root()), 0u);
}

TEST(ShardedAnnotateTest, RejectsBadUnitRanges) {
  Fixture f;
  DataTree data = f.MakeData();
  EXPECT_TRUE(AnnotateUnits(data, 2, 1).status().IsInvalidArgument());
  EXPECT_TRUE(AnnotateUnits(data, 0, 3).status().IsInvalidArgument());
}

TEST(ShardedAnnotateTest, ShardUnitRangesPartitionEvenly) {
  for (uint64_t units : {uint64_t{0}, uint64_t{1}, uint64_t{10}, uint64_t{97}}) {
    for (uint64_t shards : {uint64_t{1}, uint64_t{3}, uint64_t{8}}) {
      uint64_t covered = 0, min_size = units + 1, max_size = 0;
      uint64_t expect_begin = 0;
      for (uint64_t s = 0; s < shards; ++s) {
        UnitRange r = ShardUnitRange(units, s, shards);
        EXPECT_EQ(r.begin, expect_begin);  // contiguous, in order
        expect_begin = r.end;
        covered += r.size();
        min_size = std::min(min_size, r.size());
        max_size = std::max(max_size, r.size());
      }
      EXPECT_EQ(covered, units);
      EXPECT_EQ(expect_begin, units);
      if (units >= shards) {
        EXPECT_LE(max_size - min_size, 1u);
      }
    }
  }
}

// --- annotations io -----------------------------------------------------------

TEST(AnnotationsIoTest, RoundTrip) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations ann = *AnnotateSchema(data);
  std::string text = SerializeAnnotations(ann);
  auto parsed = ParseAnnotations(f.schema, text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, ann);
}

TEST(AnnotationsIoTest, RejectsBadInput) {
  Fixture f;
  EXPECT_TRUE(ParseAnnotations(f.schema, "junk").status().IsParseError());
  EXPECT_TRUE(ParseAnnotations(f.schema, "ssum-annotations v1\nc\t999\t5\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseAnnotations(f.schema, "ssum-annotations v1\nc\t0\n")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(ParseAnnotations(f.schema, "ssum-annotations v1\nq\t0\t1\n")
                  .status()
                  .IsParseError());
}

TEST(AnnotationsIoTest, FileRoundTrip) {
  Fixture f;
  DataTree data = f.MakeData();
  Annotations ann = *AnnotateSchema(data);
  std::string path = testing::TempDir() + "/annotations.txt";
  ASSERT_TRUE(WriteAnnotationsFile(ann, path).ok());
  auto loaded = ReadAnnotationsFile(f.schema, path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, ann);
}

}  // namespace
}  // namespace ssum
