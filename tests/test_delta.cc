// Incremental delta-summarization: annotation algebra (Subtract / Diff /
// Apply), per-unit digests, the DeltaAnnotate pass, matrix patching, and the
// incremental context — each gated on bit-identity with its full-recompute
// counterpart.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/summarize.h"
#include "datasets/scenario.h"
#include "instance/unit_digest.h"
#include "stats/annotate.h"
#include "stats/delta.h"
#include "store/codec.h"
#include "store/fingerprint.h"

namespace ssum {
namespace {

/// Two versions of one scenario, differing only in the per-unit mutation
/// knobs (same schema, same unit layout) — the delta-friendly shape
/// `ssum gen --chain` emits.
struct VersionPair {
  ScenarioSpec base_spec;
  ScenarioSpec next_spec;
  ScenarioDataset base;
  ScenarioDataset next;

  static VersionPair Make(uint32_t elements = 80, uint64_t units = 300,
                          double mutate_fraction = 0.05) {
    ScenarioSpec spec;
    spec.name = "delta-test";
    spec.seed = 11;
    spec.schema_elements = elements;
    spec.instance_units = units;
    ScenarioSpec next = spec;
    next.mutate_seed = 3;
    next.mutate_fraction = mutate_fraction;
    auto base_ds = ScenarioDataset::Make(spec);
    auto next_ds = ScenarioDataset::Make(next);
    EXPECT_TRUE(base_ds.ok()) << base_ds.status().ToString();
    EXPECT_TRUE(next_ds.ok()) << next_ds.status().ToString();
    return VersionPair{spec, next, std::move(*base_ds), std::move(*next_ds)};
  }

  Annotations Annotate(const ScenarioDataset& ds) const {
    auto ann = AnnotateSchemaSharded(*ds.MakeShardedSource());
    EXPECT_TRUE(ann.ok()) << ann.status().ToString();
    return std::move(*ann);
  }
};

// ---------------------------------------------------------------------------
// Annotations::Subtract
// ---------------------------------------------------------------------------

TEST(SubtractTest, SubtractIsTheInverseOfMerge) {
  VersionPair v = VersionPair::Make();
  Annotations a = v.Annotate(v.base);
  Annotations b = v.Annotate(v.next);
  Annotations sum = a;
  ASSERT_TRUE(sum.Merge(b).ok());
  ASSERT_TRUE(sum.Subtract(b).ok());
  EXPECT_EQ(sum, a);
}

TEST(SubtractTest, UnderflowFailsAndLeavesTheTargetUntouched) {
  VersionPair v = VersionPair::Make();
  Annotations a = v.Annotate(v.base);
  Annotations big = a;
  big.set_card(1, a.card(1) + 1);
  Annotations before = a;
  EXPECT_TRUE(a.Subtract(big).IsFailedPrecondition());
  EXPECT_EQ(a, before);  // validated before any counter moved
}

TEST(SubtractTest, ShapeMismatchFails) {
  VersionPair v = VersionPair::Make();
  Annotations a = v.Annotate(v.base);
  Annotations other;  // empty shape
  EXPECT_TRUE(a.Subtract(other).IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Per-unit digests and dirty-unit detection
// ---------------------------------------------------------------------------

TEST(UnitDigestTest, DigestDiffAgreesWithTheAnalyticDirtySet) {
  VersionPair v = VersionPair::Make();
  auto base_digests = ComputeUnitDigests(*v.base.MakeShardedSource());
  auto next_digests = ComputeUnitDigests(*v.next.MakeShardedSource());
  ASSERT_TRUE(base_digests.ok());
  ASSERT_TRUE(next_digests.ok());
  auto diffed = DiffUnitDigests(*base_digests, *next_digests);
  ASSERT_TRUE(diffed.ok());
  auto analytic = DirtyUnitsBetween(v.base_spec, v.next_spec);
  ASSERT_TRUE(analytic.ok()) << analytic.status().ToString();
  // The analytic set marks units whose multiplier moved; a marked unit only
  // produces different bytes if it actually draws set counts, so the digest
  // diff is a subset. Every byte-dirty unit must be analytically marked.
  for (uint64_t u : *diffed) {
    EXPECT_TRUE(std::find(analytic->begin(), analytic->end(), u) !=
                analytic->end())
        << "unit " << u << " changed bytes but was not analytically dirty";
  }
  EXPECT_FALSE(diffed->empty());
  EXPECT_LT(diffed->size(), v.base.NumUnits());
}

TEST(UnitDigestTest, IdenticalSourcesHaveNoDirtyUnits) {
  VersionPair v = VersionPair::Make();
  auto a = ComputeUnitDigests(*v.base.MakeShardedSource());
  auto b = ComputeUnitDigests(*v.base.MakeShardedSource());
  ASSERT_TRUE(a.ok() && b.ok());
  auto diffed = DiffUnitDigests(*a, *b);
  ASSERT_TRUE(diffed.ok());
  EXPECT_TRUE(diffed->empty());
}

TEST(UnitDigestTest, LengthMismatchFails) {
  std::vector<uint64_t> a = {1, 2, 3};
  std::vector<uint64_t> b = {1, 2};
  EXPECT_TRUE(DiffUnitDigests(a, b).status().IsFailedPrecondition());
}

TEST(DirtyUnitsTest, NonMutateSpecChangesAreRejected) {
  VersionPair v = VersionPair::Make();
  ScenarioSpec other = v.base_spec;
  other.instance_units += 1;
  EXPECT_TRUE(
      DirtyUnitsBetween(v.base_spec, other).status().IsInvalidArgument());
  ScenarioSpec added = v.base_spec;
  added.mutate_add_elements = 2;  // schema change: not per-unit
  EXPECT_TRUE(
      DirtyUnitsBetween(v.base_spec, added).status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// DiffAnnotations / ApplyAnnotationDelta
// ---------------------------------------------------------------------------

TEST(DeltaAlgebraTest, DiffThenApplyReconstructsTheChildExactly) {
  VersionPair v = VersionPair::Make();
  Annotations parent = v.Annotate(v.base);
  Annotations child = v.Annotate(v.next);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  auto rebuilt = ApplyAnnotationDelta(v.base.schema(), parent, *delta);
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  EXPECT_EQ(*rebuilt, child);
}

TEST(DeltaAlgebraTest, WrongParentIsAFailedPreconditionNotDataLoss) {
  VersionPair v = VersionPair::Make();
  Annotations parent = v.Annotate(v.base);
  Annotations child = v.Annotate(v.next);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok());
  Annotations stranger = parent;
  stranger.set_card(2, parent.card(2) + 7);
  auto applied = ApplyAnnotationDelta(v.base.schema(), stranger, *delta);
  EXPECT_TRUE(applied.status().IsFailedPrecondition())
      << applied.status().ToString();
}

TEST(DeltaAlgebraTest, TamperedDiffArraysAreDataLoss) {
  VersionPair v = VersionPair::Make();
  Annotations parent = v.Annotate(v.base);
  Annotations child = v.Annotate(v.next);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok());
  // The per-counter diff no longer reproduces the recorded child
  // fingerprint: the result must be rejected, never silently wrong.
  AnnotationDelta lying = *delta;
  lying.d_card[1] += 1;
  auto applied = ApplyAnnotationDelta(v.base.schema(), parent, lying);
  EXPECT_TRUE(applied.status().IsDataLoss()) << applied.status().ToString();
}

// ---------------------------------------------------------------------------
// DeltaAnnotate: incremental pass == full pass, bit for bit
// ---------------------------------------------------------------------------

TEST(DeltaAnnotateTest, MatchesTheFullPassAtEveryThreadCount) {
  VersionPair v = VersionPair::Make();
  Annotations base_ann = v.Annotate(v.base);
  Annotations full = v.Annotate(v.next);
  auto dirty = DirtyUnitsBetween(v.base_spec, v.next_spec);
  ASSERT_TRUE(dirty.ok());
  for (uint32_t threads : {1u, 8u}) {
    DeltaAnnotateOptions options;
    options.parallel.threads = threads;
    auto inc = DeltaAnnotate(*v.base.MakeShardedSource(),
                             *v.next.MakeShardedSource(), base_ann, *dirty,
                             options);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    EXPECT_EQ(*inc, full) << "threads=" << threads;
  }
}

TEST(DeltaAnnotateTest, UnitCountMismatchFailsCleanly) {
  VersionPair v = VersionPair::Make();
  ScenarioSpec shrunk = v.base_spec;
  shrunk.instance_units /= 2;
  auto small = ScenarioDataset::Make(shrunk);
  ASSERT_TRUE(small.ok());
  Annotations base_ann = v.Annotate(v.base);
  auto inc = DeltaAnnotate(*v.base.MakeShardedSource(),
                           *small->MakeShardedSource(), base_ann, {0});
  EXPECT_TRUE(inc.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Matrix patching: TryPatch == TryCompute, bit for bit
// ---------------------------------------------------------------------------

/// A single-element cardinality bump keeps the dirty-frontier closure small
/// at short walk bounds, so the patch path (not its full-recompute
/// fallback) is what gets exercised.
struct PatchFixture {
  VersionPair v = VersionPair::Make(/*elements=*/120, /*units=*/200);
  Annotations base_ann = v.Annotate(v.base);
  Annotations next_ann = base_ann;
  EdgeMetrics base_metrics, next_metrics;

  PatchFixture() {
    next_ann.set_card(static_cast<ElementId>(v.base.schema().size() - 1),
                      base_ann.card(static_cast<ElementId>(
                          v.base.schema().size() - 1)) +
                          17);
    base_metrics = EdgeMetrics::Compute(v.base.schema(), base_ann);
    next_metrics = EdgeMetrics::Compute(v.base.schema(), next_ann);
  }
};

TEST(MatrixPatchTest, AffinityPatchIsBitIdenticalToRecompute) {
  PatchFixture f;
  const std::vector<ElementId> dirty = DirtyMetricElements(
      f.base_ann, f.base_metrics, f.next_ann, f.next_metrics);
  ASSERT_FALSE(dirty.empty());
  for (uint32_t max_steps : {2u, 4u}) {
    AffinityOptions options;
    options.max_steps = max_steps;
    auto base = AffinityMatrix::TryCompute(f.v.base.schema(), f.base_metrics,
                                           options);
    auto full = AffinityMatrix::TryCompute(f.v.base.schema(), f.next_metrics,
                                           options);
    ASSERT_TRUE(base.ok() && full.ok());
    MatrixPatchStats stats;
    auto patched = AffinityMatrix::TryPatch(f.v.base.schema(), f.next_metrics,
                                            *base, dirty, options, {}, {},
                                            &stats);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    EXPECT_EQ(0, std::memcmp(patched->matrix().data().data(),
                             full->matrix().data().data(),
                             full->matrix().data().size() * sizeof(double)))
        << "max_steps=" << max_steps;
    EXPECT_TRUE(stats.patched) << "max_steps=" << max_steps
                               << " dirty_rows=" << stats.dirty_rows;
    EXPECT_LT(stats.dirty_rows, stats.total_rows);
  }
}

TEST(MatrixPatchTest, CoveragePatchIsBitIdenticalToRecompute) {
  PatchFixture f;
  const std::vector<ElementId> dirty = DirtyMetricElements(
      f.base_ann, f.base_metrics, f.next_ann, f.next_metrics);
  ASSERT_FALSE(dirty.empty());
  for (uint32_t max_steps : {2u, 4u}) {
    CoverageOptions options;
    options.max_steps = max_steps;
    auto base = CoverageMatrix::TryCompute(f.v.base.schema(), f.base_ann,
                                           f.base_metrics, options);
    auto full = CoverageMatrix::TryCompute(f.v.base.schema(), f.next_ann,
                                           f.next_metrics, options);
    ASSERT_TRUE(base.ok() && full.ok());
    MatrixPatchStats stats;
    auto patched = CoverageMatrix::TryPatch(f.v.base.schema(), f.next_ann,
                                            f.next_metrics, *base, dirty,
                                            options, {}, {}, &stats);
    ASSERT_TRUE(patched.ok()) << patched.status().ToString();
    EXPECT_EQ(0, std::memcmp(patched->matrix().data().data(),
                             full->matrix().data().data(),
                             full->matrix().data().size() * sizeof(double)))
        << "max_steps=" << max_steps;
    EXPECT_TRUE(stats.patched) << "max_steps=" << max_steps;
  }
}

TEST(MatrixPatchTest, DirtyFractionFallbackStillMatchesRecompute) {
  PatchFixture f;
  const std::vector<ElementId> dirty = DirtyMetricElements(
      f.base_ann, f.base_metrics, f.next_ann, f.next_metrics);
  AffinityOptions options;
  options.max_steps = 4;
  auto base =
      AffinityMatrix::TryCompute(f.v.base.schema(), f.base_metrics, options);
  auto full =
      AffinityMatrix::TryCompute(f.v.base.schema(), f.next_metrics, options);
  ASSERT_TRUE(base.ok() && full.ok());
  MatrixPatchOptions patch;
  patch.max_dirty_fraction = 0.0;  // force the fallback
  MatrixPatchStats stats;
  auto patched = AffinityMatrix::TryPatch(f.v.base.schema(), f.next_metrics,
                                          *base, dirty, options, {}, patch,
                                          &stats);
  ASSERT_TRUE(patched.ok());
  EXPECT_FALSE(stats.patched);
  EXPECT_EQ(0, std::memcmp(patched->matrix().data().data(),
                           full->matrix().data().data(),
                           full->matrix().data().size() * sizeof(double)));
}

TEST(MatrixPatchTest, WrongOrderBaseFails) {
  PatchFixture f;
  AffinityMatrix tiny = AffinityMatrix::FromMatrix(SquareMatrix(3, 0.0));
  auto patched = AffinityMatrix::TryPatch(f.v.base.schema(), f.next_metrics,
                                          tiny, {});
  EXPECT_TRUE(patched.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Incremental summarizer context
// ---------------------------------------------------------------------------

TEST(IncrementalContextTest, MatchesColdContextAtEveryThreadCount) {
  VersionPair v = VersionPair::Make();
  Annotations base_ann = v.Annotate(v.base);
  Annotations next_ann = v.Annotate(v.next);
  for (uint32_t threads : {1u, 8u}) {
    SummarizeOptions options;
    options.parallel.threads = threads;
    auto base_ctx =
        SummarizerContext::Make(v.base.schema(), base_ann, options);
    ASSERT_TRUE(base_ctx.ok());
    auto inc = SummarizerContext::MakeIncremental(*base_ctx, next_ann);
    ASSERT_TRUE(inc.ok()) << inc.status().ToString();
    auto cold = SummarizerContext::Make(v.next.schema(), next_ann, options);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(0, std::memcmp(inc->affinity().matrix().data().data(),
                             cold->affinity().matrix().data().data(),
                             cold->affinity().matrix().data().size() *
                                 sizeof(double)))
        << "threads=" << threads;
    EXPECT_EQ(0, std::memcmp(inc->coverage().matrix().data().data(),
                             cold->coverage().matrix().data().data(),
                             cold->coverage().matrix().data().size() *
                                 sizeof(double)))
        << "threads=" << threads;
    auto inc_summary = Summarize(*inc, 6);
    auto cold_summary = Summarize(*cold, 6);
    ASSERT_TRUE(inc_summary.ok() && cold_summary.ok());
    EXPECT_EQ(inc_summary->abstract_elements, cold_summary->abstract_elements)
        << "threads=" << threads;
  }
}

TEST(IncrementalContextTest, WrongShapeAnnotationsFail) {
  VersionPair v = VersionPair::Make();
  Annotations base_ann = v.Annotate(v.base);
  auto base_ctx = SummarizerContext::Make(v.base.schema(), base_ann);
  ASSERT_TRUE(base_ctx.ok());
  Annotations foreign;  // empty shape
  auto inc = SummarizerContext::MakeIncremental(*base_ctx, foreign);
  EXPECT_TRUE(inc.status().IsFailedPrecondition());
}

// ---------------------------------------------------------------------------
// Delta codec: every byte flip detected (mirrors test_store.cc sweeps)
// ---------------------------------------------------------------------------

template <typename DecodeFn>
void ExpectEveryFlipFails(const std::string& good, DecodeFn decode) {
  for (size_t i = 0; i < good.size(); ++i) {
    std::string bad = good;
    bad[i] = static_cast<char>(static_cast<unsigned char>(bad[i]) ^ 0x40);
    const Status s = decode(bad);
    ASSERT_FALSE(s.ok()) << "flip at byte " << i << " went undetected";
    EXPECT_TRUE(s.IsDataLoss() || s.IsOutOfRange() || s.IsFailedPrecondition())
        << "byte " << i << ": " << s.ToString();
  }
  for (size_t len = 0; len < good.size(); ++len) {
    const Status s = decode(good.substr(0, len));
    ASSERT_FALSE(s.ok()) << "truncation to " << len << " accepted";
  }
}

TEST(DeltaCodecTest, RoundTripPreservesEveryField) {
  VersionPair v = VersionPair::Make();
  Annotations parent = v.Annotate(v.base);
  Annotations child = v.Annotate(v.next);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok());
  delta->dirty_units = 12;
  delta->total_units = v.base.NumUnits();
  const Fingerprint parent_key{0xfeedULL};
  std::string bytes = EncodeAnnotationDelta(parent_key, *delta);
  auto decoded = DecodeAnnotationDelta(v.base.schema(), bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->parent_key, parent_key);
  EXPECT_EQ(decoded->delta, *delta);
  // The lineage-only peek agrees on everything it decodes.
  auto peek = PeekAnnotationDelta(bytes);
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek->parent_key, parent_key);
  EXPECT_EQ(peek->delta.parent_fingerprint, delta->parent_fingerprint);
  EXPECT_EQ(peek->delta.child_fingerprint, delta->child_fingerprint);
  EXPECT_EQ(peek->delta.dirty_units, delta->dirty_units);
  EXPECT_EQ(peek->delta.total_units, delta->total_units);
}

TEST(DeltaCodecTest, NegativeDiffsSurviveTheRoundTrip) {
  VersionPair v = VersionPair::Make();
  Annotations parent = v.Annotate(v.next);  // swapped: diffs go negative
  Annotations child = v.Annotate(v.base);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok());
  bool has_negative = false;
  for (int64_t d : delta->d_card) has_negative |= (d < 0);
  for (int64_t d : delta->d_slink) has_negative |= (d < 0);
  EXPECT_TRUE(has_negative) << "fixture no longer produces negative diffs";
  std::string bytes = EncodeAnnotationDelta(Fingerprint{1}, *delta);
  auto decoded = DecodeAnnotationDelta(v.base.schema(), bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->delta, *delta);
}

TEST(DeltaCodecTest, DeltaSurvivesArbitraryCorruption) {
  VersionPair v = VersionPair::Make(/*elements=*/40, /*units=*/60);
  Annotations parent = v.Annotate(v.base);
  Annotations child = v.Annotate(v.next);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok());
  std::string good = EncodeAnnotationDelta(Fingerprint{0xabc}, *delta);
  ExpectEveryFlipFails(good, [&v](const std::string& bytes) {
    return DecodeAnnotationDelta(v.base.schema(), bytes).status();
  });
  ExpectEveryFlipFails(good, [](const std::string& bytes) {
    return PeekAnnotationDelta(bytes).status();
  });
}

TEST(DeltaCodecTest, WrongSchemaShapeIsFailedPrecondition) {
  VersionPair v = VersionPair::Make();
  Annotations parent = v.Annotate(v.base);
  Annotations child = v.Annotate(v.next);
  auto delta = DiffAnnotations(parent, child);
  ASSERT_TRUE(delta.ok());
  std::string bytes = EncodeAnnotationDelta(Fingerprint{2}, *delta);
  VersionPair other = VersionPair::Make(/*elements=*/30, /*units=*/50);
  auto decoded = DecodeAnnotationDelta(other.base.schema(), bytes);
  EXPECT_TRUE(decoded.status().IsFailedPrecondition())
      << decoded.status().ToString();
}

}  // namespace
}  // namespace ssum
