// End-to-end tests of the `ssum` command-line tool, driving the real binary
// (path injected by CMake as SSUM_CLI_PATH).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace ssum {
namespace {

std::string CliPath() { return SSUM_CLI_PATH; }

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Runs the CLI with `args`, capturing stdout into *out; returns the exit
/// code (or -1 when the process could not run).
int RunCli(const std::string& args, std::string* out = nullptr) {
  std::string out_file = TempPath("cli_stdout.txt");
  std::string cmd = CliPath() + " " + args + " > " + out_file + " 2>/dev/null";
  int rc = std::system(cmd.c_str());
  if (out != nullptr) {
    std::ifstream in(out_file);
    std::ostringstream buf;
    buf << in.rdbuf();
    *out = buf.str();
  }
  return rc == -1 ? -1 : WEXITSTATUS(rc);
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  out << content;
}

constexpr const char* kXml = R"(<shop>
  <customer id="c1"><name>Ada</name></customer>
  <customer id="c2"><name>Bob</name></customer>
  <order id="o1" customer="c1"><total>10.5</total></order>
  <order id="o2" customer="c1"><total>7.5</total></order>
  <order id="o3" customer="c2"><total>1.0</total></order>
</shop>)";

TEST(CliTest, UsageOnBadInvocation) {
  EXPECT_EQ(RunCli(""), 2);
  EXPECT_EQ(RunCli("bogus-command"), 2);
  EXPECT_EQ(RunCli("summarize"), 2);  // missing arguments
}

TEST(CliTest, XmlPipeline) {
  std::string xml = TempPath("shop.xml");
  std::string ssg = TempPath("shop.ssg");
  std::string ann = TempPath("shop.ann");
  std::string summary = TempPath("shop.summary");
  WriteFile(xml, kXml);
  EXPECT_EQ(RunCli("infer " + xml + " -o " + ssg), 0);
  EXPECT_EQ(RunCli("annotate " + ssg + " " + xml + " -o " + ann), 0);
  EXPECT_EQ(RunCli("summarize " + ssg + " -k 2 -a " + ann + " -o " + summary),
            0);
  std::string discover_out;
  EXPECT_EQ(RunCli("discover " + ssg + " " + summary +
                       " shop/customer shop/customer/name",
                   &discover_out),
            0);
  EXPECT_NE(discover_out.find("with summary"), std::string::npos);
  EXPECT_NE(discover_out.find("XQuery skeleton"), std::string::npos);
}

TEST(CliTest, DotExport) {
  std::string xml = TempPath("shop2.xml");
  std::string ssg = TempPath("shop2.ssg");
  WriteFile(xml, kXml);
  ASSERT_EQ(RunCli("infer " + xml + " -o " + ssg), 0);
  std::string dot;
  EXPECT_EQ(RunCli("dot " + ssg, &dot), 0);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("customer"), std::string::npos);
  std::string shallow;
  EXPECT_EQ(RunCli("dot " + ssg + " --max-depth 1 --hide-simple", &shallow),
            0);
  EXPECT_LT(shallow.size(), dot.size());
}

TEST(CliTest, RelationalFromDdlAndCsv) {
  std::string sql = TempPath("shop.sql");
  WriteFile(sql,
            "CREATE TABLE customer (c_id INTEGER PRIMARY KEY, "
            "c_name VARCHAR(40));\n"
            "CREATE TABLE orders (o_id INTEGER PRIMARY KEY, o_cust INTEGER, "
            "FOREIGN KEY (o_cust) REFERENCES customer(c_id));\n");
  WriteFile(TempPath("customer.csv"), "c_id,c_name\n1,Ada\n2,Bob\n");
  WriteFile(TempPath("orders.csv"), "o_id,o_cust\n1,1\n2,1\n3,2\n4,2\n5,1\n");
  std::string out;
  EXPECT_EQ(RunCli("relational " + sql + " -k 2 --data " + testing::TempDir(),
                   &out),
            0);
  EXPECT_NE(out.find("orders"), std::string::npos);
  EXPECT_NE(out.find("customer"), std::string::npos);
  // Uniform fallback also works.
  EXPECT_EQ(RunCli("relational " + sql + " -k 1"), 0);
  // Bad dialect rejected.
  EXPECT_NE(RunCli("relational " + sql + " -k 1 --dialect nope"), 0);
}

TEST(CliTest, ErrorsPropagateAsNonZeroExit) {
  EXPECT_NE(RunCli("infer /does/not/exist.xml"), 0);
  std::string bad = TempPath("bad.ssg");
  WriteFile(bad, "not a schema\n");
  EXPECT_NE(RunCli("summarize " + bad + " -k 3"), 0);
  EXPECT_NE(RunCli("demo unknown-dataset"), 0);
}

TEST(CliTest, DeadlineExceededExitsWithDedicatedCode) {
  std::string xml = TempPath("shop3.xml");
  std::string ssg = TempPath("shop3.ssg");
  WriteFile(xml, kXml);
  ASSERT_EQ(RunCli("infer " + xml + " -o " + ssg), 0);
  // A zero budget is already expired before any work starts: the command
  // must abort with the dedicated exit code, deterministically.
  EXPECT_EQ(RunCli("summarize " + ssg + " -k 2 --deadline-ms 0"), 5);
  EXPECT_EQ(RunCli("annotate " + ssg + " " + xml + " --deadline-ms 0"), 5);
  // A generous budget changes nothing about the result path.
  EXPECT_EQ(RunCli("summarize " + ssg + " -k 2 --deadline-ms 60000"), 0);
  // Malformed budgets are usage errors, not deadline errors.
  EXPECT_EQ(RunCli("summarize " + ssg + " -k 2 --deadline-ms -1"), 2);
  EXPECT_EQ(RunCli("summarize " + ssg + " -k 2 --deadline-ms"), 2);
}

TEST(CliTest, CacheVerifyQuarantinesCorruptContainers) {
  std::string xml = TempPath("shop4.xml");
  std::string ssg = TempPath("shop4.ssg");
  std::string cache_dir = TempPath("cli_cache");
  std::filesystem::remove_all(cache_dir);
  WriteFile(xml, kXml);
  ASSERT_EQ(RunCli("infer " + xml + " -o " + ssg), 0);
  ASSERT_EQ(
      RunCli("summarize " + ssg + " -k 2 --cache-dir " + cache_dir), 0);

  // Flip a byte in the middle of one installed container.
  std::string victim;
  for (const auto& e : std::filesystem::directory_iterator(cache_dir)) {
    if (e.path().extension() == ".ssb") {
      victim = e.path().string();
      break;
    }
  }
  ASSERT_FALSE(victim.empty()) << "summarize installed no containers";
  {
    std::ifstream in(victim, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    ASSERT_GT(bytes.size(), 40u);
    bytes[bytes.size() / 2] ^= 0x20;
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << bytes;
  }

  // First verify: reports + quarantines the corrupt container, exit 3.
  std::string report;
  EXPECT_EQ(RunCli("cache verify --cache-dir " + cache_dir, &report), 3);
  EXPECT_NE(report.find("quarantined\t1"), std::string::npos) << report;
  EXPECT_FALSE(std::filesystem::exists(victim));

  // Second verify: the directory is clean again.
  EXPECT_EQ(RunCli("cache verify --cache-dir " + cache_dir, &report), 0);
  EXPECT_NE(report.find("corrupt\t0"), std::string::npos) << report;

  // The lifetime ledger remembers the quarantine.
  std::string stat;
  EXPECT_EQ(RunCli("cache stat --cache-dir " + cache_dir, &stat), 0);
  EXPECT_NE(stat.find("quarantined\t1"), std::string::npos) << stat;

  // A warm re-run recomputes the quarantined artifact and heals it.
  EXPECT_EQ(
      RunCli("summarize " + ssg + " -k 2 --cache-dir " + cache_dir), 0);
  EXPECT_EQ(RunCli("cache stat --cache-dir " + cache_dir, &stat), 0);
  EXPECT_NE(stat.find("healed\t"), std::string::npos) << stat;
}

}  // namespace
}  // namespace ssum
